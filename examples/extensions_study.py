#!/usr/bin/env python3
"""Beyond the paper: multi-channel TECs, DVFS cost, Pareto frontier.

Three extension studies built on the reproduction:

1. **Multi-channel drive** — the paper wires every TEC in series; here
   the int core, FP cluster, and the rest get independent currents and
   the optimizer chooses all of them plus the fan speed.
2. **The DVFS cost of no TECs** — the paper notes that baseline-
   uncoolable workloads need frequency throttling; we compute exactly
   how much frequency each system must give up.
3. **The power/temperature Pareto frontier** — what each degree of
   headroom costs, with and without TECs.
"""

from repro import build_cooling_problem, mibench_profiles, run_oftec
from repro.analysis import trace_pareto_frontier
from repro.core import (
    EV6_DEFAULT_CHANNELS,
    find_max_frequency,
    run_oftec_multichannel,
)
from repro.units import kelvin_to_celsius, rad_s_to_rpm


def study_multichannel(tec_problem, profiles):
    """Independent channel currents vs the paper's single string."""
    print("1. Multi-channel TEC drive (quicksort)")
    heavy = tec_problem.with_profile(profiles["quicksort"])
    single = run_oftec(heavy)
    multi = run_oftec_multichannel(heavy, EV6_DEFAULT_CHANNELS)
    print(f"   single string: I* = {single.current_star:.2f} A "
          f"everywhere, P = {single.total_power:.2f} W")
    channels = ", ".join(f"{name} {value:.2f} A" for name, value
                         in multi.currents_by_channel().items())
    print(f"   per channel:   {channels}, P = {multi.total_power:.2f} W")
    saving = (single.total_power - multi.total_power) \
        / single.total_power * 100.0
    print(f"   -> {saving:.1f}% less power by not over-driving "
          "lukewarm regions\n")


def study_dvfs(tec_problem, baseline_problem, profiles):
    """How much frequency the no-TEC system must sacrifice."""
    print("2. DVFS throttling cost (heavy benchmarks)")
    print(f"   {'benchmark':<12}{'no-TEC f_max':>14}{'OFTEC f_max':>13}")
    for name in ("bitcount", "fft", "quicksort"):
        base = find_max_frequency(
            baseline_problem.with_profile(profiles[name]),
            tolerance=0.02)
        hybrid = find_max_frequency(
            tec_problem.with_profile(profiles[name]), tolerance=0.02)
        print(f"   {name:<12}{base.scaling:>13.2f}x"
              f"{hybrid.scaling:>12.2f}x")
    print("   -> the TECs buy back the throughput the baselines must "
          "throttle away\n")


def study_pareto(tec_problem, baseline_problem):
    """Watts per kelvin of thermal headroom, with and without TECs."""
    print("3. Power/temperature Pareto frontier (basicmath)")
    hybrid = trace_pareto_frontier(tec_problem, points=6)
    passive = trace_pareto_frontier(baseline_problem, points=6)
    print(f"   {'T_max (C)':>10}{'hybrid P (W)':>14}"
          f"{'passive P (W)':>15}")
    passive_floor = min(p.t_max for p in passive.points)
    for point in hybrid.points:
        t_c = kelvin_to_celsius(point.t_max)
        if point.t_max < passive_floor:
            passive_p = f"{'unreachable':>15}"
        else:
            passive_p = f"{passive.power_at(point.t_max):15.2f}"
        print(f"   {t_c:>10.1f}{point.total_power:>14.2f}{passive_p}")
    print(f"   coolest reachable: hybrid "
          f"{kelvin_to_celsius(hybrid.coolest_temperature):.1f} C, "
          f"passive "
          f"{kelvin_to_celsius(passive.coolest_temperature):.1f} C")
    slope = hybrid.marginal_power_per_kelvin()
    print(f"   hybrid frontier slope near T_max: {slope[-1]:.2f} W/K "
          "(each extra degree of budget saves this much power)")


def main():
    resolution = 10
    profiles = mibench_profiles()
    tec_problem = build_cooling_problem(profiles["basicmath"],
                                        grid_resolution=resolution)
    baseline_problem = build_cooling_problem(
        profiles["basicmath"], with_tec=False,
        grid_resolution=resolution)

    study_multichannel(tec_problem, profiles)
    study_dvfs(tec_problem, baseline_problem, profiles)
    study_pareto(tec_problem, baseline_problem)


if __name__ == "__main__":
    main()
