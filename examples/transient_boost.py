#!/usr/bin/env python3
"""Transient TEC boost: the paper's "+1 A for 1 s" future-work idea.

Thin-film TECs over-pump briefly because the Peltier effect is
instantaneous at the junction while Joule heat reaches the die with the
package's thermal time constant.  This example:

1. runs OFTEC on a heavy workload to get the steady operating point,
2. steps the workload up (quicksort arrives mid-run),
3. compares riding out the step at the old steady current against
   boosting the TEC current by 1 A for 1 s (reference [8]'s recipe)
   while OFTEC's next solution would still be computing.
"""

import numpy as np

from repro import build_cooling_problem, mibench_profiles, run_oftec
from repro.core import plan_transient_boost
from repro.thermal import simulate_transient
from repro.units import kelvin_to_celsius


def main():
    profiles = mibench_profiles()
    problem = build_cooling_problem(profiles["fft"], grid_resolution=10)
    heavy = problem.with_profile(profiles["quicksort"])

    print("Finding the steady OFTEC operating point for FFT ...")
    steady = run_oftec(problem)
    print(f"  omega* = {steady.omega_star:.0f} rad/s, "
          f"I* = {steady.current_star:.2f} A, "
          f"T = {kelvin_to_celsius(steady.max_chip_temperature):.1f} C")

    plan = plan_transient_boost(problem, steady, extra_current=1.0,
                                duration=1.0)
    print(f"Boost plan: {plan.base_current:.2f} A -> "
          f"{plan.boost_current:.2f} A for {plan.boost_duration:.1f} s")

    # The workload step: quicksort's power map replaces FFT's at t = 0.
    start = steady.evaluation.steady.temperatures

    print("\nSimulating 3 s after the workload step ...")
    rideout = simulate_transient(
        problem.model, duration=3.0, dt=0.05, omega=plan.omega,
        current=plan.base_current,
        dynamic_cell_power=heavy.dynamic_cell_power,
        leakage=problem.leakage, initial_temperatures=start)
    boosted = simulate_transient(
        problem.model, duration=3.0, dt=0.05, omega=plan.omega,
        current=plan.current_schedule(),
        dynamic_cell_power=heavy.dynamic_cell_power,
        leakage=problem.leakage, initial_temperatures=start)

    print(f"\n{'t (s)':>6} {'steady I (C)':>14} {'boosted I (C)':>14}")
    for idx in range(0, len(rideout.times), 10):
        print(f"{rideout.times[idx]:>6.2f} "
              f"{kelvin_to_celsius(rideout.max_chip_temperature[idx]):>14.2f} "
              f"{kelvin_to_celsius(boosted.max_chip_temperature[idx]):>14.2f}")

    peak_rideout = kelvin_to_celsius(rideout.max_chip_temperature.max())
    peak_boosted = kelvin_to_celsius(boosted.max_chip_temperature.max())
    window = boosted.times <= plan.boost_duration
    gain = np.max(rideout.max_chip_temperature[window]
                  - boosted.max_chip_temperature[window])
    print(f"\nPeak during the transient: {peak_rideout:.2f} C "
          f"(steady current) vs {peak_boosted:.2f} C (boosted)")
    print(f"Largest advantage inside the boost window: {gain:.2f} C")
    print("The boost buys headroom exactly while a new OFTEC solution "
          "(hundreds of ms) would be computing.")


if __name__ == "__main__":
    main()
