#!/usr/bin/env python3
"""Online control: lookup table + simple controllers on a live trace.

The paper's deployment story (Section 6.2): OFTEC takes ~hundreds of
milliseconds, so an online controller should classify the observed power
vector and look up a precomputed solution.  This example:

1. precomputes OFTEC solutions for all eight MiBench profiles,
2. streams a synthetic PTscalar-style trace whose phases hop between
   workload shapes,
3. drives the package with the LUT decision per phase and reports the
   resulting temperatures,
4. compares against the threshold and hysteresis controllers from the
   related work (constant current, on/off switching).
"""

from repro import build_cooling_problem, mibench_profiles
from repro.core import (
    Evaluator,
    LookupTableController,
    run_hysteresis_controller,
    run_threshold_controller,
)
from repro.power import TraceGenerator
from repro.units import kelvin_to_celsius


def main():
    resolution = 10
    profiles = mibench_profiles()
    problem = build_cooling_problem(profiles["basicmath"],
                                    grid_resolution=resolution)

    print("Precomputing the OFTEC lookup table over all eight "
          "profiles ...")
    table = LookupTableController(
        problem.coverage.floorplan.unit_names)
    results = table.precompute(
        problem, {name: p.unit_power for name, p in profiles.items()})
    for name, result in results.items():
        print(f"  {name:<14} omega* = {result.omega_star:5.0f} rad/s  "
              f"I* = {result.current_star:4.2f} A  "
              f"feasible = {result.feasible}")

    print("\nStreaming a phase-hopping workload and applying LUT "
          "decisions ...")
    generator = TraceGenerator(seed=3, phase_count=4)
    sequence = ["crc32", "fft", "quicksort", "basicmath"]
    for name in sequence:
        trace = generator.generate(profiles[name], duration=2.0,
                                   sample_interval=0.1)
        observed = trace.max_profile().unit_power
        omega, current, entry = table.lookup(observed)
        phase_problem = problem.with_profile(profiles[name])
        evaluation = Evaluator(phase_problem).evaluate(omega, current)
        print(f"  phase {name:<14} -> matched {entry.label:<14} "
              f"applied ({omega:5.0f} rad/s, {current:4.2f} A): "
              f"T = {kelvin_to_celsius(evaluation.max_chip_temperature):5.1f} C, "
              f"P = {evaluation.total_power:5.2f} W")

    print("\nRelated-work controllers on the FFT workload "
          "(constant-current on/off TECs at fixed fan speed):")
    fft_problem = problem.with_profile(profiles["fft"])
    threshold = run_threshold_controller(
        fft_problem, omega=350.0, on_current=2.0, threshold=352.0,
        duration=30.0, dt=0.25)
    hysteresis = run_hysteresis_controller(
        fft_problem, omega=350.0, on_current=2.0, t_on=352.0,
        t_off=349.0, duration=30.0, dt=0.25)
    print(f"  threshold : peak "
          f"{kelvin_to_celsius(threshold.peak_temperature):5.1f} C, "
          f"{threshold.switch_count} switches, "
          f"duty {threshold.duty_cycle * 100:4.1f}%")
    print(f"  hysteresis: peak "
          f"{kelvin_to_celsius(hysteresis.peak_temperature):5.1f} C, "
          f"{hysteresis.switch_count} switches, "
          f"duty {hysteresis.duty_cycle * 100:4.1f}%")
    print("\nHysteresis trades a slightly wider temperature band for "
          "far fewer on/off transitions — the effect the paper's "
          "reference [5] reports.  Neither controller tunes the fan; "
          "OFTEC's joint optimum dominates both.")


if __name__ == "__main__":
    main()
