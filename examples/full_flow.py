#!/usr/bin/env python3
"""The complete Figure 5 flow, front to back.

Benchmark program -> performance/power simulation -> per-unit maximum
power -> cooling package configuration -> OFTEC -> (omega*, I*).

Unlike the other examples (which use the calibrated built-in profiles),
this one generates the workload power from first principles with the
microarchitectural activity simulator — the PTscalar-substitute half of
the flow — then hands it to the same optimizer.
"""

from repro import build_cooling_problem, run_oftec
from repro.uarch import (
    ActivityModel,
    UnitPowerModel,
    mibench_programs,
    simulate_power_trace,
)
from repro.units import kelvin_to_celsius, rad_s_to_rpm

#: Peak-power budget of the simulated die, W.  Raising it stresses the
#: cooling assembly the way the calibrated heavy benchmarks do.
TOTAL_PEAK_W = 120.0


def main():
    programs = mibench_programs()
    power_model = UnitPowerModel.for_floorplan(total_peak=TOTAL_PEAK_W)
    activity_model = ActivityModel()

    print("Step 1: performance/power simulation "
          f"(EV6 activity model, {TOTAL_PEAK_W:.0f} W peak budget)")
    print(f"  {'benchmark':<13}{'IPC(last phase)':>16}"
          f"{'max power (W)':>15}  hottest unit")
    traces = {}
    for name, program in programs.items():
        trace = simulate_power_trace(program, power_model)
        traces[name] = trace
        profile = trace.max_profile()
        hottest = max(profile.unit_power, key=profile.unit_power.get)
        ipc = activity_model.effective_ipc(program.phases[-1])
        print(f"  {name:<13}{ipc:>16.2f}"
              f"{profile.total_power:>15.1f}  {hottest}")

    print("\nStep 2: OFTEC on the simulated workloads")
    print(f"  {'benchmark':<13}{'I* (A)':>8}{'omega* (RPM)':>14}"
          f"{'T (C)':>8}{'P (W)':>8}{'meets':>7}")
    for name, trace in traces.items():
        problem = build_cooling_problem(trace.max_profile(),
                                        grid_resolution=10)
        result = run_oftec(problem)
        meets = "yes" if result.feasible else "NO"
        print(f"  {name:<13}{result.current_star:>8.2f}"
              f"{rad_s_to_rpm(result.omega_star):>14.0f}"
              f"{kelvin_to_celsius(result.max_chip_temperature):>8.1f}"
              f"{result.total_power:>8.2f}{meets:>7}")

    print("\nSame pipeline as the paper's Figure 5 — swap in any other "
          "program model or power budget and the optimizer is unchanged.")


if __name__ == "__main__":
    main()
