#!/usr/bin/env python3
"""Full benchmark campaign: Figures 6(c)-(f) and Table 2 in one run.

Runs OFTEC, the variable-speed-fan baseline, and the fixed-speed-fan
baseline over all eight MiBench power profiles, under both objectives
(minimum temperature and minimum power), and prints the paper's tables:
per-benchmark temperature/power comparisons, the feasibility counts, the
average savings on comparable benchmarks, and the Table 2 analogue of
(I*, omega*, runtime).

Pass a grid resolution as the first argument to trade fidelity for
speed (default 12; the library's full default is 16).
"""

import sys

from repro import build_cooling_problem, mibench_profiles
from repro.analysis import (
    format_comparison_table,
    format_table2,
    run_campaign,
)


def main():
    resolution = int(sys.argv[1]) if len(sys.argv) > 1 else 12
    profiles = mibench_profiles()
    template = mibench_profiles()["basicmath"]

    print(f"Building package models at {resolution}x{resolution} grid "
          "resolution ...")
    tec_problem = build_cooling_problem(template,
                                        grid_resolution=resolution)
    baseline_problem = build_cooling_problem(
        template, with_tec=False, grid_resolution=resolution)

    print("Running the three-method campaign over eight benchmarks "
          "(this takes a minute) ...\n")
    campaign = run_campaign(profiles, tec_problem, baseline_problem,
                            include_tec_only=True)

    print(format_comparison_table(campaign, "opt2"))
    print()
    print(format_comparison_table(campaign, "opt1"))
    print()
    print(format_table2(campaign))

    print("\nTEC-only (fan off) check per benchmark:")
    for comparison in campaign.comparisons:
        status = "thermal runaway" if comparison.tec_only.runaway \
            else "bounded"
        print(f"  {comparison.name:<14} {status}")
    print(f"\nCampaign wall time: {campaign.wall_seconds:.1f} s")


if __name__ == "__main__":
    main()
