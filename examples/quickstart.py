#!/usr/bin/env python3
"""Quickstart: run OFTEC on one benchmark and compare the baselines.

Builds the paper's full evaluation flow (EV6 die, Table 1 package, TECs
everywhere but the caches, McPAT-substitute leakage), runs Algorithm 1 on
the Basicmath workload, and prints the operating point next to the two
no-TEC baselines.
"""

from repro import (
    build_cooling_problem,
    mibench_profiles,
    run_fixed_fan_baseline,
    run_oftec,
    run_tec_only,
    run_variable_fan_baseline,
)
from repro.units import kelvin_to_celsius, rad_s_to_rpm


def describe(label, omega, current, temperature, power, feasible):
    """One aligned report line."""
    status = "meets T_max" if feasible else "VIOLATES T_max"
    print(f"  {label:<16} omega = {rad_s_to_rpm(omega):6.0f} RPM   "
          f"I_TEC = {current:4.2f} A   "
          f"T_max = {kelvin_to_celsius(temperature):5.1f} C   "
          f"P = {power:6.2f} W   [{status}]")


def main():
    benchmark = "basicmath"
    profile = mibench_profiles()[benchmark]
    print(f"Benchmark: {benchmark} "
          f"({profile.total_power:.1f} W max dynamic power)")

    # The hybrid (TEC + fan) system and the paper's no-TEC baseline
    # package (TIM1 conductivity raised per the Section 6.1 fairness
    # rule).
    tec_problem = build_cooling_problem(profile)
    baseline_problem = build_cooling_problem(profile, with_tec=False)

    print("\nOptimization 1: minimize P_leakage + P_TEC + P_fan "
          "subject to T < 90 C")
    oftec = run_oftec(tec_problem)
    describe("OFTEC", oftec.omega_star, oftec.current_star,
             oftec.max_chip_temperature, oftec.total_power,
             oftec.feasible)

    variable = run_variable_fan_baseline(baseline_problem)
    describe("variable-omega", variable.omega, variable.current,
             variable.max_chip_temperature, variable.total_power,
             variable.feasible)

    fixed = run_fixed_fan_baseline(baseline_problem)
    describe("fixed-omega", fixed.omega, fixed.current,
             fixed.max_chip_temperature, fixed.total_power,
             fixed.feasible)

    saving_var = (variable.total_power - oftec.total_power) \
        / variable.total_power * 100.0
    saving_fix = (fixed.total_power - oftec.total_power) \
        / fixed.total_power * 100.0
    print(f"\nOFTEC saves {saving_var:.1f}% vs the variable-speed fan "
          f"and {saving_fix:.1f}% vs the 2000 RPM fan,")
    print(f"while keeping the hottest spot "
          f"{variable.max_chip_temperature - oftec.max_chip_temperature:.1f} C "
          "cooler than the variable-speed baseline.")

    print("\nAnd the Section 6.2 sanity check — TECs without a fan:")
    tec_only = run_tec_only(tec_problem)
    if tec_only.runaway:
        print("  TEC-only system: thermal runaway at every current "
              "level (no bounded steady state).")
    else:
        describe("tec-only", 0.0, tec_only.current,
                 tec_only.max_chip_temperature, tec_only.total_power,
                 tec_only.feasible)
    print(f"\nOFTEC runtime: {oftec.runtime_seconds * 1e3:.0f} ms "
          f"({oftec.thermal_solves} thermal solves)")


if __name__ == "__main__":
    main()
