#!/usr/bin/env python3
"""Beyond the EV6: a quad-core die, noise caps, and real sensors.

Three practicalities a deployment hits that the paper's evaluation
abstracts away, all supported by the library:

1. **A different floorplan** — OFTEC on a quad-core CMP with imbalanced
   thread placement (two hot cores, two idle ones).
2. **An acoustic cap** — a near-silent 25 dBA limit shrinks omega_max
   through the fan-law noise model; OFTEC shifts work to the TECs.
3. **Sensor aliasing** — a DTM loop reads sensors, not the true
   hotspot; we measure the guard band the sensor placement forces.
"""

from repro import build_cooling_problem, run_oftec
from repro.core import Evaluator, ProblemLimits
from repro.fan import FanNoiseModel, noise_limited_omega_max
from repro.geometry import (
    CMP4_CACHE_UNITS,
    CellCoverage,
    Grid,
    cmp4_floorplan,
    cmp4_unit_power,
)
from repro.tec import coverage_mask_excluding
from repro.thermal import SensorArray, recommended_guard_band
from repro.units import kelvin_to_celsius, rad_s_to_rpm


def build_cmp_problem(limits=None, resolution=10):
    """Quad-core problem: cores 0/1 loaded, cores 2/3 near idle."""
    floorplan = cmp4_floorplan()
    grid = Grid.for_floorplan(floorplan, resolution, resolution)
    coverage = CellCoverage(floorplan, grid)
    mask = coverage_mask_excluding(coverage, CMP4_CACHE_UNITS)
    return build_cooling_problem(
        cmp4_unit_power([20.0, 20.0, 3.0, 3.0], l2_power=6.0),
        name="cmp4",
        floorplan=floorplan,
        grid_resolution=resolution,
        tec_coverage_mask=mask,
        limits=limits)


def main():
    print("1. OFTEC on the quad-core floorplan (cores 0/1 hot)")
    problem = build_cmp_problem()
    result = run_oftec(problem)
    print(f"   omega* = {rad_s_to_rpm(result.omega_star):.0f} RPM, "
          f"I* = {result.current_star:.2f} A, "
          f"T = {kelvin_to_celsius(result.max_chip_temperature):.1f} C, "
          f"P = {result.total_power:.2f} W, feasible = {result.feasible}")
    unit_temps = problem.coverage.unit_temperatures(
        result.evaluation.steady.chip_temperatures)
    print(f"   hottest tiles: core0_EXE "
          f"{kelvin_to_celsius(unit_temps['core0_EXE']):.1f} C vs idle "
          f"core2_EXE {kelvin_to_celsius(unit_temps['core2_EXE']):.1f} C")

    print("\n2. The same die under a near-silent 25 dBA noise cap")
    noise = FanNoiseModel()
    capped_omega = noise_limited_omega_max(25.0, noise)
    print(f"   25 dBA -> omega_max = {rad_s_to_rpm(capped_omega):.0f} "
          f"RPM (physical limit {rad_s_to_rpm(524.0):.0f} RPM)")
    capped = build_cmp_problem(
        limits=ProblemLimits(omega_max=capped_omega))
    capped_result = run_oftec(capped)
    print(f"   omega* = {rad_s_to_rpm(capped_result.omega_star):.0f} RPM "
          f"({noise.level(capped_result.omega_star):.1f} dBA), "
          f"I* = {capped_result.current_star:.2f} A, "
          f"P = {capped_result.total_power:.2f} W, "
          f"feasible = {capped_result.feasible}")
    print(f"   the cap binds (omega* sits on the acoustic limit) and "
          f"costs {capped_result.total_power - result.total_power:+.2f} W "
          f"versus the unconstrained optimum; TEC current "
          f"{capped_result.current_star:.2f} A vs "
          f"{result.current_star:.2f} A")

    print("\n3. Sensor aliasing: what a real DTM loop would see")
    coverage = problem.coverage
    evaluator = Evaluator(problem)
    fields = []
    for omega, current in ((150.0, 0.0), (300.0, 0.5), (450.0, 1.0)):
        evaluation = evaluator.evaluate(omega, current)
        fields.append(evaluation.steady.chip_temperatures)
    hot_units = [f"core{c}_{t}" for c in (0, 1) for t in ("EXE", "LSU")]
    good = SensorArray.at_unit_centers(coverage, hot_units)
    sparse = SensorArray.at_unit_centers(coverage, ["L2"])
    print(f"   sensors on hot tiles : guard band = "
          f"{recommended_guard_band(good, fields):.2f} K")
    print(f"   one L2 sensor only   : guard band = "
          f"{recommended_guard_band(sparse, fields):.2f} K")
    print("   -> poor placement forces that much extra margin below "
          "T_max, wasting exactly the headroom OFTEC exists to exploit.")


if __name__ == "__main__":
    main()
