#!/usr/bin/env python3
"""Selective TEC deployment: which units deserve coolers?

The paper tiles every unit except the I/D caches, citing refs [6][7]:
covering cool units wastes power and laterally heats neighbors.  This
example derives that decision from first principles:

1. simulate the uncooled package (no TEC current) on a hot workload,
2. rank functional units by peak temperature,
3. let the deployment optimizer pick the hotspot units,
4. compare OFTEC's optimum under three coverage policies:
   everything, hotspots-only, and the paper's all-but-caches.
"""

from repro import build_cooling_problem, mibench_profiles, run_oftec
from repro.core import Evaluator
from repro.tec import full_coverage_mask, select_tec_coverage
from repro.units import kelvin_to_celsius


def oftec_under_mask(profile, mask, label, resolution):
    """Run OFTEC with a given coverage mask and report."""
    problem = build_cooling_problem(profile, tec_coverage_mask=mask,
                                    grid_resolution=resolution)
    result = run_oftec(problem)
    covered = float(mask.mean()) * 100.0
    status = "meets" if result.feasible else "MISSES"
    print(f"  {label:<18} coverage {covered:5.1f}%   "
          f"I* = {result.current_star:4.2f} A   "
          f"omega* = {result.omega_star:5.0f} rad/s   "
          f"T = {kelvin_to_celsius(result.max_chip_temperature):5.1f} C "
          f"({status} T_max)   P = {result.total_power:6.2f} W")
    return result


def main():
    resolution = 10
    profile = mibench_profiles()["quicksort"]
    base_problem = build_cooling_problem(profile,
                                         grid_resolution=resolution)
    coverage = base_problem.coverage

    print("Step 1: uncooled thermal map (TEC current = 0, mid fan) ...")
    evaluator = Evaluator(base_problem)
    uncooled = evaluator.evaluate(base_problem.limits.omega_max / 2.0,
                                  0.0)
    unit_temps = coverage.unit_temperatures(
        uncooled.steady.chip_temperatures, reduce="max")

    print(f"{'unit':<12} {'peak (C)':>9}")
    for name, temp in sorted(unit_temps.items(), key=lambda kv: -kv[1]):
        print(f"  {name:<12} {kelvin_to_celsius(temp):>8.1f}")

    print("\nStep 2: deployment optimizer selection ...")
    decision = select_tec_coverage(coverage, unit_temps)
    print(f"  covered:  {', '.join(decision.covered_units)}")
    print(f"  excluded: {', '.join(decision.excluded_units)}")

    print("\nStep 3: OFTEC under each coverage policy ...")
    grid = base_problem.model.grid
    oftec_under_mask(profile, full_coverage_mask(grid),
                     "full die", resolution)
    oftec_under_mask(profile, decision.coverage_mask,
                     "hotspots only", resolution)
    paper_mask = base_problem.model.tec_array.coverage_mask
    oftec_under_mask(profile, paper_mask, "all but caches",
                     resolution)

    print("\nThe caches never make the hotspot list — exactly why the "
          "paper leaves them uncovered.  Hotspot-only deployment uses "
          "fewer modules; full coverage buys little and spends more "
          "TEC power.")


if __name__ == "__main__":
    main()
