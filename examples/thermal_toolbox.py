#!/usr/bin/env python3
"""The thermal engineer's toolbox: validation, modes, SPICE export.

Four utilities a package designer would reach for, all exercising the
reproduction's substrate rather than the optimizer:

1. **Analytic sanity check** — the 1-D series-chain junction
   temperature (a strict lower bound) against the full 3-D network.
2. **Thermal time constants** — the dominant decay modes of the
   assembly, and the transient-boost window they justify.
3. **SPICE netlist export** — the paper's Section 4 remark made real:
   the dual circuit, ready for ``ngspice``.
4. **theta_JA budget** — where the junction-to-ambient kelvins go,
   layer by layer.
"""

import numpy as np

from repro import mibench_profiles
from repro.fan import HeatSinkFanConductance
from repro.geometry import CellCoverage, Grid, alpha21264_floorplan
from repro.materials import baseline_package_stack
from repro.thermal import (
    boost_window_recommendation,
    build_package_model,
    export_spice_netlist,
    extract_time_constants,
    format_stack_profile,
    layer_vertical_resistances,
    one_dimensional_stack_profile,
    solve_steady_state,
)
from repro.units import kelvin_to_celsius


def main():
    floorplan = alpha21264_floorplan()
    grid = Grid.for_floorplan(floorplan, 10, 10)
    coverage = CellCoverage(floorplan, grid)
    stack = baseline_package_stack()
    model = build_package_model(stack, grid)
    omega = 262.0
    power_map = coverage.power_map(
        mibench_profiles()["basicmath"].as_dict())
    total_power = float(power_map.sum())

    print("1. Analytic 1-D chain vs the full 3-D network")
    profile = one_dimensional_stack_profile(
        stack, total_power, omega, model.config.ambient,
        HeatSinkFanConductance())
    network = solve_steady_state(model, omega, 0.0, power_map,
                                 leakage=None)
    print(f"   1-D junction (lower bound): "
          f"{kelvin_to_celsius(profile.junction_temperature):.1f} C")
    print(f"   3-D network mean chip     : "
          f"{kelvin_to_celsius(network.mean_chip_temperature):.1f} C")
    print(f"   3-D network hotspot       : "
          f"{kelvin_to_celsius(network.max_chip_temperature):.1f} C")
    print("   the gap above the bound is constriction + hotspot "
          "concentration — what the grid model exists to capture")

    print("\n2. Dominant thermal time constants")
    analysis = extract_time_constants(model, omega=omega, modes=5)
    taus = ", ".join(f"{tau:.2f} s" for tau in
                     analysis.time_constants)
    print(f"   slowest modes: {taus}")
    window = boost_window_recommendation(analysis)
    print(f"   recommended transient-boost window: {window:.1f} s "
          "(the paper's reference [8] uses ~1 s — same regime)")

    print("\n3. SPICE netlist of the dual circuit")
    netlist = export_spice_netlist(model, omega, 0.0, power_map)
    lines = netlist.splitlines()
    resistors = sum(1 for l in lines if l.startswith("R"))
    sources = sum(1 for l in lines if l.startswith("I"))
    print(f"   {len(lines)} lines: {resistors} resistors, "
          f"{sources} current sources, 1 ambient source")
    print("   first elements:")
    for line in lines[:6]:
        print(f"     {line}")

    print("\n4. theta_JA budget (per-layer share of the vertical path)")
    resistances = layer_vertical_resistances(stack)
    chip_up = {name: r for name, r in resistances.items()
               if name not in ("pcb",)}
    total_r = sum(chip_up.values())
    for name, r in sorted(chip_up.items(), key=lambda kv: -kv[1]):
        print(f"   {name:<10} {r * 1e3:7.2f} mK/W "
              f"({r / total_r * 100:4.1f}% of the conduction stack)")
    print(format_stack_profile(profile, stack))


if __name__ == "__main__":
    main()
