#!/usr/bin/env python3
"""Design-space exploration: the Figure 6(a)/(b) objective surfaces.

Sweeps the whole (fan speed, TEC current) plane for the Basicmath
benchmark and renders both objective surfaces as text heat maps: the
maximum die temperature (whose low-omega region is thermal runaway) and
the total cooling-related power.  Also traces the runaway boundary — the
smallest fan speed with a bounded steady state at each current level —
illustrating the paper's point that TEC current alone cannot rescue the
chip.
"""

from repro import build_cooling_problem, mibench_profiles
from repro.analysis import format_surface, sweep_objective_surfaces
from repro.units import kelvin_to_celsius, rad_s_to_rpm


def main():
    profile = mibench_profiles()["basicmath"]
    problem = build_cooling_problem(profile, grid_resolution=12)

    print("Sweeping the (omega, I_TEC) plane for Basicmath ...")
    sweep = sweep_objective_surfaces(problem, omega_points=14,
                                     current_points=11)

    print()
    print(format_surface(sweep, "temperature", max_cols=11))
    print()
    print(format_surface(sweep, "power", max_cols=11))

    omega_t, current_t, t_best = sweep.min_temperature_point()
    print(f"\nCoolest sampled point (Optimization 2's target): "
          f"{kelvin_to_celsius(t_best):.1f} C at "
          f"{rad_s_to_rpm(omega_t):.0f} RPM, {current_t:.2f} A")

    omega_p, current_p, p_best = sweep.min_power_point()
    print(f"Cheapest feasible point (Optimization 1's target): "
          f"{p_best:.2f} W at {rad_s_to_rpm(omega_p):.0f} RPM, "
          f"{current_p:.2f} A")

    print("\nRunaway boundary (minimum omega with a bounded steady "
          "state, per current):")
    boundary = sweep.runaway_boundary_omega()
    for current, omega in zip(sweep.currents, boundary):
        marker = "-" if omega != omega else f"{rad_s_to_rpm(omega):6.0f} RPM"
        print(f"  I_TEC = {current:4.2f} A  ->  omega >= {marker}")
    print("\nNote how raising I_TEC never lowers the required fan "
          "speed to zero: the pumped heat (plus Joule heat) still has "
          "to leave through the sink — the paper's core motivation for "
          "joint control.")


if __name__ == "__main__":
    main()
