#!/usr/bin/env python3
"""One command to reproduce the paper.

Runs the complete evaluation — Figure 6(a)/(b) surfaces, the
Figures 6(c)-(f) campaign, Table 2, the TEC-only runaway check — then
verifies every published shape programmatically and prints a PASS/FAIL
report.  Optionally writes the campaign JSON for archiving.

Usage::

    python examples/reproduce_paper.py [resolution] [output.json]
"""

import sys

from repro import build_cooling_problem, mibench_profiles
from repro.analysis import (
    format_comparison_table,
    format_shape_checks,
    format_surface,
    format_table2,
    render_delta_map,
    run_campaign,
    sweep_objective_surfaces,
    verify_paper_shapes,
)
from repro.core import Evaluator
from repro.io import save_campaign


def main():
    resolution = int(sys.argv[1]) if len(sys.argv) > 1 else 12
    json_path = sys.argv[2] if len(sys.argv) > 2 else None
    profiles = mibench_profiles()

    print(f"=== OFTEC reproduction at {resolution}x{resolution} "
          "grid resolution ===\n")
    tec_problem = build_cooling_problem(profiles["basicmath"],
                                        grid_resolution=resolution)
    baseline_problem = build_cooling_problem(
        profiles["basicmath"], with_tec=False,
        grid_resolution=resolution)

    print("--- Figure 6(a)/(b): objective surfaces (Basicmath) ---")
    sweep = sweep_objective_surfaces(tec_problem, omega_points=10,
                                     current_points=7)
    print(format_surface(sweep, "temperature", max_cols=7))
    print()
    print(format_surface(sweep, "power", max_cols=7))

    print("\n--- What the TECs do to the die (delta map, I: 0 -> 1.5 A "
          "at mid fan) ---")
    evaluator = Evaluator(tec_problem)
    off = evaluator.evaluate(262.0, 0.0)
    on = evaluator.evaluate(262.0, 1.5)
    print(render_delta_map(off.steady.chip_temperatures,
                           on.steady.chip_temperatures,
                           tec_problem.model.grid))

    print("\n--- Figures 6(c)-(f) + Table 2: the full campaign ---")
    campaign = run_campaign(profiles, tec_problem, baseline_problem,
                            include_tec_only=True)
    print(format_comparison_table(campaign, "opt2"))
    print()
    print(format_comparison_table(campaign, "opt1"))
    print()
    print(format_table2(campaign))

    print("\n--- Section 6.2: TEC-only runaway check ---")
    for comparison in campaign.comparisons:
        status = "thermal runaway" if comparison.tec_only.runaway \
            else "BOUNDED (unexpected)"
        print(f"  {comparison.name:<14} {status}")

    print("\n--- Verification against the published shapes ---")
    checks = verify_paper_shapes(campaign)
    print(format_shape_checks(checks))

    if json_path:
        save_campaign(campaign, json_path)
        print(f"\ncampaign archived to {json_path}")

    failed = [c for c in checks if not c.passed]
    if failed:
        print(f"\nREPRODUCTION INCOMPLETE: {len(failed)} shape(s) "
              "failed")
        return 1
    print("\nREPRODUCTION COMPLETE: every published shape holds.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
