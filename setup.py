"""Setup shim for environments whose setuptools predates PEP 660 editable
installs (the pyproject.toml carries the real metadata)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.2.0",
    description=(
        "OFTEC: power-aware deployment and control of forced-convection "
        "and thermoelectric coolers (DAC 2014 reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy>=1.21", "scipy>=1.7"],
    entry_points={"console_scripts": ["repro = repro.cli:main"]},
)
