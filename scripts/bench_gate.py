#!/usr/bin/env python
"""Continuous perf-regression gate over the ``BENCH_*.json`` artifacts.

Two layers of checking, both machine-independent:

* **Invariants** — structural performance claims that must hold on any
  host: the operator layer actually reuses factorizations (BENCH_3),
  telemetry overhead stays inside its budget (BENCH_4), the parallel
  campaign is bit-reproducible (BENCH_5), supervision overhead is
  bounded (BENCH_6), and adjoint gradients beat finite differences on
  solve count (BENCH_7).  Wall-clock rates and speedups that depend on
  core count are deliberately not gated.

* **Drift** (optional, ``--baseline DIR``) — compares the freshly
  emitted artifacts against the committed baselines and reports
  relative movement of the machine-independent ratios.  Drift is a
  warning by default because even ratio metrics have run-to-run noise;
  ``--strict-drift`` promotes it to a failure for perf-focused CI
  lanes.

Usage::

    python scripts/bench_gate.py                    # gate ./BENCH_*.json
    python scripts/bench_gate.py --dir /tmp/bench   # gate elsewhere
    python scripts/bench_gate.py --baseline .ci/baseline --strict-drift

Exit status: 0 all gates pass, 1 any invariant failed (or drift under
``--strict-drift``), 5 bad invocation.  Missing artifacts are skipped
with a notice unless ``--require-all`` is given — benches emit their
files independently, and the gate should be usable after running any
subset.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
from typing import Callable, Dict, List, Optional, Tuple

#: Budget (percent) for telemetry overheads — mirrors the assertions in
#: benchmarks/bench_obs_overhead.py.
OBS_OVERHEAD_BUDGET_PCT = 5.0

#: Budget (percent) for supervised-executor overhead over the plain
#: pool (benchmarks/bench_supervisor.py measures at matching workers).
SUPERVISION_BUDGET_PCT = 10.0

#: The operator layer must make repeated solves at least this many
#: times faster than cold solve-per-call (BENCH_3's claim is ~40x; 3x
#: catches a broken factor cache without flaking on slow hosts).
REPEATED_SOLVE_MIN_SPEEDUP = 3.0

#: A campaign that refactorizes more than this often per solve has
#: lost operator reuse (healthy value is <1: solves >> factorizations).
MAX_FACTORIZATIONS_PER_SOLVE = 1.5

#: Adjoint gradients must cut thermal solves at least this much vs
#: finite differences (BENCH_7's claim is ~10x).
MIN_SOLVE_REDUCTION = 2.0

#: Warm-pool second campaign must serve at least this fraction of its
#: factor lookups from worker-side caches (machine-independent).
WARM_POOL_HIT_RATE_MIN = 0.9

#: Threaded back-substitution bar at 2 threads, gated on the
#: artifact's recorded core count.
THREAD_SOLVE_MIN_SPEEDUP = 1.7

#: Relative drift beyond this fraction of the baseline value is
#: reported (ratio metrics only; 50% keeps noise quiet).
DRIFT_TOLERANCE = 0.5

_DIGEST_RE = re.compile(r"^[0-9a-f]{64}$")


class Gate:
    """Accumulates pass/fail/skip lines for one run."""

    def __init__(self) -> None:
        self.failures: List[str] = []
        self.passes: List[str] = []
        self.skips: List[str] = []
        self.warnings: List[str] = []

    def check(self, label: str, ok: bool, detail: str) -> None:
        if ok:
            self.passes.append(f"PASS  {label}: {detail}")
        else:
            self.failures.append(f"FAIL  {label}: {detail}")

    def skip(self, label: str, reason: str) -> None:
        self.skips.append(f"SKIP  {label}: {reason}")

    def warn(self, label: str, detail: str) -> None:
        self.warnings.append(f"DRIFT {label}: {detail}")


def _load(directory: str, filename: str) -> Optional[dict]:
    path = os.path.join(directory, filename)
    if not os.path.exists(path):
        return None
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def _dig(document: dict, dotted: str):
    """``_dig(doc, "a.b.c")`` -> doc["a"]["b"]["c"] or None."""
    node = document
    for key in dotted.split("."):
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return node


def gate_bench3(gate: Gate, doc: dict) -> None:
    speedup = _dig(doc, "repeated_solve.speedup")
    gate.check(
        "BENCH_3 repeated-solve speedup",
        speedup is not None and speedup >= REPEATED_SOLVE_MIN_SPEEDUP,
        f"{speedup} >= {REPEATED_SOLVE_MIN_SPEEDUP} "
        "(factor cache must make warm solves cheap)")
    per_solve = _dig(doc, "table2_campaign.factorizations_per_solve")
    gate.check(
        "BENCH_3 factorizations per solve",
        per_solve is not None
        and per_solve <= MAX_FACTORIZATIONS_PER_SOLVE,
        f"{per_solve} <= {MAX_FACTORIZATIONS_PER_SOLVE} "
        "(campaign must reuse factorizations)")


def gate_bench4(gate: Gate, doc: dict) -> None:
    resolution = doc.get("grid_resolution") or 0
    oftec_pct = _dig(doc, "oftec.overhead_pct")
    gate.check(
        "BENCH_4 oftec telemetry overhead",
        oftec_pct is not None
        and oftec_pct < OBS_OVERHEAD_BUDGET_PCT,
        f"{oftec_pct}% < {OBS_OVERHEAD_BUDGET_PCT}%")
    solve_pct = _dig(doc, "warm_solve.overhead_pct")
    if resolution >= 8:
        gate.check(
            "BENCH_4 warm-solve telemetry overhead",
            solve_pct is not None
            and solve_pct < OBS_OVERHEAD_BUDGET_PCT,
            f"{solve_pct}% < {OBS_OVERHEAD_BUDGET_PCT}%")
    else:
        gate.skip("BENCH_4 warm-solve telemetry overhead",
                  f"budget binds at resolution >= 8, ran at "
                  f"{resolution}")
    stream_pct = _dig(doc, "streaming.overhead_pct")
    if stream_pct is None:
        gate.skip("BENCH_4 streaming overhead",
                  "no streaming block (pre-streaming artifact)")
    elif resolution >= 12:
        gate.check(
            "BENCH_4 streaming overhead",
            stream_pct < OBS_OVERHEAD_BUDGET_PCT,
            f"{stream_pct}% < {OBS_OVERHEAD_BUDGET_PCT}% "
            "(live sinks must ride the background flusher)")
    else:
        gate.skip("BENCH_4 streaming overhead",
                  f"budget binds at resolution >= 12, ran at "
                  f"{resolution}")


def gate_bench5(gate: Gate, doc: dict) -> None:
    digest = doc.get("canonical_digest")
    gate.check(
        "BENCH_5 canonical digest",
        isinstance(digest, str) and bool(_DIGEST_RE.match(digest)),
        f"{digest!r} is a sha256 hex digest "
        "(parallel campaign stayed bit-reproducible)")
    workers = _dig(doc, "parallel.workers_2.per_worker") or []
    units = sum(entry.get("units", 0) for entry in workers)
    # Stage-decomposed artifacts record the expected unit count
    # (benchmarks x stages); pre-decomposition ones ran one unit per
    # benchmark.
    expected = doc.get("expected_units", doc.get("benchmarks"))
    gate.check(
        "BENCH_5 unit accounting",
        bool(workers) and units == expected,
        f"per-worker units sum to {units}, campaign ran {expected} "
        "(every unit executed exactly once)")

    cores = _dig(doc, "machine.cpu_count") or 1
    if "constrained_host" in doc:
        gate.check(
            "BENCH_5 constrained-host flag",
            bool(doc["constrained_host"]) == (cores < 4),
            f"constrained_host={doc['constrained_host']} matches "
            f"recorded cpu_count={cores}")

    thread = doc.get("thread")
    if thread is None:
        gate.skip("BENCH_5 thread arm",
                  "no thread block (pre-thread-executor artifact)")
    else:
        gate.check(
            "BENCH_5 thread arm recorded",
            isinstance(_dig(thread, "warm_solve.speedup"),
                       (int, float)),
            "thread campaign + warm-solve microbench present "
            "(digest equality asserted by the bench itself)")
        solve_speedup = _dig(thread, "warm_solve.speedup")
        if cores >= 2 and isinstance(solve_speedup, (int, float)):
            gate.check(
                "BENCH_5 threaded warm-solve speedup",
                solve_speedup >= THREAD_SOLVE_MIN_SPEEDUP,
                f"{solve_speedup:.2f}x >= "
                f"{THREAD_SOLVE_MIN_SPEEDUP}x at 2 threads "
                "(GIL-releasing back-substitution must scale)")
        else:
            gate.skip("BENCH_5 threaded warm-solve speedup",
                      f"needs >= 2 cores, artifact ran on {cores}")

    warm_pool = doc.get("warm_pool")
    if warm_pool is None:
        gate.skip("BENCH_5 warm pool",
                  "no warm_pool block (pre-pool artifact)")
    else:
        hit_rate = warm_pool.get("hit_rate")
        gate.check(
            "BENCH_5 warm-pool factor hit rate",
            isinstance(hit_rate, (int, float))
            and hit_rate >= WARM_POOL_HIT_RATE_MIN,
            f"{hit_rate} >= {WARM_POOL_HIT_RATE_MIN} "
            "(second campaign must run out of worker caches)")
        installs = _dig(warm_pool, "pool_stats.context_installs")
        reuses = _dig(warm_pool, "pool_stats.context_reuses")
        gate.check(
            "BENCH_5 warm-pool context reuse",
            installs == 1 and isinstance(reuses, int) and reuses >= 1,
            f"context_installs={installs}, context_reuses={reuses} "
            "(one install, every later campaign reuses it)")

    if cores >= 4:
        speedup = _dig(doc, "parallel.workers_4.speedup")
        gate.check(
            "BENCH_5 4-worker speedup",
            isinstance(speedup, (int, float)) and speedup >= 2.0,
            f"{speedup} >= 2.0 on a {cores}-core host")
    else:
        gate.skip("BENCH_5 4-worker speedup",
                  f"needs >= 4 cores, artifact ran on {cores}")


def gate_bench6(gate: Gate, doc: dict) -> None:
    overhead = doc.get("overhead_pct")
    gate.check(
        "BENCH_6 supervision overhead",
        overhead is not None and overhead < SUPERVISION_BUDGET_PCT,
        f"{overhead}% < {SUPERVISION_BUDGET_PCT}% "
        "(heartbeats and deadlines must be near-free)")


def gate_bench7(gate: Gate, doc: dict) -> None:
    reduction = _dig(doc, "totals.solve_reduction")
    gate.check(
        "BENCH_7 adjoint solve reduction",
        reduction is not None and reduction >= MIN_SOLVE_REDUCTION,
        f"{reduction}x >= {MIN_SOLVE_REDUCTION}x "
        "(analytic gradients must beat finite differences)")


#: filename -> invariant checker.
GATES: Dict[str, Callable[[Gate, dict], None]] = {
    "BENCH_3.json": gate_bench3,
    "BENCH_4.json": gate_bench4,
    "BENCH_5.json": gate_bench5,
    "BENCH_6.json": gate_bench6,
    "BENCH_7.json": gate_bench7,
}

#: Machine-independent ratio metrics compared against the baseline:
#: (filename, dotted path, human label).
DRIFT_METRICS: Tuple[Tuple[str, str, str], ...] = (
    ("BENCH_3.json", "repeated_solve.speedup",
     "repeated-solve speedup"),
    ("BENCH_3.json", "table2_campaign.factorizations_per_solve",
     "factorizations per solve"),
    ("BENCH_4.json", "oftec.overhead_pct",
     "oftec telemetry overhead pct"),
    ("BENCH_4.json", "streaming.overhead_pct",
     "streaming overhead pct"),
    ("BENCH_7.json", "totals.solve_reduction",
     "adjoint solve reduction"),
)


def check_drift(gate: Gate, directory: str, baseline_dir: str) -> None:
    for filename, dotted, label in DRIFT_METRICS:
        current_doc = _load(directory, filename)
        baseline_doc = _load(baseline_dir, filename)
        if current_doc is None or baseline_doc is None:
            continue
        current = _dig(current_doc, dotted)
        baseline = _dig(baseline_doc, dotted)
        if not isinstance(current, (int, float)) \
                or not isinstance(baseline, (int, float)):
            continue
        scale = max(abs(baseline), 1.0)
        drift = (current - baseline) / scale
        if abs(drift) > DRIFT_TOLERANCE:
            gate.warn(f"{filename} {label}",
                      f"{baseline:.4g} -> {current:.4g} "
                      f"({drift:+.0%} vs tolerance "
                      f"{DRIFT_TOLERANCE:.0%})")


def run_gate(directory: str, baseline_dir: Optional[str],
             require_all: bool) -> Gate:
    gate = Gate()
    for filename, checker in sorted(GATES.items()):
        doc = _load(directory, filename)
        if doc is None:
            if require_all:
                gate.check(filename, False, "artifact missing")
            else:
                gate.skip(filename, "artifact not present")
            continue
        checker(gate, doc)
    if baseline_dir:
        check_drift(gate, directory, baseline_dir)
    return gate


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="gate the BENCH_*.json artifacts on "
                    "machine-independent performance invariants")
    parser.add_argument(
        "--dir", default=".", metavar="DIR",
        help="directory holding the BENCH_*.json artifacts "
             "(default: current directory)")
    parser.add_argument(
        "--baseline", default=None, metavar="DIR",
        help="directory with committed baseline artifacts to compare "
             "ratio metrics against (drift check)")
    parser.add_argument(
        "--strict-drift", action="store_true",
        help="treat drift beyond tolerance as a failure instead of a "
             "warning")
    parser.add_argument(
        "--require-all", action="store_true",
        help="fail when any BENCH_*.json artifact is missing")
    args = parser.parse_args(argv)

    if not os.path.isdir(args.dir):
        print(f"bench_gate: not a directory: {args.dir}",
              file=sys.stderr)
        return 5
    if args.baseline and not os.path.isdir(args.baseline):
        print(f"bench_gate: not a directory: {args.baseline}",
              file=sys.stderr)
        return 5

    gate = run_gate(args.dir, args.baseline, args.require_all)
    for line in (gate.passes + gate.skips + gate.warnings
                 + gate.failures):
        print(line)
    failed = bool(gate.failures) \
        or (args.strict_drift and bool(gate.warnings))
    verdict = "FAILED" if failed else "ok"
    print(f"bench_gate: {verdict} ({len(gate.passes)} passed, "
          f"{len(gate.failures)} failed, {len(gate.skips)} skipped, "
          f"{len(gate.warnings)} drift)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
