#!/usr/bin/env python
"""CI gate: SIGKILL a journaled campaign mid-run, resume, diff.

The crash-consistency contract of ``repro.exec.journal`` is that a
coordinator killed at an arbitrary instant — including mid-append —
loses nothing but the unit in flight: resuming from the journal
replays the completed units and produces canonical JSON bit-identical
to a run that was never interrupted.

This script proves it the hard way:

1. run the reference campaign serially (``--workers 0 --canonical``);
2. start the same campaign journaled at ``--workers 2``, wait until
   the journal holds at least one completed unit, and ``SIGKILL`` the
   coordinator (no atexit handlers, no flush, no goodbye);
3. resume from the journal (``--resume``) and byte-compare the
   resumed canonical JSON against the reference.

It doubles as the shared-memory crash gate: the killed coordinator
held an open publication scope, so its ``/dev/shm`` segments outlive
it — the resume run's publication sweep must reclaim them, and the
gate fails if any ``repro_shm_*`` segment survives to the end.

Exit code 0 on a byte-identical diff and a clean ``/dev/shm``,
1 otherwise.
"""

import argparse
import os
import signal
import subprocess
import sys
import tempfile
import time

from repro.exec import live_segment_files


def repro_cmd(*extra):
    return [sys.executable, "-m", "repro", "campaign", *extra]


def wait_for_journal(path, process, min_bytes, timeout_s):
    """Block until the journal exceeds ``min_bytes`` or the run ends.

    Returns True if the coordinator is still alive (there is something
    to kill), False if the campaign finished before the threshold.
    """
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if process.poll() is not None:
            return False
        if os.path.exists(path) and os.path.getsize(path) >= min_bytes:
            return True
        time.sleep(0.1)
    raise SystemExit(
        f"journal never reached {min_bytes} bytes within {timeout_s}s")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--resolution", type=int, default=4)
    parser.add_argument("--benchmarks", type=int, default=3)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--min-journal-bytes", type=int, default=200,
                        help="journal size proving >=1 completed unit")
    parser.add_argument("--settle-seconds", type=float, default=0.2,
                        help="extra runtime granted after the "
                             "threshold so the kill lands mid-campaign")
    parser.add_argument("--timeout", type=float, default=600.0)
    args = parser.parse_args()

    common = ["--resolution", str(args.resolution),
              "--benchmarks", str(args.benchmarks)]

    with tempfile.TemporaryDirectory(prefix="crash-resume-") as tmp:
        serial_json = os.path.join(tmp, "serial.json")
        resumed_json = os.path.join(tmp, "resumed.json")
        journal = os.path.join(tmp, "run.journal")

        print("[gate] reference: uninterrupted serial campaign")
        subprocess.run(repro_cmd(*common, "--workers", "0",
                                 "--json", serial_json, "--canonical"),
                       check=True, timeout=args.timeout)

        print(f"[gate] journaled campaign at --workers {args.workers}")
        victim = subprocess.Popen(
            repro_cmd(*common, "--workers", str(args.workers),
                      "--journal", journal),
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        try:
            alive = wait_for_journal(journal, victim,
                                     args.min_journal_bytes,
                                     args.timeout)
            if alive:
                time.sleep(args.settle_seconds)
                alive = victim.poll() is None
            if alive:
                size = os.path.getsize(journal)
                print(f"[gate] SIGKILL coordinator pid {victim.pid} "
                      f"(journal at {size} bytes)")
                os.kill(victim.pid, signal.SIGKILL)
            else:
                # The campaign beat us to the finish line (fast host,
                # tiny grid). Resume still must replay bit-identically.
                print("[gate] campaign finished before the kill; "
                      "resume degrades to a full journal replay")
            victim.wait(timeout=args.timeout)
        finally:
            if victim.poll() is None:
                victim.kill()
                victim.wait()

        leaked = live_segment_files(pids=[victim.pid])
        if leaked:
            print(f"[gate] killed coordinator left shm segments "
                  f"{leaked}; the resume run must sweep them")

        print("[gate] resume from the journal")
        subprocess.run(repro_cmd(*common, "--workers",
                                 str(args.workers),
                                 "--resume", journal,
                                 "--json", resumed_json,
                                 "--canonical"),
                       check=True, timeout=args.timeout)

        remaining = live_segment_files(pids=[victim.pid, os.getpid()])
        if remaining:
            print(f"[gate] FAIL: shm segments leaked past the resume "
                  f"run: {remaining}")
            return 1
        print("[gate] OK: no repro_shm_* segments left in /dev/shm")

        with open(serial_json, "rb") as handle:
            reference = handle.read()
        with open(resumed_json, "rb") as handle:
            resumed = handle.read()
        if reference != resumed:
            print("[gate] FAIL: resumed canonical JSON differs from "
                  "the uninterrupted serial run")
            return 1
        print(f"[gate] OK: resumed canonical JSON is byte-identical "
              f"({len(reference)} bytes)")
        return 0


if __name__ == "__main__":
    sys.exit(main())
