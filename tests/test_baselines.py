"""Baseline controllers: variable-omega, fixed-omega, TEC-only."""

import pytest

from repro import (
    run_fixed_fan_baseline,
    run_oftec,
    run_tec_only,
    run_variable_fan_baseline,
)
from repro.constants import OMEGA_FIXED_BASELINE
from repro.errors import ConfigurationError


class TestVariableFan:
    def test_feasible_on_light_workload(self, baseline_problem):
        result = run_variable_fan_baseline(baseline_problem)
        assert result.feasible
        assert result.current == 0.0
        assert result.controller == "variable-omega"

    def test_infeasible_on_heavy_workload(self, heavy_baseline_problem):
        # The paper's headline: the no-TEC baseline cannot cool the
        # heavy benchmarks even at full fan speed.
        result = run_variable_fan_baseline(heavy_baseline_problem)
        assert not result.feasible

    def test_rejects_tec_problem(self, tec_problem):
        with pytest.raises(ConfigurationError):
            run_variable_fan_baseline(tec_problem)

    def test_oftec_beats_baseline_power(self, tec_problem,
                                        baseline_problem):
        # Figure 6(f): on comparable benchmarks OFTEC consumes less.
        oftec = run_oftec(tec_problem)
        baseline = run_variable_fan_baseline(baseline_problem)
        assert oftec.feasible and baseline.feasible
        assert oftec.total_power < baseline.total_power

    def test_oftec_cooler_than_baseline(self, tec_problem,
                                        baseline_problem):
        # Figure 6(e): OFTEC also sits cooler at its cheaper point.
        oftec = run_oftec(tec_problem)
        baseline = run_variable_fan_baseline(baseline_problem)
        assert oftec.max_chip_temperature < \
            baseline.max_chip_temperature


class TestFixedFan:
    def test_pinned_speed(self, baseline_problem):
        result = run_fixed_fan_baseline(baseline_problem)
        assert result.omega == pytest.approx(OMEGA_FIXED_BASELINE)
        assert result.controller == "fixed-omega"

    def test_custom_speed(self, baseline_problem):
        result = run_fixed_fan_baseline(baseline_problem, omega=300.0)
        assert result.omega == pytest.approx(300.0)

    def test_infeasible_on_heavy_workload(self, heavy_baseline_problem):
        result = run_fixed_fan_baseline(heavy_baseline_problem)
        assert not result.feasible

    def test_more_power_than_variable(self, baseline_problem):
        # 2000 RPM is more fan than the light workloads need.
        fixed = run_fixed_fan_baseline(baseline_problem)
        variable = run_variable_fan_baseline(baseline_problem)
        assert fixed.total_power > variable.total_power

    def test_rejects_tec_problem(self, tec_problem):
        with pytest.raises(ConfigurationError):
            run_fixed_fan_baseline(tec_problem)


class TestTECOnly:
    def test_runaway_on_light_workload(self, tec_problem):
        # Section 6.2: without a fan, the TEC-only system cannot avoid
        # thermal runaway even on the lightest benchmark.
        result = run_tec_only(tec_problem)
        assert result.runaway
        assert not result.feasible
        assert result.omega == 0.0

    def test_runaway_on_heavy_workload(self, heavy_tec_problem):
        result = run_tec_only(heavy_tec_problem)
        assert result.runaway

    def test_rejects_baseline_problem(self, baseline_problem):
        with pytest.raises(ConfigurationError):
            run_tec_only(baseline_problem)

    def test_sample_count_validation(self, tec_problem):
        with pytest.raises(ConfigurationError):
            run_tec_only(tec_problem, current_samples=1)
