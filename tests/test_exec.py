"""The parallel execution engine: scheduler, workers, deterministic merge."""

import hashlib
import json
import pickle

import pytest

from repro import build_cooling_problem
from repro.analysis import run_campaign, sweep_objective_surfaces
from repro.analysis.heatmap import temperature_fields
from repro.core import Evaluator
from repro.errors import ConfigurationError, WorkerCrashError
from repro.exec import (
    WORKERS_ENV,
    WorkUnit,
    WorkerContext,
    default_chunk,
    evaluate_points,
    resolve_workers,
)
from repro.exec import scheduler as exec_scheduler
from repro.exec import workers as exec_workers
from repro.faults import full_fault_plan, run_chaos_campaign
from repro.io import campaign_to_dict
from repro.obs import telemetry_session
from repro.obs.export import span_to_dict


def canonical_digest(campaign):
    """sha256 of the timing-free canonical JSON of a campaign."""
    payload = campaign_to_dict(campaign, canonical=True)
    text = json.dumps(payload, indent=2, sort_keys=True)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


@pytest.fixture(scope="module")
def leakage_free_problem(profiles):
    problem = build_cooling_problem(profiles["basicmath"],
                                    grid_resolution=4)
    # Disabling leakage removes the relinearization loop, making
    # evaluations batchable — the precondition for the points fan-out.
    problem.leakage = None
    return problem


class TestResolveWorkers:
    def test_default_is_in_process(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert resolve_workers(None) == 0

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "3")
        assert resolve_workers(None) == 3

    def test_explicit_overrides_env(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "3")
        assert resolve_workers(0) == 0
        assert resolve_workers(2) == 2

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_workers(-1)

    def test_junk_env_rejected(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "many")
        with pytest.raises(ConfigurationError):
            resolve_workers(None)

    def test_inside_worker_always_serial(self, monkeypatch):
        """Workers inherit REPRO_WORKERS from the coordinator's env;
        honoring it there would nest pools, so resolution inside an
        installed worker context must always be 0."""
        monkeypatch.setenv(WORKERS_ENV, "3")
        previous = exec_workers.install_runtime(WorkerContext())
        try:
            assert exec_workers.in_worker()
            assert resolve_workers(None) == 0
            assert resolve_workers(4) == 0
        finally:
            exec_workers.restore_runtime(previous)
        assert not exec_workers.in_worker()
        assert resolve_workers(None) == 3


class TestWorkUnit:
    def test_kind_validated(self):
        with pytest.raises(ConfigurationError):
            WorkUnit(index=0, kind="nonsense", name="x")

    def test_index_validated(self):
        with pytest.raises(ConfigurationError):
            WorkUnit(index=-1, kind="benchmark", name="x")

    def test_default_chunk_positive(self):
        assert default_chunk(1, 4) == 1
        assert default_chunk(100, 4) >= 1
        assert default_chunk(100, 1) >= 1


class TestFaultPlanDerive:
    def test_deterministic(self):
        plan = full_fault_plan(seed=11, rate=0.05)
        assert plan.derive("basicmath").seed \
            == plan.derive("basicmath").seed
        assert plan.derive("basicmath").specs == plan.specs

    def test_label_and_seed_dependent(self):
        plan = full_fault_plan(seed=11, rate=0.05)
        other = full_fault_plan(seed=12, rate=0.05)
        assert plan.derive("a").seed != plan.derive("b").seed
        assert plan.derive("a").seed != other.derive("a").seed
        assert plan.derive("a").seed != plan.seed


class TestOperatorPickle:
    def test_factor_cache_dropped_and_clone_solves(self, tec_problem):
        evaluator = Evaluator(tec_problem)
        original = evaluator.evaluate(262.0, 1.0)
        clone = pickle.loads(pickle.dumps(tec_problem))
        stats = clone.model.network.operator.stats
        # The SuperLU factors and counters never cross the boundary.
        assert stats.solves == 0
        assert stats.factorizations == 0
        assert stats.cache_hits == 0
        result = Evaluator(clone).evaluate(262.0, 1.0)
        assert result.max_chip_temperature \
            == original.max_chip_temperature
        assert result.total_power == original.total_power


class TestPointsFanOut:
    POINTS = [(200.0, 0.5), (220.0, 1.0), (240.0, 1.5),
              (260.0, 2.0), (280.0, 2.5)]

    def test_evaluate_points_matches_in_process(
            self, leakage_free_problem):
        serial = Evaluator(leakage_free_problem).evaluate_many(
            self.POINTS)
        fanned = evaluate_points(leakage_free_problem,
                                 self.POINTS, 2, chunk=2)
        assert len(fanned) == len(serial)
        for ours, theirs in zip(fanned, serial):
            assert ours.max_chip_temperature \
                == theirs.max_chip_temperature
            assert ours.total_power == theirs.total_power
            assert ours.feasible == theirs.feasible

    def test_wired_through_evaluate_many(self, leakage_free_problem):
        local = Evaluator(leakage_free_problem)
        fanned = local.evaluate_many(self.POINTS, workers=2)
        serial = Evaluator(leakage_free_problem).evaluate_many(
            self.POINTS)
        for ours, theirs in zip(fanned, serial):
            assert ours.max_chip_temperature \
                == theirs.max_chip_temperature
        # The fan-out is pure: the local instance solved nothing.
        assert local.solve_count == 0

    def test_sweep_parity(self, leakage_free_problem):
        serial = sweep_objective_surfaces(
            leakage_free_problem, omega_points=4, current_points=3,
            workers=0)
        fanned = sweep_objective_surfaces(
            leakage_free_problem, omega_points=4, current_points=3,
            workers=2)
        assert (serial.temperature == fanned.temperature).all()
        assert (serial.power == fanned.power).all()
        assert (serial.feasible == fanned.feasible).all()

    def test_fields_parity(self, tec_problem):
        points = [(200.0, 0.0), (200.0, 1.0), (260.0, 1.0),
                  (260.0, 2.0)]
        serial = temperature_fields(
            tec_problem.model, points, tec_problem.dynamic_cell_power,
            leakage=None, workers=0)
        fanned = temperature_fields(
            tec_problem.model, points, tec_problem.dynamic_cell_power,
            leakage=None, workers=2)
        assert len(serial) == len(fanned)
        for ours, theirs in zip(fanned, serial):
            assert (ours == theirs).all()


class TestPoolFallback:
    def test_falls_back_to_in_process(self, monkeypatch,
                                      leakage_free_problem):
        def broken_pool(payload, units, max_workers,
                        progress=None):
            raise OSError("no pool for you")

        monkeypatch.setattr(exec_scheduler, "_run_pool", broken_pool)
        points = [(200.0, 0.5), (240.0, 1.5), (280.0, 2.5)]
        fanned = evaluate_points(leakage_free_problem, points, 2,
                                 chunk=1)
        serial = Evaluator(leakage_free_problem).evaluate_many(points)
        for ours, theirs in zip(fanned, serial):
            assert ours.max_chip_temperature \
                == theirs.max_chip_temperature

    def test_unpicklable_context_falls_back(self, monkeypatch,
                                            leakage_free_problem):
        """A context that cannot pickle must degrade to the serial
        executor (with the original object), not raise — env-driven
        fan-out engages on previously-working serial call sites."""
        def exploding_pool(payload, units, max_workers,
                           progress=None):
            raise AssertionError("pool must not start")

        monkeypatch.setattr(exec_scheduler, "_run_pool",
                            exploding_pool)
        context = WorkerContext(point_problem=leakage_free_problem,
                                policy=lambda: None)
        with pytest.raises(Exception):
            pickle.dumps(context)
        points = [(200.0, 0.5), (240.0, 1.5), (280.0, 2.5)]
        units = exec_scheduler._chunk_units(points, "points", 2)
        results = exec_scheduler.run_units(context, units, 2)
        fanned = [evaluation for result in results
                  for evaluation in result.value]
        serial = Evaluator(leakage_free_problem).evaluate_many(points)
        for ours, theirs in zip(fanned, serial):
            assert ours.max_chip_temperature \
                == theirs.max_chip_temperature


class TestNestedFanOut:
    """The worker-side guard: units that internally reach decomposed
    entry points must stay serial instead of re-entering the engine."""

    def test_serial_executor_is_reentrant(self, leakage_free_problem):
        """A nested run_units must restore the enclosing runtime, not
        wipe it to None."""
        outer = WorkerContext()
        previous = exec_workers.install_runtime(outer)
        try:
            context = WorkerContext(
                point_problem=leakage_free_problem)
            units = exec_scheduler._chunk_units(
                [(200.0, 0.5), (240.0, 1.5)], "points", 1)
            results = exec_scheduler.run_units(context, units, 1)
            assert all(result.ok for result in results)
            assert exec_workers._RUNTIME is not None
            assert exec_workers._RUNTIME.context is outer
        finally:
            exec_workers.restore_runtime(previous)

    def test_env_workers_sweep_parity(self, monkeypatch,
                                      leakage_free_problem):
        """REPRO_WORKERS=1 + sweep: the worker-side evaluate_many used
        to re-enter the engine and clobber the runtime (deterministic
        SolverError); it must stay serial and match workers=0."""
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        serial = sweep_objective_surfaces(
            leakage_free_problem, omega_points=4, current_points=3,
            workers=0)
        monkeypatch.setenv(WORKERS_ENV, "1")
        fanned = sweep_objective_surfaces(
            leakage_free_problem, omega_points=4, current_points=3)
        assert (serial.temperature == fanned.temperature).all()
        assert (serial.power == fanned.power).all()
        assert (serial.feasible == fanned.feasible).all()


class TestTelemetryMerge:
    def test_adopt_records_reparents_and_shifts(self):
        with telemetry_session() as (tracer, _metrics):
            parent = tracer.start_span("benchmark", "basicmath")
            child = tracer.start_span("stage", "oftec")
            tracer.event("fault.injected", kind="demo")
            tracer.end_span(child)
            tracer.end_span(parent)
            # finished is in finish order: children before parents —
            # the exact shape adopt_records must remap correctly.
            records = [span_to_dict(s) for s in tracer.finished]

        with telemetry_session() as (tracer, _metrics):
            host = tracer.start_span("unit", "basicmath")
            tracer.end_span(host)
            adopted = tracer.adopt_records(records, parent=host,
                                           time_offset=100.0)
            assert adopted == 2
            spans = {s.kind: s for s in tracer.finished}
            assert spans["stage"].parent_id \
                == spans["benchmark"].span_id
            assert spans["benchmark"].parent_id == host.span_id
            assert spans["stage"].events[0].name == "fault.injected"
            assert spans["benchmark"].start_s >= 100.0

    def test_merge_snapshot_accumulates(self):
        with telemetry_session() as (_tracer, metrics):
            metrics.counter("exec.test.count").inc(2)
            metrics.gauge("exec.test.gauge").set(5.0)
            histogram = metrics.histogram("exec.test.hist", (1.0, 2.0))
            histogram.observe(0.5)
            metrics.merge_snapshot(metrics.snapshot())
            merged = metrics.snapshot()
            assert merged["counters"]["exec.test.count"] == 4
            assert merged["gauges"]["exec.test.gauge"] == 5.0
            assert merged["histograms"]["exec.test.hist"]["count"] == 2

    def test_merge_snapshot_bound_mismatch_rejected(self):
        with telemetry_session() as (_tracer, metrics):
            metrics.histogram("exec.test.hist", (1.0, 2.0))
            foreign = {"histograms": {"exec.test.hist": {
                "buckets": [(5.0, 1)], "overflow": 0,
                "count": 1, "sum": 0.1, "min": 0.1, "max": 0.1}}}
            with pytest.raises(ConfigurationError):
                metrics.merge_snapshot(foreign)


@pytest.fixture(scope="module")
def identity_problems(profiles):
    tec = build_cooling_problem(profiles["basicmath"],
                                grid_resolution=6)
    base = build_cooling_problem(profiles["basicmath"], with_tec=False,
                                 grid_resolution=6)
    return tec, base


class TestCampaignBitIdentity:
    def test_all_benchmarks_digest_equality(self, profiles,
                                            identity_problems):
        """The headline contract: `--workers N` output is bit-identical
        to serial over the full eight-benchmark campaign."""
        tec, base = identity_problems
        serial = run_campaign(profiles, tec, base,
                              include_tec_only=True, workers=0)
        parallel = run_campaign(profiles, tec, base,
                                include_tec_only=True, workers=2)
        assert canonical_digest(parallel) == canonical_digest(serial)
        per_worker = parallel.worker_stats["per_worker"]
        assert per_worker
        # A genuine pool ran: distinct worker pids with live caches.
        assert len({row["pid"] for row in per_worker}) == 2
        for row in per_worker:
            assert row["solves"] > 0
            assert row["factorizations"] > 0

    def test_in_process_executor_digest(self, profiles,
                                        identity_problems):
        tec, base = identity_problems
        subset = {name: profiles[name]
                  for name in ("basicmath", "crc32")}
        serial = run_campaign(subset, tec, base, workers=0)
        staged = run_campaign(subset, tec, base, workers=1)
        assert canonical_digest(staged) == canonical_digest(serial)

    def test_env_workers_campaign_digest(self, monkeypatch, profiles,
                                         identity_problems):
        """The env-driven path the CLI gate misses: workers resolved
        from REPRO_WORKERS, which pool workers then inherit — their
        in-worker guard must keep unit bodies serial."""
        tec, base = identity_problems
        subset = {name: profiles[name]
                  for name in ("basicmath", "crc32")}
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        serial = run_campaign(subset, tec, base, workers=0)
        monkeypatch.setenv(WORKERS_ENV, "2")
        enved = run_campaign(subset, tec, base)
        assert canonical_digest(enved) == canonical_digest(serial)

    def test_unhandled_lists_every_entry(self, monkeypatch, profiles,
                                         identity_problems):
        tec, base = identity_problems
        subset = {"basicmath": profiles["basicmath"]}

        def fake_units(*args, **kwargs):
            from repro.exec import CampaignMerge
            return CampaignMerge(
                unhandled=["ValueError: first", "KeyError: second"])

        import repro.exec
        monkeypatch.setattr(repro.exec, "run_campaign_units",
                            fake_units)
        with pytest.raises(WorkerCrashError) as excinfo:
            run_campaign(subset, tec, base, workers=2)
        message = str(excinfo.value)
        assert "2 unhandled" in message
        assert "ValueError: first" in message
        assert "KeyError: second" in message
        assert excinfo.value.reports == ("ValueError: first",
                                         "KeyError: second")

    def test_workers_exclusive_with_factory(self, profiles,
                                            identity_problems):
        tec, base = identity_problems
        subset = {"basicmath": profiles["basicmath"]}
        with pytest.raises(ConfigurationError):
            run_campaign(subset, tec, base, workers=2,
                         evaluator_factory=Evaluator)


class TestChaosUnderParallelism:
    def test_fault_events_land_on_worker_spans(self, profiles):
        tec = build_cooling_problem(profiles["basicmath"],
                                    grid_resolution=4)
        base = build_cooling_problem(profiles["basicmath"],
                                     with_tec=False, grid_resolution=4)
        subset = {name: profiles[name]
                  for name in ("basicmath", "bitcount")}
        plan = full_fault_plan(seed=11, rate=0.05)
        with telemetry_session() as (tracer, metrics):
            report = run_chaos_campaign(subset, tec, base, plan=plan,
                                        workers=2)
            spans = list(tracer.finished)
            snapshot = metrics.snapshot()
        assert report.ok, report.unhandled
        assert sum(report.fired.values()) > 0
        # Worker metrics merged home.
        assert any(name.startswith("faults.injected")
                   for name in snapshot["counters"])
        by_id = {span.span_id: span for span in spans}
        fault_spans = [
            span for span in spans
            if any(event.name == "fault.injected"
                   for event in span.events)]
        assert fault_spans
        for span in fault_spans:
            benchmark = None
            unit = None
            cursor = span
            while cursor is not None:
                if cursor.kind == "benchmark" and benchmark is None:
                    benchmark = cursor.name
                if cursor.kind == "unit":
                    unit = cursor.name
                cursor = by_id.get(cursor.parent_id)
            # Every injected fault re-parents under the unit span of
            # the benchmark it actually hit.
            assert unit is not None
            assert benchmark == unit
            assert unit in subset


class TestChunking:
    """Balanced slicing: no runt chunks, exact multiples untouched."""

    def test_remainder_spread_not_stranded(self):
        from repro.exec import chunk_sizes
        # The motivating case: 17 points at chunk 8 used to schedule
        # [8, 8, 1] and leave two workers idle behind the runt.
        assert chunk_sizes(17, 8) == [6, 6, 5]
        assert chunk_sizes(17, 2) == [2] * 8 + [1]

    def test_exact_multiples_untouched(self):
        from repro.exec import chunk_sizes
        assert chunk_sizes(16, 8) == [8, 8]
        assert chunk_sizes(9, 3) == [3, 3, 3]

    def test_conservation_and_balance(self):
        from repro.exec import chunk_sizes
        for count in (1, 5, 17, 25, 100, 101):
            for chunk in (1, 2, 7, 8, 64):
                sizes = chunk_sizes(count, chunk)
                assert sum(sizes) == count
                assert max(sizes) - min(sizes) <= 1
                assert len(sizes) == -(-count // chunk)

    def test_empty_and_invalid(self):
        from repro.exec import chunk_sizes
        assert chunk_sizes(0, 8) == []
        assert chunk_sizes(-3, 8) == []
        with pytest.raises(ConfigurationError):
            chunk_sizes(5, 0)

    def test_default_chunk_balances_17_by_3(self):
        from repro.exec import chunk_sizes
        # 17 points on 3 workers: every unit within one point of its
        # neighbors, and more units than workers so the deque
        # scheduler can rebalance.
        chunk = default_chunk(17, 3)
        sizes = chunk_sizes(17, chunk)
        assert max(sizes) - min(sizes) <= 1
        assert len(sizes) >= 3


class TestResolveExecutor:
    def test_default_is_process(self, monkeypatch):
        from repro.exec import EXECUTOR_ENV, resolve_executor
        monkeypatch.delenv(EXECUTOR_ENV, raising=False)
        assert resolve_executor() == "process"

    def test_env_fallback(self, monkeypatch):
        from repro.exec import EXECUTOR_ENV, resolve_executor
        monkeypatch.setenv(EXECUTOR_ENV, "thread")
        assert resolve_executor() == "thread"

    def test_argument_overrides_env(self, monkeypatch):
        from repro.exec import EXECUTOR_ENV, resolve_executor
        monkeypatch.setenv(EXECUTOR_ENV, "thread")
        assert resolve_executor("serial") == "serial"

    def test_normalized(self, monkeypatch):
        from repro.exec import EXECUTOR_ENV, resolve_executor
        monkeypatch.delenv(EXECUTOR_ENV, raising=False)
        assert resolve_executor(" Thread ") == "thread"

    def test_junk_rejected(self, monkeypatch):
        from repro.exec import EXECUTOR_ENV, resolve_executor
        with pytest.raises(ConfigurationError):
            resolve_executor("gevent")
        monkeypatch.setenv(EXECUTOR_ENV, "fibers")
        with pytest.raises(ConfigurationError):
            resolve_executor()


class TestThreadExecutor:
    def test_campaign_digest_equality(self, profiles,
                                      identity_problems):
        """executor='thread' shares one in-process operator cache and
        still merges bit-identically to the serial loop."""
        tec, base = identity_problems
        subset = {name: profiles[name]
                  for name in ("basicmath", "crc32")}
        serial = run_campaign(subset, tec, base, workers=0)
        threaded = run_campaign(subset, tec, base, workers=2,
                                executor="thread")
        assert canonical_digest(threaded) == canonical_digest(serial)
        # No process boundary: every unit ran in the coordinator.
        import os
        for row in threaded.worker_stats["per_worker"]:
            assert row["pid"] == os.getpid()

    def test_env_selected_thread_backend(self, monkeypatch, profiles,
                                         identity_problems):
        from repro.exec import EXECUTOR_ENV
        tec, base = identity_problems
        subset = {"basicmath": profiles["basicmath"],
                  "fft": profiles["fft"]}
        serial = run_campaign(subset, tec, base, workers=0)
        monkeypatch.setenv(EXECUTOR_ENV, "thread")
        threaded = run_campaign(subset, tec, base, workers=2)
        assert canonical_digest(threaded) == canonical_digest(serial)


class TestStageMerge:
    """Reassembling stage units must mirror the serial pipeline."""

    @staticmethod
    def _merge(results, benchmarks):
        from repro.analysis.campaign import CAMPAIGN_STAGES
        from repro.exec import CampaignMerge
        from repro.exec.scheduler import _merge_stage_results
        from repro.exec.units import UnitResult
        merge = CampaignMerge()
        _merge_stage_results(merge, results, benchmarks,
                             list(CAMPAIGN_STAGES))
        return merge

    def test_error_stops_later_stages(self):
        from repro.analysis.campaign import CAMPAIGN_STAGES
        from repro.exec.units import UnitResult
        results = [
            UnitResult(index=index, name=f"bench/{stage}", value=None)
            for index, stage in enumerate(CAMPAIGN_STAGES)]
        results[1].error = ("oftec-opt2", "SolverError", "diverged")
        # In the serial loop stages after the failure never ran, so
        # their values — even real-looking ones — must be dropped.
        results[3].value = object()
        merge = self._merge(results, ["bench"])
        assert merge.comparisons == []
        assert merge.errors == [
            ("bench", "oftec-opt2", "SolverError", "diverged")]

    def test_unhandled_crash_labels_stage_unit(self):
        from repro.analysis.campaign import CAMPAIGN_STAGES
        from repro.exec.units import UnitResult
        results = [
            UnitResult(index=index, name=f"bench/{stage}")
            for index, stage in enumerate(CAMPAIGN_STAGES)]
        results[2].unhandled = ["RuntimeError: boom"]
        merge = self._merge(results, ["bench"])
        assert merge.comparisons == []
        assert merge.crashed == [
            ("bench/variable-opt1", 1, "RuntimeError: boom")]

    def test_lost_unit_is_terminal(self):
        from repro.analysis.campaign import CAMPAIGN_STAGES
        from repro.exec.units import UnitResult
        results = [
            UnitResult(index=index, name=f"bench/{stage}", value=42)
            for index, stage in enumerate(CAMPAIGN_STAGES)]
        del results[4]  # fixed-omega never came home
        merge = self._merge(results, ["bench"])
        assert merge.comparisons == []
        assert merge.errors == []
