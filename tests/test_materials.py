"""Materials, layers, and the package stack."""

import pytest

from repro.errors import ConfigurationError, MaterialError
from repro.materials import (
    COPPER,
    Layer,
    LayerRole,
    Material,
    PackageStack,
    SILICON,
    THERMAL_PASTE,
    baseline_package_stack,
    default_package_stack,
    table1_layers,
)
from repro.materials.stack import (
    CHIP_SIZE,
    TEC_LAYER_CONDUCTIVITY,
    effective_series_conductivity,
)


class TestMaterial:
    def test_table1_conductivities(self):
        assert SILICON.conductivity == pytest.approx(100.0)
        assert THERMAL_PASTE.conductivity == pytest.approx(1.75)
        assert COPPER.conductivity == pytest.approx(400.0)

    def test_invalid_conductivity(self):
        with pytest.raises(MaterialError):
            Material("bad", 0.0, 1e6)

    def test_invalid_heat_capacity(self):
        with pytest.raises(MaterialError):
            Material("bad", 1.0, -1.0)

    def test_with_conductivity(self):
        boosted = THERMAL_PASTE.with_conductivity(3.0)
        assert boosted.conductivity == 3.0
        assert boosted.volumetric_heat_capacity == \
            THERMAL_PASTE.volumetric_heat_capacity


class TestLayer:
    def test_vertical_conductance(self):
        layer = Layer("slab", LayerRole.CONDUCT, THERMAL_PASTE,
                      20e-6, 0.01, 0.01)
        # g = k * A / t
        expected = 1.75 * 1e-4 / 20e-6
        assert layer.vertical_conductance(1e-4) == pytest.approx(expected)

    def test_footprint_area(self):
        layer = Layer("slab", LayerRole.CONDUCT, COPPER, 1e-3, 0.03, 0.03)
        assert layer.footprint_area == pytest.approx(9e-4)

    def test_invalid_thickness(self):
        with pytest.raises(MaterialError):
            Layer("bad", LayerRole.CONDUCT, COPPER, 0.0, 0.01, 0.01)

    def test_with_material(self):
        layer = Layer("slab", LayerRole.CONDUCT, COPPER, 1e-3, 0.01, 0.01)
        assert layer.with_material(SILICON).material is SILICON


class TestDefaultStack:
    def test_layer_order(self):
        names = [layer.name for layer in default_package_stack()]
        assert names == ["pcb", "chip", "tim1", "tec", "spreader",
                         "tim2", "heatsink"]

    def test_table1_dimensions(self):
        stack = default_package_stack()
        assert stack["chip"].width == pytest.approx(15.9e-3)
        assert stack["chip"].thickness == pytest.approx(15e-6)
        assert stack["tim1"].thickness == pytest.approx(20e-6)
        assert stack["spreader"].width == pytest.approx(30e-3)
        assert stack["spreader"].thickness == pytest.approx(1e-3)
        assert stack["heatsink"].width == pytest.approx(60e-3)
        assert stack["heatsink"].thickness == pytest.approx(7e-3)

    def test_table1_data_matches_stack(self):
        table = table1_layers()
        stack = default_package_stack()
        for name, spec in table.items():
            layer = stack[name]
            assert layer.material.conductivity == \
                pytest.approx(spec["conductivity"])
            assert layer.thickness == pytest.approx(spec["thickness"])

    def test_roles(self):
        stack = default_package_stack()
        assert stack.chip_layer.name == "chip"
        assert stack.heatsink_layer.name == "heatsink"
        assert stack.has_tec
        assert stack.tec_layer.name == "tec"

    def test_tec_above_chip(self):
        stack = default_package_stack()
        assert stack.index_of("tec") > stack.index_of("chip")

    def test_tec_conducts_better_than_paste(self):
        # Section 6.1's premise for the fairness correction.
        assert TEC_LAYER_CONDUCTIVITY > THERMAL_PASTE.conductivity


class TestStackValidation:
    def test_requires_chip(self):
        with pytest.raises(ConfigurationError, match="chip"):
            PackageStack([
                Layer("sink", LayerRole.HEATSINK, COPPER, 1e-3,
                      CHIP_SIZE, CHIP_SIZE),
            ])

    def test_requires_topmost_heatsink(self):
        chip = Layer("chip", LayerRole.CHIP, SILICON, 15e-6,
                     CHIP_SIZE, CHIP_SIZE)
        sink = Layer("sink", LayerRole.HEATSINK, COPPER, 1e-3,
                     CHIP_SIZE, CHIP_SIZE)
        with pytest.raises(ConfigurationError, match="heat-sink"):
            PackageStack([sink, chip])

    def test_tec_below_chip_rejected(self):
        tec = Layer("tec", LayerRole.TEC, COPPER, 20e-6,
                    CHIP_SIZE, CHIP_SIZE)
        chip = Layer("chip", LayerRole.CHIP, SILICON, 15e-6,
                     CHIP_SIZE, CHIP_SIZE)
        sink = Layer("sink", LayerRole.HEATSINK, COPPER, 1e-3,
                     CHIP_SIZE, CHIP_SIZE)
        with pytest.raises(ConfigurationError, match="above the chip"):
            PackageStack([tec, chip, sink])

    def test_duplicate_names_rejected(self):
        chip = Layer("x", LayerRole.CHIP, SILICON, 15e-6,
                     CHIP_SIZE, CHIP_SIZE)
        sink = Layer("x", LayerRole.HEATSINK, COPPER, 1e-3,
                     CHIP_SIZE, CHIP_SIZE)
        with pytest.raises(ConfigurationError, match="Duplicate"):
            PackageStack([chip, sink])

    def test_replace_and_without(self):
        stack = default_package_stack()
        thinner = stack["tim1"]
        stack2 = stack.replace_layer(
            "tim1", Layer("tim1", LayerRole.CONDUCT, THERMAL_PASTE,
                          thinner.thickness / 2, thinner.width,
                          thinner.height))
        assert stack2["tim1"].thickness == pytest.approx(10e-6)
        assert not stack.without_layer("tec").has_tec

    def test_unknown_layer_lookup(self):
        with pytest.raises(ConfigurationError):
            default_package_stack()["nope"]


class TestBaselineStack:
    def test_no_tec(self):
        assert not baseline_package_stack().has_tec

    def test_tim1_merged_thickness(self):
        full = default_package_stack()
        base = baseline_package_stack()
        expected = full["tim1"].thickness + full["tec"].thickness
        assert base["tim1"].thickness == pytest.approx(expected)

    def test_tim1_effective_conductivity(self):
        full = default_package_stack()
        base = baseline_package_stack()
        k_eff = effective_series_conductivity([full["tim1"], full["tec"]])
        assert base["tim1"].material.conductivity == pytest.approx(k_eff)
        # The merged layer conducts better than plain paste but worse
        # than the TEC film alone.
        assert THERMAL_PASTE.conductivity < k_eff < TEC_LAYER_CONDUCTIVITY

    def test_fairness_same_total_resistance(self):
        # The merged slab has exactly the series resistance of TIM1+TEC.
        full = default_package_stack()
        base = baseline_package_stack()
        area = 1e-6
        r_full = (full["tim1"].thickness
                  / (full["tim1"].material.conductivity * area)
                  + full["tec"].thickness
                  / (full["tec"].material.conductivity * area))
        r_base = (base["tim1"].thickness
                  / (base["tim1"].material.conductivity * area))
        assert r_base == pytest.approx(r_full)


class TestSeriesConductivity:
    def test_single_layer_identity(self):
        layer = Layer("slab", LayerRole.CONDUCT, COPPER, 1e-3, 0.01, 0.01)
        assert effective_series_conductivity([layer]) == pytest.approx(
            COPPER.conductivity)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            effective_series_conductivity([])

    def test_dominated_by_worst_conductor(self):
        paste = Layer("paste", LayerRole.CONDUCT, THERMAL_PASTE, 20e-6,
                      0.01, 0.01)
        copper = Layer("cu", LayerRole.CONDUCT, COPPER, 20e-6, 0.01, 0.01)
        k_eff = effective_series_conductivity([paste, copper])
        assert THERMAL_PASTE.conductivity < k_eff \
            < 2 * THERMAL_PASTE.conductivity * 1.01
