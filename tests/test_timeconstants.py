"""Thermal time-constant extraction."""

import pytest

from repro.errors import ConfigurationError
from repro.thermal import (
    boost_window_recommendation,
    extract_time_constants,
    simulate_transient,
)


@pytest.fixture(scope="module")
def analysis(tec_model):
    return extract_time_constants(tec_model, omega=262.0, modes=6)


class TestExtraction:
    def test_sorted_slowest_first(self, analysis):
        taus = analysis.time_constants
        assert (taus[:-1] >= taus[1:]).all()
        assert analysis.slowest == taus[0]
        assert analysis.fastest_extracted == taus[-1]

    def test_all_positive(self, analysis):
        assert (analysis.time_constants > 0.0).all()

    def test_package_scale_constants(self, analysis):
        # The sink dominates: the slowest mode is seconds-scale; the
        # extracted spread covers at least one order of magnitude.
        assert 1.0 < analysis.slowest < 500.0
        assert analysis.slowest > 5.0 * analysis.fastest_extracted

    def test_faster_fan_speeds_settling(self, tec_model):
        slow_fan = extract_time_constants(tec_model, omega=50.0,
                                          modes=3)
        fast_fan = extract_time_constants(tec_model, omega=500.0,
                                          modes=3)
        # More convection = faster dominant decay.
        assert fast_fan.slowest < slow_fan.slowest

    def test_matches_transient_settling(self, tec_model,
                                        basicmath_power, leakage,
                                        analysis):
        # After ~3 dominant time constants the step response should be
        # within a few percent of settled.
        tau = analysis.slowest
        run = simulate_transient(
            tec_model, duration=5.0 * tau, dt=tau / 20.0, omega=262.0,
            current=0.0, dynamic_cell_power=basicmath_power,
            leakage=leakage)
        final = run.max_chip_temperature[-1]
        ambient = tec_model.config.ambient
        idx_3tau = int(3.0 * tau / (tau / 20.0))
        t_3tau = run.max_chip_temperature[idx_3tau]
        assert (t_3tau - ambient) > 0.9 * (final - ambient)

    def test_validation(self, tec_model):
        with pytest.raises(ConfigurationError):
            extract_time_constants(tec_model, omega=262.0, modes=0)
        with pytest.raises(ConfigurationError):
            extract_time_constants(
                tec_model, omega=262.0,
                modes=tec_model.network.node_count)


class TestBoostWindow:
    def test_window_between_extremes(self, analysis):
        window = boost_window_recommendation(analysis)
        assert analysis.fastest_extracted <= window <= analysis.slowest

    def test_paper_scale(self, analysis):
        # The paper's "+1 A for about 1 s" sits inside the window the
        # mode analysis would recommend (same order of magnitude).
        window = boost_window_recommendation(analysis)
        assert 0.1 < window < 100.0

    def test_validation(self, analysis):
        with pytest.raises(ConfigurationError):
            boost_window_recommendation(analysis, die_fraction=0.0)
