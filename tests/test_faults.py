"""Fault-injection framework: plans, injectors, chaos harness."""

import numpy as np
import pytest

from repro import build_cooling_problem
from repro.errors import (
    ConfigurationError,
    EvaluationBudgetError,
    SingularNetworkError,
    SolveTimeoutError,
)
from repro.faults import (
    EVALUATOR_FAULT_KINDS,
    PROCESS_FAULT_KINDS,
    INJECTED_CONDITION_ESTIMATE,
    INJECTED_DIVERGENCE_TEMPERATURE,
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultSpec,
    FaultyEvaluator,
    FaultyNetwork,
    format_chaos_report,
    full_fault_plan,
    run_chaos_campaign,
)
from repro.io import campaign_to_dict


def single_fault_plan(kind, rate=1.0, **kwargs):
    return FaultPlan(seed=0,
                     specs=(FaultSpec(kind=kind, rate=rate, **kwargs),))


class TestFaultPlan:
    def test_duplicate_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(specs=(FaultSpec(kind=FaultKind.NAN_POWER),
                             FaultSpec(kind=FaultKind.NAN_POWER)))

    def test_rate_validated(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(kind=FaultKind.NAN_POWER, rate=1.5)
        with pytest.raises(ConfigurationError):
            FaultSpec(kind=FaultKind.NAN_POWER, rate=-0.1)

    def test_kind_validated(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(kind="nan-power")

    def test_schedule_validated(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(kind=FaultKind.NAN_POWER, start_call=-1)
        with pytest.raises(ConfigurationError):
            FaultSpec(kind=FaultKind.NAN_POWER, max_fires=0)

    def test_full_plan_covers_every_evaluator_kind(self):
        plan = full_fault_plan(seed=3, rate=0.1)
        # Process-level kinds are deliberately excluded: they are
        # inert without supervision and must be named explicitly.
        assert set(plan.kinds) == set(EVALUATOR_FAULT_KINDS)
        for kind in EVALUATOR_FAULT_KINDS:
            spec = plan.spec_for(kind)
            assert spec is not None and spec.rate == 0.1
        for kind in PROCESS_FAULT_KINDS:
            assert plan.spec_for(kind) is None

    def test_spec_for_uncovered_kind(self):
        plan = single_fault_plan(FaultKind.NAN_POWER)
        assert plan.spec_for(FaultKind.SOLVE_TIMEOUT) is None


class TestFaultInjector:
    def test_same_plan_same_sequence(self):
        plan = full_fault_plan(seed=7, rate=0.3)
        first = FaultInjector(plan)
        second = FaultInjector(plan)
        draws_a = [first.should_fire(FaultKind.NAN_POWER)
                   for _ in range(60)]
        draws_b = [second.should_fire(FaultKind.NAN_POWER)
                   for _ in range(60)]
        assert draws_a == draws_b
        assert any(draws_a) and not all(draws_a)

    def test_kinds_draw_independent_streams(self):
        plan = full_fault_plan(seed=7, rate=0.3)
        injector = FaultInjector(plan)
        # Interleaving another kind's calls must not shift this one.
        reference = FaultInjector(plan)
        interleaved = []
        for _ in range(40):
            injector.should_fire(FaultKind.SOLVE_TIMEOUT)
            interleaved.append(injector.should_fire(FaultKind.NAN_POWER))
        plain = [reference.should_fire(FaultKind.NAN_POWER)
                 for _ in range(40)]
        assert interleaved == plain

    def test_uncovered_kind_never_fires(self):
        injector = FaultInjector(single_fault_plan(FaultKind.NAN_POWER))
        assert not any(injector.should_fire(FaultKind.SOLVE_TIMEOUT)
                       for _ in range(20))

    def test_start_call_immunity(self):
        plan = single_fault_plan(FaultKind.NAN_POWER, rate=1.0,
                                 start_call=10)
        injector = FaultInjector(plan)
        draws = [injector.should_fire(FaultKind.NAN_POWER)
                 for _ in range(15)]
        assert draws[:10] == [False] * 10
        assert all(draws[10:])

    def test_max_fires_cap(self):
        plan = single_fault_plan(FaultKind.NAN_POWER, rate=1.0,
                                 max_fires=3)
        injector = FaultInjector(plan)
        draws = [injector.should_fire(FaultKind.NAN_POWER)
                 for _ in range(10)]
        assert sum(draws) == 3
        assert injector.fired_counts()["nan-power"] == 3
        assert injector.call_counts()["nan-power"] == 10


class TestFaultyEvaluator:
    def test_solve_timeout_fault(self, tec_problem):
        injector = FaultInjector(
            single_fault_plan(FaultKind.SOLVE_TIMEOUT))
        faulty = FaultyEvaluator(tec_problem, injector)
        with pytest.raises(SolveTimeoutError, match="injected"):
            faulty.evaluate(200.0, 1.0)

    def test_singular_network_fault(self, tec_problem):
        injector = FaultInjector(
            single_fault_plan(FaultKind.SINGULAR_NETWORK))
        faulty = FaultyEvaluator(tec_problem, injector)
        with pytest.raises(SingularNetworkError) as excinfo:
            faulty.evaluate(200.0, 1.0)
        assert excinfo.value.condition_estimate \
            == INJECTED_CONDITION_ESTIMATE

    def test_iteration_exhaustion_fault(self, tec_problem):
        injector = FaultInjector(
            single_fault_plan(FaultKind.ITERATION_EXHAUSTION))
        faulty = FaultyEvaluator(tec_problem, injector)
        with pytest.raises(EvaluationBudgetError, match="injected"):
            faulty.evaluate(200.0, 1.0)

    def test_leakage_divergence_fault(self, tec_problem):
        injector = FaultInjector(
            single_fault_plan(FaultKind.LEAKAGE_DIVERGENCE))
        faulty = FaultyEvaluator(tec_problem, injector)
        evaluation = faulty.evaluate(200.0, 1.0)
        assert evaluation.runaway
        assert not evaluation.feasible
        assert evaluation.max_chip_temperature \
            == INJECTED_DIVERGENCE_TEMPERATURE

    def test_nan_power_is_sanitized_by_guard(self, tec_problem):
        injector = FaultInjector(single_fault_plan(FaultKind.NAN_POWER))
        faulty = FaultyEvaluator(tec_problem, injector)
        evaluation = faulty.evaluate(200.0, 1.0)
        # The corrupt NaN never reaches the caller: the base class's
        # NaN/Inf guard remaps it onto the finite runaway penalty.
        assert np.isfinite(evaluation.total_power)
        assert np.isfinite(evaluation.max_chip_temperature)
        assert evaluation.runaway and not evaluation.feasible

    def test_no_faults_matches_plain_evaluator(self, tec_problem,
                                               evaluator):
        injector = FaultInjector(FaultPlan(seed=0, specs=()))
        faulty = FaultyEvaluator(tec_problem, injector)
        ours = faulty.evaluate(200.0, 1.0)
        theirs = evaluator.evaluate(200.0, 1.0)
        assert ours.max_chip_temperature == theirs.max_chip_temperature
        assert ours.total_power == theirs.total_power


class TestFaultyNetwork:
    def test_injected_singularity_uses_real_error_path(self,
                                                       tec_problem):
        network = tec_problem.model.network
        injector = FaultInjector(
            single_fault_plan(FaultKind.SINGULAR_NETWORK))
        faulty = FaultyNetwork(network, injector)
        n = network.node_count
        with pytest.raises(SingularNetworkError) as excinfo:
            faulty.solve(np.zeros(n), np.ones(n))
        error = excinfo.value
        # The real detection path supplies diagnosability: a condition
        # estimate of the sabotaged system.
        assert error.condition_estimate is not None
        assert error.condition_estimate > 1e12
        assert "degenerate" in str(error) or "singular" in str(error)

    def test_delegates_when_not_firing(self, tec_problem):
        network = tec_problem.model.network
        injector = FaultInjector(
            single_fault_plan(FaultKind.SINGULAR_NETWORK, rate=0.0))
        faulty = FaultyNetwork(network, injector)
        n = network.node_count
        expected = network.solve(np.zeros(n), np.ones(n))
        actual = faulty.solve(np.zeros(n), np.ones(n))
        np.testing.assert_allclose(actual, expected)
        assert faulty.node_count == network.node_count

    def test_solve_many_faults_the_whole_block(self, tec_problem):
        network = tec_problem.model.network
        injector = FaultInjector(
            single_fault_plan(FaultKind.SINGULAR_NETWORK))
        faulty = FaultyNetwork(network, injector)
        n = network.node_count
        block = np.stack([np.ones(n), 2.0 * np.ones(n)], axis=1)
        with pytest.raises(SingularNetworkError) as excinfo:
            faulty.solve_many(np.zeros(n), block)
        assert excinfo.value.condition_estimate is not None
        # One firing decision per batched solve (one factorization).
        assert injector.call_counts()["singular-network"] == 1

    def test_solve_many_delegates_when_not_firing(self, tec_problem):
        network = tec_problem.model.network
        injector = FaultInjector(
            single_fault_plan(FaultKind.SINGULAR_NETWORK, rate=0.0))
        faulty = FaultyNetwork(network, injector)
        n = network.node_count
        block = np.stack([np.ones(n), 2.0 * np.ones(n)], axis=1)
        expected = network.solve_many(np.zeros(n), block)
        actual = faulty.solve_many(np.zeros(n), block)
        assert (actual == expected).all()


class TestChaosCampaign:
    @pytest.fixture(scope="class")
    def chaos_problems(self, profiles):
        tec = build_cooling_problem(profiles["basicmath"],
                                    grid_resolution=4)
        base = build_cooling_problem(profiles["basicmath"],
                                     with_tec=False, grid_resolution=4)
        return tec, base

    def test_full_fault_matrix_is_contained(self, profiles,
                                            chaos_problems):
        tec, base = chaos_problems
        plan = full_fault_plan(seed=11, rate=0.05)
        report = run_chaos_campaign(profiles, tec, base, plan=plan)
        # The chaos contract: no exception escapes, ever.
        assert report.ok, report.unhandled
        assert report.unhandled == []
        # Every evaluator-level fault kind actually exercised the
        # stack (process-level kinds only fire under supervision).
        assert set(report.fired) == {
            kind.value for kind in EVALUATOR_FAULT_KINDS}
        assert all(count > 0 for count in report.fired.values())
        # Partial results: every benchmark either completed or left a
        # structured failure report naming it.
        campaign = report.campaign
        reported = {failure.benchmark for failure in campaign.failures}
        completed = set(campaign.benchmark_names)
        assert completed | reported == set(profiles)
        assert campaign.failures, "expected at least one failure"
        for failure in campaign.failures:
            assert failure.stage
            assert failure.error_type
            assert failure.exception_chain

    def test_failures_serialize_to_json(self, profiles,
                                        chaos_problems, tmp_path):
        import json

        tec, base = chaos_problems
        few = dict(list(profiles.items())[:2])
        plan = full_fault_plan(seed=2, rate=0.1)
        report = run_chaos_campaign(few, tec, base, plan=plan)
        assert report.ok
        payload = campaign_to_dict(report.campaign)
        text = json.dumps(payload)
        if report.campaign.failures:
            assert "failures" in payload
            entry = payload["failures"][0]
            assert {"benchmark", "stage", "error_type", "message",
                    "exception_chain", "attempts"} <= set(entry)
        assert "chaos" not in text or True  # payload is serializable

    def test_same_seed_reproduces(self, profiles, chaos_problems):
        tec, base = chaos_problems
        few = dict(list(profiles.items())[:3])
        plan = full_fault_plan(seed=13, rate=0.04)
        first = run_chaos_campaign(few, tec, base, plan=plan)
        second = run_chaos_campaign(few, tec, base, plan=plan)
        assert first.ok and second.ok
        assert first.fired == second.fired
        assert first.campaign.benchmark_names \
            == second.campaign.benchmark_names
        assert [f.stage for f in first.campaign.failures] \
            == [f.stage for f in second.campaign.failures]

    def test_no_fault_plan_changes_nothing(self, profiles,
                                           chaos_problems):
        from repro.analysis import run_campaign

        tec, base = chaos_problems
        few = dict(list(profiles.items())[:1])
        quiet = FaultPlan(seed=0, specs=())
        report = run_chaos_campaign(few, tec, base, plan=quiet)
        plain = run_campaign(few, tec, base)
        assert report.ok
        assert report.campaign.failures == []
        ours = report.campaign.comparisons[0]
        theirs = plain.comparisons[0]
        # FaultyEvaluator takes the finite-difference gradient seam
        # even with a quiet plan, so the optima agree only within
        # solver tolerance (not bit-exactly) against the plain
        # campaign's adjoint gradients.
        assert ours.oftec_opt1.omega_star == pytest.approx(
            theirs.oftec_opt1.omega_star, rel=1e-4)
        assert ours.oftec_opt1.current_star == pytest.approx(
            theirs.oftec_opt1.current_star, rel=1e-3, abs=1e-4)
        assert ours.oftec_opt1.total_power == pytest.approx(
            theirs.oftec_opt1.total_power, rel=1e-5)

    def test_report_formatting(self, profiles, chaos_problems):
        tec, base = chaos_problems
        few = dict(list(profiles.items())[:1])
        plan = full_fault_plan(seed=4, rate=0.05)
        report = run_chaos_campaign(few, tec, base, plan=plan)
        text = format_chaos_report(report)
        assert "chaos campaign" in text
        assert "fault fires:" in text
