"""DVFS throttling fallback."""

import pytest

from repro.core import DVFSModel, find_max_frequency, scaled_problem
from repro.errors import ConfigurationError


class TestDVFSModel:
    def test_nominal_is_identity(self):
        model = DVFSModel()
        assert model.voltage(1.0) == pytest.approx(1.0)
        assert model.dynamic_power_factor(1.0) == pytest.approx(1.0)

    def test_power_factor_superlinear(self):
        # f*V^2 falls faster than f alone.
        model = DVFSModel()
        assert model.dynamic_power_factor(0.5) < 0.5

    def test_voltage_floor(self):
        model = DVFSModel(v_floor=0.7)
        assert model.voltage(0.0) == pytest.approx(0.7)

    def test_monotone(self):
        model = DVFSModel()
        factors = [model.dynamic_power_factor(s)
                   for s in (0.3, 0.5, 0.8, 1.0)]
        assert factors == sorted(factors)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DVFSModel(v_floor=0.0)
        with pytest.raises(ConfigurationError):
            DVFSModel(s_min=0.0)
        with pytest.raises(ConfigurationError):
            DVFSModel().voltage(1.5)


class TestScaledProblem:
    def test_power_scales(self, heavy_baseline_problem):
        model = DVFSModel()
        scaled = scaled_problem(heavy_baseline_problem, model, 0.5)
        expected = heavy_baseline_problem.total_dynamic_power \
            * model.dynamic_power_factor(0.5)
        assert scaled.total_dynamic_power == pytest.approx(expected)

    def test_shares_package(self, heavy_baseline_problem):
        scaled = scaled_problem(heavy_baseline_problem, DVFSModel(), 0.8)
        assert scaled.model is heavy_baseline_problem.model
        assert scaled.name.startswith(heavy_baseline_problem.name)


class TestFindMaxFrequency:
    def test_light_workload_needs_no_throttle(self, baseline_problem):
        result = find_max_frequency(baseline_problem, tolerance=0.05)
        assert result.feasible
        assert result.scaling == pytest.approx(1.0)
        assert result.performance_loss == pytest.approx(0.0)

    def test_heavy_baseline_must_throttle(self, heavy_baseline_problem):
        # The paper's point: without TECs, the heavy benchmarks need
        # "other thermal management techniques" that cost performance.
        result = find_max_frequency(heavy_baseline_problem,
                                    tolerance=0.05)
        assert result.feasible
        assert result.scaling < 1.0
        assert result.performance_loss > 0.0

    def test_oftec_avoids_the_throttle(self, heavy_tec_problem,
                                       heavy_baseline_problem):
        with_tec = find_max_frequency(heavy_tec_problem, tolerance=0.05)
        without = find_max_frequency(heavy_baseline_problem,
                                     tolerance=0.05)
        assert with_tec.scaling > without.scaling

    def test_found_point_is_actually_coolable(self,
                                              heavy_baseline_problem):
        from repro.core import run_variable_fan_baseline
        result = find_max_frequency(heavy_baseline_problem,
                                    tolerance=0.05)
        check = run_variable_fan_baseline(scaled_problem(
            heavy_baseline_problem, DVFSModel(), result.scaling))
        assert check.feasible

    def test_bad_tolerance(self, baseline_problem):
        with pytest.raises(ConfigurationError):
            find_max_frequency(baseline_problem, tolerance=0.0)

    def test_custom_runner(self, baseline_problem):
        calls = []

        class FakeResult:
            feasible = True
            total_power = 1.0

        def runner(problem):
            calls.append(problem.name)
            return FakeResult()

        result = find_max_frequency(baseline_problem, runner=runner)
        assert result.scaling == 1.0
        assert len(calls) == 1
