"""Thermal-aware thread placement on the quad-core die."""

import pytest

from repro import build_cooling_problem
from repro.core import (
    CMP4_ADJACENCY,
    optimize_thread_placement,
    placement_spread_score,
)
from repro.errors import ConfigurationError
from repro.geometry import (
    CMP4_CACHE_UNITS,
    CellCoverage,
    Grid,
    cmp4_floorplan,
    cmp4_unit_power,
)
from repro.tec import coverage_mask_excluding


@pytest.fixture(scope="module")
def cmp_problem():
    floorplan = cmp4_floorplan()
    grid = Grid.for_floorplan(floorplan, 8, 8)
    coverage = CellCoverage(floorplan, grid)
    mask = coverage_mask_excluding(coverage, CMP4_CACHE_UNITS)
    return build_cooling_problem(
        cmp4_unit_power([5.0, 5.0, 5.0, 5.0]),
        name="cmp-template", floorplan=floorplan, grid_resolution=8,
        tec_coverage_mask=mask)


class TestSpreadScore:
    def test_adjacent_hot_pair_scores_worse(self):
        # Two 20 W threads: adjacent cores (0, 1) vs diagonal (0, 3).
        packed = placement_spread_score([0, 1, -1, -1], CMP4_ADJACENCY,
                                        [20.0, 20.0])
        spread = placement_spread_score([0, -1, -1, 1], CMP4_ADJACENCY,
                                        [20.0, 20.0])
        assert spread < packed

    def test_idle_power_contributes(self):
        score = placement_spread_score([-1, -1, -1, -1],
                                       CMP4_ADJACENCY, [],
                                       idle_power=2.0)
        assert score > 0.0


class TestPlacementSearch:
    @pytest.fixture(scope="class")
    def result(self, cmp_problem):
        # Two heavy threads on four cores.
        return optimize_thread_placement(
            cmp_problem, thread_powers=[22.0, 22.0], core_count=4,
            idle_power=2.0, l2_power=4.0)

    def test_best_is_feasible(self, result):
        assert result.oftec.feasible

    def test_assignment_places_all_threads(self, result):
        placed = [t for t in result.assignment if t >= 0]
        assert sorted(placed) == [0, 1]

    def test_symmetric_dedup_reduces_candidates(self, result):
        # 4!/(2!·2!)·... with two identical threads and two idle cores
        # there are only C(4,2) = 6 distinct power patterns.
        assert result.evaluated <= 6

    def test_ranking_sorted(self, result):
        costs = [cost for _, cost in result.ranking]
        assert costs == sorted(costs)

    def test_best_matches_ranking_head(self, result):
        head_assignment, head_cost = result.ranking[0]
        assert head_cost == pytest.approx(result.oftec.total_power,
                                          rel=1e-9)

    def test_spreading_beats_packing(self, cmp_problem, result):
        # The cheapest placements must not put both hot threads on
        # adjacent cores when diagonal slots exist: compare the best
        # diagonal candidate against the best adjacent one from the
        # ranking.
        def is_adjacent(assignment):
            hot = [c for c, t in enumerate(assignment) if t >= 0]
            return hot[1] in CMP4_ADJACENCY[hot[0]]

        adjacent = [cost for a, cost in result.ranking
                    if is_adjacent(a)]
        diagonal = [cost for a, cost in result.ranking
                    if not is_adjacent(a)]
        assert diagonal and adjacent
        assert min(diagonal) <= min(adjacent) + 1e-6


class TestValidation:
    def test_too_many_threads(self, cmp_problem):
        with pytest.raises(ConfigurationError, match="exceed"):
            optimize_thread_placement(cmp_problem,
                                      [1.0] * 5, core_count=4)

    def test_no_threads(self, cmp_problem):
        with pytest.raises(ConfigurationError):
            optimize_thread_placement(cmp_problem, [])

    def test_negative_power(self, cmp_problem):
        with pytest.raises(ConfigurationError):
            optimize_thread_placement(cmp_problem, [-1.0])
