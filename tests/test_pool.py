"""Persistent warm worker pools: reuse, affinity, failure discipline."""

import hashlib
import json

import pytest

from repro import build_cooling_problem
from repro.analysis import run_campaign
from repro.errors import ConfigurationError
from repro.exec import WorkerPool, WorkerPoolError, live_segment_files
from repro.io import campaign_to_dict


def canonical(campaign):
    payload = campaign_to_dict(campaign, canonical=True)
    text = json.dumps(payload, indent=2, sort_keys=True)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


@pytest.fixture(scope="module")
def pool_problems(profiles):
    tec = build_cooling_problem(profiles["basicmath"],
                                grid_resolution=4)
    base = build_cooling_problem(profiles["basicmath"], with_tec=False,
                                 grid_resolution=4)
    return tec, base


@pytest.fixture(scope="module")
def subset(profiles):
    return {name: profiles[name] for name in ("basicmath", "crc32")}


class TestValidation:
    def test_worker_count_validated(self):
        with pytest.raises(ConfigurationError):
            WorkerPool(workers=0)

    def test_closed_pool_rejects_runs(self, subset, pool_problems):
        tec, base = pool_problems
        pool = WorkerPool(workers=1)
        pool.close()
        with pytest.raises(ConfigurationError):
            run_campaign(subset, tec, base, pool=pool)

    def test_close_idempotent(self):
        pool = WorkerPool(workers=1)
        pool.close()
        pool.close()
        assert live_segment_files() == []


class TestWarmReuse:
    def test_second_campaign_reuses_context(self, subset,
                                            pool_problems):
        tec, base = pool_problems
        serial = run_campaign(subset, tec, base, workers=0)
        with WorkerPool(workers=2) as pool:
            first = run_campaign(subset, tec, base, pool=pool)
            second = run_campaign(subset, tec, base, pool=pool)
            stats = pool.stats()
            # pool_stats ride the campaign's worker telemetry too.
            assert second.worker_stats["pool"]["context_reuses"] >= 1
        assert canonical(first) == canonical(serial)
        assert canonical(second) == canonical(serial)
        assert stats["runs"] == 2
        assert stats["context_installs"] == 1
        assert stats["context_reuses"] == 1
        assert stats["affinity_hits"] > 0
        assert live_segment_files() == []

    def test_new_payload_reinstalls(self, subset, profiles,
                                    pool_problems):
        tec, base = pool_problems
        other = {"fft": profiles["fft"]}
        with WorkerPool(workers=1) as pool:
            run_campaign(subset, tec, base, pool=pool)
            run_campaign(other, tec, base, pool=pool)
            stats = pool.stats()
        assert stats["context_installs"] == 2
        assert stats["context_reuses"] == 0

    def test_pool_implies_parallel_workers(self, subset,
                                           pool_problems):
        """run_campaign(pool=...) without workers= fans out over the
        pool instead of falling back to serial."""
        tec, base = pool_problems
        serial = run_campaign(subset, tec, base, workers=0)
        with WorkerPool(workers=2) as pool:
            pooled = run_campaign(subset, tec, base, pool=pool)
            assert pool.stats()["units_dispatched"] > 0
        assert canonical(pooled) == canonical(serial)


class TestFailureDiscipline:
    def test_dead_worker_raises_and_marks_broken(self, subset,
                                                 pool_problems):
        tec, base = pool_problems
        with WorkerPool(workers=1) as pool:
            campaign = run_campaign(subset, tec, base, pool=pool)
            # Kill the resident worker behind the pool's back.
            victim = pool._slots[0].process
            victim.terminate()
            victim.join(5.0)
            # The scheduler catches WorkerPoolError and degrades to
            # serial: the campaign still completes, bit-identically.
            after = run_campaign(subset, tec, base, pool=pool)
            stats = pool.stats()
            assert stats["broken_runs"] == 1
            # The broken pool respawns transparently on the next run.
            revived = run_campaign(subset, tec, base, pool=pool)
            assert pool.stats()["broken_runs"] == 1
        assert canonical(after) == canonical(campaign)
        assert canonical(revived) == canonical(campaign)
        assert live_segment_files() == []

    def test_run_payload_raises_for_direct_callers(self, subset,
                                                   pool_problems):
        import pickle

        from repro.exec.units import WorkUnit
        pool = WorkerPool(workers=1, heartbeat_timeout_seconds=5.0)
        try:
            pool._ensure_started()
            pool._slots[0].process.kill()
            pool._slots[0].process.join(5.0)
            unit = WorkUnit(index=0, kind="benchmark",
                            name="basicmath", params=("basicmath",))
            with pytest.raises(WorkerPoolError):
                pool.run_payload(pickle.dumps(None), [unit])
        finally:
            pool.close()
        assert live_segment_files() == []
