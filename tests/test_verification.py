"""Executable paper-shape verification."""

import pytest

from repro.analysis import (
    format_shape_checks,
    run_campaign,
    verify_paper_shapes,
)
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def full_campaign(tec_problem, baseline_problem, profiles):
    return run_campaign(profiles, tec_problem, baseline_problem,
                        include_tec_only=True)


class TestVerification:
    def test_all_shapes_reproduce(self, full_campaign):
        checks = verify_paper_shapes(full_campaign)
        failed = [c for c in checks if not c.passed]
        assert not failed, format_shape_checks(checks)

    def test_check_count(self, full_campaign):
        checks = verify_paper_shapes(full_campaign)
        # 11 headline claims when the TEC-only sweep is included.
        assert len(checks) == 11

    def test_details_populated(self, full_campaign):
        for check in verify_paper_shapes(full_campaign):
            assert check.claim
            assert check.detail

    def test_report_format(self, full_campaign):
        text = format_shape_checks(verify_paper_shapes(full_campaign))
        assert "PASS" in text
        assert "/11 shapes reproduced" in text

    def test_partial_campaign_rejected(self, tec_problem,
                                       baseline_problem, profiles):
        partial = run_campaign({"crc32": profiles["crc32"]},
                               tec_problem, baseline_problem)
        with pytest.raises(ConfigurationError, match="full suite"):
            verify_paper_shapes(partial)

    def test_tec_only_check_skipped_without_sweep(self, tec_problem,
                                                  baseline_problem,
                                                  profiles):
        campaign = run_campaign(profiles, tec_problem,
                                baseline_problem,
                                include_tec_only=False)
        checks = verify_paper_shapes(campaign)
        assert len(checks) == 10
        assert not any("TEC-only" in c.claim for c in checks)
