"""Tests for repro.devtools.physlint: rules, engine, CLI, self-check."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import main as repro_main
from repro.devtools.physlint import (
    PARSE_ERROR_CODE,
    available_project_rules,
    available_rules,
    lint_paths,
    lint_source,
    main as physlint_main,
)
from repro.errors import ConfigurationError

FIXTURES = Path(__file__).parent / "fixtures" / "physlint"
SRC = Path(__file__).resolve().parents[1] / "src"

ALL_CODES = ("RPR101", "RPR201", "RPR202", "RPR204", "RPR301",
             "RPR302", "RPR303", "RPR401", "RPR501", "RPR502",
             "RPR503", "RPR504", "RPR601", "RPR604", "RPR701",
             "RPR702")
PROJECT_CODES = ("RPR602", "RPR603", "RPR703")


def codes_in(path):
    return [f.code for f in lint_paths([str(path)])]


class TestRegistry:
    def test_all_rules_registered(self):
        assert tuple(sorted(available_rules())) == ALL_CODES

    def test_project_rules_registered(self):
        assert tuple(sorted(available_project_rules())) == PROJECT_CODES

    def test_registries_do_not_overlap(self):
        assert not set(available_rules()) & set(available_project_rules())

    def test_rules_carry_metadata(self):
        registries = dict(available_rules())
        registries.update(available_project_rules())
        for code, rule_cls in registries.items():
            assert rule_cls.code == code
            assert rule_cls.name
            assert rule_cls.rationale

    def test_rule_docstrings_carry_examples(self):
        # --explain renders these; every rule must ship a minimal
        # failing and passing example in its docstring.
        registries = dict(available_rules())
        registries.update(available_project_rules())
        for rule_cls in registries.values():
            doc = rule_cls.__doc__ or ""
            assert "Fail::" in doc, rule_cls.code
            assert "Pass::" in doc, rule_cls.code


class TestBadFixtures:
    @pytest.mark.parametrize("code,expected", [
        ("rpr101", 7),
        ("rpr201", 5),
        ("rpr202", 2),
        ("rpr204", 4),
        ("rpr301", 3),
        ("rpr302", 4),
        ("rpr303", 4),
        ("rpr401", 2),
        ("rpr501", 3),
        ("rpr503", 5),
        ("rpr504", 5),
        ("rpr601", 13),
        ("rpr604", 2),
    ])
    def test_bad_fixture_findings(self, code, expected):
        found = codes_in(FIXTURES / f"bad_{code}.py")
        assert found == [code.upper()] * expected

    def test_findings_carry_position(self):
        findings = lint_paths([str(FIXTURES / "bad_rpr202.py")])
        assert all(f.line > 0 and f.column > 0 for f in findings)
        assert all(f.path.endswith("bad_rpr202.py") for f in findings)


class TestGoodFixtures:
    @pytest.mark.parametrize("name", [
        "good_rpr101", "good_rpr201", "good_rpr204", "good_rpr301",
        "good_rpr302", "good_rpr303", "good_rpr401", "good_rpr501",
        "good_rpr503", "good_rpr504", "good_rpr601",
        "good_rpr604",
    ])
    def test_good_fixture_clean(self, name):
        assert codes_in(FIXTURES / f"{name}.py") == []


class TestSuppression:
    def test_same_line_disable(self):
        bad = "def _f(width_mm):\n    return width_mm * 1e-3\n"
        assert [f.code for f in lint_source(bad, "x.py")] == ["RPR101"]
        ok = bad.replace("1e-3", "1e-3  # physlint: disable=RPR101")
        assert lint_source(ok, "x.py") == []

    def test_disable_all(self):
        ok = ("def _f(width_mm):\n"
              "    return width_mm * 1e-3  # physlint: disable=all\n")
        assert lint_source(ok, "x.py") == []

    def test_file_level_disable(self):
        src = ("# physlint: disable-file=RPR202\n"
               "def f(x):\n"
               "    assert x > 0\n")
        assert lint_source(src, "x.py") == []

    def test_wrong_code_does_not_suppress(self):
        src = ("def f(x):\n"
               "    assert x > 0  # physlint: disable=RPR101\n")
        assert [f.code for f in lint_source(src, "x.py")] == ["RPR202"]


class TestSolverInLoop:
    def test_while_loop_flags_both_calls(self):
        src = ("from scipy.sparse.linalg import spsolve\n"
               "def f(m, b, n):\n"
               "    while n:\n"
               "        b = spsolve(m.tocsc(), b)\n"
               "        n -= 1\n"
               "    return b\n")
        assert [f.code for f in lint_source(src, "x.py")] \
            == ["RPR302", "RPR302"]

    def test_call_outside_loop_clean(self):
        src = ("from scipy.sparse.linalg import splu\n"
               "def f(m):\n"
               "    return splu(m.tocsc())\n")
        assert lint_source(src, "x.py") == []

    def test_nested_def_resets_loop_context(self):
        # The nested function runs when called, not per iteration.
        src = ("from scipy.sparse.linalg import splu\n"
               "def outer(ms):\n"
               "    for m in ms:\n"
               "        def probe(x):\n"
               "            return splu(x)\n"
               "        yield probe\n")
        assert lint_source(src, "x.py") == []

    def test_dotted_call_flagged(self):
        src = ("import scipy.sparse.linalg as sla\n"
               "def f(ms, b):\n"
               "    return [sla.spsolve(m, b) for m in ms][0]\n")
        # Comprehensions are not for/while statements; only statement
        # loops are flagged.
        assert lint_source(src, "x.py") == []
        loop = ("import scipy.sparse.linalg as sla\n"
                "def f(ms, b):\n"
                "    out = []\n"
                "    for m in ms:\n"
                "        out.append(sla.spsolve(m, b))\n"
                "    return out\n")
        assert [f.code for f in lint_source(loop, "x.py")] == ["RPR302"]


class TestSelectIgnore:
    def test_select_restricts(self):
        findings = lint_paths([str(FIXTURES / "bad_rpr101.py")],
                              select=["RPR2"])
        assert findings == []

    def test_ignore_drops(self):
        findings = lint_paths([str(FIXTURES / "bad_rpr202.py")],
                              ignore=["RPR202"])
        assert findings == []

    def test_prefix_matching(self):
        findings = lint_paths([str(FIXTURES / "bad_rpr202.py")],
                              select=["RPR2"])
        assert {f.code for f in findings} == {"RPR202"}

    def test_invalid_pattern_rejected(self):
        with pytest.raises(ConfigurationError):
            lint_paths([str(FIXTURES)], select=["E501"])

    def test_missing_path_rejected(self):
        with pytest.raises(ConfigurationError):
            lint_paths([str(FIXTURES / "does_not_exist_dir")])


class TestExemptions:
    def test_units_module_exempt_from_rpr101(self):
        src = "ZERO = 273.15\n"
        assert lint_source(src, "src/repro/units.py") == []
        assert [f.code for f in lint_source(src, "src/repro/other.py")] \
            == ["RPR101"]

    def test_cli_and_devtools_exempt_from_rpr501(self):
        src = "def f(x):\n    print(x)\n"
        assert lint_source(src, "src/repro/cli.py") == []
        assert lint_source(src, "src/repro/__main__.py") == []
        assert lint_source(
            src, "src/repro/devtools/physlint/reporters.py") == []
        assert [f.code
                for f in lint_source(src, "src/repro/core/oftec.py")] \
            == ["RPR501"]

    def test_parse_error_reported(self):
        findings = lint_source("def broken(:\n", "x.py")
        assert [f.code for f in findings] == [PARSE_ERROR_CODE]


class TestCli:
    def test_exit_one_on_findings(self, capsys):
        code = physlint_main([str(FIXTURES / "bad_rpr202.py")])
        assert code == 1
        out = capsys.readouterr().out
        assert "RPR202" in out

    def test_exit_zero_on_clean(self, capsys):
        code = physlint_main([str(FIXTURES / "good_rpr201.py")])
        assert code == 0
        assert "no findings" in capsys.readouterr().out

    def test_exit_two_on_bad_select(self, capsys):
        code = physlint_main(["--select", "E9", str(FIXTURES)])
        assert code == 2

    def test_json_round_trips(self, capsys):
        code = physlint_main([str(FIXTURES / "bad_rpr301.py"),
                              "--format", "json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["tool"] == "physlint"
        assert payload["total"] == 3
        assert payload["counts"] == {"RPR301": 3}
        assert all(f["code"] == "RPR301"
                   for f in payload["findings"])

    def test_list_rules(self, capsys):
        assert physlint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ALL_CODES + PROJECT_CODES:
            assert code in out

    def test_repro_lint_subcommand(self, capsys):
        code = repro_main(["lint", str(FIXTURES / "bad_rpr101.py"),
                           "--format", "json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"] == {"RPR101": 7}

    def test_python_dash_m_entry_point(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.devtools.physlint",
             str(FIXTURES / "bad_rpr202.py")],
            capture_output=True, text=True,
            env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"})
        assert proc.returncode == 1
        assert "RPR202" in proc.stdout


class TestSelfCheck:
    def test_src_tree_is_clean(self):
        findings = lint_paths([str(SRC)])
        assert findings == [], "\n".join(f.render() for f in findings)
