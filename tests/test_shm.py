"""The shared-memory operator plane: lifecycle, transport, identity."""

import os
import pickle

import numpy as np
import pytest

from repro import build_cooling_problem
from repro.analysis import run_campaign
from repro.exec import (
    SHM_ENV,
    SharedArrayRef,
    live_segment_files,
    publication,
    shm_enabled,
)
from repro.exec import shm as exec_shm
from repro.io import campaign_to_dict


def canonical(campaign):
    import hashlib
    import json
    payload = campaign_to_dict(campaign, canonical=True)
    text = json.dumps(payload, indent=2, sort_keys=True)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


@pytest.fixture
def small_problems(profiles):
    tec = build_cooling_problem(profiles["basicmath"],
                                grid_resolution=4)
    base = build_cooling_problem(profiles["basicmath"], with_tec=False,
                                 grid_resolution=4)
    return tec, base


class TestEnablement:
    def test_enabled_by_default(self, monkeypatch):
        monkeypatch.delenv(SHM_ENV, raising=False)
        assert shm_enabled()

    def test_disable_spellings(self, monkeypatch):
        for value in ("0", "off", "false", "no"):
            monkeypatch.setenv(SHM_ENV, value)
            assert not shm_enabled()
        monkeypatch.setenv(SHM_ENV, "1")
        assert shm_enabled()

    def test_publication_yields_none_when_disabled(self, monkeypatch):
        monkeypatch.setenv(SHM_ENV, "0")
        with publication() as plane:
            assert plane is None


class TestSegmentLifecycle:
    def test_publication_unlinks_on_exit(self):
        payload = np.arange(64, dtype=float)
        with publication() as plane:
            assert plane is not None
            ref = pickle.dumps(SharedArrayRef(payload))
            assert live_segment_files()
        assert live_segment_files() == []
        # The pickled descriptor still round-trips after unlink: the
        # reducer embedded a plain-array fallback? No — attaching a
        # vanished segment must fail loudly, never silently zero.
        with pytest.raises(Exception):
            pickle.loads(ref)

    def test_refcounted_nesting(self):
        with publication():
            with publication():
                pickle.dumps(SharedArrayRef(np.ones(8)))
                assert live_segment_files()
            # Inner exit must not tear down the outer scope's plane.
            assert live_segment_files()
        assert live_segment_files() == []

    def test_attach_round_trip_bitwise(self):
        rng = np.random.default_rng(7)
        payload = rng.standard_normal(513)  # odd size: alignment path
        with publication():
            clone = pickle.loads(pickle.dumps(SharedArrayRef(payload)))
            assert isinstance(clone, np.ndarray)
            assert clone.dtype == payload.dtype
            np.testing.assert_array_equal(clone, payload)
            # Attached views are read-only: the plane is shared.
            with pytest.raises(ValueError):
                clone[0] = 0.0

    def test_no_plane_degrades_to_plain_pickle(self):
        payload = np.arange(10, dtype=float)
        clone = pickle.loads(pickle.dumps(SharedArrayRef(payload)))
        np.testing.assert_array_equal(clone, payload)
        assert live_segment_files() == []

    def test_stale_segment_swept_on_open(self):
        # Simulate a crashed coordinator: a repro segment whose pid is
        # dead must be swept when the next publication opens.
        from multiprocessing import resource_tracker, shared_memory
        name = "repro_shm_99999999_deadbeef"  # no such pid
        segment = shared_memory.SharedMemory(
            name=name, create=True, size=16)
        segment.close()
        resource_tracker.unregister("/" + name, "shared_memory")
        assert name in live_segment_files()
        with publication():
            pass
        assert name not in live_segment_files()


class TestOperatorTransport:
    def test_operator_digest_identity_shm_vs_pickle(
            self, small_problems):
        tec, _ = small_problems
        operator = tec.model.network.operator
        plain = pickle.loads(pickle.dumps(operator))
        with publication():
            shmmed = pickle.loads(pickle.dumps(operator))
        overlay = np.ones(operator.node_count)
        rhs = np.arange(operator.node_count, dtype=float)
        expected = operator.factor(overlay).solve(rhs)
        for clone in (plain, shmmed):
            got = clone.factor(overlay).solve(rhs)
            np.testing.assert_array_equal(got, expected)

    def test_campaign_digest_identity_shm_vs_pickle(
            self, monkeypatch, profiles, small_problems):
        """The transport is invisible in the output: all 8 benchmarks,
        parallel with shm vs parallel with shm disabled vs serial."""
        tec, base = small_problems
        serial = run_campaign(profiles, tec, base, workers=0)
        with_shm = run_campaign(profiles, tec, base, workers=2)
        monkeypatch.setenv(SHM_ENV, "0")
        without_shm = run_campaign(profiles, tec, base, workers=2)
        assert canonical(with_shm) == canonical(serial)
        assert canonical(without_shm) == canonical(serial)
        assert live_segment_files() == []

    def test_parallel_run_leaves_no_segments(self, profiles,
                                             small_problems):
        tec, base = small_problems
        subset = {"basicmath": profiles["basicmath"],
                  "crc32": profiles["crc32"]}
        run_campaign(subset, tec, base, workers=2)
        assert live_segment_files() == []
