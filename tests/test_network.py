"""Generic thermal network: assembly and analytic solves."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SingularNetworkError
from repro.thermal import NodeKind, ThermalNetwork
from repro.thermal.network import NodeInfo


def two_node_chain():
    """ambient --g1-- n0 --g2-- n1, power injected at n1."""
    net = ThermalNetwork()
    n0 = net.add_node(NodeInfo("n0", NodeKind.BULK, "layer", 0, 1.0))
    n1 = net.add_node(NodeInfo("n1", NodeKind.CHIP, "layer", 1, 2.0))
    net.add_conductance(n0, n1, 2.0)
    net.add_grounded_conductance(n0, 1.0)
    net.finalize()
    return net, n0, n1


class TestConstruction:
    def test_duplicate_names_rejected(self):
        net = ThermalNetwork()
        net.add_node(NodeInfo("a", NodeKind.BULK, "l"))
        with pytest.raises(ConfigurationError, match="Duplicate"):
            net.add_node(NodeInfo("a", NodeKind.BULK, "l"))

    def test_self_conductance_rejected(self):
        net = ThermalNetwork()
        a = net.add_node(NodeInfo("a", NodeKind.BULK, "l"))
        with pytest.raises(ConfigurationError, match="Self"):
            net.add_conductance(a, a, 1.0)

    def test_nonpositive_conductance_rejected(self):
        net = ThermalNetwork()
        a = net.add_node(NodeInfo("a", NodeKind.BULK, "l"))
        b = net.add_node(NodeInfo("b", NodeKind.BULK, "l"))
        with pytest.raises(ConfigurationError):
            net.add_conductance(a, b, 0.0)
        with pytest.raises(ConfigurationError):
            net.add_grounded_conductance(a, -1.0)

    def test_no_mutation_after_finalize(self):
        net, n0, n1 = two_node_chain()
        with pytest.raises(ConfigurationError, match="finalized"):
            net.add_node(NodeInfo("c", NodeKind.BULK, "l"))
        with pytest.raises(ConfigurationError, match="finalized"):
            net.add_conductance(n0, n1, 1.0)

    def test_empty_network_rejected(self):
        with pytest.raises(ConfigurationError):
            ThermalNetwork().finalize()

    def test_double_finalize_rejected(self):
        net, *_ = two_node_chain()
        with pytest.raises(ConfigurationError):
            net.finalize()

    def test_index_bounds(self):
        net = ThermalNetwork()
        net.add_node(NodeInfo("a", NodeKind.BULK, "l"))
        with pytest.raises(ConfigurationError):
            net.info(5)


class TestQueries:
    def test_lookup_by_name(self):
        net, n0, n1 = two_node_chain()
        assert net.index_of("n1") == n1
        with pytest.raises(ConfigurationError):
            net.index_of("missing")

    def test_nodes_of_kind(self):
        net, n0, n1 = two_node_chain()
        assert net.nodes_of_kind(NodeKind.CHIP) == [n1]
        assert net.nodes_of_kind(NodeKind.TEC_GEN) == []

    def test_nodes_of_layer(self):
        net, n0, n1 = two_node_chain()
        assert net.nodes_of_layer("layer") == [n0, n1]

    def test_heat_capacities(self):
        net, *_ = two_node_chain()
        assert net.heat_capacities() == pytest.approx([1.0, 2.0])

    def test_static_matrix_symmetric(self):
        net, *_ = two_node_chain()
        m = net.static_matrix.toarray()
        assert np.allclose(m, m.T)

    def test_static_matrix_before_finalize(self):
        net = ThermalNetwork()
        net.add_node(NodeInfo("a", NodeKind.BULK, "l"))
        with pytest.raises(ConfigurationError):
            net.static_matrix


class TestAnalyticSolves:
    def test_one_node_to_ambient(self):
        # T = T_amb + P/g for a single grounded node.
        net = ThermalNetwork()
        a = net.add_node(NodeInfo("a", NodeKind.BULK, "l"))
        net.add_grounded_conductance(a, 2.0)
        net.finalize()
        t_amb, power = 318.0, 10.0
        temps = net.solve(np.zeros(1),
                          np.array([2.0 * t_amb + power]))
        assert temps[0] == pytest.approx(t_amb + power / 2.0)

    def test_two_node_chain_series(self):
        # Heat P at n1 flows through g2 then g1 to ambient:
        # T1 = T_amb + P/g1 + P/g2, T0 = T_amb + P/g1.
        net, n0, n1 = two_node_chain()
        t_amb, power = 300.0, 6.0
        rhs = np.zeros(2)
        rhs[n0] = 1.0 * t_amb
        rhs[n1] = power
        temps = net.solve(np.zeros(2), rhs)
        assert temps[n0] == pytest.approx(t_amb + power / 1.0)
        assert temps[n1] == pytest.approx(t_amb + power / 1.0
                                          + power / 2.0)

    def test_diagonal_overlay_acts_like_extra_ground(self):
        # Adding d to the diagonal with d*T_amb on the RHS is exactly a
        # conductance d to ambient.
        net = ThermalNetwork()
        a = net.add_node(NodeInfo("a", NodeKind.BULK, "l"))
        net.add_grounded_conductance(a, 1.0)
        net.finalize()
        t_amb, power, extra = 318.0, 10.0, 3.0
        temps = net.solve(
            np.array([extra]),
            np.array([1.0 * t_amb + extra * t_amb + power]))
        assert temps[0] == pytest.approx(t_amb + power / (1.0 + extra))

    def test_negative_diagonal_feedback(self):
        # A negative diagonal entry (leakage slope a) amplifies the
        # temperature: T = T_amb + (P + a*(T - T_ref_terms))/g ...
        # solved exactly by the linear system.
        net = ThermalNetwork()
        a_idx = net.add_node(NodeInfo("a", NodeKind.CHIP, "l"))
        net.add_grounded_conductance(a_idx, 2.0)
        net.finalize()
        t_amb, power, slope = 318.0, 10.0, 0.5
        # (g - a) T = g*T_amb + power - a*t_ref  with t_ref = t_amb
        temps = net.solve(np.array([-slope]),
                          np.array([2.0 * t_amb + power
                                    - slope * t_amb]))
        expected = (2.0 * t_amb + power - slope * t_amb) / (2.0 - slope)
        assert temps[0] == pytest.approx(expected)
        assert temps[0] > t_amb + power / 2.0  # feedback heats it up

    def test_floating_network_is_singular(self):
        import warnings

        net = ThermalNetwork()
        a = net.add_node(NodeInfo("a", NodeKind.BULK, "l"))
        b = net.add_node(NodeInfo("b", NodeKind.BULK, "l"))
        net.add_conductance(a, b, 1.0)
        net.finalize()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            with pytest.raises(SingularNetworkError):
                net.solve(np.zeros(2), np.array([1.0, 0.0]))

    def test_overlay_shape_checked(self):
        net, *_ = two_node_chain()
        with pytest.raises(ConfigurationError):
            net.solve(np.zeros(3), np.zeros(2))

    def test_energy_conservation(self):
        # Sum of injected power equals sum of flow into ambient.
        net = ThermalNetwork()
        nodes = [net.add_node(NodeInfo(f"n{i}", NodeKind.BULK, "l"))
                 for i in range(5)]
        rng = np.random.default_rng(7)
        for i in range(4):
            net.add_conductance(nodes[i], nodes[i + 1],
                                float(rng.uniform(0.5, 3.0)))
        ground = {0: 1.5, 4: 0.7}
        for idx, g in ground.items():
            net.add_grounded_conductance(nodes[idx], g)
        net.finalize()
        t_amb = 318.0
        power = rng.uniform(0.0, 5.0, size=5)
        rhs = power.copy()
        for idx, g in ground.items():
            rhs[idx] += g * t_amb
        temps = net.solve(np.zeros(5), rhs)
        outflow = sum(g * (temps[idx] - t_amb)
                      for idx, g in ground.items())
        assert outflow == pytest.approx(power.sum(), rel=1e-9)
