"""Online interval controller."""

import numpy as np
import pytest

from repro import run_oftec
from repro.core import (
    LookupTableController,
    lut_policy,
    run_online_controller,
    static_policy,
)
from repro.errors import ConfigurationError
from repro.power import TraceGenerator


@pytest.fixture(scope="module")
def short_trace(profiles, trace_generator):
    return trace_generator.generate(profiles["basicmath"],
                                    duration=2.0,
                                    sample_interval=0.05)


class TestStaticPolicy:
    def test_applies_fixed_point(self, tec_problem, short_trace):
        result = run_online_controller(
            tec_problem, short_trace,
            static_policy(omega=300.0, current=0.5),
            control_interval=0.5, dt=0.1)
        assert (result.omega_trace == 300.0).all()
        assert (result.current_trace == 0.5).all()

    def test_energy_accumulates(self, tec_problem, short_trace):
        result = run_online_controller(
            tec_problem, short_trace,
            static_policy(omega=300.0, current=0.5),
            control_interval=0.5, dt=0.1)
        # Fan power alone over the run bounds the energy from below.
        fan = tec_problem.fan.power(300.0)
        assert result.cooling_energy >= fan * short_trace.duration * 0.9

    def test_no_violations_with_strong_cooling(self, tec_problem,
                                               short_trace):
        result = run_online_controller(
            tec_problem, short_trace,
            static_policy(omega=450.0, current=1.0),
            control_interval=0.5, dt=0.1)
        assert result.violation_time == 0.0
        assert result.peak_temperature < tec_problem.limits.t_max

    def test_weak_cooling_runs_hot(self, heavy_tec_problem, profiles,
                                   trace_generator):
        trace = trace_generator.generate(profiles["quicksort"],
                                         duration=2.0,
                                         sample_interval=0.05)
        weak = run_online_controller(
            heavy_tec_problem, trace, static_policy(50.0, 0.0),
            control_interval=0.5, dt=0.1)
        strong = run_online_controller(
            heavy_tec_problem, trace, static_policy(450.0, 1.5),
            control_interval=0.5, dt=0.1)
        assert weak.peak_temperature > strong.peak_temperature

    def test_decision_cadence(self, tec_problem, short_trace):
        result = run_online_controller(
            tec_problem, short_trace, static_policy(300.0, 0.5),
            control_interval=0.5, dt=0.1)
        assert len(result.decisions) == pytest.approx(
            short_trace.duration / 0.5, abs=1)

    def test_clamps_policy_output(self, tec_problem, short_trace):
        result = run_online_controller(
            tec_problem, short_trace, static_policy(1e6, 99.0),
            control_interval=1.0, dt=0.25)
        assert (result.omega_trace
                <= tec_problem.limits.omega_max).all()
        assert (result.current_trace
                <= tec_problem.limits.i_tec_max).all()


class TestLutPolicy:
    def test_lut_tracks_workload(self, tec_problem, profiles,
                                 trace_generator):
        table = LookupTableController(
            tec_problem.coverage.floorplan.unit_names)
        results = table.precompute(
            tec_problem,
            {name: profiles[name].unit_power
             for name in ("basicmath", "quicksort")})
        trace = trace_generator.generate(profiles["basicmath"],
                                         duration=1.0,
                                         sample_interval=0.05)
        outcome = run_online_controller(
            tec_problem, trace, lut_policy(table),
            control_interval=0.5, dt=0.1)
        # The LUT should pick the basicmath entry, whose omega is far
        # below quicksort's.
        expected = results["basicmath"].omega_star
        assert outcome.omega_trace[-1] == pytest.approx(expected,
                                                        rel=1e-6)

    def test_lut_beats_worstcase_energy(self, tec_problem, profiles,
                                        trace_generator):
        # Static worst-case (quicksort) cooling wastes energy on a
        # light workload; the LUT adapts down.
        table = LookupTableController(
            tec_problem.coverage.floorplan.unit_names)
        table.precompute(
            tec_problem,
            {name: profiles[name].unit_power
             for name in ("basicmath", "quicksort")})
        heavy_point = run_oftec(
            tec_problem.with_profile(profiles["quicksort"]))
        trace = trace_generator.generate(profiles["basicmath"],
                                         duration=1.5,
                                         sample_interval=0.05)
        adaptive = run_online_controller(
            tec_problem, trace, lut_policy(table),
            control_interval=0.5, dt=0.1)
        worstcase = run_online_controller(
            tec_problem, trace,
            static_policy(heavy_point.omega_star,
                          heavy_point.current_star),
            control_interval=0.5, dt=0.1)
        assert adaptive.cooling_energy < worstcase.cooling_energy


class TestValidation:
    def test_bad_intervals(self, tec_problem, short_trace):
        with pytest.raises(ConfigurationError):
            run_online_controller(tec_problem, short_trace,
                                  static_policy(300.0, 0.5),
                                  control_interval=0.0, dt=0.1)
        with pytest.raises(ConfigurationError):
            run_online_controller(tec_problem, short_trace,
                                  static_policy(300.0, 0.5),
                                  control_interval=0.1, dt=0.5)

    def test_bad_initial_shape(self, tec_problem, short_trace):
        with pytest.raises(ConfigurationError):
            run_online_controller(
                tec_problem, short_trace, static_policy(300.0, 0.5),
                control_interval=0.5, dt=0.1,
                initial_temperatures=np.zeros(3))
