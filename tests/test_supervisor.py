"""Supervised executor: policy, process faults, retries, quarantine."""

import hashlib
import json

import pytest

from repro import build_cooling_problem
from repro.analysis import run_campaign
from repro.errors import ConfigurationError, WorkerCrashError
from repro.exec import CampaignMerge, SupervisionPolicy
from repro.exec import supervisor as exec_supervisor
from repro.faults import (
    EVALUATOR_FAULT_KINDS,
    PROCESS_FAULT_KINDS,
    FaultKind,
    FaultPlan,
    FaultSpec,
    format_chaos_report,
    full_fault_plan,
    process_fault_decision,
    process_fault_plan,
    run_chaos_campaign,
)
from repro.io import campaign_to_dict
from repro.obs.clock import Deadline


def canonical_digest(campaign):
    payload = campaign_to_dict(campaign, canonical=True)
    text = json.dumps(payload, indent=2, sort_keys=True)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


@pytest.fixture(scope="module")
def small_problems(profiles):
    tec = build_cooling_problem(profiles["basicmath"],
                                grid_resolution=4)
    base = build_cooling_problem(profiles["basicmath"], with_tec=False,
                                 grid_resolution=4)
    return tec, base


@pytest.fixture(scope="module")
def two_profiles(profiles):
    return dict(list(profiles.items())[:2])


class TestSupervisionPolicy:
    @pytest.mark.parametrize("overrides", [
        {"unit_deadline_seconds": 0.0},
        {"heartbeat_interval_seconds": -1.0},
        {"heartbeat_timeout_seconds": 0.1,
         "heartbeat_interval_seconds": 0.1},
        {"max_attempts": 0},
        {"backoff_base_seconds": -0.1},
        {"backoff_factor": 0.5},
        {"backoff_max_seconds": 0.01, "backoff_base_seconds": 0.05},
        {"backoff_jitter": 1.0},
        {"circuit_breaker_failures": 0},
        {"poll_interval_seconds": 0.0},
    ])
    def test_invalid_knobs_rejected(self, overrides):
        with pytest.raises(ConfigurationError):
            SupervisionPolicy(**overrides)

    def test_backoff_is_deterministic_and_bounded(self):
        policy = SupervisionPolicy(backoff_base_seconds=0.1,
                                   backoff_factor=2.0,
                                   backoff_max_seconds=1.0,
                                   backoff_jitter=0.25)
        for attempt in (1, 2, 3, 7):
            first = policy.backoff_seconds("basicmath", attempt)
            assert first == policy.backoff_seconds("basicmath",
                                                   attempt)
            nominal = min(0.1 * 2.0 ** (attempt - 1), 1.0)
            assert 0.75 * nominal <= first <= 1.25 * nominal
        # Jitter decorrelates units.
        assert policy.backoff_seconds("basicmath", 1) \
            != policy.backoff_seconds("bitcount", 1)

    def test_zero_jitter_is_exact_exponential(self):
        policy = SupervisionPolicy(backoff_base_seconds=0.1,
                                   backoff_factor=3.0,
                                   backoff_max_seconds=10.0,
                                   backoff_jitter=0.0)
        assert policy.backoff_seconds("x", 1) == pytest.approx(0.1)
        assert policy.backoff_seconds("x", 3) == pytest.approx(0.9)


class TestDeadline:
    def test_budget_validated(self):
        with pytest.raises(ConfigurationError):
            Deadline(0.0)

    def test_lifecycle(self):
        deadline = Deadline(60.0)
        assert not deadline.expired
        assert 0.0 < deadline.remaining() <= 60.0
        assert deadline.elapsed() >= 0.0
        deadline.restart()
        assert not deadline.expired


class TestProcessFaultPlan:
    def test_rejects_evaluator_kinds(self):
        with pytest.raises(ConfigurationError):
            process_fault_plan(kinds=(FaultKind.NAN_POWER,))

    def test_process_kinds_property(self):
        plan = process_fault_plan(rate=0.5)
        assert set(plan.process_kinds) == set(PROCESS_FAULT_KINDS)
        assert full_fault_plan().process_kinds == ()

    def test_full_plan_stays_evaluator_only(self):
        kinds = {spec.kind for spec in full_fault_plan().specs}
        assert kinds == set(EVALUATOR_FAULT_KINDS)

    def test_decision_is_deterministic(self):
        plan = process_fault_plan(seed=3, rate=0.5, max_fires=None)
        draws = [process_fault_decision(plan, "basicmath", attempt)
                 for attempt in range(1, 20)]
        again = [process_fault_decision(plan, "basicmath", attempt)
                 for attempt in range(1, 20)]
        assert draws == again
        assert any(d is not None for d in draws)
        assert any(d is None for d in draws)

    def test_decision_edge_cases(self):
        plan = process_fault_plan(rate=1.0)
        assert process_fault_decision(None, "x", 1) is None
        assert process_fault_decision(plan, "x", 0) is None

    def test_start_call_immunizes_early_attempts(self):
        plan = FaultPlan(seed=0, specs=(FaultSpec(
            kind=FaultKind.WORKER_KILL, rate=1.0, start_call=2),))
        assert process_fault_decision(plan, "x", 1) is None
        assert process_fault_decision(plan, "x", 2) is None
        assert process_fault_decision(plan, "x", 3) \
            is FaultKind.WORKER_KILL

    def test_max_fires_caps_strikable_attempts(self):
        plan = FaultPlan(seed=0, specs=(FaultSpec(
            kind=FaultKind.WORKER_KILL, rate=1.0, max_fires=1),))
        assert process_fault_decision(plan, "x", 1) \
            is FaultKind.WORKER_KILL
        # Attempts beyond start_call + max_fires can never fire, so a
        # retried unit is guaranteed to complete.
        assert process_fault_decision(plan, "x", 2) is None

    def test_evaluator_kinds_never_fire_as_process_faults(self):
        assert process_fault_decision(full_fault_plan(rate=1.0),
                                      "x", 1) is None


class TestSupervisedBitIdentity:
    def test_supervised_matches_serial(self, two_profiles,
                                       small_problems):
        tec, base = small_problems
        serial = run_campaign(two_profiles, tec, base, workers=0)
        supervised = run_campaign(two_profiles, tec, base, workers=2,
                                  supervision=SupervisionPolicy())
        assert canonical_digest(supervised) == canonical_digest(serial)
        stats = supervised.worker_stats["supervision"]
        assert stats["retries"] == 0
        assert stats["quarantined"] == 0
        assert not stats["circuit_opened"]


class TestKillRecovery:
    def test_killed_workers_are_replaced_and_units_retried(
            self, two_profiles, small_problems):
        tec, base = small_problems
        plan = FaultPlan(seed=1, specs=(FaultSpec(
            kind=FaultKind.WORKER_KILL, rate=1.0, max_fires=1),))
        report = run_chaos_campaign(
            two_profiles, tec, base, plan=plan, workers=2,
            supervision=SupervisionPolicy(
                unit_deadline_seconds=120.0,
                backoff_base_seconds=0.01))
        assert report.ok, report.unhandled
        assert report.fired.get("worker-kill") == 2
        assert len(report.campaign.comparisons) == 2
        stats = report.campaign.worker_stats["supervision"]
        assert stats["retries"] == 2
        assert stats["replacements"] >= 2
        assert stats["quarantined"] == 0

    def test_chaos_auto_engages_supervision(self, two_profiles,
                                            small_problems):
        tec, base = small_problems
        plan = FaultPlan(seed=1, specs=(FaultSpec(
            kind=FaultKind.WORKER_SLOW, rate=1.0, max_fires=1),))
        report = run_chaos_campaign(two_profiles, tec, base, plan=plan,
                                    workers=2)
        assert report.ok
        assert report.fired.get("worker-slow") == 2
        assert "supervision" in report.campaign.worker_stats


class TestHangRecovery:
    def test_silent_workers_are_killed_by_heartbeat(
            self, two_profiles, small_problems):
        tec, base = small_problems
        plan = FaultPlan(seed=1, specs=(FaultSpec(
            kind=FaultKind.WORKER_HANG, rate=1.0, max_fires=1),))
        policy = SupervisionPolicy(
            unit_deadline_seconds=120.0,
            heartbeat_interval_seconds=0.05,
            heartbeat_timeout_seconds=1.0,
            backoff_base_seconds=0.01)
        report = run_chaos_campaign(two_profiles, tec, base, plan=plan,
                                    workers=2, supervision=policy)
        assert report.ok, report.unhandled
        assert report.fired.get("worker-hang") == 2
        assert len(report.campaign.comparisons) == 2
        stats = report.campaign.worker_stats["supervision"]
        assert stats["retries"] == 2
        assert stats["replacements"] >= 2


class TestQuarantine:
    def test_poison_units_quarantine_and_campaign_completes(
            self, two_profiles, small_problems):
        tec, base = small_problems
        plan = FaultPlan(seed=2, specs=(FaultSpec(
            kind=FaultKind.WORKER_KILL, rate=1.0),))
        policy = SupervisionPolicy(unit_deadline_seconds=120.0,
                                   max_attempts=2,
                                   backoff_base_seconds=0.01)
        report = run_chaos_campaign(two_profiles, tec, base, plan=plan,
                                    workers=2, supervision=policy)
        assert report.ok, report.unhandled
        quarantined = report.campaign.quarantined
        assert len(quarantined) == 2
        assert report.campaign.comparisons == []
        for entry in quarantined:
            assert entry.attempts == 2
            assert len(entry.errors) == 2
            assert "exit code 113" in entry.errors[-1]

        payload = campaign_to_dict(report.campaign)
        assert [q["unit"] for q in payload["quarantined"]] \
            == sorted(two_profiles)
        text = format_chaos_report(report)
        assert "quarantined units: 2" in text


class TestCircuitBreaker:
    def test_spawn_failures_degrade_to_serial(self, monkeypatch,
                                              two_profiles,
                                              small_problems):
        tec, base = small_problems

        def failing_spawn(self, handle, *args, **kwargs):
            handle.process = None
            self._spawn_failures += 1
            self.outcome.replacements += 1

        monkeypatch.setattr(exec_supervisor._Supervisor, "_spawn",
                            failing_spawn)
        serial = run_campaign(two_profiles, tec, base, workers=0)
        supervised = run_campaign(two_profiles, tec, base, workers=2,
                                  supervision=SupervisionPolicy())
        assert canonical_digest(supervised) == canonical_digest(serial)
        stats = supervised.worker_stats["supervision"]
        assert stats["circuit_opened"]


class TestWorkerCrashAttribution:
    def test_error_carries_unit_labels_and_attempts(self):
        error = WorkerCrashError("boom", reports=["ValueError: x"],
                                 units=[("basicmath", 3)])
        assert error.units == (("basicmath", 3),)
        assert WorkerCrashError("boom").units == ()

    def test_campaign_raise_names_failing_units(self, monkeypatch,
                                                two_profiles,
                                                small_problems):
        tec, base = small_problems

        def fake_units(*args, **kwargs):
            return CampaignMerge(
                unhandled=["ValueError: boom"],
                crashed=[("basicmath", 2, "ValueError: boom")])

        import repro.exec
        monkeypatch.setattr(repro.exec, "run_campaign_units",
                            fake_units)
        with pytest.raises(WorkerCrashError) as excinfo:
            run_campaign(two_profiles, tec, base, workers=2)
        assert excinfo.value.units == (("basicmath", 2),)
        assert "basicmath (attempt 2)" in str(excinfo.value)


class TestSupervisedStreaming:
    def test_monitor_hooks_fire_and_digest_stays_identical(
            self, two_profiles, small_problems):
        """A traced, monitored, supervised parallel campaign produces
        the same canonical digest as an untraced serial run, while the
        monitor sees the full unit lifecycle and the session adopts
        the workers' spans and metrics."""
        from repro.obs import telemetry_session

        tec, base = small_problems
        serial = run_campaign(two_profiles, tec, base, workers=0)

        events = []

        class Recorder:
            def begin(self, total, label=None):
                events.append(("begin", total))

            def unit_running(self, name, attempt=1):
                events.append(("running", name))

            def unit_retrying(self, name, attempt, reason=None):
                events.append(("retrying", name))

            def unit_quarantined(self, name, attempts=0):
                events.append(("quarantined", name))

            def unit_done(self, name, wall_seconds=0.0, ok=True):
                events.append(("done", name, ok))

            def live_metrics(self, snapshot):
                events.append(("live",))

            def finish(self):
                events.append(("finish",))

        with telemetry_session() as (tracer, metrics):
            supervised = run_campaign(
                two_profiles, tec, base, workers=2,
                supervision=SupervisionPolicy(),
                progress=Recorder())
            unit_spans = [span for span in tracer.finished
                          if span.kind == "unit"]
            snapshot = metrics.snapshot()

        assert canonical_digest(supervised) == canonical_digest(serial)
        kinds = [event[0] for event in events]
        assert kinds.count("begin") >= 1
        assert kinds.count("running") == 2
        done = sorted(event for event in events
                      if event[0] == "done")
        assert done == sorted(("done", name, True)
                              for name in two_profiles)
        assert "retrying" not in kinds
        assert "quarantined" not in kinds
        # The workers' telemetry was adopted into the parent session:
        # one unit span per benchmark carrying the worker pid, and the
        # worker counters folded into the session registry.
        assert sorted(span.name for span in unit_spans) == \
            sorted(two_profiles)
        assert all(span.attributes.get("worker_pid")
                   for span in unit_spans)
        assert snapshot["counters"]["operator.solves"] > 0

    def test_monitor_without_session_still_reports(
            self, two_profiles, small_problems):
        """--progress without --trace: no telemetry session anywhere,
        but the lifecycle hooks still drive the board."""
        tec, base = small_problems
        events = []

        class Recorder:
            def begin(self, total, label=None):
                events.append("begin")

            def unit_running(self, name, attempt=1):
                events.append("running")

            def unit_done(self, name, wall_seconds=0.0, ok=True):
                events.append("done")

            def unit_retrying(self, name, attempt, reason=None):
                events.append("retrying")

            def unit_quarantined(self, name, attempts=0):
                events.append("quarantined")

            def live_metrics(self, snapshot):
                events.append("live")

            def finish(self):
                events.append("finish")

        campaign = run_campaign(two_profiles, tec, base, workers=2,
                                supervision=SupervisionPolicy(),
                                progress=Recorder())
        assert len(campaign.comparisons) == 2
        assert events.count("running") == 2
        assert events.count("done") == 2
