"""Objective-surface sweeps (Figure 6(a)/(b) machinery)."""

import numpy as np
import pytest

from repro.analysis import sweep_objective_surfaces
from repro.core import Evaluator
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def sweep(tec_problem):
    return sweep_objective_surfaces(tec_problem, omega_points=8,
                                    current_points=5)


class TestSurfaceShape:
    def test_dimensions(self, sweep):
        assert sweep.temperature.shape == (8, 5)
        assert sweep.power.shape == (8, 5)
        assert sweep.feasible.shape == (8, 5)

    def test_runaway_at_zero_omega(self, sweep):
        # Figure 6(a): the omega = 0 column is the dark-red infinity.
        assert sweep.runaway_mask[0].all()

    def test_bounded_at_high_omega(self, sweep):
        assert not sweep.runaway_mask[-1].any()

    def test_power_and_temperature_share_runaway(self, sweep):
        assert ((~np.isfinite(sweep.power))
                == sweep.runaway_mask).all()

    def test_min_power_near_low_omega_low_current(self, sweep,
                                                  tec_problem):
        # Figure 6(b): the power minimum sits near the origin.
        omega, current, _ = sweep.min_power_point()
        assert omega < 0.5 * tec_problem.limits.omega_max
        assert current < 0.5 * tec_problem.limits.i_tec_max

    def test_min_temperature_interior_current(self, sweep, tec_problem):
        # Figure 6(a): the temperature minimum needs nonzero current.
        _, current, _ = sweep.min_temperature_point()
        assert current > 0.0

    def test_feasible_points_below_tmax(self, sweep, tec_problem):
        t_max = tec_problem.limits.t_max
        assert (sweep.temperature[sweep.feasible] < t_max).all()

    def test_runaway_boundary_finite_everywhere(self, sweep):
        # At every sampled current, some omega rescues the chip.
        boundary = sweep.runaway_boundary_omega()
        assert np.isfinite(boundary).all()
        assert (boundary > 0.0).all()


class TestOptions:
    def test_custom_ranges(self, tec_problem):
        sweep = sweep_objective_surfaces(
            tec_problem, omega_points=3, current_points=2,
            omega_range=(100.0, 400.0), current_range=(0.0, 2.0))
        assert sweep.omegas[0] == pytest.approx(100.0)
        assert sweep.omegas[-1] == pytest.approx(400.0)
        assert sweep.currents[-1] == pytest.approx(2.0)

    def test_single_current_column(self, baseline_problem):
        sweep = sweep_objective_surfaces(baseline_problem,
                                         omega_points=4,
                                         current_points=1)
        assert sweep.currents.tolist() == [0.0]

    def test_shared_evaluator_cache(self, tec_problem):
        evaluator = Evaluator(tec_problem)
        sweep_objective_surfaces(tec_problem, omega_points=4,
                                 current_points=3, evaluator=evaluator)
        solves = evaluator.solve_count
        sweep_objective_surfaces(tec_problem, omega_points=4,
                                 current_points=3, evaluator=evaluator)
        assert evaluator.solve_count == solves

    def test_validation(self, tec_problem):
        with pytest.raises(ConfigurationError):
            sweep_objective_surfaces(tec_problem, omega_points=1)
        with pytest.raises(ConfigurationError):
            sweep_objective_surfaces(tec_problem,
                                     omega_range=(400.0, 100.0))
        with pytest.raises(ConfigurationError):
            sweep_objective_surfaces(tec_problem,
                                     current_range=(0.0, 99.0))
