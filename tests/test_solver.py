"""Steady-state solver: leakage loop, warm start, runaway detection."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ThermalRunawayError
from repro.thermal import solve_steady_state


class TestLeakageLoop:
    def test_converges_quickly(self, tec_model, basicmath_power, leakage):
        result = solve_steady_state(tec_model, 262.0, 0.5,
                                    basicmath_power, leakage)
        assert result.stats.converged
        assert result.stats.outer_iterations <= 10

    def test_warm_start_reduces_iterations(self, tec_model,
                                           basicmath_power, leakage):
        cold = solve_steady_state(tec_model, 262.0, 0.5, basicmath_power,
                                  leakage)
        warm = solve_steady_state(tec_model, 263.0, 0.5, basicmath_power,
                                  leakage,
                                  initial_guess=cold.chip_temperatures)
        assert warm.stats.outer_iterations <= cold.stats.outer_iterations

    def test_leakage_power_consistent_with_model(self, tec_model,
                                                 basicmath_power,
                                                 leakage):
        result = solve_steady_state(tec_model, 262.0, 0.0,
                                    basicmath_power, leakage)
        assert result.leakage_power == pytest.approx(
            leakage.total_power(result.chip_temperatures), rel=1e-6)

    def test_leakage_makes_chip_hotter(self, tec_model, basicmath_power,
                                       leakage):
        without = solve_steady_state(tec_model, 262.0, 0.0,
                                     basicmath_power, leakage=None)
        with_leak = solve_steady_state(tec_model, 262.0, 0.0,
                                       basicmath_power, leakage)
        assert with_leak.max_chip_temperature > \
            without.max_chip_temperature

    def test_wrong_guess_shape_rejected(self, tec_model, basicmath_power,
                                        leakage):
        with pytest.raises(ConfigurationError):
            solve_steady_state(tec_model, 262.0, 0.0, basicmath_power,
                               leakage, initial_guess=np.zeros(3))


class TestResultFields:
    def test_tec_power_identity(self, tec_model, basicmath_power,
                                leakage):
        result = solve_steady_state(tec_model, 262.0, 1.0,
                                    basicmath_power, leakage)
        assert result.tec_power == pytest.approx(
            result.tec_heat_released - result.tec_heat_absorbed,
            rel=1e-9)

    def test_zero_current_zero_tec_power(self, tec_model,
                                         basicmath_power, leakage):
        result = solve_steady_state(tec_model, 262.0, 0.0,
                                    basicmath_power, leakage)
        assert result.tec_power == 0.0

    def test_max_is_max_of_cells(self, tec_model, basicmath_power,
                                 leakage):
        result = solve_steady_state(tec_model, 262.0, 0.0,
                                    basicmath_power, leakage)
        assert result.max_chip_temperature == pytest.approx(
            result.chip_temperatures.max())
        assert result.mean_chip_temperature == pytest.approx(
            result.chip_temperatures.mean())

    def test_operating_point_recorded(self, tec_model, basicmath_power,
                                      leakage):
        result = solve_steady_state(tec_model, 111.0, 0.25,
                                    basicmath_power, leakage)
        assert result.omega == 111.0
        assert result.current == 0.25


class TestRunaway:
    def test_runaway_at_zero_fan(self, tec_model, quicksort_power,
                                 leakage):
        # Figure 6(a)'s dark-red region: no bounded steady state at
        # omega = 0 under a heavy workload.
        with pytest.raises(ThermalRunawayError):
            solve_steady_state(tec_model, 0.0, 0.0, quicksort_power,
                               leakage)

    def test_current_alone_cannot_rescue(self, tec_model,
                                         quicksort_power, leakage):
        # The paper: "increasing I_TEC alone cannot rescue the chip".
        for current in (1.0, 3.0, 5.0):
            with pytest.raises(ThermalRunawayError):
                solve_steady_state(tec_model, 0.0, current,
                                   quicksort_power, leakage)

    def test_error_carries_temperature(self, tec_model, quicksort_power,
                                       leakage):
        with pytest.raises(ThermalRunawayError) as excinfo:
            solve_steady_state(tec_model, 0.0, 0.0, quicksort_power,
                               leakage)
        assert excinfo.value.max_temperature > 400.0

    def test_no_runaway_without_leakage(self, tec_model, quicksort_power):
        # Without the leakage feedback the system always has a bounded
        # steady state (it is a passive resistive network).
        result = solve_steady_state(tec_model, 0.0, 0.0, quicksort_power,
                                    leakage=None)
        assert np.isfinite(result.max_chip_temperature)

    def test_fan_rescues_from_runaway(self, tec_model, quicksort_power,
                                      leakage):
        # Raising omega enough restores a bounded steady state.
        result = solve_steady_state(tec_model, 300.0, 0.0,
                                    quicksort_power, leakage)
        assert result.max_chip_temperature < \
            tec_model.config.runaway_ceiling
