"""Command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
        capsys.readouterr()

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert "repro" in capsys.readouterr().out

    def test_unknown_benchmark_rejected(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["oftec", "--benchmark", "nope"])
        capsys.readouterr()


class TestProfilesCommand:
    def test_lists_all_eight(self, capsys):
        assert main(["profiles"]) == 0
        out = capsys.readouterr().out
        for name in ("basicmath", "bitcount", "crc32", "djkstra",
                     "fft", "quicksort", "stringsearch", "susan"):
            assert name in out


class TestOftecCommand:
    def test_text_output(self, capsys):
        code = main(["oftec", "--benchmark", "basicmath",
                     "--resolution", "6"])
        out = capsys.readouterr().out
        assert code == 0
        assert "omega*" in out
        assert "meets T_max" in out

    def test_json_output(self, capsys):
        code = main(["oftec", "--benchmark", "crc32",
                     "--resolution", "6", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["benchmark"] == "crc32"
        assert payload["feasible"] is True
        assert 0.0 < payload["omega_rpm"] <= 5000.0
        assert 0.0 <= payload["i_tec_a"] <= 5.0
        assert payload["total_power_w"] == pytest.approx(
            payload["leakage_power_w"] + payload["tec_power_w"]
            + payload["fan_power_w"], rel=1e-6)


class TestSpiceCommand:
    def test_netlist_to_stdout(self, capsys):
        code = main(["spice", "--benchmark", "crc32",
                     "--resolution", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert out.startswith("*")
        assert "VAMB amb 0 DC" in out
        assert out.rstrip().endswith(".end")

    def test_netlist_to_file(self, tmp_path, capsys):
        path = tmp_path / "net.sp"
        code = main(["spice", "--benchmark", "crc32",
                     "--resolution", "4", "--output", str(path)])
        assert code == 0
        assert "written" in capsys.readouterr().out
        text = path.read_text()
        assert ".op" in text


class TestSweepCommand:
    def test_surfaces_printed(self, capsys):
        code = main(["sweep", "--benchmark", "basicmath",
                     "--resolution", "6", "--omega-points", "5",
                     "--current-points", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "temperature surface" in out
        assert "power surface" in out
        assert "***" in out  # the runaway row


class TestExitCodes:
    def test_codes_are_distinct_and_reserved(self):
        from repro.cli import (
            EXIT_CONFIG_ERROR,
            EXIT_INFEASIBLE,
            EXIT_SOLVER_FAILURE,
        )
        codes = {EXIT_INFEASIBLE, EXIT_SOLVER_FAILURE,
                 EXIT_CONFIG_ERROR}
        assert codes == {3, 4, 5}
        # 0 = success, 1 = generic failure, 2 = argparse usage error.
        assert not codes & {0, 1, 2}

    def _patched_oftec(self, monkeypatch, error):
        import repro.cli as cli

        def boom(*args, **kwargs):
            raise error

        monkeypatch.setattr(cli, "run_oftec", boom)

    def test_infeasible_maps_to_3(self, monkeypatch, capsys):
        from repro.errors import InfeasibleProblemError
        self._patched_oftec(monkeypatch,
                            InfeasibleProblemError("too hot"))
        code = main(["oftec", "--resolution", "4"])
        assert code == 3
        assert "infeasible" in capsys.readouterr().err

    def test_solver_failure_maps_to_4(self, monkeypatch, capsys):
        from repro.errors import SolverError
        self._patched_oftec(monkeypatch, SolverError("broke down"))
        code = main(["oftec", "--resolution", "4"])
        assert code == 4
        assert "solver failure" in capsys.readouterr().err

    def test_solver_subclass_maps_to_4(self, monkeypatch, capsys):
        from repro.errors import SingularNetworkError
        self._patched_oftec(monkeypatch,
                            SingularNetworkError("singular"))
        code = main(["oftec", "--resolution", "4"])
        assert code == 4
        capsys.readouterr()

    def test_config_error_maps_to_5(self, monkeypatch, capsys):
        from repro.errors import ConfigurationError
        self._patched_oftec(monkeypatch, ConfigurationError("bad"))
        code = main(["oftec", "--resolution", "4"])
        assert code == 5
        assert "configuration error" in capsys.readouterr().err


class TestChaosCommand:
    def test_contained_run_exits_zero(self, capsys):
        code = main(["chaos", "--resolution", "4", "--benchmarks", "2",
                     "--seed", "3", "--rate", "0.05",
                     "--max-fires", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "chaos campaign PASSED" in out
        assert "fault fires:" in out
        assert "benchmarks completed:" in out

    def test_selected_fault_kinds(self, capsys):
        code = main(["chaos", "--resolution", "4", "--benchmarks", "1",
                     "--faults", "solve-timeout,nan-power",
                     "--rate", "0.02"])
        out = capsys.readouterr().out
        assert code == 0
        assert "solve-timeout" in out
        assert "singular-network" not in out

    def test_unknown_fault_kind_maps_to_5(self, capsys):
        code = main(["chaos", "--faults", "cosmic-rays"])
        assert code == 5
        assert "unknown fault kind" in capsys.readouterr().err

    def test_json_export(self, tmp_path, capsys):
        path = tmp_path / "chaos.json"
        code = main(["chaos", "--resolution", "4", "--benchmarks", "1",
                     "--rate", "0.05", "--max-fires", "2",
                     "--json", str(path)])
        capsys.readouterr()
        assert code == 0
        payload = json.loads(path.read_text())
        assert "benchmarks" in payload
        assert "feasibility_counts" in payload


class TestStreamingFlags:
    def test_oftec_streams_live_and_openmetrics(self, tmp_path,
                                                capsys):
        live = tmp_path / "live.jsonl"
        om = tmp_path / "metrics.om"
        code = main(["oftec", "--benchmark", "basicmath",
                     "--resolution", "6",
                     "--live-trace", str(live),
                     "--openmetrics", str(om)])
        captured = capsys.readouterr()
        assert code == 0
        assert f"telemetry streamed to {live}" in captured.err
        assert f"telemetry streamed to {om}" in captured.err
        with open(live, encoding="utf-8") as handle:
            records = [json.loads(line) for line in handle
                       if line.strip()]
        assert any(r["record"] == "span" for r in records)
        assert any(r["record"] == "metrics" for r in records)
        text = om.read_text()
        assert text.startswith("# TYPE")
        assert "repro_operator_solves_total" in text
        assert text.endswith("# EOF\n")

    def test_campaign_progress_renders_to_stderr(self, tmp_path,
                                                 capsys):
        code = main(["campaign", "--resolution", "4",
                     "--benchmarks", "2", "--progress"])
        captured = capsys.readouterr()
        assert code == 0
        assert "campaign: 2/2" in captured.err

    def test_sweep_progress(self, capsys):
        code = main(["sweep", "--benchmark", "basicmath",
                     "--resolution", "4", "--omega-points", "3",
                     "--current-points", "3", "--progress"])
        captured = capsys.readouterr()
        assert code == 0
        assert "sweep:" in captured.err


class TestTraceAnalytics:
    def record_trace(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        code = main(["oftec", "--benchmark", "basicmath",
                     "--resolution", "6", "--trace", str(path)])
        assert code == 0
        return path

    def test_flame_to_stdout(self, tmp_path, capsys):
        path = self.record_trace(tmp_path)
        capsys.readouterr()
        code = main(["trace", "flame", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        lines = [line for line in out.splitlines() if line]
        assert lines
        for line in lines:
            stack, count = line.rsplit(" ", 1)
            assert stack
            assert int(count) > 0

    def test_flame_to_file(self, tmp_path, capsys):
        path = self.record_trace(tmp_path)
        output = tmp_path / "flame.folded"
        code = main(["trace", "flame", str(path),
                     "--output", str(output)])
        out = capsys.readouterr().out
        assert code == 0
        assert "folded stacks written to" in out
        assert output.read_text().strip()

    def test_critical_path(self, tmp_path, capsys):
        path = self.record_trace(tmp_path)
        capsys.readouterr()
        code = main(["trace", "critical-path", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert out.startswith("critical path:")
        assert "oftec" in out

    def test_summarize_still_works(self, tmp_path, capsys):
        path = self.record_trace(tmp_path)
        capsys.readouterr()
        code = main(["trace", "summarize", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "spans" in out
