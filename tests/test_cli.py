"""Command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
        capsys.readouterr()

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert "repro" in capsys.readouterr().out

    def test_unknown_benchmark_rejected(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["oftec", "--benchmark", "nope"])
        capsys.readouterr()


class TestProfilesCommand:
    def test_lists_all_eight(self, capsys):
        assert main(["profiles"]) == 0
        out = capsys.readouterr().out
        for name in ("basicmath", "bitcount", "crc32", "djkstra",
                     "fft", "quicksort", "stringsearch", "susan"):
            assert name in out


class TestOftecCommand:
    def test_text_output(self, capsys):
        code = main(["oftec", "--benchmark", "basicmath",
                     "--resolution", "6"])
        out = capsys.readouterr().out
        assert code == 0
        assert "omega*" in out
        assert "meets T_max" in out

    def test_json_output(self, capsys):
        code = main(["oftec", "--benchmark", "crc32",
                     "--resolution", "6", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["benchmark"] == "crc32"
        assert payload["feasible"] is True
        assert 0.0 < payload["omega_rpm"] <= 5000.0
        assert 0.0 <= payload["i_tec_a"] <= 5.0
        assert payload["total_power_w"] == pytest.approx(
            payload["leakage_power_w"] + payload["tec_power_w"]
            + payload["fan_power_w"], rel=1e-6)


class TestSpiceCommand:
    def test_netlist_to_stdout(self, capsys):
        code = main(["spice", "--benchmark", "crc32",
                     "--resolution", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert out.startswith("*")
        assert "VAMB amb 0 DC" in out
        assert out.rstrip().endswith(".end")

    def test_netlist_to_file(self, tmp_path, capsys):
        path = tmp_path / "net.sp"
        code = main(["spice", "--benchmark", "crc32",
                     "--resolution", "4", "--output", str(path)])
        assert code == 0
        assert "written" in capsys.readouterr().out
        text = path.read_text()
        assert ".op" in text


class TestSweepCommand:
    def test_surfaces_printed(self, capsys):
        code = main(["sweep", "--benchmark", "basicmath",
                     "--resolution", "6", "--omega-points", "5",
                     "--current-points", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "temperature surface" in out
        assert "power surface" in out
        assert "***" in out  # the runaway row
