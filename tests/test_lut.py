"""Lookup-table controller."""

import pytest

from repro.core import LookupTableController
from repro.errors import ConfigurationError


@pytest.fixture()
def table(floorplan):
    return LookupTableController(floorplan.unit_names)


class TestLookup:
    def test_empty_table_rejected(self, table):
        with pytest.raises(ConfigurationError, match="empty"):
            table.lookup({"IntExec": 1.0})

    def test_exact_match(self, table, profiles):
        for name, profile in profiles.items():
            table.add_entry(name, profile.unit_power, omega=100.0 + 1,
                            current=0.5)
        omega, current, entry = table.lookup(
            profiles["fft"].unit_power)
        assert entry.label == "fft"

    def test_nearest_by_shape(self, table, profiles):
        table.add_entry("int", profiles["bitcount"].unit_power, 400.0,
                        2.0)
        table.add_entry("fp", profiles["fft"].unit_power, 300.0, 1.0)
        # A scaled bitcount still matches the integer representative.
        query = profiles["bitcount"].scaled(0.9).unit_power
        _, _, entry = table.lookup(query)
        assert entry.label == "int"

    def test_scale_penalty_separates_same_shape(self, table, profiles):
        light = profiles["basicmath"]
        heavy = light.scaled(1.6)
        table.add_entry("light", light.unit_power, 150.0, 0.2)
        table.add_entry("heavy", heavy.unit_power, 300.0, 1.0)
        _, _, entry = table.lookup(light.scaled(1.55).unit_power)
        assert entry.label == "heavy"

    def test_returns_stored_values(self, table, profiles):
        table.add_entry("x", profiles["crc32"].unit_power, 123.0, 0.7)
        omega, current, _ = table.lookup(profiles["crc32"].unit_power)
        assert omega == 123.0
        assert current == 0.7

    def test_negative_power_rejected(self, table):
        with pytest.raises(ConfigurationError):
            table.lookup({"IntExec": -1.0})

    def test_unknown_units_ignored_as_zero(self, table, profiles):
        table.add_entry("x", profiles["crc32"].unit_power, 100.0, 0.5)
        # Querying with a subset of units still resolves.
        omega, _, _ = table.lookup({"IntExec": 5.0})
        assert omega == 100.0


class TestPrecompute:
    def test_precompute_runs_oftec(self, tec_problem, profiles):
        table = LookupTableController(
            tec_problem.coverage.floorplan.unit_names)
        subset = {name: profiles[name].unit_power
                  for name in ("basicmath", "crc32")}
        results = table.precompute(tec_problem, subset)
        assert set(results) == {"basicmath", "crc32"}
        assert len(table.entries) == 2
        for result in results.values():
            assert result.feasible

    def test_lookup_matches_oftec_solution(self, tec_problem, profiles):
        table = LookupTableController(
            tec_problem.coverage.floorplan.unit_names)
        results = table.precompute(
            tec_problem, {"basicmath": profiles["basicmath"].unit_power})
        omega, current, _ = table.lookup(
            profiles["basicmath"].unit_power)
        assert omega == pytest.approx(results["basicmath"].omega_star)
        assert current == pytest.approx(
            results["basicmath"].current_star)
