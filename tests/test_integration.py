"""End-to-end reproduction checks of the paper's headline claims.

These run the real pipeline (at reduced grid resolution for speed) and
assert the *shape* of the published results:

* OFTEC meets the thermal constraint on every benchmark; the no-TEC
  baselines fail on the heavy ones (paper: 5 of 8).
* On benchmarks all methods can cool, OFTEC consumes the least total
  power while sitting coolest.
* A TEC-only system thermal-runs-away.
* The Figure 6(a) landscape: runaway at low omega, interior minima.
"""

import numpy as np
import pytest

from repro import (
    build_cooling_problem,
    mibench_profiles,
    run_fixed_fan_baseline,
    run_oftec,
    run_tec_only,
    run_variable_fan_baseline,
)
from repro.analysis import run_campaign

LIGHT = ("basicmath", "crc32", "stringsearch")
HEAVY = ("bitcount", "djkstra", "fft", "quicksort", "susan")


@pytest.fixture(scope="module")
def full_campaign(tec_problem, baseline_problem, profiles):
    return run_campaign(profiles, tec_problem, baseline_problem)


class TestHeadlineClaims:
    def test_oftec_meets_all_benchmarks(self, full_campaign):
        counts = full_campaign.feasibility_counts()
        assert counts["oftec"] == 8

    def test_baselines_fail_heavy_benchmarks(self, full_campaign):
        # Paper: baselines fail 5 of 8 (the red dashed box in Fig 6(c)).
        for name in HEAVY:
            comparison = full_campaign[name]
            assert not comparison.variable_opt1.feasible, name
            assert not comparison.fixed.feasible, name

    def test_baselines_meet_light_benchmarks(self, full_campaign):
        for name in LIGHT:
            comparison = full_campaign[name]
            assert comparison.variable_opt1.feasible, name
            assert comparison.fixed.feasible, name

    def test_comparable_set_is_the_light_three(self, full_campaign):
        assert set(full_campaign.comparable_benchmarks()) == set(LIGHT)

    def test_oftec_saves_power_on_comparable(self, full_campaign):
        # Paper: 2.6% vs variable-omega and 8.1% vs fixed-omega.  We
        # assert the sign and a sane magnitude band.
        save_var = full_campaign.average_power_saving("variable-omega")
        save_fix = full_campaign.average_power_saving("fixed-omega")
        assert 0.0 < save_var < 0.30
        assert 0.0 < save_fix < 0.40
        assert save_fix > save_var

    def test_oftec_cooler_on_comparable(self, full_campaign):
        # Paper: 3.7 C cooler than variable-omega, 3.0 C than fixed.
        dt_var = full_campaign.average_temperature_delta("variable-omega")
        assert 0.0 < dt_var < 15.0

    def test_opt2_advantage_over_baselines(self, full_campaign):
        # Paper: "more than 13 C lower temperature" on average after
        # Optimization 2.  Accept anything clearly positive.
        assert full_campaign.average_opt2_temperature_advantage() > 5.0

    def test_current_ordering_matches_table2(self, full_campaign):
        # Heavy benchmarks demand more TEC current than light ones.
        light_max = max(full_campaign[n].oftec_opt1.current_star
                        for n in LIGHT)
        heavy_min = min(full_campaign[n].oftec_opt1.current_star
                        for n in HEAVY)
        assert heavy_min > light_max

    def test_fan_speed_ordering_matches_table2(self, full_campaign):
        light_max = max(full_campaign[n].oftec_opt1.omega_star
                        for n in LIGHT)
        heavy_min = min(full_campaign[n].oftec_opt1.omega_star
                        for n in HEAVY)
        assert heavy_min > light_max


class TestTecOnlyRunaway:
    @pytest.mark.parametrize("name", ["basicmath", "quicksort"])
    def test_runaway(self, tec_problem, profiles, name):
        problem = tec_problem.with_profile(profiles[name])
        result = run_tec_only(problem)
        assert result.runaway


class TestSingleBenchmarkEndToEnd:
    def test_fresh_build_from_public_api(self):
        # The README quickstart, as a test.
        profile = mibench_profiles()["basicmath"]
        problem = build_cooling_problem(profile, grid_resolution=6)
        result = run_oftec(problem)
        assert result.feasible
        assert 0.0 < result.omega_star <= 524.0
        assert 0.0 <= result.current_star <= 5.0

    def test_three_methods_ranked(self, tec_problem, baseline_problem):
        oftec = run_oftec(tec_problem)
        variable = run_variable_fan_baseline(baseline_problem)
        fixed = run_fixed_fan_baseline(baseline_problem)
        # Figure 6(f) ordering on a comparable benchmark.
        assert oftec.total_power < variable.total_power \
            < fixed.total_power


class TestGridConvergence:
    def test_results_stable_under_refinement(self, profiles):
        # The optimum should not swing wildly between 6x6 and 10x10.
        results = {}
        for res in (6, 10):
            problem = build_cooling_problem(profiles["basicmath"],
                                            grid_resolution=res)
            results[res] = run_oftec(problem)
        p6 = results[6].total_power
        p10 = results[10].total_power
        assert abs(p6 - p10) / p10 < 0.25
