"""Fan acoustic model and noise-capped operation."""

import pytest

from repro import build_cooling_problem, mibench_profiles, run_oftec
from repro.core import ProblemLimits
from repro.errors import ConfigurationError
from repro.fan import FanNoiseModel, noise_limited_omega_max


class TestNoiseModel:
    def test_reference_point(self):
        model = FanNoiseModel()
        assert model.level(model.reference_omega) == pytest.approx(
            model.reference_level)

    def test_doubling_speed_adds_about_16_dba(self):
        # slope * log10(2) ~ 52 * 0.301 ~ 15.7 dBA per doubling.
        model = FanNoiseModel()
        delta = model.level(400.0) - model.level(200.0)
        assert delta == pytest.approx(52.0 * 0.30103, abs=0.01)

    def test_stopped_fan_silent(self):
        assert FanNoiseModel().level(0.0) == 0.0

    def test_inverse(self):
        model = FanNoiseModel()
        for omega in (100.0, 262.0, 524.0):
            assert model.omega_for_level(model.level(omega)) == \
                pytest.approx(omega)

    def test_monotone(self):
        model = FanNoiseModel()
        levels = [model.level(w) for w in (50.0, 150.0, 350.0, 524.0)]
        assert levels == sorted(levels)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FanNoiseModel(reference_omega=0.0)
        with pytest.raises(ConfigurationError):
            FanNoiseModel(slope=-1.0)
        with pytest.raises(ConfigurationError):
            FanNoiseModel().level(-1.0)


class TestNoiseLimitedBound:
    def test_loose_cap_keeps_physical_limit(self):
        # A 90 dBA cap allows far beyond the physical 524 rad/s.
        assert noise_limited_omega_max(90.0) == pytest.approx(524.0)

    def test_tight_cap_shrinks_bound(self):
        bound = noise_limited_omega_max(38.0)
        assert bound == pytest.approx(209.4, rel=1e-3)

    def test_bound_meets_cap(self):
        model = FanNoiseModel()
        cap = 42.0
        bound = noise_limited_omega_max(cap, model)
        assert model.level(bound) <= cap + 1e-9

    def test_noise_capped_oftec(self):
        # The one-line extension: a 42 dBA office cap becomes a tighter
        # omega_max; OFTEC compensates with more TEC current on a heavy
        # workload (or fails honestly).
        profile = mibench_profiles()["basicmath"]
        capped_omega = noise_limited_omega_max(42.0)
        assert capped_omega < 524.0
        capped = build_cooling_problem(
            profile, grid_resolution=6,
            limits=ProblemLimits(omega_max=capped_omega))
        free = build_cooling_problem(profile, grid_resolution=6)
        capped_result = run_oftec(capped)
        free_result = run_oftec(free)
        assert capped_result.omega_star <= capped_omega + 1e-9
        if capped_result.feasible and free_result.feasible:
            # The acoustic cap can only cost power, never save it
            # (within solver tolerance; the cap may not bind at all on
            # a light workload).
            assert capped_result.total_power >= \
                free_result.total_power * 0.99
