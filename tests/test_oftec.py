"""Algorithm 1 (OFTEC) end-to-end behaviour."""

import pytest

from repro import run_oftec
from repro.core import Evaluator, ProblemLimits, build_cooling_problem
from repro.errors import InfeasibleProblemError


class TestLightWorkload:
    def test_feasible_and_constrained(self, tec_problem):
        result = run_oftec(tec_problem)
        assert result.feasible
        assert result.max_chip_temperature < tec_problem.limits.t_max

    def test_midpoint_already_feasible_skips_opt2(self, tec_problem):
        # Light workloads are feasible at (omega_max/2, I_max/2), so
        # Algorithm 1 should go straight to Optimization 1.
        result = run_oftec(tec_problem)
        assert result.opt2 is None
        assert result.opt1 is not None

    def test_operating_point_within_bounds(self, tec_problem):
        result = run_oftec(tec_problem)
        limits = tec_problem.limits
        assert 0.0 <= result.omega_star <= limits.omega_max
        assert 0.0 <= result.current_star <= limits.i_tec_max

    def test_runtime_recorded(self, tec_problem):
        result = run_oftec(tec_problem)
        assert result.runtime_seconds > 0.0
        assert result.thermal_solves > 0

    def test_result_accessors(self, tec_problem):
        result = run_oftec(tec_problem)
        assert result.total_power == result.evaluation.total_power
        assert result.max_chip_temperature == \
            result.evaluation.max_chip_temperature
        assert result.problem_name == "basicmath"


class TestHeavyWorkload:
    @pytest.fixture(scope="class")
    def tight_problem(self, heavy_tec_problem):
        """A problem whose midpoint violates T_max but is rescuable.

        T_max is placed between the Optimization 2 minimum and the
        midpoint temperature, so Algorithm 1 lines 2-3 must engage.
        """
        from repro.core import minimize_temperature
        evaluator = Evaluator(heavy_tec_problem)
        limits = heavy_tec_problem.limits
        midpoint = evaluator.evaluate(limits.omega_max / 2.0,
                                      limits.i_tec_max / 2.0)
        coolest = minimize_temperature(evaluator)
        t_mid = midpoint.max_chip_temperature
        t_min = coolest.evaluation.max_chip_temperature
        assert t_min < t_mid
        tight = ProblemLimits(t_max=(t_min + t_mid) / 2.0,
                              omega_max=limits.omega_max,
                              i_tec_max=limits.i_tec_max)
        from repro.core import CoolingProblem
        return CoolingProblem(
            heavy_tec_problem.name, heavy_tec_problem.model,
            heavy_tec_problem.leakage, heavy_tec_problem.fan,
            heavy_tec_problem.dynamic_cell_power, tight,
            heavy_tec_problem.coverage)

    def test_feasible_via_opt2(self, tight_problem):
        # The midpoint violates T_max; Algorithm 1 lines 2-3 must kick
        # in and still find a feasible point.
        result = run_oftec(tight_problem)
        assert result.feasible
        assert result.opt2 is not None

    def test_constraint_rides_near_active(self, tight_problem):
        # Optimization 1 trades temperature headroom for power: with a
        # tight threshold the thermal constraint ends up near-active.
        result = run_oftec(tight_problem)
        t_max = tight_problem.limits.t_max
        assert result.max_chip_temperature < t_max
        assert result.max_chip_temperature > t_max - 5.0

    def test_nonzero_tec_current(self, tight_problem):
        # Without TEC help the tight threshold is unreachable, so I* > 0.
        result = run_oftec(tight_problem)
        assert result.current_star > 0.05


class TestInfeasible:
    @pytest.fixture(scope="class")
    def impossible_problem(self, profiles):
        # A T_max below ambient is unreachable by any cooling effort.
        limits = ProblemLimits(t_max=310.0)
        return build_cooling_problem(profiles["quicksort"],
                                     limits=limits, grid_resolution=4)

    def test_returns_failed(self, impossible_problem):
        result = run_oftec(impossible_problem)
        assert not result.feasible
        assert result.opt1 is None

    def test_raises_when_asked(self, impossible_problem):
        with pytest.raises(InfeasibleProblemError):
            run_oftec(impossible_problem, raise_on_infeasible=True)


class TestEvaluatorReuse:
    def test_shared_evaluator_cache(self, tec_problem):
        evaluator = Evaluator(tec_problem)
        first = run_oftec(tec_problem, evaluator=evaluator)
        solves_after_first = evaluator.solve_count
        second = run_oftec(tec_problem, evaluator=evaluator)
        # The second run replays mostly cached evaluations.
        assert evaluator.solve_count - solves_after_first < \
            solves_after_first
        assert second.omega_star == pytest.approx(first.omega_star,
                                                  rel=0.05)
