"""Cross-cutting edge cases the per-module suites don't reach."""

import numpy as np
import pytest

from repro.core import (
    Evaluator,
    minimize_power,
    minimize_temperature,
    plan_transient_boost,
    reoptimize_policy,
    run_online_controller,
)
from repro.thermal import (
    boost_window_recommendation,
    export_spice_netlist,
    extract_time_constants,
    parse_netlist_system,
    solve_steady_state,
)


class TestSolverEdges:
    def test_grid_method_on_one_dimensional_problem(self,
                                                    baseline_problem):
        evaluator = Evaluator(baseline_problem)
        outcome = minimize_power(evaluator, x0=(262.0, 0.0),
                                 method="grid")
        assert outcome.evaluation.feasible
        assert outcome.current == 0.0

    def test_trust_constr_on_one_dimensional_problem(self,
                                                     baseline_problem):
        evaluator = Evaluator(baseline_problem)
        outcome = minimize_temperature(evaluator, method="trust-constr")
        assert outcome.current == 0.0
        assert outcome.evaluation.feasible

    def test_early_stop_on_immediately_feasible_point(self,
                                                      tec_problem):
        # The very first evaluation (the midpoint) is already below the
        # threshold: the early stop must fire on it.
        evaluator = Evaluator(tec_problem)
        outcome = minimize_temperature(
            evaluator, early_stop_below=tec_problem.limits.t_max)
        assert outcome.early_stopped
        assert outcome.evaluations <= 3

    def test_minimize_power_from_boundary_start(self, tec_problem):
        # Starting exactly on the omega upper bound must not wedge the
        # normalized solver.
        evaluator = Evaluator(tec_problem)
        outcome = minimize_power(
            evaluator, x0=(tec_problem.limits.omega_max, 0.5))
        assert outcome.evaluation.feasible

    def test_zero_current_bound_clamps_everything(self,
                                                  baseline_problem):
        evaluator = Evaluator(baseline_problem)
        for current in (0.5, 5.0):
            assert evaluator.evaluate(262.0, current).current == 0.0


class TestSpiceEdges:
    def test_multichannel_current_exports(self, tec_model,
                                          basicmath_power, tec_array):
        # Per-cell currents flow through the netlist path too.
        cell_current = tec_array.cell_current(0.0).copy()
        covered = np.flatnonzero(tec_array.coverage_mask)[:10]
        cell_current[covered] = 2.0
        steady = solve_steady_state(tec_model, 300.0, cell_current,
                                    basicmath_power, leakage=None)
        netlist = export_spice_netlist(tec_model, 300.0, cell_current,
                                       basicmath_power)
        matrix, rhs = parse_netlist_system(
            netlist, tec_model.network.node_count)
        temps = np.linalg.solve(matrix, rhs)
        assert np.allclose(temps, steady.temperatures, atol=1e-6)

    def test_zero_power_netlist(self, tec_model, grid):
        netlist = export_spice_netlist(
            tec_model, 262.0, 0.0, np.zeros(grid.cell_count))
        matrix, rhs = parse_netlist_system(
            netlist, tec_model.network.node_count)
        temps = np.linalg.solve(matrix, rhs)
        # No power anywhere: everything sits at ambient.
        assert np.allclose(temps, tec_model.config.ambient, atol=1e-9)


class TestBoostWindowIntegration:
    def test_mode_analysis_feeds_boost_plan(self, tec_problem):
        # The recommended window from the eigenmode analysis plugs
        # straight into the boost planner.
        from repro import run_oftec
        analysis = extract_time_constants(tec_problem.model,
                                          omega=262.0, modes=4)
        window = boost_window_recommendation(analysis,
                                             die_fraction=0.1)
        result = run_oftec(tec_problem)
        plan = plan_transient_boost(tec_problem, result,
                                    duration=window)
        assert plan.boost_duration == pytest.approx(window)
        assert plan.boost_current >= plan.base_current


class TestOnlineReoptimizePolicy:
    def test_oracle_policy_drives_loop(self, tec_problem, profiles,
                                       trace_generator):
        # One control interval with full re-optimization (the expensive
        # oracle the LUT approximates).
        trace = trace_generator.generate(profiles["crc32"],
                                         duration=0.6,
                                         sample_interval=0.05)
        outcome = run_online_controller(
            tec_problem, trace, reoptimize_policy(tec_problem),
            control_interval=0.6, dt=0.2)
        assert len(outcome.decisions) == 1
        decision = outcome.decisions[0]
        assert 0.0 < decision.omega <= tec_problem.limits.omega_max
        assert outcome.violation_time == 0.0
