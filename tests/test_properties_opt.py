"""Property-based tests on the optimizer (hypothesis).

These are expensive per example (each runs Algorithm 1), so example
counts are small; the properties are the contract no workload may break.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import run_oftec
from repro.core import Evaluator


class TestOFTECProperties:
    @settings(max_examples=5, deadline=None)
    @given(scale=st.floats(0.5, 1.1))
    def test_result_always_within_bounds_and_feasible(self, tec_problem,
                                                      profiles, scale):
        problem = tec_problem.with_profile(
            profiles["basicmath"].scaled(scale))
        result = run_oftec(problem)
        limits = problem.limits
        assert 0.0 <= result.omega_star <= limits.omega_max + 1e-9
        assert 0.0 <= result.current_star <= limits.i_tec_max + 1e-9
        assert result.feasible
        assert result.max_chip_temperature < limits.t_max

    @settings(max_examples=4, deadline=None)
    @given(scale=st.floats(0.55, 0.95))
    def test_heavier_workload_costs_at_least_as_much(self, tec_problem,
                                                     profiles, scale):
        light = run_oftec(tec_problem.with_profile(
            profiles["basicmath"].scaled(scale)))
        heavy = run_oftec(tec_problem.with_profile(
            profiles["basicmath"].scaled(min(scale * 1.3, 1.2))))
        # More dynamic power can never make the optimum cheaper.
        assert heavy.total_power >= light.total_power * 0.995

    @settings(max_examples=4, deadline=None)
    @given(scale=st.floats(0.5, 1.1))
    def test_reported_point_matches_reevaluation(self, tec_problem,
                                                 profiles, scale):
        # The returned (omega*, I*) reproduces the reported objective
        # when evaluated from scratch.
        problem = tec_problem.with_profile(
            profiles["basicmath"].scaled(scale))
        result = run_oftec(problem)
        check = Evaluator(problem).evaluate(result.omega_star,
                                            result.current_star)
        assert check.total_power == pytest.approx(result.total_power,
                                                  rel=1e-6)
        assert check.max_chip_temperature == pytest.approx(
            result.max_chip_temperature, abs=1e-3)
