"""Property-based tests (hypothesis) on core data structures/invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.fan import FanModel, HeatSinkFanConductance
from repro.geometry import Floorplan, FloorplanUnit, Grid, Rect
from repro.geometry import CellCoverage
from repro.leakage import CellLeakageModel, tangent_linearization
from repro.power import BenchmarkProfile
from repro.tec import TECDevice
from repro.thermal import NodeKind, ThermalNetwork
from repro.thermal.network import NodeInfo

finite_positive = st.floats(min_value=1e-3, max_value=1e3,
                            allow_nan=False, allow_infinity=False)


class TestRectProperties:
    @given(x=st.floats(-10, 10), y=st.floats(-10, 10),
           w=finite_positive, h=finite_positive)
    def test_area_positive(self, x, y, w, h):
        assert Rect(x, y, w, h).area > 0.0

    @given(x1=st.floats(-5, 5), y1=st.floats(-5, 5),
           w1=st.floats(0.1, 5), h1=st.floats(0.1, 5),
           x2=st.floats(-5, 5), y2=st.floats(-5, 5),
           w2=st.floats(0.1, 5), h2=st.floats(0.1, 5))
    def test_intersection_symmetric_and_bounded(self, x1, y1, w1, h1,
                                                x2, y2, w2, h2):
        a = Rect(x1, y1, w1, h1)
        b = Rect(x2, y2, w2, h2)
        overlap = a.intersection_area(b)
        assert overlap == pytest.approx(b.intersection_area(a))
        assert 0.0 <= overlap <= min(a.area, b.area) * (1 + 1e-9)

    @given(w=finite_positive, h=finite_positive,
           factor=st.floats(0.1, 10))
    def test_scaling_scales_area_quadratically(self, w, h, factor):
        r = Rect(0.0, 0.0, w, h)
        assert r.scaled(factor).area == pytest.approx(
            factor ** 2 * r.area, rel=1e-9)


class TestGridProperties:
    @given(nx=st.integers(1, 12), ny=st.integers(1, 12))
    def test_cells_tile_exactly(self, nx, ny):
        g = Grid(1.0, 2.0, nx, ny)
        total = nx * ny * g.cell_area
        assert total == pytest.approx(2.0, rel=1e-9)

    @given(nx=st.integers(1, 10), ny=st.integers(1, 10),
           flat=st.integers(0, 99))
    def test_flat_roundtrip(self, nx, ny, flat):
        g = Grid(1.0, 1.0, nx, ny)
        flat = flat % g.cell_count
        ix, iy = g.cell_coords(flat)
        assert g.flat_index(ix, iy) == flat


class TestCoverageProperties:
    @given(powers=st.lists(st.floats(0.0, 50.0), min_size=2,
                           max_size=2),
           res=st.integers(2, 9))
    def test_power_map_conserves_total(self, powers, res):
        fp = Floorplan([
            FloorplanUnit("a", Rect(0.0, 0.0, 1.0, 2.0)),
            FloorplanUnit("b", Rect(1.0, 0.0, 1.0, 2.0)),
        ])
        cov = CellCoverage(fp, Grid.for_floorplan(fp, res, res))
        pmap = cov.power_map({"a": powers[0], "b": powers[1]})
        assert pmap.sum() == pytest.approx(sum(powers), rel=1e-9,
                                           abs=1e-12)
        assert (pmap >= 0.0).all()


class TestFanProperties:
    @given(omega=st.floats(0.0, 524.0))
    def test_power_nonnegative(self, omega):
        assert FanModel().power(omega) >= 0.0

    @given(omega1=st.floats(0.0, 524.0), omega2=st.floats(0.0, 524.0))
    def test_power_monotone(self, omega1, omega2):
        fan = FanModel()
        lo, hi = sorted((omega1, omega2))
        assert fan.power(lo) <= fan.power(hi) + 1e-12

    @given(omega1=st.floats(0.0, 524.0), omega2=st.floats(0.0, 524.0))
    def test_conductance_monotone(self, omega1, omega2):
        g = HeatSinkFanConductance()
        lo, hi = sorted((omega1, omega2))
        assert g.conductance(lo) <= g.conductance(hi) + 1e-12

    @given(omega=st.floats(0.0, 524.0))
    def test_conductance_at_least_natural(self, omega):
        g = HeatSinkFanConductance()
        assert g.conductance(omega) >= g.g_natural - 1e-12


class TestTECProperties:
    @given(t_cold=st.floats(280.0, 380.0), dt=st.floats(-20.0, 20.0),
           current=st.floats(0.0, 5.0))
    def test_power_identity(self, t_cold, dt, current):
        device = TECDevice(2e-3, 1.4e-2, 0.1, 1e-6)
        t_hot = t_cold + dt
        q_c = device.heat_absorbed(t_cold, t_hot, current)
        q_h = device.heat_released(t_cold, t_hot, current)
        p = device.power(t_cold, t_hot, current)
        assert p == pytest.approx(q_h - q_c, rel=1e-9, abs=1e-12)

    @given(t_cold=st.floats(280.0, 380.0), dt=st.floats(0.0, 20.0),
           current=st.floats(0.0, 5.0))
    def test_power_nonnegative_pumping_uphill(self, t_cold, dt, current):
        # Pumping heat against a positive dT always costs energy.
        device = TECDevice(2e-3, 1.4e-2, 0.1, 1e-6)
        assert device.power(t_cold, t_cold + dt, current) >= -1e-12


class TestLeakageProperties:
    @given(p0=st.floats(0.01, 10.0), beta=st.floats(0.005, 0.08),
           t=st.floats(300.0, 390.0))
    def test_positive_and_increasing(self, p0, beta, t):
        model = CellLeakageModel(np.array([p0]), beta, 350.0)
        power_t = model.power(np.array([t]))[0]
        power_hotter = model.power(np.array([t + 1.0]))[0]
        assert power_t > 0.0
        assert power_hotter > power_t

    @given(p0=st.floats(0.01, 10.0), beta=st.floats(0.005, 0.08),
           t_ref=st.floats(310.0, 380.0))
    def test_tangent_underestimates_convex_exponential(self, p0, beta,
                                                       t_ref):
        # exp is convex, so its tangent lies below it everywhere.
        model = CellLeakageModel(np.array([p0]), beta, 350.0)
        taylor = tangent_linearization(model, t_ref)
        for t in (t_ref - 20.0, t_ref + 20.0):
            exact = model.power(np.array([t]))[0]
            approx = taylor.power(np.array([t]))[0]
            assert approx <= exact + 1e-9


class TestProfileProperties:
    @given(powers=st.dictionaries(
        st.sampled_from(["a", "b", "c", "d"]),
        st.floats(0.0, 100.0), min_size=1),
        factor=st.floats(0.0, 10.0))
    def test_scaling_scales_total(self, powers, factor):
        profile = BenchmarkProfile("x", powers)
        assert profile.scaled(factor).total_power == pytest.approx(
            factor * profile.total_power, rel=1e-9, abs=1e-9)


class TestNetworkProperties:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000), n=st.integers(2, 12))
    def test_random_grounded_network_conserves_energy(self, seed, n):
        # Any connected, grounded random network: injected power equals
        # outflow to ambient, and all temperatures sit above ambient.
        rng = np.random.default_rng(seed)
        net = ThermalNetwork()
        nodes = [net.add_node(NodeInfo(f"n{i}", NodeKind.BULK, "l"))
                 for i in range(n)]
        for i in range(1, n):
            j = int(rng.integers(0, i))
            net.add_conductance(nodes[i], nodes[j],
                                float(rng.uniform(0.1, 5.0)))
        grounded = {0: float(rng.uniform(0.5, 2.0))}
        if n > 4:
            grounded[n - 1] = float(rng.uniform(0.5, 2.0))
        for idx, g in grounded.items():
            net.add_grounded_conductance(nodes[idx], g)
        net.finalize()
        t_amb = 300.0
        power = rng.uniform(0.0, 3.0, size=n)
        rhs = power.copy()
        for idx, g in grounded.items():
            rhs[idx] += g * t_amb
        temps = net.solve(np.zeros(n), rhs)
        outflow = sum(g * (temps[idx] - t_amb)
                      for idx, g in grounded.items())
        assert outflow == pytest.approx(power.sum(), rel=1e-6, abs=1e-9)
        assert (temps >= t_amb - 1e-9).all()
