"""Tests for repro.obs: tracing, metrics, export, pipeline telemetry."""

import io
import json

import pytest

from repro import build_cooling_problem, run_oftec
from repro.analysis import run_campaign
from repro.errors import ConfigurationError, SolverError
from repro.faults import full_fault_plan, run_chaos_campaign
from repro.io import campaign_to_dict
from repro.obs import (
    Counter,
    DEFAULT_COUNT_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetrics,
    Tracer,
    format_trace_summary,
    is_enabled,
    load_trace,
    read_trace_jsonl,
    save_trace,
    stopwatch,
    summarize_spans,
    telemetry_session,
    traced,
    write_trace_jsonl,
)
from repro.obs import runtime as obs_runtime
from repro.obs.tracing import NOOP_SPAN, NOOP_TRACER, NULL_SPAN_CONTEXT


class TestClock:
    def test_stopwatch_runs_from_construction(self):
        watch = stopwatch()
        assert watch.running
        first = watch.elapsed
        second = watch.elapsed
        assert second >= first >= 0.0

    def test_stop_freezes_elapsed(self):
        watch = stopwatch()
        frozen = watch.stop()
        assert not watch.running
        assert watch.elapsed == frozen

    def test_restart(self):
        watch = stopwatch()
        watch.stop()
        watch.restart()
        assert watch.running

    def test_context_manager_observes_metric_when_enabled(self):
        with telemetry_session() as (_tracer, metrics):
            with stopwatch("test.wall_seconds"):
                pass
        histogram = metrics.histogram("test.wall_seconds")
        assert histogram.count == 1
        assert histogram.total >= 0.0

    def test_context_manager_silent_when_disabled(self):
        registry = MetricsRegistry()
        with stopwatch("test.wall_seconds"):
            pass
        assert registry.names() == []


class TestMetrics:
    def test_counter_increments(self):
        counter = Counter("hits")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            Counter("hits").inc(-1)

    def test_gauge_last_write_wins(self):
        gauge = Gauge("depth")
        gauge.set(3)
        gauge.set(1.5)
        assert gauge.value == 1.5

    def test_histogram_buckets_and_overflow(self):
        histogram = Histogram("iters", buckets=(1.0, 2.0, 5.0))
        for value in (0.5, 1.0, 3.0, 99.0):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.bucket_counts == [2, 0, 1, 1]
        assert histogram.min == 0.5
        assert histogram.max == 99.0
        assert histogram.mean == pytest.approx(103.5 / 4)

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ConfigurationError):
            Histogram("bad", buckets=(2.0, 1.0))
        with pytest.raises(ConfigurationError):
            Histogram("empty", buckets=())

    def test_registry_reuses_instruments(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("h") is registry.histogram("h")

    def test_registry_rejects_type_conflicts(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ConfigurationError):
            registry.gauge("x")
        with pytest.raises(ConfigurationError):
            registry.histogram("x")

    def test_snapshot_layout(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.gauge("g").set(7.0)
        registry.histogram("h", buckets=DEFAULT_COUNT_BUCKETS) \
            .observe(3)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"c": 2}
        assert snapshot["gauges"] == {"g": 7.0}
        entry = snapshot["histograms"]["h"]
        assert entry["count"] == 1
        assert entry["sum"] == 3.0
        assert entry["min"] == entry["max"] == 3.0
        assert [1.0, 0] in entry["buckets"]
        json.dumps(snapshot)  # must be JSON-friendly

    def test_empty_histogram_snapshot_omits_min_max(self):
        registry = MetricsRegistry()
        registry.histogram("h")
        entry = registry.snapshot()["histograms"]["h"]
        assert "min" not in entry and "max" not in entry

    def test_null_metrics_shared_and_empty(self):
        null = NullMetrics()
        assert null.counter("a") is null.counter("b")
        null.counter("a").inc()
        null.gauge("g").set(1)
        null.histogram("h").observe(2)
        assert null.snapshot() == {}


class TestTracer:
    def test_nesting_sets_parent_ids(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
            assert tracer.current_span is outer
        assert tracer.current_span is None
        assert [s.kind for s in tracer.finished] == ["inner", "outer"]

    def test_exception_recorded_and_reraised(self):
        tracer = Tracer()
        with pytest.raises(SolverError):
            with tracer.span("attempt") as span:
                raise SolverError("injected")
        assert span.status == "error"
        assert "SolverError: injected" in span.error
        assert span.finished

    def test_event_attaches_to_current_span(self):
        tracer = Tracer()
        with tracer.span("solve") as span:
            tracer.event("fault.injected", kind="nan-power")
        assert [e.name for e in span.events] == ["fault.injected"]
        assert span.events[0].attributes == {"kind": "nan-power"}

    def test_event_without_span_is_orphaned(self):
        tracer = Tracer()
        tracer.event("startup")
        assert [e.name for e in tracer.orphan_events] == ["startup"]

    def test_end_span_closes_deeper_spans(self):
        tracer = Tracer()
        outer = tracer.start_span("outer")
        tracer.start_span("inner")
        tracer.end_span(outer)
        assert tracer.open_span_count == 0
        assert all(s.finished for s in tracer.finished)

    def test_max_spans_drops_oldest(self):
        tracer = Tracer(max_spans=3)
        for index in range(5):
            with tracer.span("s", str(index)):
                pass
        assert len(tracer.finished) == 3
        assert tracer.dropped_spans == 2
        assert [s.name for s in tracer.finished] == ["2", "3", "4"]

    def test_max_spans_validated(self):
        with pytest.raises(ConfigurationError):
            Tracer(max_spans=0)

    def test_spans_of_kind_and_excerpt(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b", "named"):
            pass
        assert len(tracer.spans_of_kind("a")) == 1
        excerpt = tracer.excerpt(limit=1)
        assert len(excerpt) == 1
        assert excerpt[0].startswith("b:named")
        assert tracer.excerpt(limit=0) == []

    def test_noop_tracer_constant(self):
        assert NOOP_TRACER.span("x") is NULL_SPAN_CONTEXT
        assert NOOP_TRACER.start_span("x") is NOOP_SPAN
        with NOOP_TRACER.span("x") as span:
            span.add_event("e")
            span.set_attribute("k", 1)
        NOOP_TRACER.event("e")
        assert NOOP_TRACER.finished == []
        assert NOOP_TRACER.excerpt() == []


class TestRuntime:
    def test_disabled_by_default(self):
        assert not is_enabled()
        assert obs_runtime.span("x") is NULL_SPAN_CONTEXT

    def test_session_installs_and_restores(self):
        with telemetry_session() as (tracer, metrics):
            assert is_enabled()
            assert obs_runtime.get_tracer() is tracer
            assert obs_runtime.get_metrics() is metrics
        assert not is_enabled()
        assert obs_runtime.get_tracer() is NOOP_TRACER

    def test_session_restores_after_failure(self):
        with pytest.raises(SolverError):
            with telemetry_session():
                raise SolverError("boom")
        assert not is_enabled()

    def test_sessions_nest(self):
        with telemetry_session() as (outer_tracer, _):
            with telemetry_session() as (inner_tracer, _):
                assert obs_runtime.get_tracer() is inner_tracer
            assert obs_runtime.get_tracer() is outer_tracer
        assert not is_enabled()

    def test_span_and_event_helpers(self):
        with telemetry_session() as (tracer, _):
            with obs_runtime.span("stage", "opt1") as span:
                obs_runtime.event("checkpoint", step=2)
            assert span.kind == "stage"
        assert [s.kind for s in tracer.finished] == ["stage"]
        assert tracer.finished[0].events[0].name == "checkpoint"

    def test_traced_decorator(self):
        @traced("helper")
        def double(value):
            return 2 * value

        assert double(3) == 6  # disabled: plain passthrough
        with telemetry_session() as (tracer, _):
            assert double(4) == 8
        assert [s.kind for s in tracer.finished] == ["helper"]
        assert tracer.finished[0].name == "double"


class TestExport:
    def _sample_tracer(self):
        tracer = Tracer()
        tracer.event("orphan.start")
        with tracer.span("campaign"):
            with tracer.span("benchmark", "basicmath", omega=262.0):
                tracer.event("fault.injected", kind="nan-power")
            with pytest.raises(SolverError):
                with tracer.span("benchmark", "fft"):
                    raise SolverError("bad")
        return tracer

    def test_jsonl_round_trip(self, tmp_path):
        tracer = self._sample_tracer()
        path = tmp_path / "trace.jsonl"
        written = save_trace(tracer, str(path))
        assert written == 3
        lines = path.read_text().splitlines()
        meta = json.loads(lines[0])
        assert meta["record"] == "meta"
        assert meta["spans"] == 3
        assert meta["open_spans"] == 0
        records = load_trace(str(path))
        # virtual root (orphan events) + three real spans
        assert len(records) == 4
        root = records[0]
        assert root["span_id"] == 0 and root["kind"] == "trace"
        assert root["events"][0]["name"] == "orphan.start"
        by_kind = {}
        for record in records[1:]:
            by_kind.setdefault(record["kind"], []).append(record)
        assert len(by_kind["benchmark"]) == 2
        failed = [r for r in by_kind["benchmark"]
                  if r["status"] == "error"]
        assert len(failed) == 1
        assert "SolverError" in failed[0]["error"]

    def test_writer_returns_span_count(self):
        tracer = self._sample_tracer()
        stream = io.StringIO()
        assert write_trace_jsonl(tracer, stream) == 3

    @pytest.mark.parametrize("line,fragment", [
        ("not json", "not valid JSON"),
        ("[1, 2]", "not a JSON object"),
        ('{"record": "mystery"}', "unknown record type"),
        ('{"record": "span"}', "missing kind/span_id"),
    ])
    def test_malformed_lines_rejected(self, line, fragment):
        with pytest.raises(ConfigurationError, match=fragment):
            read_trace_jsonl([line])

    def test_blank_lines_and_meta_skipped(self):
        lines = ['{"record": "meta", "format": 1}', "",
                 '{"record": "span", "kind": "x", "span_id": 1}']
        assert len(read_trace_jsonl(lines)) == 1

    def test_load_trace_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cannot read"):
            load_trace(str(tmp_path / "absent.jsonl"))

    def test_summarize_percentiles_and_parents(self):
        spans = [{"record": "span", "span_id": 1, "parent_id": None,
                  "kind": "run", "duration_s": 1.0}]
        spans += [{"record": "span", "span_id": 10 + i, "parent_id": 1,
                   "kind": "solve", "duration_s": float(i + 1) / 10,
                   "status": "error" if i == 0 else "ok",
                   "events": [{"name": "e", "time_s": 0.0,
                               "attributes": {}}] if i < 2 else []}
                  for i in range(10)]
        summary = summarize_spans(spans)
        solve = summary["solve"]
        assert solve["count"] == 10
        assert solve["errors"] == 1
        assert solve["events"] == 2
        assert solve["p50_s"] == pytest.approx(0.5)
        assert solve["p95_s"] == pytest.approx(1.0)
        assert solve["parent_kind"] == "run"
        assert summary["run"]["parent_kind"] is None

    def test_format_summary_tree(self):
        tracer = self._sample_tracer()
        stream = io.StringIO()
        write_trace_jsonl(tracer, stream)
        stream.seek(0)
        text = format_trace_summary(read_trace_jsonl(stream))
        lines = text.splitlines()
        assert lines[0].startswith("trace: 4 spans")
        body = "\n".join(lines[1:])
        assert "campaign" in body
        assert "  benchmark" in body  # nested under campaign
        assert "n=2" in body
        assert "errors=1" in body
        assert "events=1" in body
        for column in ("total=", "p50=", "p95="):
            assert column in body

    def test_format_summary_empty(self):
        assert format_trace_summary([]) == "trace: no spans"


@pytest.fixture(scope="module")
def small_problems(profiles):
    tec = build_cooling_problem(profiles["basicmath"],
                                grid_resolution=4)
    base = build_cooling_problem(profiles["basicmath"],
                                 with_tec=False, grid_resolution=4)
    return tec, base


class TestTracedPipeline:
    def test_oftec_produces_span_tree(self, small_problems):
        tec, _ = small_problems
        with telemetry_session() as (tracer, metrics):
            result = run_oftec(tec)
        assert result.feasible
        kinds = {span.kind for span in tracer.finished}
        assert {"oftec", "evaluate"} <= kinds
        snapshot = metrics.snapshot()
        assert snapshot["counters"]["evaluator.cache.misses"] > 0
        assert "operator.solve_seconds" in snapshot["histograms"]

    def test_traced_chaos_attaches_fault_events(self, profiles,
                                                small_problems,
                                                tmp_path):
        tec, base = small_problems
        few = dict(list(profiles.items())[:2])
        plan = full_fault_plan(seed=7, rate=0.05)
        with telemetry_session() as (tracer, metrics):
            report = run_chaos_campaign(few, tec, base, plan=plan)
        # Chaos contract holds under tracing: nothing escapes.
        assert report.ok, report.unhandled
        assert sum(report.fired.values()) > 0

        # Every injected fault appears as an event on the span of the
        # solve it perturbed.
        events = [(span, event)
                  for span in tracer.finished
                  for event in span.events
                  if event.name == "fault.injected"]
        assert len(events) == sum(report.fired.values())
        assert all(span.kind in ("evaluate", "evaluate_many")
                   for span, _ in events)
        by_kind = {}
        for _, event in events:
            kind = event.attributes["kind"]
            by_kind[kind] = by_kind.get(kind, 0) + 1
        assert by_kind == {kind: count
                           for kind, count in report.fired.items()
                           if count}

        # Counters and gauges agree with the injector's own counts.
        snapshot = metrics.snapshot()
        for kind, count in report.fired.items():
            if count:
                assert snapshot["counters"][
                    f"faults.injected.{kind}"] == count
            assert snapshot["gauges"][f"chaos.fired.{kind}"] == count

        # The trace exports as parseable JSONL.
        path = tmp_path / "chaos.jsonl"
        save_trace(tracer, str(path))
        records = load_trace(str(path))
        assert records
        assert format_trace_summary(records)

    def test_failure_reports_carry_trace_excerpt(self, profiles,
                                                 small_problems):
        tec, base = small_problems
        few = dict(list(profiles.items())[:2])
        plan = full_fault_plan(seed=7, rate=0.05)
        with telemetry_session():
            report = run_chaos_campaign(few, tec, base, plan=plan)
        assert report.campaign.failures, "seed 7 should inject failures"
        for failure in report.campaign.failures:
            assert failure.trace_excerpt
            assert any("attempt" in line or "ladder" in line
                       for line in failure.trace_excerpt)


def _strip_timing(payload):
    """Drop wall-clock fields, which legitimately differ run to run."""
    timing_keys = {"runtime_ms", "wall_seconds",
                   "average_oftec_runtime_ms"}
    if isinstance(payload, dict):
        return {key: _strip_timing(value)
                for key, value in payload.items()
                if key not in timing_keys}
    if isinstance(payload, list):
        return [_strip_timing(item) for item in payload]
    return payload


class TestBitIdentity:
    def test_tracing_does_not_change_campaign_results(self, profiles,
                                                      small_problems):
        tec, base = small_problems
        plain = run_campaign(profiles, tec, base)
        with telemetry_session():
            traced_run = run_campaign(profiles, tec, base)
        assert not is_enabled()
        plain_dict = _strip_timing(campaign_to_dict(plain))
        traced_dict = _strip_timing(campaign_to_dict(traced_run))
        # Bit-identical modulo wall-clock: tracing is read-only.
        assert plain_dict == traced_dict
