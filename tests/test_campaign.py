"""Campaign runner and report formatting (Figures 6(c)-(f), Table 2)."""

import pytest

from repro.analysis import (
    format_comparison_table,
    format_surface,
    format_table2,
    run_campaign,
    sweep_objective_surfaces,
)
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def mini_campaign(tec_problem, baseline_problem, profiles):
    # Two benchmarks keep the module fast: one light, one heavy.
    subset = {"basicmath": profiles["basicmath"],
              "quicksort": profiles["quicksort"]}
    return run_campaign(subset, tec_problem, baseline_problem,
                        include_tec_only=True)


class TestCampaign:
    def test_runs_all_benchmarks(self, mini_campaign):
        assert mini_campaign.benchmark_names == ["basicmath",
                                                 "quicksort"]

    def test_lookup_by_name(self, mini_campaign):
        assert mini_campaign["quicksort"].name == "quicksort"
        with pytest.raises(ConfigurationError):
            mini_campaign["nope"]

    def test_oftec_feasible_everywhere(self, mini_campaign):
        counts = mini_campaign.feasibility_counts()
        assert counts["oftec"] == 2

    def test_baselines_fail_heavy(self, mini_campaign):
        comparison = mini_campaign["quicksort"]
        assert not comparison.variable_opt1.feasible
        assert not comparison.fixed.feasible
        assert comparison.oftec_opt1.feasible

    def test_comparable_is_light_only(self, mini_campaign):
        assert mini_campaign.comparable_benchmarks() == ["basicmath"]

    def test_oftec_saves_power_on_comparable(self, mini_campaign):
        assert mini_campaign.average_power_saving("variable-omega") > 0.0
        assert mini_campaign.average_power_saving("fixed-omega") > 0.0

    def test_oftec_cooler_on_comparable(self, mini_campaign):
        assert mini_campaign.average_temperature_delta(
            "variable-omega") > 0.0

    def test_opt2_advantage_positive(self, mini_campaign):
        # Figure 6(c): OFTEC's coolest point beats both baselines'.
        assert mini_campaign.average_opt2_temperature_advantage() > 0.0

    def test_opt2_oftec_spends_more_power(self, mini_campaign):
        # Figure 6(d): when minimizing temperature, OFTEC burns the
        # most cooling power (the TECs run hard).
        for comparison in mini_campaign.comparisons:
            assert comparison.oftec_opt2.evaluation.total_power > \
                comparison.variable_opt2.evaluation.total_power

    def test_tec_only_always_runs_away(self, mini_campaign):
        for comparison in mini_campaign.comparisons:
            assert comparison.tec_only is not None
            assert comparison.tec_only.runaway

    def test_runtime_positive(self, mini_campaign):
        assert mini_campaign.average_oftec_runtime() > 0.0
        assert mini_campaign.wall_seconds > 0.0

    def test_template_validation(self, tec_problem, baseline_problem,
                                 profiles):
        with pytest.raises(ConfigurationError):
            run_campaign({"x": profiles["fft"]}, baseline_problem,
                         baseline_problem)
        with pytest.raises(ConfigurationError):
            run_campaign({"x": profiles["fft"]}, tec_problem,
                         tec_problem)


class TestReports:
    def test_opt1_table_mentions_benchmarks(self, mini_campaign):
        text = format_comparison_table(mini_campaign, "opt1")
        assert "basicmath" in text
        assert "quicksort" in text
        assert "OFTEC" in text
        assert "Optimization 1" in text

    def test_opt1_table_summarizes_savings(self, mini_campaign):
        text = format_comparison_table(mini_campaign, "opt1")
        assert "saves" in text
        assert "thermal constraint met" in text

    def test_opt2_table(self, mini_campaign):
        text = format_comparison_table(mini_campaign, "opt2")
        assert "Optimization 2" in text

    def test_infeasible_marked(self, mini_campaign):
        text = format_comparison_table(mini_campaign, "opt1")
        assert "NO" in text

    def test_bad_objective(self, mini_campaign):
        with pytest.raises(ConfigurationError):
            format_comparison_table(mini_campaign, "opt3")

    def test_table2(self, mini_campaign):
        text = format_table2(mini_campaign)
        assert "I*_TEC" in text
        assert "runtime" in text
        assert "average" in text

    def test_surface_rendering(self, tec_problem):
        sweep = sweep_objective_surfaces(tec_problem, omega_points=4,
                                         current_points=3)
        text = format_surface(sweep, "temperature")
        assert "***" in text  # the runaway row at omega = 0
        assert "omega" in text
        power_text = format_surface(sweep, "power")
        assert "power surface" in power_text
        with pytest.raises(ConfigurationError):
            format_surface(sweep, "entropy")
