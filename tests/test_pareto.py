"""Power/temperature Pareto frontier."""

import numpy as np
import pytest

from repro.analysis import trace_pareto_frontier
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def frontier(tec_problem):
    return trace_pareto_frontier(tec_problem, points=5)


class TestFrontierShape:
    def test_has_points(self, frontier):
        assert len(frontier.points) >= 3

    def test_monotone_tradeoff(self, frontier):
        # Tighter thresholds cost more power (within solver noise the
        # frontier is non-increasing in T_max).
        temps = [p.t_max for p in frontier.points]
        powers = [p.total_power for p in frontier.points]
        assert temps == sorted(temps)
        for p_cold, p_warm in zip(powers, powers[1:]):
            assert p_warm <= p_cold * 1.05

    def test_constraints_respected(self, frontier):
        for point in frontier.points:
            assert point.achieved_temperature < point.t_max

    def test_coolest_anchor_below_all_thresholds(self, frontier):
        assert frontier.coolest_temperature < frontier.points[0].t_max

    def test_interpolation(self, frontier):
        mid_t = (frontier.points[0].t_max
                 + frontier.points[-1].t_max) / 2.0
        p_mid = frontier.power_at(mid_t)
        assert frontier.powers.min() <= p_mid <= frontier.powers.max()

    def test_marginal_slope_negative(self, frontier):
        # More allowed temperature => less power: negative slope.
        slope = frontier.marginal_power_per_kelvin()
        assert np.median(slope) < 0.0


class TestTecValue:
    def test_hybrid_frontier_dominates_baseline(self, tec_problem,
                                                baseline_problem):
        # At the thresholds both systems can reach, the hybrid system
        # needs no more power; and it reaches colder thresholds.
        hybrid = trace_pareto_frontier(tec_problem, points=4)
        passive = trace_pareto_frontier(baseline_problem, points=4)
        assert hybrid.coolest_temperature < passive.coolest_temperature
        t_common = max(hybrid.points[0].t_max, passive.points[0].t_max)
        assert hybrid.power_at(t_common) <= \
            passive.power_at(t_common) * 1.05


class TestFormatting:
    def test_format_pareto(self, frontier):
        from repro.analysis import format_pareto
        text = format_pareto(frontier)
        assert "Pareto frontier" in text
        assert "T_max (C)" in text
        # One line per point plus three header lines.
        assert len(text.splitlines()) == 3 + len(frontier.points)


class TestValidation:
    def test_too_few_points(self, tec_problem):
        with pytest.raises(ConfigurationError):
            trace_pareto_frontier(tec_problem, points=1)

    def test_empty_range(self, tec_problem):
        with pytest.raises(ConfigurationError, match="Empty threshold"):
            trace_pareto_frontier(tec_problem,
                                  t_max_range=(400.0, 390.0))
