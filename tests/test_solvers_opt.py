"""Optimization 1 & 2 solver backends."""

import numpy as np
import pytest

from repro.core import (
    Evaluator,
    SOLVER_METHODS,
    minimize_power,
    minimize_temperature,
)
from repro.errors import SolverError


class TestMinimizeTemperature:
    def test_beats_midpoint(self, tec_problem):
        evaluator = Evaluator(tec_problem)
        midpoint = evaluator.evaluate(
            tec_problem.limits.omega_max / 2.0,
            tec_problem.current_upper_bound / 2.0)
        outcome = minimize_temperature(evaluator)
        assert outcome.evaluation.max_chip_temperature <= \
            midpoint.max_chip_temperature + 1e-6

    def test_beats_coarse_grid(self, tec_problem):
        # The optimizer must match or beat an 5x5 exhaustive scan.
        evaluator = Evaluator(tec_problem)
        outcome = minimize_temperature(evaluator)
        best_grid = np.inf
        for omega in np.linspace(50.0, 524.0, 5):
            for current in np.linspace(0.0, 5.0, 5):
                t = evaluator.temperature_objective(float(omega),
                                                    float(current))
                best_grid = min(best_grid, t)
        assert outcome.evaluation.max_chip_temperature <= best_grid + 0.5

    def test_early_stop(self, heavy_tec_problem):
        evaluator = Evaluator(heavy_tec_problem)
        t_max = heavy_tec_problem.limits.t_max
        outcome = minimize_temperature(evaluator, early_stop_below=t_max)
        assert outcome.evaluation.max_chip_temperature < t_max
        # Early-stopped runs typically use far fewer evaluations than a
        # full minimization.
        assert outcome.early_stopped or outcome.success

    def test_baseline_one_dimensional(self, baseline_problem):
        evaluator = Evaluator(baseline_problem)
        outcome = minimize_temperature(evaluator)
        assert outcome.current == 0.0
        assert outcome.evaluation.feasible

    def test_within_bounds(self, tec_problem):
        evaluator = Evaluator(tec_problem)
        outcome = minimize_temperature(evaluator)
        assert 0.0 <= outcome.omega <= tec_problem.limits.omega_max
        assert 0.0 <= outcome.current <= tec_problem.limits.i_tec_max

    def test_unknown_method(self, tec_problem):
        with pytest.raises(SolverError):
            minimize_temperature(Evaluator(tec_problem),
                                 method="nonsense")


class TestMinimizePower:
    def test_feasible_result(self, tec_problem):
        evaluator = Evaluator(tec_problem)
        start = minimize_temperature(evaluator)
        outcome = minimize_power(
            evaluator, x0=(start.omega, start.current))
        assert outcome.evaluation.feasible

    def test_improves_on_start(self, tec_problem):
        evaluator = Evaluator(tec_problem)
        start = minimize_temperature(evaluator)
        outcome = minimize_power(
            evaluator, x0=(start.omega, start.current))
        assert outcome.evaluation.total_power <= \
            start.evaluation.total_power + 1e-9

    def test_beats_feasible_grid(self, tec_problem):
        evaluator = Evaluator(tec_problem)
        start = minimize_temperature(evaluator)
        outcome = minimize_power(
            evaluator, x0=(start.omega, start.current))
        t_max = tec_problem.limits.t_max
        best = np.inf
        for omega in np.linspace(50.0, 524.0, 6):
            for current in np.linspace(0.0, 5.0, 6):
                ev = evaluator.evaluate(float(omega), float(current))
                if ev.feasible:
                    best = min(best, ev.total_power)
        assert outcome.evaluation.total_power <= best * 1.02
        assert outcome.evaluation.max_chip_temperature < t_max

    def test_grid_method(self, tec_problem):
        evaluator = Evaluator(tec_problem)
        outcome = minimize_power(evaluator, x0=(262.0, 1.0),
                                 method="grid")
        assert outcome.evaluation.feasible
        assert outcome.method == "grid"

    def test_trust_constr_method(self, tec_problem):
        evaluator = Evaluator(tec_problem)
        outcome = minimize_power(evaluator, x0=(262.0, 1.0),
                                 method="trust-constr")
        assert outcome.evaluation.feasible

    def test_methods_agree_roughly(self, tec_problem):
        # The paper's point: all three CNLP techniques find similar
        # optima on this mildly non-convex landscape.
        powers = {}
        for method in SOLVER_METHODS:
            evaluator = Evaluator(tec_problem)
            start = minimize_temperature(evaluator, method="slsqp")
            outcome = minimize_power(
                evaluator, x0=(start.omega, start.current),
                method=method)
            powers[method] = outcome.evaluation.total_power
        values = list(powers.values())
        assert max(values) < min(values) * 1.15

    def test_evaluation_counter(self, tec_problem):
        evaluator = Evaluator(tec_problem)
        outcome = minimize_power(evaluator, x0=(262.0, 1.0))
        assert outcome.evaluations > 0
