"""Result/campaign serialization."""

import json

import pytest

from repro import run_oftec, run_variable_fan_baseline
from repro.analysis import run_campaign
from repro.io import (
    baseline_result_to_dict,
    campaign_to_dict,
    oftec_result_to_dict,
    save_campaign,
)


@pytest.fixture(scope="module")
def oftec_result(tec_problem):
    return run_oftec(tec_problem)


@pytest.fixture(scope="module")
def mini_campaign(tec_problem, baseline_problem, profiles):
    subset = {"basicmath": profiles["basicmath"]}
    return run_campaign(subset, tec_problem, baseline_problem)


class TestResultDicts:
    def test_oftec_fields(self, oftec_result):
        payload = oftec_result_to_dict(oftec_result)
        assert payload["benchmark"] == "basicmath"
        assert payload["feasible"] is True
        assert payload["evaluation"]["total_power_w"] == pytest.approx(
            oftec_result.total_power)
        assert payload["evaluation"]["max_temperature_c"] == \
            pytest.approx(oftec_result.max_chip_temperature - 273.15)

    def test_baseline_fields(self, baseline_problem):
        result = run_variable_fan_baseline(baseline_problem)
        payload = baseline_result_to_dict(result)
        assert payload["controller"] == "variable-omega"
        assert payload["i_tec_a"] == 0.0

    def test_json_serializable(self, oftec_result):
        text = json.dumps(oftec_result_to_dict(oftec_result))
        assert "basicmath" in text


class TestCampaignCsv:
    def test_rows_and_header(self, mini_campaign, tmp_path):
        import csv

        from repro.io import CSV_COLUMNS, campaign_rows, \
            save_campaign_csv
        rows = campaign_rows(mini_campaign)
        # 5 rows per benchmark without the TEC-only sweep.
        assert len(rows) == 5
        assert all(len(row) == len(CSV_COLUMNS) for row in rows)
        path = tmp_path / "campaign.csv"
        save_campaign_csv(mini_campaign, path)
        with open(path, newline="", encoding="utf-8") as f:
            parsed = list(csv.reader(f))
        assert parsed[0] == CSV_COLUMNS
        assert len(parsed) == 6
        assert parsed[1][0] == "basicmath"

    def test_methods_covered(self, mini_campaign):
        from repro.io import campaign_rows
        methods = {row[1] for row in campaign_rows(mini_campaign)}
        assert methods == {"oftec", "variable-omega", "fixed-omega"}


class TestCampaignDict:
    def test_structure(self, mini_campaign):
        payload = campaign_to_dict(mini_campaign)
        assert len(payload["benchmarks"]) == 1
        assert payload["feasibility_counts"]["oftec"] == 1
        assert payload["comparable_benchmarks"] == ["basicmath"]
        assert payload["power_saving_vs_variable"] > 0.0

    def test_save_roundtrip(self, mini_campaign, tmp_path):
        path = tmp_path / "campaign.json"
        save_campaign(mini_campaign, path)
        with open(path, encoding="utf-8") as f:
            loaded = json.load(f)
        assert loaded["benchmarks"][0]["benchmark"] == "basicmath"
        assert loaded["average_oftec_runtime_ms"] > 0.0
