"""Resilient solve pipeline: ladder, budgets, graceful degradation."""

import pytest

from repro import CoolingProblem, build_cooling_problem, run_oftec
from repro.core import (
    Evaluator,
    ResiliencePolicy,
    ResilientSolver,
    failure_report_from_exception,
    run_oftec_resilient,
)
from repro.errors import (
    ConfigurationError,
    EvaluationBudgetError,
    SingularNetworkError,
    SolverError,
    ThermalRunawayError,
)
from repro.faults import (
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultSpec,
    FaultyEvaluator,
)
from repro.leakage import lumped_fixed_point


class TestResiliencePolicy:
    def test_defaults_are_valid(self):
        policy = ResiliencePolicy()
        assert policy.ladder == ("slsqp", "trust-constr", "grid")

    @pytest.mark.parametrize("kwargs", [
        {"ladder": ()},
        {"ladder": ("newton",)},
        {"retries_per_method": -1},
        {"restart_perturbation": 0.75},
        {"restart_perturbation": -0.1},
        {"max_evaluations": 0},
        {"max_iterations": 0},
        {"dvfs_tolerance": 0.0},
        {"dvfs_tolerance": 1.0},
    ])
    def test_invalid_policy_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            ResiliencePolicy(**kwargs)


class TestEvaluationBudget:
    def test_budget_exhaustion_raises(self, tec_problem):
        evaluator = Evaluator(tec_problem)
        evaluator.set_solve_budget(2)
        evaluator.evaluate(100.0, 0.5)
        evaluator.evaluate(200.0, 1.0)
        with pytest.raises(EvaluationBudgetError):
            evaluator.evaluate(300.0, 1.5)

    def test_cache_hits_are_free(self, tec_problem):
        evaluator = Evaluator(tec_problem)
        evaluator.set_solve_budget(1)
        evaluator.evaluate(100.0, 0.5)
        # Same point again: served from cache, no budget consumed.
        evaluator.evaluate(100.0, 0.5)
        with pytest.raises(EvaluationBudgetError):
            evaluator.evaluate(200.0, 1.0)

    def test_budget_reset_and_clear(self, tec_problem):
        evaluator = Evaluator(tec_problem)
        evaluator.set_solve_budget(1)
        evaluator.evaluate(100.0, 0.5)
        evaluator.set_solve_budget(1)
        evaluator.evaluate(200.0, 1.0)
        evaluator.set_solve_budget(None)
        evaluator.evaluate(300.0, 1.5)

    def test_invalid_budget_rejected(self, tec_problem):
        evaluator = Evaluator(tec_problem)
        with pytest.raises(ConfigurationError):
            evaluator.set_solve_budget(0)


class TestFailureReport:
    def test_chain_walk_recovers_condition_estimate(self):
        try:
            try:
                raise ValueError("root cause")
            except ValueError as root:
                raise SingularNetworkError(
                    "singular", condition_estimate=1e15) from root
        except SingularNetworkError as singular:
            outer = SolverError("ladder exhausted")
            outer.__cause__ = singular
        report = failure_report_from_exception(
            "bench", "some-stage", outer,
            last_iterate=(100.0, 1.0))
        assert report.benchmark == "bench"
        assert report.stage == "some-stage"
        assert report.error_type == "SolverError"
        assert len(report.exception_chain) == 3
        assert report.exception_chain[0].startswith("SolverError")
        assert report.exception_chain[-1].startswith("ValueError")
        assert report.condition_estimate == 1e15
        assert report.last_iterate == (100.0, 1.0)


class TestFallbackLadder:
    def test_no_faults_bit_identical_to_plain_oftec(self, tec_problem):
        plain = run_oftec(tec_problem)
        resilient = run_oftec_resilient(tec_problem)
        assert resilient.result is not None
        assert resilient.result.omega_star == plain.omega_star
        assert resilient.result.current_star == plain.current_star
        assert resilient.result.total_power == plain.total_power
        assert resilient.failures == []
        assert not resilient.degraded_to_dvfs

    def test_forced_slsqp_failure_recovers_via_grid(self, tec_problem):
        clean = run_oftec(tec_problem)
        # Fire one injected timeout on the first fresh solve *after*
        # the midpoint evaluation: it lands inside the slsqp attempt,
        # which must then hand over to the grid rung.
        plan = FaultPlan(seed=5, specs=(
            FaultSpec(kind=FaultKind.SOLVE_TIMEOUT, rate=1.0,
                      start_call=1, max_fires=1),))
        faulty = FaultyEvaluator(tec_problem, FaultInjector(plan))
        policy = ResiliencePolicy(ladder=("slsqp", "grid"),
                                  retries_per_method=0)
        outcome = run_oftec_resilient(tec_problem, policy=policy,
                                      evaluator=faulty)
        assert outcome.result is not None and outcome.result.feasible
        records = [(a.method, a.success, a.error_type)
                   for a in outcome.attempts]
        assert ("slsqp", False, "SolveTimeoutError") in records
        assert any(method == "grid" and success
                   for method, success, _ in records)
        assert outcome.result.omega_star \
            == pytest.approx(clean.omega_star, rel=0.01)
        assert outcome.result.current_star \
            == pytest.approx(clean.current_star, rel=0.01, abs=0.01)
        assert outcome.result.total_power \
            == pytest.approx(clean.total_power, rel=0.01)

    def test_exhausted_ladder_yields_failure_report(self, tec_problem):
        # A 3-solve budget starves every rung including the grid scan.
        policy = ResiliencePolicy(ladder=("slsqp", "grid"),
                                  retries_per_method=0,
                                  max_evaluations=3)
        solver = ResilientSolver(Evaluator(tec_problem), policy)
        outcome = solver.minimize_temperature()
        assert outcome.outcome is None
        assert not outcome.succeeded
        assert len(outcome.attempts) == 2
        assert all(not a.success for a in outcome.attempts)
        failure = outcome.failure
        assert failure is not None
        assert failure.error_type == "EvaluationBudgetError"
        assert failure.stage == "minimize-temperature"
        assert failure.last_iterate is not None
        assert len(failure.attempts) == 2

    def test_budget_cleared_after_ladder(self, tec_problem):
        evaluator = Evaluator(tec_problem)
        policy = ResiliencePolicy(ladder=("slsqp",),
                                  retries_per_method=0,
                                  max_evaluations=3)
        ResilientSolver(evaluator, policy).minimize_temperature()
        # The try/finally must have cleared the per-attempt budget.
        for index in range(5):
            evaluator.evaluate(50.0 + index, 0.1)


class TestGracefulDegradation:
    def test_infeasible_problem_degrades_to_dvfs(self, profiles):
        small = build_cooling_problem(profiles["basicmath"],
                                      grid_resolution=4)
        hot = CoolingProblem(
            "hot", small.model, small.leakage, small.fan,
            small.dynamic_cell_power * 8.0, small.limits,
            small.coverage, small.fan_heat_fraction)
        policy = ResiliencePolicy(ladder=("slsqp",),
                                  retries_per_method=0,
                                  dvfs_tolerance=0.35)
        outcome = run_oftec_resilient(hot, policy=policy)
        assert not outcome.feasible
        assert outcome.degraded_to_dvfs
        assert outcome.throttle is not None
        if outcome.result is not None:
            assert outcome.result.feasible is False
        if outcome.throttle.feasible:
            assert outcome.throttle.scaling < 1.0

    def test_degradation_can_be_disabled(self, profiles):
        small = build_cooling_problem(profiles["basicmath"],
                                      grid_resolution=4)
        hot = CoolingProblem(
            "hot", small.model, small.leakage, small.fan,
            small.dynamic_cell_power * 8.0, small.limits,
            small.coverage, small.fan_heat_fraction)
        policy = ResiliencePolicy(ladder=("slsqp",),
                                  retries_per_method=0,
                                  degrade_to_dvfs=False)
        outcome = run_oftec_resilient(hot, policy=policy)
        assert not outcome.feasible
        assert not outcome.degraded_to_dvfs
        assert outcome.throttle is None


class TestRunawayBoundary:
    AMBIENT = 300.0

    def leak(self, gain):
        return lambda t: gain * max(t - self.AMBIENT, 0.0)

    def test_below_unity_gain_converges(self):
        # Feedback gain k/g = 0.99 < 1: fixed point at
        # ambient + P / (g - k).
        result = lumped_fixed_point(5e-4, 1.0, self.AMBIENT,
                                    self.leak(0.99))
        assert result.temperature == pytest.approx(
            self.AMBIENT + 5e-4 / 0.01, abs=1e-3)

    def test_unity_gain_never_converges(self):
        # k/g = 1.0 exactly: updates march linearly, no fixed point.
        with pytest.raises(ThermalRunawayError):
            lumped_fixed_point(5e-4, 1.0, self.AMBIENT, self.leak(1.0))

    def test_above_unity_gain_detected_early(self):
        # k/g = 1.01: growing updates trip the divergence detector long
        # before the iteration cap or the runaway ceiling.
        with pytest.raises(ThermalRunawayError) as excinfo:
            lumped_fixed_point(5e-4, 1.0, self.AMBIENT, self.leak(1.01))
        assert "diverging" in str(excinfo.value)
