"""Cross-validation of calibrated vs simulated power profiles."""

import pytest

from repro.errors import ConfigurationError
from repro.power import BenchmarkProfile, mibench_profiles
from repro.uarch import (
    compare_profiles,
    compare_suites,
    format_suite_agreement,
    mibench_programs,
    simulate_power_trace,
    spearman_correlation,
)


class TestSpearman:
    def test_perfect_agreement(self):
        assert spearman_correlation([1, 2, 3], [10, 20, 30]) == \
            pytest.approx(1.0)

    def test_perfect_disagreement(self):
        assert spearman_correlation([1, 2, 3], [30, 20, 10]) == \
            pytest.approx(-1.0)

    def test_rank_based_not_value_based(self):
        # A monotone nonlinear transform leaves rho at 1.
        a = [1.0, 2.0, 3.0, 4.0]
        b = [value ** 3 for value in a]
        assert spearman_correlation(a, b) == pytest.approx(1.0)

    def test_ties_averaged(self):
        rho = spearman_correlation([1.0, 1.0, 2.0], [1.0, 2.0, 3.0])
        assert -1.0 <= rho <= 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            spearman_correlation([1.0], [2.0])
        with pytest.raises(ConfigurationError):
            spearman_correlation([1.0, 1.0], [1.0, 1.0])


class TestCompareProfiles:
    def test_identical_profiles(self):
        profile = BenchmarkProfile("x", {"a": 1.0, "b": 2.0, "c": 3.0})
        agreement = compare_profiles("x", profile, profile)
        assert agreement.unit_rank_correlation == pytest.approx(1.0)
        assert agreement.top_unit_match

    def test_too_few_shared_units(self):
        a = BenchmarkProfile("x", {"a": 1.0, "b": 2.0, "c": 3.0})
        b = BenchmarkProfile("x", {"a": 1.0, "z": 2.0, "y": 3.0})
        with pytest.raises(ConfigurationError, match="share only"):
            compare_profiles("x", a, b)


class TestSuiteCrossValidation:
    @pytest.fixture(scope="class")
    def agreement(self):
        calibrated = mibench_profiles()
        simulated = {
            name: simulate_power_trace(program).max_profile()
            for name, program in mibench_programs().items()
        }
        return compare_suites(calibrated, simulated)

    def test_structural_agreement_is_strong(self, agreement):
        # The simulator was built from the benchmarks' published
        # characters, not fitted to the tables — yet the unit rankings
        # must correlate well on average.
        assert agreement.mean_unit_correlation > 0.5

    def test_heavy_light_ordering_agrees(self, agreement):
        # Both sources agree on which workloads are the heavy ones.
        assert agreement.total_power_rank_correlation > 0.5

    def test_int_kernels_match_top_unit(self, agreement):
        per = {a.benchmark: a for a in agreement.per_benchmark}
        assert per["bitcount"].top_unit_match

    def test_report(self, agreement):
        text = format_suite_agreement(agreement)
        assert "unit-rank rho" in text
        assert "bitcount" in text

    def test_disjoint_suites_rejected(self):
        a = {"only_here": BenchmarkProfile("x", {"a": 1.0})}
        b = {"only_there": BenchmarkProfile("y", {"a": 1.0})}
        with pytest.raises(ConfigurationError):
            compare_suites(a, b)
