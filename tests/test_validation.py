"""Analytic 1-D stack validation against the full 3-D network."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.fan import HeatSinkFanConductance
from repro.materials import baseline_package_stack, default_package_stack
from repro.thermal import (
    build_package_model,
    format_stack_profile,
    layer_vertical_resistances,
    one_dimensional_stack_profile,
    solve_steady_state,
)


class TestLayerResistances:
    def test_tim_dominates_thin_layers(self):
        stack = default_package_stack()
        r = layer_vertical_resistances(stack)
        # Paste layers resist far more than the copper plates (TIM2 vs
        # the thick 7 mm sink is the narrowest margin).
        assert r["tim1"] > 10.0 * r["spreader"]
        assert r["tim2"] > 2.0 * r["heatsink"]

    def test_values_match_formula(self):
        stack = default_package_stack()
        r = layer_vertical_resistances(stack)
        chip = stack["chip"]
        expected = chip.thickness / (chip.material.conductivity
                                     * chip.footprint_area)
        assert r["chip"] == pytest.approx(expected)


class TestAnalyticProfile:
    def test_temperatures_decrease_upward(self):
        stack = baseline_package_stack()
        profile = one_dimensional_stack_profile(
            stack, power=40.0, omega=262.0, ambient=318.0)
        temps = profile.layer_temperatures
        assert temps["chip"] > temps["spreader"] > temps["heatsink"]
        assert temps["heatsink"] > 318.0

    def test_sink_drop_matches_conductance(self):
        g = HeatSinkFanConductance()
        profile = one_dimensional_stack_profile(
            baseline_package_stack(), power=40.0, omega=262.0,
            ambient=318.0, sink_conductance=g)
        assert profile.sink_to_ambient_drop == pytest.approx(
            40.0 / g.conductance(262.0))

    def test_theta_ja_power_invariant(self):
        # theta_JA is a property of the stack, not the load.
        stack = baseline_package_stack()
        p1 = one_dimensional_stack_profile(stack, 20.0, 262.0, 318.0)
        p2 = one_dimensional_stack_profile(stack, 60.0, 262.0, 318.0)
        assert p1.junction_to_ambient_resistance == pytest.approx(
            p2.junction_to_ambient_resistance)

    def test_zero_power_is_isothermal(self):
        profile = one_dimensional_stack_profile(
            baseline_package_stack(), power=0.0, omega=262.0,
            ambient=318.0)
        temps = list(profile.layer_temperatures.values())
        assert all(t == pytest.approx(318.0) for t in temps)

    def test_validation_errors(self):
        stack = baseline_package_stack()
        with pytest.raises(ConfigurationError):
            one_dimensional_stack_profile(stack, -1.0, 262.0, 318.0)
        with pytest.raises(ConfigurationError):
            one_dimensional_stack_profile(stack, 1.0, 262.0, -318.0)

    def test_format(self):
        stack = baseline_package_stack()
        profile = one_dimensional_stack_profile(stack, 40.0, 262.0,
                                                318.0)
        text = format_stack_profile(profile, stack)
        assert "theta_JA" in text
        assert "chip" in text


class TestAgainstFullNetwork:
    def test_network_bracketed_by_analytic_bound(self, grid):
        # Uniform power, no leakage, no TEC: the 1-D chain ignores
        # constriction (each layer isothermal over its full footprint),
        # so it lower-bounds the 3-D junction temperature; the 3-D
        # answer must sit above it but within the spreading-correction
        # scale (not, say, 2x hotter).
        stack = baseline_package_stack()
        model = build_package_model(stack, grid)
        power_total = 40.0
        cells = grid.cell_count
        uniform = np.full(cells, power_total / cells)
        omega = 262.0
        network = solve_steady_state(model, omega, 0.0, uniform,
                                     leakage=None)
        analytic = one_dimensional_stack_profile(
            stack, power_total, omega, model.config.ambient)

        t_network = network.mean_chip_temperature
        t_analytic = analytic.junction_temperature
        assert t_network >= t_analytic - 0.5
        drop_analytic = t_analytic - model.config.ambient
        drop_network = t_network - model.config.ambient
        assert drop_network < 2.0 * drop_analytic

    def test_sink_drop_agrees_exactly(self, grid):
        # The sink-to-ambient interface is lumped in both models, so
        # the *mean sink* temperature rise must match almost exactly
        # (modulo the small PCB leak path).
        stack = baseline_package_stack()
        model = build_package_model(stack, grid)
        power_total = 40.0
        uniform = np.full(grid.cell_count,
                          power_total / grid.cell_count)
        omega = 262.0
        network = solve_steady_state(model, omega, 0.0, uniform,
                                     leakage=None)
        analytic = one_dimensional_stack_profile(
            stack, power_total, omega, model.config.ambient)
        sink_nodes = model._sink_amb_nodes
        weights = model._sink_amb_weights
        mean_sink = float(np.sum(
            network.temperatures[sink_nodes] * weights))
        network_drop = mean_sink - model.config.ambient
        assert network_drop == pytest.approx(
            analytic.sink_to_ambient_drop, rel=0.15)
