"""Benchmark profiles, power traces, and the trace generator."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.power import (
    BenchmarkProfile,
    MIBENCH_NAMES,
    PowerTrace,
    TraceGenerator,
    mibench_profiles,
)


class TestBenchmarkProfile:
    def test_total_power(self):
        profile = BenchmarkProfile("x", {"a": 1.0, "b": 2.0})
        assert profile.total_power == pytest.approx(3.0)

    def test_scaled(self):
        profile = BenchmarkProfile("x", {"a": 1.0, "b": 2.0}).scaled(2.0)
        assert profile.total_power == pytest.approx(6.0)

    def test_with_total(self):
        profile = BenchmarkProfile("x", {"a": 1.0, "b": 3.0})
        rescaled = profile.with_total(8.0)
        assert rescaled.total_power == pytest.approx(8.0)
        assert rescaled.unit_power["a"] == pytest.approx(2.0)

    def test_negative_power_rejected(self):
        with pytest.raises(ConfigurationError):
            BenchmarkProfile("x", {"a": -1.0})

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            BenchmarkProfile("x", {})

    def test_as_dict_is_copy(self):
        profile = BenchmarkProfile("x", {"a": 1.0})
        d = profile.as_dict()
        d["a"] = 99.0
        assert profile.unit_power["a"] == 1.0


class TestMiBenchProfiles:
    def test_eight_benchmarks(self):
        profiles = mibench_profiles()
        assert set(profiles) == set(MIBENCH_NAMES)
        assert len(profiles) == 8

    def test_units_exist_on_ev6(self, floorplan):
        for profile in mibench_profiles().values():
            for unit in profile.unit_power:
                assert unit in floorplan

    def test_heavy_light_split(self):
        # The calibrated totals separate the paper's heavy five from the
        # light three (Figure 6(c)'s red dashed box).
        profiles = mibench_profiles()
        light = {"basicmath", "crc32", "stringsearch"}
        heavy = set(MIBENCH_NAMES) - light
        max_light = max(profiles[n].total_power for n in light)
        min_heavy = min(profiles[n].total_power for n in heavy)
        assert max_light < min_heavy

    def test_int_benchmarks_heat_integer_core(self):
        profiles = mibench_profiles()
        bitcount = profiles["bitcount"]
        assert bitcount.unit_power["IntExec"] > \
            bitcount.unit_power.get("FPAdd", 0.0)

    def test_fp_benchmarks_heat_fp_cluster(self):
        fft = mibench_profiles()["fft"]
        assert fft.unit_power["FPAdd"] > fft.unit_power.get("IntQ", 0.0)

    def test_global_scale(self):
        scaled = mibench_profiles(scale=0.5)
        normal = mibench_profiles()
        for name in MIBENCH_NAMES:
            assert scaled[name].total_power == pytest.approx(
                0.5 * normal[name].total_power)

    def test_per_benchmark_totals(self):
        profiles = mibench_profiles(totals={"crc32": 99.0})
        assert profiles["crc32"].total_power == pytest.approx(99.0)
        assert profiles["fft"].total_power != pytest.approx(99.0)

    def test_negative_scale_rejected(self):
        with pytest.raises(ConfigurationError):
            mibench_profiles(scale=-1.0)


class TestPowerTrace:
    def make_trace(self):
        times = np.array([0.0, 1.0, 2.0, 3.0])
        samples = np.array([[1.0, 2.0],
                            [3.0, 1.0],
                            [2.0, 4.0],
                            [1.0, 1.0]])
        return PowerTrace("demo", ["a", "b"], times, samples)

    def test_basic_properties(self):
        trace = self.make_trace()
        assert trace.sample_count == 4
        assert trace.duration == pytest.approx(3.0)

    def test_unit_series(self):
        trace = self.make_trace()
        assert trace.unit_series("b") == pytest.approx([2.0, 1.0, 4.0,
                                                        1.0])
        with pytest.raises(ConfigurationError):
            trace.unit_series("c")

    def test_total_series(self):
        trace = self.make_trace()
        assert trace.total_series() == pytest.approx([3.0, 4.0, 6.0, 2.0])

    def test_max_profile(self):
        profile = self.make_trace().max_profile()
        assert profile.unit_power == {"a": 3.0, "b": 4.0}

    def test_mean_profile(self):
        profile = self.make_trace().mean_profile()
        assert profile.unit_power["a"] == pytest.approx(7.0 / 4.0)

    def test_at_zero_order_hold(self):
        trace = self.make_trace()
        assert trace.at(1.5)["a"] == pytest.approx(3.0)
        assert trace.at(-1.0)["a"] == pytest.approx(1.0)
        assert trace.at(99.0)["b"] == pytest.approx(1.0)

    def test_window(self):
        sub = self.make_trace().window(1.0, 2.0)
        assert sub.sample_count == 2
        with pytest.raises(ConfigurationError):
            self.make_trace().window(2.0, 1.0)
        with pytest.raises(ConfigurationError):
            self.make_trace().window(10.0, 11.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PowerTrace("x", ["a"], np.array([0.0, 0.0]),
                       np.zeros((2, 1)))
        with pytest.raises(ConfigurationError):
            PowerTrace("x", ["a"], np.array([0.0, 1.0]),
                       np.zeros((3, 1)))
        with pytest.raises(ConfigurationError):
            PowerTrace("x", ["a", "a"], np.array([0.0, 1.0]),
                       np.zeros((2, 2)))
        with pytest.raises(ConfigurationError):
            PowerTrace("x", ["a"], np.array([0.0, 1.0]),
                       np.array([[1.0], [-1.0]]))


class TestConcatenateTraces:
    def make(self, name, units, values):
        times = np.array([0.1, 0.2, 0.3])
        samples = np.tile(np.asarray(values, dtype=float), (3, 1))
        from repro.power import PowerTrace
        return PowerTrace(name, units, times, samples)

    def test_union_of_units(self):
        from repro.power import concatenate_traces
        a = self.make("a", ["x", "y"], [1.0, 2.0])
        b = self.make("b", ["y", "z"], [3.0, 4.0])
        merged = concatenate_traces([a, b])
        assert merged.unit_names == ["x", "y", "z"]
        assert merged.sample_count == 6

    def test_absent_units_draw_zero(self):
        from repro.power import concatenate_traces
        a = self.make("a", ["x"], [5.0])
        b = self.make("b", ["y"], [7.0])
        merged = concatenate_traces([a, b])
        x_series = merged.unit_series("x")
        assert x_series[:3] == pytest.approx([5.0] * 3)
        assert x_series[3:] == pytest.approx([0.0] * 3)

    def test_times_strictly_increase(self):
        from repro.power import concatenate_traces
        a = self.make("a", ["x"], [1.0])
        merged = concatenate_traces([a, a, a])
        assert (np.diff(merged.times) > 0).all()

    def test_max_profile_covers_all_segments(self):
        from repro.power import concatenate_traces
        a = self.make("a", ["x"], [1.0])
        b = self.make("b", ["x"], [9.0])
        merged = concatenate_traces([a, b])
        assert merged.max_profile().unit_power["x"] == \
            pytest.approx(9.0)

    def test_empty_rejected(self):
        from repro.power import concatenate_traces
        with pytest.raises(ConfigurationError):
            concatenate_traces([])


class TestTraceGenerator:
    def test_max_profile_roundtrip(self, trace_generator, profiles):
        # The generated trace's maxima must reproduce the input profile,
        # because OFTEC consumes exactly that reduction (Figure 5).
        profile = profiles["fft"]
        trace = trace_generator.generate(profile, duration=5.0,
                                         sample_interval=0.01)
        recovered = trace.max_profile()
        for unit, power in profile.unit_power.items():
            assert recovered.unit_power[unit] == pytest.approx(power,
                                                               rel=1e-9)

    def test_deterministic_with_seed(self, profiles):
        gen = TraceGenerator(seed=7)
        t1 = gen.generate(profiles["crc32"], duration=2.0)
        t2 = TraceGenerator(seed=7).generate(profiles["crc32"],
                                             duration=2.0)
        assert np.array_equal(t1.samples, t2.samples)

    def test_different_seeds_differ(self, profiles):
        t1 = TraceGenerator(seed=1).generate(profiles["crc32"],
                                             duration=2.0)
        t2 = TraceGenerator(seed=2).generate(profiles["crc32"],
                                             duration=2.0)
        assert not np.array_equal(t1.samples, t2.samples)

    def test_samples_within_envelope(self, trace_generator, profiles):
        profile = profiles["susan"]
        trace = trace_generator.generate(profile, duration=3.0)
        ceilings = np.array([profile.unit_power[u]
                             for u in trace.unit_names])
        assert (trace.samples >= 0.0).all()
        assert (trace.samples <= ceilings[None, :] + 1e-12).all()

    def test_phases_create_variation(self, trace_generator, profiles):
        trace = trace_generator.generate(profiles["susan"], duration=5.0)
        totals = trace.total_series()
        assert totals.std() > 0.01 * totals.mean()

    def test_validation(self, trace_generator, profiles):
        with pytest.raises(ConfigurationError):
            trace_generator.generate(profiles["fft"], duration=0.0)
        with pytest.raises(ConfigurationError):
            trace_generator.generate(profiles["fft"], duration=1.0,
                                     sample_interval=2.0)
        with pytest.raises(ConfigurationError):
            TraceGenerator(phase_count=0)
        with pytest.raises(ConfigurationError):
            TraceGenerator(noise_level=1.5)
        with pytest.raises(ConfigurationError):
            TraceGenerator(min_activity=0.0)
