"""Parameter sensitivity study."""

import pytest

from repro.analysis import (
    format_sensitivity_report,
    run_sensitivity_study,
)
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def report(profiles):
    # Two parameters at reduced resolution keep the module quick.
    return run_sensitivity_study(
        profiles["basicmath"],
        parameters=["tec_seebeck", "fan_power_constant"],
        scales=[0.8, 1.2],
        grid_resolution=6)


class TestStudy:
    def test_entry_bookkeeping(self, report):
        assert len(report.entries) == 4  # 2 parameters x 2 scales
        grouped = report.by_parameter()
        assert set(grouped) == {"tec_seebeck", "fan_power_constant"}
        for entries in grouped.values():
            assert len(entries) == 2

    def test_nominal_feasible(self, report):
        assert report.nominal.feasible

    def test_deltas_consistent(self, report):
        for entry in report.entries:
            expected = (entry.result.total_power
                        - report.nominal.total_power) \
                / report.nominal.total_power
            assert entry.d_power == pytest.approx(expected)

    def test_cheaper_fan_saves_power(self, report):
        # Scaling the fan constant down makes airflow cheaper, so the
        # optimum cannot get more expensive.
        fan_entries = report.by_parameter()["fan_power_constant"]
        cheaper = next(e for e in fan_entries if e.scale < 1.0)
        assert cheaper.d_power <= 0.01

    def test_most_sensitive_parameter(self, report):
        name = report.most_sensitive_parameter()
        assert name in ("tec_seebeck", "fan_power_constant")

    def test_format(self, report):
        text = format_sensitivity_report(report)
        assert "nominal" in text
        assert "tec_seebeck" in text
        assert "%" in text


class TestValidation:
    def test_bad_scale(self, profiles):
        with pytest.raises(ConfigurationError):
            run_sensitivity_study(profiles["crc32"], scales=[0.0],
                                  grid_resolution=4)

    def test_unknown_parameter(self, profiles):
        with pytest.raises(ConfigurationError, match="Unknown"):
            run_sensitivity_study(profiles["crc32"],
                                  parameters=["warp_drive"],
                                  grid_resolution=4)
