"""CoolingProblem assembly and the high-level builder."""

import numpy as np
import pytest

from repro import build_cooling_problem, mibench_profiles
from repro.core import ProblemLimits
from repro.errors import ConfigurationError
from repro.materials import default_package_stack


class TestProblemLimits:
    def test_paper_defaults(self):
        limits = ProblemLimits()
        assert limits.t_max == pytest.approx(363.15)
        assert limits.omega_max == pytest.approx(524.0)
        assert limits.i_tec_max == pytest.approx(5.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ProblemLimits(t_max=-1.0)
        with pytest.raises(ConfigurationError):
            ProblemLimits(omega_max=0.0)
        with pytest.raises(ConfigurationError):
            ProblemLimits(i_tec_max=-1.0)


class TestBuilder:
    def test_tec_problem(self, tec_problem):
        assert tec_problem.has_tec
        assert tec_problem.current_upper_bound == pytest.approx(5.0)
        assert tec_problem.name == "basicmath"

    def test_baseline_problem(self, baseline_problem):
        assert not baseline_problem.has_tec
        assert baseline_problem.current_upper_bound == 0.0

    def test_power_map_conserved(self, tec_problem, profiles):
        assert tec_problem.total_dynamic_power == pytest.approx(
            profiles["basicmath"].total_power)

    def test_caches_uncovered_by_default(self, tec_problem):
        array = tec_problem.model.tec_array
        coverage = tec_problem.coverage
        summary = array.coverage_summary(coverage)
        assert summary["Icache"] == 0.0
        assert summary["Dcache"] == 0.0
        assert summary["IntExec"] == 1.0

    def test_plain_mapping_accepted(self):
        problem = build_cooling_problem(
            {"IntExec": 10.0, "L2": 5.0}, name="custom",
            grid_resolution=4)
        assert problem.name == "custom"
        assert problem.total_dynamic_power == pytest.approx(15.0)

    def test_grid_resolution_too_small(self, profiles):
        with pytest.raises(ConfigurationError):
            build_cooling_problem(profiles["fft"], grid_resolution=1)

    def test_tec_stack_with_no_tec_flag_rejected(self, profiles):
        with pytest.raises(ConfigurationError):
            build_cooling_problem(profiles["fft"], with_tec=False,
                                  stack=default_package_stack(),
                                  grid_resolution=4)

    def test_custom_limits_propagate(self, profiles):
        limits = ProblemLimits(t_max=353.15, omega_max=400.0,
                               i_tec_max=3.0)
        problem = build_cooling_problem(profiles["crc32"], limits=limits,
                                        grid_resolution=4)
        assert problem.limits.t_max == pytest.approx(353.15)
        assert problem.fan.omega_max == pytest.approx(400.0)
        assert problem.current_upper_bound == pytest.approx(3.0)


class TestWithProfile:
    def test_shares_model(self, tec_problem, profiles):
        other = tec_problem.with_profile(profiles["fft"])
        assert other.model is tec_problem.model
        assert other.leakage is tec_problem.leakage
        assert other.name == "fft"
        assert other.total_dynamic_power == pytest.approx(
            profiles["fft"].total_power)

    def test_explicit_name(self, tec_problem, profiles):
        other = tec_problem.with_profile(profiles["fft"], name="label")
        assert other.name == "label"

    def test_mapping_profile(self, tec_problem):
        other = tec_problem.with_profile({"IntExec": 30.0},
                                         name="hotspot")
        assert other.total_dynamic_power == pytest.approx(30.0)


class TestValidation:
    def test_power_shape_checked(self, tec_problem):
        from repro.core import CoolingProblem
        with pytest.raises(ConfigurationError):
            CoolingProblem("x", tec_problem.model, tec_problem.leakage,
                           tec_problem.fan, np.zeros(3))

    def test_negative_power_rejected(self, tec_problem, grid):
        from repro.core import CoolingProblem
        power = np.zeros(grid.cell_count)
        power[0] = -1.0
        with pytest.raises(ConfigurationError):
            CoolingProblem("x", tec_problem.model, tec_problem.leakage,
                           tec_problem.fan, power)

    def test_fan_heat_fraction_bounds(self, tec_problem, grid):
        from repro.core import CoolingProblem
        with pytest.raises(ConfigurationError):
            CoolingProblem("x", tec_problem.model, tec_problem.leakage,
                           tec_problem.fan, np.zeros(grid.cell_count),
                           fan_heat_fraction=1.5)
