"""TEC device model: Equations (1)-(3) and derived quantities."""

import pytest

from repro.errors import ConfigurationError
from repro.tec import TECDevice, default_tec_device


@pytest.fixture()
def device():
    return default_tec_device()


class TestEquationIdentities:
    def test_power_is_qh_minus_qc(self, device):
        # Equation (3) is exactly q_h - q_c for any operating point.
        for t_cold, t_hot, current in [(350.0, 355.0, 1.0),
                                       (330.0, 360.0, 3.0),
                                       (360.0, 350.0, 0.5)]:
            q_c = device.heat_absorbed(t_cold, t_hot, current)
            q_h = device.heat_released(t_cold, t_hot, current)
            assert device.power(t_cold, t_hot, current) == \
                pytest.approx(q_h - q_c, rel=1e-12)

    def test_zero_current_pure_conduction(self, device):
        # With I = 0 the device is a resistor: q_c = q_h = -K * dT.
        q_c = device.heat_absorbed(350.0, 360.0, 0.0)
        q_h = device.heat_released(350.0, 360.0, 0.0)
        expected = -device.thermal_conductance * 10.0
        assert q_c == pytest.approx(expected)
        assert q_h == pytest.approx(expected)
        assert device.power(350.0, 360.0, 0.0) == 0.0

    def test_zero_current_zero_dt_is_idle(self, device):
        assert device.heat_absorbed(350.0, 350.0, 0.0) == 0.0
        assert device.power(350.0, 350.0, 0.0) == 0.0

    def test_n_modules_scale_linearly(self, device):
        single = device.heat_absorbed(350.0, 355.0, 1.0)
        assert device.heat_absorbed(350.0, 355.0, 1.0, n_modules=10) == \
            pytest.approx(10.0 * single)

    def test_joule_split_half_half(self, device):
        # The R*I^2 term appears as -1/2 in q_c and +1/2 in q_h.
        t = 350.0
        current = 2.0
        q_c = device.heat_absorbed(t, t, current)
        q_h = device.heat_released(t, t, current)
        joule = device.electrical_resistance * current ** 2
        assert (q_h - q_c) == pytest.approx(joule)
        peltier = device.seebeck_coefficient * t * current
        assert q_c == pytest.approx(peltier - joule / 2.0)

    def test_power_positive_dt_costs_more(self, device):
        # Pumping against a larger temperature difference costs more.
        base = device.power(350.0, 352.0, 2.0)
        harder = device.power(350.0, 360.0, 2.0)
        assert harder > base


class TestCoolingBehaviour:
    def test_peltier_cooling_dominates_at_small_current(self, device):
        # At modest current, the cold side absorbs heat (q_c > 0).
        assert device.heat_absorbed(350.0, 350.0, 0.5) > 0.0

    def test_joule_dominates_at_huge_current(self, device):
        # Far beyond the optimum, Joule heating flips the sign of q_c.
        big = device.seebeck_coefficient * 350.0 \
            / device.electrical_resistance * 4.0
        assert device.heat_absorbed(350.0, 350.0, big) < 0.0

    def test_optimal_current_formula(self, device):
        unclamped = (device.seebeck_coefficient * 300.0
                     / device.electrical_resistance)
        expected = min(unclamped, device.max_current)
        assert device.optimal_current_max_cooling(300.0) == \
            pytest.approx(expected)

    def test_max_dt_self_consistent(self, device):
        # dT_max solves dT = Z*(T_h - dT)^2/2 at zero load.
        t_hot = 350.0
        dt = device.max_temperature_difference(t_hot)
        z = device.figure_of_merit
        assert dt == pytest.approx(z * (t_hot - dt) ** 2 / 2.0, rel=1e-9)
        assert 0.0 < dt < t_hot

    def test_zt_near_unity(self, device):
        # The default module targets superlattice-class ZT ~ 1 at 350 K.
        assert device.zt(350.0) == pytest.approx(1.0, abs=0.2)

    def test_cop_positive_in_cooling_regime(self, device):
        cop = device.coefficient_of_performance(350.0, 352.0, 1.0)
        assert cop > 0.0

    def test_cop_decreases_with_dt(self, device):
        cop_small = device.coefficient_of_performance(350.0, 351.0, 1.0)
        cop_large = device.coefficient_of_performance(350.0, 365.0, 1.0)
        assert cop_large < cop_small

    def test_cop_undefined_at_zero_power(self, device):
        with pytest.raises(ConfigurationError):
            device.coefficient_of_performance(350.0, 350.0, 0.0)


class TestPerAreaDensities:
    def test_densities_scale_with_footprint(self, device):
        assert device.seebeck_per_area == pytest.approx(
            device.seebeck_coefficient / device.footprint_area)
        assert device.resistance_per_area == pytest.approx(
            device.electrical_resistance / device.footprint_area)
        assert device.conductance_per_area == pytest.approx(
            device.thermal_conductance / device.footprint_area)


class TestValidation:
    def test_kelvin_required(self, device):
        with pytest.raises(ConfigurationError):
            device.heat_absorbed(-10.0, 350.0, 1.0)

    def test_negative_current_rejected(self, device):
        with pytest.raises(ConfigurationError):
            device.power(350.0, 350.0, -1.0)

    def test_zero_modules_rejected(self, device):
        with pytest.raises(ConfigurationError):
            device.heat_released(350.0, 350.0, 1.0, n_modules=0)

    def test_bad_construction(self):
        with pytest.raises(ConfigurationError):
            TECDevice(0.0, 1.0, 1.0, 1e-6)
        with pytest.raises(ConfigurationError):
            TECDevice(1e-3, -1.0, 1.0, 1e-6)
        with pytest.raises(ConfigurationError):
            TECDevice(1e-3, 1.0, 0.0, 1e-6)
        with pytest.raises(ConfigurationError):
            TECDevice(1e-3, 1.0, 1.0, 0.0)
