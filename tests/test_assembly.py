"""Package model assembly: structure, energy balance, physical sanity."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.materials import baseline_package_stack, default_package_stack
from repro.tec import TECArray
from repro.thermal import (
    NodeKind,
    PackageModelConfig,
    build_package_model,
    solve_steady_state,
)


class TestStructure:
    def test_node_counts(self, grid, tec_model, tec_array):
        covered = tec_array.covered_cell_count
        uncovered = grid.cell_count - covered
        cells = grid.cell_count
        # pcb + chip + tim1 + (3*covered + filler) + spreader + tim2
        # + sink, plus 4 periphery nodes each for spreader/tim2/sink.
        expected = (cells * 3            # pcb, chip, tim1
                    + 3 * covered + uncovered
                    + cells * 3          # spreader, tim2, sink
                    + 3 * 4)             # periphery rings
        assert tec_model.network.node_count == expected

    def test_baseline_has_no_tec_nodes(self, baseline_model):
        net = baseline_model.network
        assert net.nodes_of_kind(NodeKind.TEC_ABS) == []
        assert net.nodes_of_kind(NodeKind.TEC_GEN) == []
        assert net.nodes_of_kind(NodeKind.TEC_REJ) == []

    def test_tec_nodes_match_coverage(self, tec_model, tec_array):
        mask = tec_array.coverage_mask
        assert (tec_model.tec_abs_nodes[mask] >= 0).all()
        assert (tec_model.tec_abs_nodes[~mask] == -1).all()
        assert (tec_model.tec_gen_nodes[mask] >= 0).all()
        assert (tec_model.tec_rej_nodes[mask] >= 0).all()

    def test_chip_nodes_cover_grid(self, grid, tec_model):
        assert tec_model.chip_nodes.shape == (grid.cell_count,)
        assert len(set(tec_model.chip_nodes.tolist())) == grid.cell_count

    def test_periphery_only_for_wide_layers(self, tec_model):
        net = tec_model.network
        periphery_layers = {net.info(i).layer
                            for i in net.nodes_of_kind(NodeKind.PERIPHERY)}
        assert periphery_layers == {"spreader", "tim2", "heatsink"}

    def test_static_matrix_symmetric(self, tec_model):
        m = tec_model.network.static_matrix
        asym = abs(m - m.T).max()
        assert asym < 1e-12

    def test_requires_matching_tec_array(self, grid):
        with pytest.raises(ConfigurationError, match="TECArray is required"):
            build_package_model(default_package_stack(), grid)

    def test_rejects_array_on_baseline(self, grid, tec_array):
        with pytest.raises(ConfigurationError, match="remove the TECArray"):
            build_package_model(baseline_package_stack(), grid,
                                tec_array=tec_array)

    def test_grid_must_match_chip(self, tec_array, tec_device):
        from repro.geometry import Grid
        wrong = Grid(0.01, 0.01, 8, 8)
        with pytest.raises(ConfigurationError, match="match the chip"):
            build_package_model(default_package_stack(), wrong,
                                tec_array=TECArray(wrong, tec_device))


class TestOverlays:
    def test_shapes(self, grid, tec_model, uniform_power):
        zeros = np.zeros(grid.cell_count)
        diag, rhs = tec_model.overlays(262.0, 1.0, uniform_power,
                                       zeros, zeros)
        n = tec_model.network.node_count
        assert diag.shape == (n,)
        assert rhs.shape == (n,)

    def test_chip_power_lands_on_chip_nodes(self, grid, tec_model,
                                            uniform_power):
        zeros = np.zeros(grid.cell_count)
        _, rhs = tec_model.overlays(262.0, 0.0, uniform_power, zeros,
                                    zeros)
        chip_sum = rhs[tec_model.chip_nodes].sum()
        assert chip_sum == pytest.approx(uniform_power.sum())

    def test_joule_lands_on_gen_nodes(self, grid, tec_model, tec_array,
                                      uniform_power):
        zeros = np.zeros(grid.cell_count)
        current = 2.0
        # overlays() returns views of reused buffers; copy to retain
        # the first result across the second call.
        _, rhs0 = tec_model.overlays(262.0, 0.0, uniform_power, zeros,
                                     zeros)
        rhs0 = rhs0.copy()
        _, rhs2 = tec_model.overlays(262.0, current, uniform_power,
                                     zeros, zeros)
        mask = tec_array.coverage_mask
        gen_nodes = tec_model.tec_gen_nodes[mask]
        joule = (rhs2 - rhs0)[gen_nodes].sum()
        expected = tec_array.total_resistance * current ** 2
        assert joule == pytest.approx(expected)

    def test_peltier_diagonals_antisymmetric(self, grid, tec_model,
                                             tec_array, uniform_power):
        zeros = np.zeros(grid.cell_count)
        current = 1.5
        diag, _ = tec_model.overlays(262.0, current, uniform_power,
                                     zeros, zeros)
        mask = tec_array.coverage_mask
        abs_sum = diag[tec_model.tec_abs_nodes[mask]].sum()
        rej_sum = diag[tec_model.tec_rej_nodes[mask]].sum()
        assert abs_sum == pytest.approx(-rej_sum)
        assert abs_sum > 0.0

    def test_leak_slope_subtracts_from_chip_diag(self, grid, tec_model,
                                                 uniform_power):
        slope = np.full(grid.cell_count, 0.01)
        const = np.zeros(grid.cell_count)
        diag, _ = tec_model.overlays(262.0, 0.0, uniform_power, slope,
                                     const)
        assert diag[tec_model.chip_nodes] == pytest.approx(-0.01)

    def test_current_on_baseline_rejected(self, grid, baseline_model,
                                          uniform_power):
        zeros = np.zeros(grid.cell_count)
        with pytest.raises(ConfigurationError, match="without TECs"):
            baseline_model.overlays(262.0, 1.0, uniform_power, zeros,
                                    zeros)

    def test_negative_sink_heat_rejected(self, grid, tec_model,
                                         uniform_power):
        zeros = np.zeros(grid.cell_count)
        with pytest.raises(ConfigurationError):
            tec_model.overlays(262.0, 0.0, uniform_power, zeros, zeros,
                               sink_heat=-1.0)

    def test_shape_validation(self, tec_model):
        with pytest.raises(ConfigurationError):
            tec_model.overlays(262.0, 0.0, np.zeros(3), np.zeros(3),
                               np.zeros(3))


class TestPhysicalBehaviour:
    def test_energy_balance_no_leakage(self, grid, tec_model,
                                       uniform_power):
        # All injected power (chip + TEC Joule+Peltier) leaves through
        # the sink and board paths.
        omega, current = 262.0, 1.0
        result = solve_steady_state(tec_model, omega, current,
                                    uniform_power, leakage=None)
        injected = uniform_power.sum() + result.tec_power
        ambient = tec_model.config.ambient
        g_sink = tec_model.sink_conductance.conductance(omega)
        sink_nodes = tec_model._sink_amb_nodes
        weights = tec_model._sink_amb_weights
        sink_out = float(np.sum(
            g_sink * weights * (result.temperatures[sink_nodes]
                                - ambient)))
        board_out = float(np.sum(
            tec_model._static_amb_g * (result.temperatures - ambient)))
        assert sink_out + board_out == pytest.approx(injected, rel=1e-6)

    def test_monotone_in_fan_speed(self, grid, tec_model, uniform_power,
                                   leakage):
        temps = []
        for omega in (100.0, 250.0, 450.0):
            result = solve_steady_state(tec_model, omega, 0.0,
                                        uniform_power, leakage)
            temps.append(result.max_chip_temperature)
        assert temps[0] > temps[1] > temps[2]

    def test_monotone_in_power(self, grid, tec_model, leakage):
        cells = grid.cell_count
        temps = []
        for total in (20.0, 40.0, 60.0):
            result = solve_steady_state(
                tec_model, 300.0, 0.0, np.full(cells, total / cells),
                leakage)
            temps.append(result.max_chip_temperature)
        assert temps[0] < temps[1] < temps[2]

    def test_uniform_power_symmetric_field(self, grid, tec_model,
                                           uniform_power):
        # A uniform power map on a symmetric die yields a temperature
        # field symmetric under x-mirroring (up to solver tolerance).
        result = solve_steady_state(tec_model, 262.0, 0.0, uniform_power,
                                    leakage=None)
        field = result.chip_temperatures.reshape(grid.ny, grid.nx)
        assert np.allclose(field, field[:, ::-1], atol=1e-6)

    def test_chip_hotter_than_sink(self, grid, tec_model, uniform_power):
        result = solve_steady_state(tec_model, 262.0, 0.0, uniform_power,
                                    leakage=None)
        sink = tec_model.layer_temperatures(result.temperatures,
                                            "heatsink")
        assert result.chip_temperatures.mean() > sink.mean()

    def test_everything_above_ambient_without_tec(self, grid, tec_model,
                                                  uniform_power):
        result = solve_steady_state(tec_model, 262.0, 0.0, uniform_power,
                                    leakage=None)
        assert (result.temperatures
                > tec_model.config.ambient - 1e-9).all()

    def test_tec_cools_hotspots_below_passive(self, grid, tec_model,
                                              quicksort_power, leakage):
        # On a hotspot-structured workload with leakage feedback, driving
        # the TECs lowers the peak die temperature (the paper's premise).
        # A *uniform* low-density map would not benefit: pumping pays off
        # where local power density is high.
        passive = solve_steady_state(tec_model, 262.0, 0.0,
                                     quicksort_power, leakage)
        active = solve_steady_state(tec_model, 262.0, 1.5,
                                    quicksort_power, leakage)
        assert active.max_chip_temperature < passive.max_chip_temperature

    def test_tec_heats_hot_side(self, grid, tec_model, tec_array,
                                uniform_power):
        passive = solve_steady_state(tec_model, 262.0, 0.0,
                                     uniform_power, leakage=None)
        active = solve_steady_state(tec_model, 262.0, 2.0,
                                    uniform_power, leakage=None)
        _, hot_passive = tec_model.tec_face_temperatures(
            passive.temperatures)
        _, hot_active = tec_model.tec_face_temperatures(
            active.temperatures)
        mask = tec_array.coverage_mask
        assert hot_active[mask].mean() > hot_passive[mask].mean()

    def test_sink_heat_raises_temperature(self, grid, tec_model,
                                          uniform_power):
        base = solve_steady_state(tec_model, 262.0, 0.0, uniform_power,
                                  leakage=None)
        heated = solve_steady_state(tec_model, 262.0, 0.0, uniform_power,
                                    leakage=None, sink_heat=10.0)
        assert heated.max_chip_temperature > base.max_chip_temperature

    def test_baseline_matches_passive_tec_stack(self, grid, tec_model,
                                                baseline_model,
                                                uniform_power):
        # Section 6.1 fairness: at I = 0 the baseline (merged TIM1)
        # behaves like the TEC stack within a fraction of a kelvin.
        tec = solve_steady_state(tec_model, 262.0, 0.0, uniform_power,
                                 leakage=None)
        base = solve_steady_state(baseline_model, 262.0, 0.0,
                                  uniform_power, leakage=None)
        assert base.max_chip_temperature == pytest.approx(
            tec.max_chip_temperature, abs=1.0)


class TestConfig:
    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            PackageModelConfig(ambient=-1.0)
        with pytest.raises(ConfigurationError):
            PackageModelConfig(pcb_ambient_conductance=-0.1)
        with pytest.raises(ConfigurationError):
            PackageModelConfig(temperature_floor=600.0,
                               runaway_ceiling=500.0)
