"""Threshold and hysteresis TEC controllers (ref [5] reproductions)."""

import pytest

from repro.core import (
    run_hysteresis_controller,
    run_threshold_controller,
)
from repro.errors import ConfigurationError


class TestThresholdController:
    def test_tec_engages_above_threshold(self, tec_problem):
        result = run_threshold_controller(
            tec_problem, omega=300.0, on_current=1.5, threshold=335.0,
            duration=30.0, dt=0.5)
        assert not result.runaway
        assert result.duty_cycle > 0.0
        assert result.current.max() == pytest.approx(1.5)

    def test_tec_stays_off_when_cool(self, tec_problem):
        # Threshold far above any reachable temperature: never engages.
        result = run_threshold_controller(
            tec_problem, omega=400.0, on_current=1.5, threshold=420.0,
            duration=10.0, dt=0.5)
        assert result.duty_cycle == 0.0
        assert result.switch_count == 0

    def test_controller_limits_peak(self, tec_problem):
        on = run_threshold_controller(
            tec_problem, omega=300.0, on_current=2.0, threshold=335.0,
            duration=40.0, dt=0.5)
        off = run_threshold_controller(
            tec_problem, omega=300.0, on_current=0.0, threshold=335.0,
            duration=40.0, dt=0.5)
        assert on.peak_temperature <= off.peak_temperature + 1e-6


class TestHysteresisController:
    def test_fewer_switches_than_threshold(self, tec_problem):
        # The hysteresis band's purpose (per the reference): cut the
        # on/off transition count relative to a single threshold.
        threshold = run_threshold_controller(
            tec_problem, omega=300.0, on_current=2.0, threshold=336.0,
            duration=60.0, dt=0.25)
        hysteresis = run_hysteresis_controller(
            tec_problem, omega=300.0, on_current=2.0, t_on=336.0,
            t_off=333.0, duration=60.0, dt=0.25)
        assert hysteresis.switch_count <= threshold.switch_count

    def test_band_ordering_enforced(self, tec_problem):
        with pytest.raises(ConfigurationError):
            run_hysteresis_controller(
                tec_problem, omega=300.0, on_current=1.0, t_on=330.0,
                t_off=340.0)

    def test_trace_lengths_consistent(self, tec_problem):
        result = run_hysteresis_controller(
            tec_problem, omega=300.0, on_current=1.0, t_on=340.0,
            t_off=336.0, duration=5.0, dt=0.5)
        assert len(result.times) == len(result.max_chip_temperature)
        assert len(result.times) == len(result.current)


class TestValidation:
    def test_requires_tec(self, baseline_problem):
        with pytest.raises(ConfigurationError):
            run_threshold_controller(baseline_problem, omega=300.0,
                                     on_current=1.0, threshold=340.0)

    def test_current_bound(self, tec_problem):
        with pytest.raises(ConfigurationError):
            run_threshold_controller(tec_problem, omega=300.0,
                                     on_current=99.0, threshold=340.0)

    def test_time_step_validation(self, tec_problem):
        with pytest.raises(ConfigurationError):
            run_threshold_controller(tec_problem, omega=300.0,
                                     on_current=1.0, threshold=340.0,
                                     duration=1.0, dt=2.0)
