"""Unit-conversion helpers."""

import math

import pytest

from repro import units


class TestTemperature:
    def test_celsius_to_kelvin_zero(self):
        assert units.celsius_to_kelvin(0.0) == pytest.approx(273.15)

    def test_celsius_to_kelvin_paper_tmax(self):
        assert units.celsius_to_kelvin(90.0) == pytest.approx(363.15)

    def test_kelvin_to_celsius_ambient(self):
        assert units.kelvin_to_celsius(318.15) == pytest.approx(45.0)

    def test_roundtrip(self):
        for temp in (-40.0, 0.0, 25.0, 90.0, 125.0):
            assert units.kelvin_to_celsius(
                units.celsius_to_kelvin(temp)) == pytest.approx(temp)


class TestRotation:
    def test_rpm_to_rad_s_5000(self):
        # The paper equates 5000 RPM with 524 rad/s.
        assert units.rpm_to_rad_s(5000.0) == pytest.approx(523.6, abs=0.1)

    def test_rad_s_to_rpm(self):
        assert units.rad_s_to_rpm(2.0 * math.pi) == pytest.approx(60.0)

    def test_roundtrip(self):
        for rpm in (0.0, 150.0, 2000.0, 5000.0):
            assert units.rad_s_to_rpm(
                units.rpm_to_rad_s(rpm)) == pytest.approx(rpm)

    def test_zero(self):
        assert units.rpm_to_rad_s(0.0) == 0.0


class TestLength:
    def test_mm_to_m(self):
        assert units.mm_to_m(15.9) == pytest.approx(0.0159)

    def test_um_to_m(self):
        assert units.um_to_m(20.0) == pytest.approx(2e-5)

    def test_mm_roundtrip(self):
        assert units.m_to_mm(units.mm_to_m(30.0)) == pytest.approx(30.0)

    def test_um_roundtrip(self):
        assert units.m_to_um(units.um_to_m(15.0)) == pytest.approx(15.0)
