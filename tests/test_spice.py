"""SPICE netlist export of the thermal dual circuit."""

import numpy as np
import pytest

from repro.thermal import (
    export_spice_netlist,
    parse_netlist_system,
    solve_steady_state,
)


@pytest.fixture(scope="module")
def netlist(tec_model, basicmath_power, leakage):
    # Export the linearization at the converged operating point so the
    # netlist solves the same system as the final network solve.
    from repro.leakage import tangent_linearization
    steady = solve_steady_state(tec_model, 262.0, 1.0, basicmath_power,
                                leakage)
    taylor = tangent_linearization(leakage, steady.chip_temperatures)
    text = export_spice_netlist(
        tec_model, 262.0, 1.0, basicmath_power,
        leak_slope=taylor.a, leak_const=taylor.constant_term())
    return text, steady


class TestNetlistStructure:
    def test_header_and_terminator(self, netlist):
        text, _ = netlist
        lines = text.splitlines()
        assert lines[0].startswith("*")
        assert ".op" in lines
        assert lines[-1] == ".end"

    def test_ambient_source(self, netlist, tec_model):
        text, _ = netlist
        amb_line = next(l for l in text.splitlines()
                        if l.startswith("VAMB"))
        assert f"{tec_model.config.ambient:.6g}" in amb_line

    def test_has_resistors_and_sources(self, netlist):
        text, _ = netlist
        resistors = [l for l in text.splitlines() if l.startswith("R")]
        sources = [l for l in text.splitlines() if l.startswith("I")]
        assert len(resistors) > 1000  # the full package network
        assert len(sources) > 10      # chip power + TEC Joule heat

    def test_peltier_resistors_can_be_negative(self, netlist):
        # The rejection-node diagonal term is negative, which exports
        # as a negative resistance to the 0 V reference.
        text, _ = netlist
        negatives = [l for l in text.splitlines()
                     if l.startswith("R") and " 0 -" in l]
        assert negatives


class TestRoundTrip:
    def test_netlist_system_matches_network_solution(self, netlist,
                                                     tec_model):
        # Rebuild (A, b) from the netlist text and solve: the node
        # voltages must equal the network solver's temperatures.
        text, steady = netlist
        n = tec_model.network.node_count
        matrix, rhs = parse_netlist_system(text, n)
        temps = np.linalg.solve(matrix, rhs)
        assert np.allclose(temps, steady.temperatures, atol=1e-6)

    def test_export_without_leakage(self, tec_model, basicmath_power):
        steady = solve_steady_state(tec_model, 300.0, 0.5,
                                    basicmath_power, leakage=None)
        text = export_spice_netlist(tec_model, 300.0, 0.5,
                                    basicmath_power)
        n = tec_model.network.node_count
        matrix, rhs = parse_netlist_system(text, n)
        temps = np.linalg.solve(matrix, rhs)
        assert np.allclose(temps, steady.temperatures, atol=1e-6)
