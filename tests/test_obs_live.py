"""Tests for the streaming telemetry plane.

Covers the sinks and background flusher (``repro.obs.live``), span
analytics (``repro.obs.analyze``), the progress board
(``repro.obs.progress``), snapshot merging and streamed span adoption
edge cases, and the perf-regression gate script.
"""

from __future__ import annotations

import io
import json
import sys
from pathlib import Path

import pytest

from repro.errors import ConfigurationError
from repro.obs import (
    BackgroundFlusher,
    OpenMetricsSink,
    ProgressBoard,
    RotatingJsonlSink,
    TelemetryStream,
    critical_path,
    folded_stacks,
    format_critical_path,
    format_folded,
    metrics_to_openmetrics,
    span_to_dict,
    telemetry_session,
)

SCRIPTS = Path(__file__).resolve().parents[1] / "scripts"


def read_jsonl(path):
    with open(path, encoding="utf-8") as handle:
        return [json.loads(line) for line in handle if line.strip()]


class TestRotatingJsonlSink:
    def test_writes_json_lines(self, tmp_path):
        sink = RotatingJsonlSink(str(tmp_path / "live.jsonl"))
        sink.write({"record": "span", "name": "a"})
        sink.write({"record": "metrics", "seq": 1})
        sink.close()
        records = read_jsonl(tmp_path / "live.jsonl")
        assert [r["record"] for r in records] == ["span", "metrics"]
        assert sink.records_written == 2

    def test_rotates_at_size_budget(self, tmp_path):
        path = tmp_path / "live.jsonl"
        sink = RotatingJsonlSink(str(path), max_bytes=1024,
                                 max_files=2)
        payload = {"record": "span", "pad": "x" * 100}
        for _ in range(40):
            sink.write(payload)
        sink.close()
        assert sink.rotations >= 1
        assert path.exists()
        assert (tmp_path / "live.jsonl.1").exists()
        # Rotation bounds disk: never more than max_files rotated
        # segments beside the active one.
        segments = sorted(p.name for p in tmp_path.iterdir())
        assert len(segments) <= 3
        # Every surviving segment is still valid JSONL.
        for segment in segments:
            assert read_jsonl(tmp_path / segment)

    def test_unserializable_record_degrades(self, tmp_path):
        sink = RotatingJsonlSink(str(tmp_path / "live.jsonl"))
        sink.write({"record": "span", "bad": {1, 2}})
        sink.close()
        # default=str handles most of it; whatever happens the line
        # must parse back.
        records = read_jsonl(tmp_path / "live.jsonl")
        assert len(records) == 1

    def test_write_after_close_is_noop(self, tmp_path):
        sink = RotatingJsonlSink(str(tmp_path / "live.jsonl"))
        sink.close()
        sink.write({"record": "span"})
        sink.close()
        assert read_jsonl(tmp_path / "live.jsonl") == []

    def test_rejects_silly_budgets(self, tmp_path):
        with pytest.raises(ConfigurationError):
            RotatingJsonlSink(str(tmp_path / "x"), max_bytes=10)
        with pytest.raises(ConfigurationError):
            RotatingJsonlSink(str(tmp_path / "x"), max_files=0)


class TestOpenMetricsSink:
    def test_renders_counters_gauges_histograms(self):
        with telemetry_session() as (_tracer, metrics):
            metrics.counter("operator.solves").inc(3)
            metrics.gauge("evaluator.cache.size").set(7.0)
            metrics.histogram("solve.seconds", (0.1, 1.0)).observe(0.5)
            text = metrics_to_openmetrics(metrics.snapshot())
        assert "repro_operator_solves_total 3" in text
        assert "# TYPE repro_evaluator_cache_size gauge" in text
        assert "repro_evaluator_cache_size 7" in text
        assert 'repro_solve_seconds_bucket{le="1"} 1' in text
        assert 'le="+Inf"' in text
        assert text.endswith("# EOF\n")

    def test_atomic_snapshot_file(self, tmp_path):
        path = tmp_path / "metrics.om"
        sink = OpenMetricsSink(str(path))
        with telemetry_session() as (_tracer, metrics):
            metrics.counter("operator.solves").inc()
            sink.write({"record": "metrics", "seq": 1,
                        "snapshot": metrics.snapshot()})
            sink.flush()
            first = path.read_text()
            metrics.counter("operator.solves").inc()
            sink.write({"record": "metrics", "seq": 2,
                        "snapshot": metrics.snapshot()})
            sink.flush()
            second = path.read_text()
        sink.close()
        assert "repro_operator_solves_total 1" in first
        assert "repro_operator_solves_total 2" in second
        # No temp-file litter left beside the snapshot.
        assert [p.name for p in tmp_path.iterdir()] == ["metrics.om"]

    def test_ignores_span_records(self, tmp_path):
        path = tmp_path / "metrics.om"
        sink = OpenMetricsSink(str(path))
        sink.write({"record": "span", "name": "x"})
        sink.flush()
        sink.close()
        assert not path.exists()


class TestBackgroundFlusher:
    def test_delivers_to_all_sinks(self, tmp_path):
        a = RotatingJsonlSink(str(tmp_path / "a.jsonl"))
        b = RotatingJsonlSink(str(tmp_path / "b.jsonl"))
        with BackgroundFlusher([a, b]) as flusher:
            for index in range(5):
                assert flusher.publish({"record": "span", "i": index})
        assert len(read_jsonl(tmp_path / "a.jsonl")) == 5
        assert len(read_jsonl(tmp_path / "b.jsonl")) == 5
        assert flusher.published_records == 5
        assert flusher.dropped_records == 0

    def test_failing_sink_is_quarantined(self, tmp_path):
        class ExplodingSink:
            def write(self, record):
                raise RuntimeError("disk on fire")

            def flush(self):
                pass

            def close(self):
                pass

        healthy = RotatingJsonlSink(str(tmp_path / "ok.jsonl"))
        flusher = BackgroundFlusher([ExplodingSink(), healthy])
        for index in range(3):
            flusher.publish({"record": "span", "i": index})
        flusher.close()
        # The healthy sink got every record; the bad one was dropped
        # after its first failure instead of killing the thread.
        assert len(read_jsonl(tmp_path / "ok.jsonl")) == 3
        assert flusher.sink_errors >= 1

    def test_publish_after_close_drops(self, tmp_path):
        flusher = BackgroundFlusher(
            [RotatingJsonlSink(str(tmp_path / "a.jsonl"))])
        flusher.close()
        assert flusher.publish({"record": "span"}) is False
        assert flusher.dropped_records == 1

    def test_bounded_queue_drops_not_blocks(self, tmp_path):
        # A sink that blocks forever would wedge the queue; publish
        # must keep returning (False) instead of blocking the hot path.
        import threading
        release = threading.Event()

        class SlowSink:
            def write(self, record):
                release.wait(5.0)

            def flush(self):
                pass

            def close(self):
                pass

        flusher = BackgroundFlusher([SlowSink()], maxsize=4)
        results = [flusher.publish({"i": index}) for index in range(50)]
        assert False in results  # queue filled, records dropped
        assert flusher.dropped_records > 0
        release.set()
        flusher.close()

    def test_close_is_idempotent(self, tmp_path):
        flusher = BackgroundFlusher(
            [RotatingJsonlSink(str(tmp_path / "a.jsonl"))])
        flusher.close()
        flusher.close()


class TestTelemetryStream:
    def test_pumps_spans_once(self, tmp_path):
        sink = RotatingJsonlSink(str(tmp_path / "live.jsonl"))
        with telemetry_session() as (tracer, metrics):
            flusher = BackgroundFlusher([sink])
            stream = TelemetryStream(tracer, metrics, flusher,
                                     interval_s=3600.0)
            with tracer.span("unit", "a"):
                pass
            stream.pump()
            with tracer.span("unit", "b"):
                pass
            stream.pump()
            stream.pump()  # nothing new: no duplicate records
            flusher.close()
        names = [r.get("name") for r in
                 read_jsonl(tmp_path / "live.jsonl")
                 if r["record"] == "span"]
        assert names == ["a", "b"]
        assert stream.spans_streamed == 2

    def test_snapshot_throttled_until_final(self, tmp_path):
        sink = RotatingJsonlSink(str(tmp_path / "live.jsonl"))
        with telemetry_session() as (tracer, metrics):
            flusher = BackgroundFlusher([sink])
            stream = TelemetryStream(tracer, metrics, flusher,
                                     interval_s=3600.0)
            stream.pump()   # first pump always snapshots
            stream.pump()   # throttled
            stream.pump(final=True)  # forced
            flusher.close()
        metric_records = [r for r in
                          read_jsonl(tmp_path / "live.jsonl")
                          if r["record"] == "metrics"]
        assert len(metric_records) == 2
        assert [r["seq"] for r in metric_records] == [1, 2]


def _span(span_id, parent_id, kind, name, start_s, end_s):
    return {"span_id": span_id, "parent_id": parent_id, "kind": kind,
            "name": name, "start_s": start_s, "end_s": end_s,
            "duration_s": end_s - start_s, "status": "ok",
            "attributes": {}, "events": []}


class TestSpanAnalytics:
    def tree(self):
        # root [0, 10]; child A [0, 4]; child B [4, 9];
        # grandchild under B [5, 8].
        return [
            _span(1, None, "campaign", None, 0.0, 10.0),
            _span(2, 1, "unit", "a", 0.0, 4.0),
            _span(3, 1, "unit", "b", 4.0, 9.0),
            _span(4, 3, "evaluate", None, 5.0, 8.0),
        ]

    def test_folded_self_time(self):
        stacks = folded_stacks(self.tree())
        assert stacks["campaign"] == 1_000_000          # 10 - 4 - 5
        assert stacks["campaign;unit:a"] == 4_000_000
        assert stacks["campaign;unit:b"] == 2_000_000   # 5 - 3
        assert stacks["campaign;unit:b;evaluate"] == 3_000_000
        # Total self time reconstructs the root's wall time.
        assert sum(stacks.values()) == 10_000_000

    def test_folded_scrubs_reserved_characters(self):
        spans = [_span(1, None, "unit", "a;b c", 0.0, 1.0)]
        stacks = folded_stacks(spans)
        assert list(stacks) == ["unit:a,b_c"]

    def test_format_folded_deterministic(self):
        text = format_folded(folded_stacks(self.tree()))
        assert text.splitlines() == sorted(text.splitlines())
        assert text.endswith("\n")
        assert format_folded({}) == ""

    def test_critical_path_follows_latest_finisher(self):
        path = critical_path(self.tree())
        assert [p["label"] for p in path] == \
            ["campaign", "unit:b", "evaluate"]
        assert path[0]["fraction"] == 1.0
        assert path[1]["self_s"] == pytest.approx(2.0)  # 5 - 3
        assert path[2]["self_s"] == pytest.approx(3.0)

    def test_critical_path_empty(self):
        assert critical_path([]) == []
        assert format_critical_path([]) == "trace: no spans"

    def test_round_trip_with_real_tracer(self):
        with telemetry_session() as (tracer, _metrics):
            with tracer.span("campaign"):
                with tracer.span("unit", "x"):
                    pass
        records = [span_to_dict(span) for span in tracer.finished]
        stacks = folded_stacks(records)
        assert any(key.startswith("campaign") for key in stacks)
        path = critical_path(records)
        assert path[0]["label"] == "campaign"


class TestProgressBoard:
    def test_non_tty_logs_lifecycle(self):
        out = io.StringIO()
        board = ProgressBoard(out, interval_s=0.001, label="campaign")
        board.begin(3)
        board.unit_running("a")
        board.unit_done("a", 0.5)
        board.unit_running("b")
        board.unit_retrying("b", attempt=1, reason="deadline")
        board.unit_running("b", attempt=2)
        board.unit_done("b", 0.7)
        board.unit_running("c")
        board.unit_quarantined("c", attempts=3)
        board.finish()
        text = out.getvalue()
        assert "campaign: 0/3" in text
        assert "1 retried" in text
        assert "1 quarantined" in text
        assert "\r" not in text  # log lines, not TTY rewrites
        assert board.done == 2
        assert board.retries == 1
        assert board.quarantined == 1

    def test_cache_rates_from_live_metrics(self):
        out = io.StringIO()
        board = ProgressBoard(out, total=2, interval_s=0.001)
        board.live_metrics({"counters": {
            "evaluator.cache.hits": 3, "evaluator.cache.misses": 1,
            "operator.factor.hits": 1, "operator.factorizations": 3}})
        line = board.status_line()
        assert "eval cache 75%" in line
        assert "factor cache 25%" in line

    def test_eta_appears_after_first_completion(self):
        out = io.StringIO()
        board = ProgressBoard(out, total=4, interval_s=0.001)
        board.begin(4)
        assert board.eta_s() is None
        board.unit_running("a")
        board.unit_done("a", 0.1)
        assert board.eta_s() is not None
        assert board.throughput() > 0.0

    def test_publisher_pumped_on_completion_and_finish(self):
        calls = []

        class Recorder:
            def pump(self, final=False):
                calls.append(final)

        board = ProgressBoard(io.StringIO(), total=1,
                              interval_s=0.001,
                              publisher=Recorder())
        board.unit_running("a")
        board.unit_done("a", 0.1)
        board.finish()
        assert calls == [False, True]

    def test_rejects_bad_interval(self):
        with pytest.raises(ConfigurationError):
            ProgressBoard(io.StringIO(), interval_s=0.0)


class TestMergeSnapshotOrdering:
    def snap_a(self):
        return {"counters": {"operator.solves": 3},
                "gauges": {"evaluator.cache.size": 5.0},
                "histograms": {"solve.seconds": {
                    "buckets": [[0.1, 1], [1.0, 0]], "overflow": 0,
                    "count": 1, "sum": 0.05, "min": 0.05,
                    "max": 0.05}}}

    def snap_b(self):
        return {"counters": {"operator.solves": 2,
                             "journal.records": 4},
                "gauges": {"evaluator.cache.size": 9.0},
                "histograms": {"solve.seconds": {
                    "buckets": [[0.1, 0], [1.0, 2]], "overflow": 1,
                    "count": 3, "sum": 4.5, "min": 0.4,
                    "max": 3.0}}}

    def merged(self, *snaps):
        with telemetry_session() as (_tracer, metrics):
            for snap in snaps:
                metrics.merge_snapshot(snap)
            return metrics.snapshot()

    def test_out_of_order_counters_and_histograms_commute(self):
        ab = self.merged(self.snap_a(), self.snap_b())
        ba = self.merged(self.snap_b(), self.snap_a())
        assert ab["counters"] == ba["counters"]
        assert ab["counters"]["operator.solves"] == 5
        hist_ab = ab["histograms"]["solve.seconds"]
        hist_ba = ba["histograms"]["solve.seconds"]
        for key in ("count", "sum", "min", "max", "buckets",
                    "overflow"):
            assert hist_ab[key] == hist_ba[key]
        assert hist_ab["count"] == 4
        assert hist_ab["min"] == 0.05
        assert hist_ab["max"] == 3.0

    def test_gauges_last_write_wins(self):
        ab = self.merged(self.snap_a(), self.snap_b())
        ba = self.merged(self.snap_b(), self.snap_a())
        assert ab["gauges"]["evaluator.cache.size"] == 9.0
        assert ba["gauges"]["evaluator.cache.size"] == 5.0

    def test_duplicate_live_then_final_snapshot_double_counts(self):
        # Documented hazard: merge_snapshot folds *absolute* snapshots,
        # so callers must merge each worker's totals exactly once.
        # The supervisor guarantees this by adopting either the final
        # packet or the result payload, never both.
        twice = self.merged(self.snap_a(), self.snap_a())
        assert twice["counters"]["operator.solves"] == 6

    def test_empty_snapshot_is_identity(self):
        merged = self.merged(self.snap_a(), {})
        assert merged["counters"]["operator.solves"] == 3


class TestAdoptRecordsStreamed:
    def source_records(self):
        with telemetry_session() as (tracer, _metrics):
            with tracer.span("unit", "w"):
                with tracer.span("stage", "s1"):
                    with tracer.span("evaluate"):
                        pass
                with tracer.span("stage", "s2"):
                    pass
        return [span_to_dict(span) for span in tracer.finished]

    def adopt(self, batches, id_map=None):
        with telemetry_session() as (tracer, _metrics):
            with tracer.span("campaign"):
                for batch in batches:
                    tracer.adopt_records(batch, id_map=id_map)
            return [span_to_dict(span) for span in tracer.finished]

    @staticmethod
    def shape(adopted):
        by_id = {r["span_id"]: r for r in adopted}

        def chain(record):
            parent = by_id.get(record.get("parent_id"))
            if parent is None:
                return (record["kind"], record.get("name"))
            return chain(parent) + (record["kind"],)

        return sorted(chain(r) for r in adopted)

    def test_interleaved_deltas_match_one_shot(self):
        records = self.source_records()
        # Live adoption: the unit span arrives in one delta, the stage
        # spans in a later one.  The persistent id_map must let the
        # later batch resolve parents adopted in the earlier batch.
        one_shot = self.adopt([records])
        unit = [r for r in records if r["kind"] == "unit"]
        rest = [r for r in records if r["kind"] != "unit"]
        interleaved = self.adopt([unit, rest], id_map={})
        assert self.shape(interleaved) == self.shape(one_shot)

    def test_without_persistent_map_cross_batch_parents_reroot(self):
        records = self.source_records()
        unit = [r for r in records if r["kind"] == "unit"]
        rest = [r for r in records if r["kind"] != "unit"]
        adopted = self.adopt([unit, rest])  # per-batch maps
        # Stage spans lost their unit parent: they re-rooted under the
        # adoption parent (the campaign span) instead of cross-linking.
        chains = self.shape(adopted)
        assert ("campaign", None, "stage") in chains

    def test_per_batch_map_falls_back_to_parent(self):
        records = self.source_records()
        # Without a persistent map, a batch whose parents finished in
        # an earlier batch re-roots under the adoption parent instead
        # of crashing or cross-linking.
        adopted = self.adopt([records[:2], records[2:]])
        campaign = [r for r in adopted if r["kind"] == "campaign"]
        assert len(campaign) == 1
        root_id = campaign[0]["span_id"]
        units = [r for r in adopted
                 if r["kind"] == "unit" and r["parent_id"] == root_id]
        assert units  # the unit span re-rooted under the campaign


class TestBenchGate:
    def run_gate(self, argv):
        sys.path.insert(0, str(SCRIPTS))
        try:
            import bench_gate
        finally:
            sys.path.pop(0)
        return bench_gate.main(argv)

    def seed_artifacts(self, directory, **overrides):
        docs = {
            "BENCH_3.json": {
                "grid_resolution": 12,
                "repeated_solve": {"speedup": 38.0},
                "table2_campaign": {
                    "factorizations_per_solve": 0.9}},
            "BENCH_4.json": {
                "grid_resolution": 12,
                "oftec": {"overhead_pct": 2.0},
                "warm_solve": {"overhead_pct": 3.0},
                "streaming": {"overhead_pct": 2.2}},
            "BENCH_5.json": {
                "benchmarks": 2,
                "canonical_digest": "ab" * 32,
                "parallel": {"workers_2": {"per_worker": [
                    {"units": 1}, {"units": 1}]}}},
            "BENCH_6.json": {"overhead_pct": 1.0},
            "BENCH_7.json": {
                "totals": {"solve_reduction": 10.0}},
        }
        docs.update(overrides)
        for name, doc in docs.items():
            if doc is None:
                continue
            (directory / name).write_text(json.dumps(doc))

    def test_healthy_artifacts_pass(self, tmp_path, capsys):
        self.seed_artifacts(tmp_path)
        assert self.run_gate(["--dir", str(tmp_path),
                              "--require-all"]) == 0
        out = capsys.readouterr().out
        assert "bench_gate: ok" in out

    def test_committed_artifacts_pass(self, capsys):
        repo = str(Path(__file__).resolve().parents[1])
        assert self.run_gate(["--dir", repo, "--require-all"]) == 0

    def test_broken_factor_cache_fails(self, tmp_path, capsys):
        self.seed_artifacts(tmp_path, **{"BENCH_3.json": {
            "grid_resolution": 12,
            "repeated_solve": {"speedup": 1.1},
            "table2_campaign": {"factorizations_per_solve": 2.5}}})
        assert self.run_gate(["--dir", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "FAIL  BENCH_3" in out

    def test_streaming_budget_fails(self, tmp_path):
        self.seed_artifacts(tmp_path, **{"BENCH_4.json": {
            "grid_resolution": 12,
            "oftec": {"overhead_pct": 2.0},
            "warm_solve": {"overhead_pct": 3.0},
            "streaming": {"overhead_pct": 9.0}}})
        assert self.run_gate(["--dir", str(tmp_path)]) == 1

    def test_smoke_resolution_skips_resolution_gated_budgets(
            self, tmp_path, capsys):
        self.seed_artifacts(tmp_path, **{"BENCH_4.json": {
            "grid_resolution": 6,
            "oftec": {"overhead_pct": 2.0},
            "warm_solve": {"overhead_pct": 40.0},
            "streaming": {"overhead_pct": 40.0}}})
        assert self.run_gate(["--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "SKIP  BENCH_4 warm-solve" in out
        assert "SKIP  BENCH_4 streaming" in out

    def test_missing_artifact_skips_unless_required(self, tmp_path):
        self.seed_artifacts(tmp_path, **{"BENCH_7.json": None})
        assert self.run_gate(["--dir", str(tmp_path)]) == 0
        assert self.run_gate(["--dir", str(tmp_path),
                              "--require-all"]) == 1

    def test_drift_warns_then_strict_fails(self, tmp_path, capsys):
        current = tmp_path / "current"
        baseline = tmp_path / "baseline"
        current.mkdir()
        baseline.mkdir()
        self.seed_artifacts(baseline)
        self.seed_artifacts(current, **{"BENCH_3.json": {
            "grid_resolution": 12,
            "repeated_solve": {"speedup": 5.0},  # big regression
            "table2_campaign": {"factorizations_per_solve": 0.9}}})
        assert self.run_gate(["--dir", str(current),
                              "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "DRIFT BENCH_3.json repeated-solve speedup" in out
        assert self.run_gate(["--dir", str(current),
                              "--baseline", str(baseline),
                              "--strict-drift"]) == 1

    def test_bad_directories_are_config_errors(self, tmp_path):
        assert self.run_gate(["--dir", str(tmp_path / "nope")]) == 5
        assert self.run_gate(["--dir", str(tmp_path),
                              "--baseline",
                              str(tmp_path / "nope")]) == 5
