"""System-COP analysis (reference [8] formulation)."""

import numpy as np
import pytest

from repro.analysis import analyze_system_cop, sweep_objective_surfaces
from repro.core import Evaluator


@pytest.fixture(scope="module")
def analysis(tec_problem):
    return analyze_system_cop(tec_problem, omega_points=8,
                              current_points=5)


class TestCOPSurface:
    def test_shapes(self, analysis):
        assert analysis.cop.shape == (8, 5)
        assert analysis.heat_removed.shape == analysis.cop.shape

    def test_runaway_region_is_nan(self, analysis):
        # The omega = 0 row has no bounded steady state.
        assert np.isnan(analysis.cop[0]).all()

    def test_cop_definition(self, analysis, tec_problem):
        # Spot-check one finite sample against a direct evaluation.
        evaluator = Evaluator(tec_problem)
        i, j = 4, 2
        omega = float(analysis.omegas[i])
        current = float(analysis.currents[j])
        evaluation = evaluator.evaluate(omega, current)
        expected = (tec_problem.total_dynamic_power
                    + evaluation.leakage_power) \
            / (evaluation.tec_power + evaluation.fan_power)
        assert analysis.cop[i, j] == pytest.approx(expected, rel=1e-6)

    def test_cop_positive_where_finite(self, analysis):
        finite = analysis.cop[np.isfinite(analysis.cop)]
        assert (finite > 0.0).all()

    def test_cop_well_above_unity(self, analysis):
        # The fan moves tens of watts for single watts of actuation, so
        # the best package COP is >> 1 (unlike the bare TEC's COP).
        _, _, best = analysis.max_cop_point()
        assert best > 3.0

    def test_max_cop_at_gentle_actuation(self, analysis, tec_problem):
        # COP peaks where actuation is cheap: low omega (but above the
        # runaway boundary) and low current.
        omega, current, _ = analysis.max_cop_point()
        assert omega < 0.6 * tec_problem.limits.omega_max
        assert current < 0.5 * tec_problem.limits.i_tec_max

    def test_cop_at_nearest_lookup(self, analysis):
        omega, current, best = analysis.max_cop_point()
        assert analysis.cop_at(omega, current) == pytest.approx(best)

    def test_format_cop(self, analysis):
        from repro.analysis import format_cop
        text = format_cop(analysis)
        assert "max COP" in text
        assert "median COP" in text

    def test_reuses_sweep(self, tec_problem):
        evaluator = Evaluator(tec_problem)
        sweep = sweep_objective_surfaces(tec_problem, omega_points=5,
                                         current_points=3,
                                         evaluator=evaluator)
        solves = evaluator.solve_count
        analysis = analyze_system_cop(tec_problem, evaluator=evaluator,
                                      sweep=sweep)
        # No extra thermal solves: everything comes from the cache.
        assert evaluator.solve_count == solves
        assert analysis.cop.shape == (5, 3)
