"""Crash-consistent journal: chain verification, recovery, resume."""

import base64
import hashlib
import json
import pickle

import pytest

from repro import build_cooling_problem
from repro.analysis import run_campaign
from repro.errors import (
    ConfigurationError,
    JournalCorruptionError,
    JournalError,
)
from repro.exec import (
    JOURNAL_VERSION,
    JournalWriter,
    UnitResult,
    read_journal,
    unit_fingerprint,
)
from repro.exec.journal import _CHAIN_ROOT, _encode_body, _record_digest
from repro.io import campaign_to_dict


def make_result(index, name=None):
    return UnitResult(index=index, name=name or f"unit-{index}",
                      value=("payload", index))


def write_journal(path, count=3, meta=None):
    with JournalWriter(str(path), meta=meta) as journal:
        for index in range(count):
            journal.append(make_result(index))
    return str(path)


class TestRoundTrip:
    def test_results_and_meta_survive(self, tmp_path):
        meta = {"fingerprint": "abc", "job": "campaign"}
        path = write_journal(tmp_path / "j.jsonl", count=3, meta=meta)
        recovery = read_journal(path)
        assert recovery.meta == meta
        assert recovery.records == 3
        assert not recovery.truncated
        assert sorted(recovery.results) == [0, 1, 2]
        assert recovery.results[1].value == ("payload", 1)

    def test_append_is_idempotent_per_index(self, tmp_path):
        with JournalWriter(str(tmp_path / "j.jsonl")) as journal:
            journal.append(make_result(0))
            journal.append(make_result(0))
            journal.append(make_result(1))
        recovery = read_journal(str(tmp_path / "j.jsonl"))
        assert recovery.records == 2

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(JournalError):
            read_journal(str(tmp_path / "nope.jsonl"))

    def test_fingerprint_depends_on_names_and_job(self):
        base = unit_fingerprint(("a", "b"), "campaign")
        assert unit_fingerprint(("a", "b"), "campaign") == base
        assert unit_fingerprint(("b", "a"), "campaign") != base
        assert unit_fingerprint(("a", "b"), "sweep") != base


class TestCorruption:
    def test_truncated_final_record_is_tolerated(self, tmp_path):
        path = write_journal(tmp_path / "j.jsonl", count=3)
        with open(path, "rb") as handle:
            data = handle.read()
        with open(path, "wb") as handle:
            handle.write(data[:-30])  # chop into the final record
        recovery = read_journal(path)
        assert recovery.truncated
        assert recovery.records == 2
        assert sorted(recovery.results) == [0, 1]

    def test_mid_file_garbage_raises_with_index(self, tmp_path):
        path = write_journal(tmp_path / "j.jsonl", count=3)
        lines = open(path, "rb").read().splitlines()
        lines[2] = b"{not json"
        with open(path, "wb") as handle:
            handle.write(b"\n".join(lines) + b"\n")
        with pytest.raises(JournalCorruptionError) as excinfo:
            read_journal(path)
        assert excinfo.value.record_index == 2

    def test_tampered_payload_breaks_the_chain(self, tmp_path):
        path = write_journal(tmp_path / "j.jsonl", count=3)
        lines = open(path, "rb").read().splitlines()
        record = json.loads(lines[1])
        record["unit"] = "forged"
        lines[1] = json.dumps(record, sort_keys=True,
                              separators=(",", ":")).encode()
        with open(path, "wb") as handle:
            handle.write(b"\n".join(lines) + b"\n")
        with pytest.raises(JournalCorruptionError) as excinfo:
            read_journal(path)
        assert excinfo.value.record_index == 1

    def test_duplicate_identical_record_is_idempotent(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        journal = JournalWriter(path)
        journal.append(make_result(0))
        # Replay of an acknowledged append: same body, valid chain.
        payload = pickle.dumps(journal.completed[0])
        journal._write({
            "kind": "unit", "index": 0, "unit": "unit-0",
            "payload": base64.b64encode(payload).decode("ascii")})
        journal.close()
        recovery = read_journal(path)
        assert recovery.records == 1

    def test_duplicate_conflicting_record_is_corruption(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        journal = JournalWriter(path)
        journal.append(make_result(0))
        payload = pickle.dumps(make_result(0, name="impostor"))
        journal._write({
            "kind": "unit", "index": 0, "unit": "impostor",
            "payload": base64.b64encode(payload).decode("ascii")})
        journal.close()
        with pytest.raises(JournalCorruptionError) as excinfo:
            read_journal(path)
        assert excinfo.value.record_index == 2

    def test_unknown_record_kind_is_corruption(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        journal = JournalWriter(path)
        journal._write({"kind": "mystery"})
        journal.append(make_result(0))
        journal.close()
        with pytest.raises(JournalCorruptionError):
            read_journal(path)

    def test_missing_header_is_corruption(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        body = {"kind": "unit", "index": 0, "unit": "u",
                "payload": base64.b64encode(
                    pickle.dumps(make_result(0))).decode("ascii")}
        record = dict(body)
        record["digest"] = _record_digest(_CHAIN_ROOT,
                                          _encode_body(body))
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True,
                                    separators=(",", ":")) + "\n")
        with pytest.raises(JournalCorruptionError) as excinfo:
            read_journal(path)
        assert excinfo.value.record_index == 0

    def test_unsupported_version_raises(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        body = {"kind": "header", "version": JOURNAL_VERSION + 7,
                "meta": {}}
        record = dict(body)
        record["digest"] = _record_digest(_CHAIN_ROOT,
                                          _encode_body(body))
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True,
                                    separators=(",", ":")) + "\n")
        with pytest.raises(JournalError):
            read_journal(path)


class TestResumeWriter:
    def test_resume_continues_the_chain(self, tmp_path):
        path = write_journal(tmp_path / "j.jsonl", count=2,
                             meta={"fingerprint": "fp"})
        with JournalWriter(path, meta={"fingerprint": "fp"},
                           resume=True) as journal:
            assert sorted(journal.completed) == [0, 1]
            journal.append(make_result(2))
        recovery = read_journal(path)
        assert recovery.records == 3
        assert not recovery.truncated

    def test_resume_rewrites_a_truncated_tail(self, tmp_path):
        path = write_journal(tmp_path / "j.jsonl", count=3,
                             meta={"fingerprint": "fp"})
        with open(path, "rb") as handle:
            data = handle.read()
        with open(path, "wb") as handle:
            handle.write(data[:-25])
        with JournalWriter(path, meta={"fingerprint": "fp"},
                           resume=True) as journal:
            assert sorted(journal.completed) == [0, 1]
            journal.append(make_result(2))
        recovery = read_journal(path)
        assert recovery.records == 3
        assert not recovery.truncated

    def test_foreign_fingerprint_is_rejected(self, tmp_path):
        path = write_journal(tmp_path / "j.jsonl", count=1,
                             meta={"fingerprint": "theirs"})
        with pytest.raises(JournalError):
            JournalWriter(path, meta={"fingerprint": "ours"},
                          resume=True)


@pytest.fixture(scope="module")
def journal_problems(profiles):
    tec = build_cooling_problem(profiles["basicmath"],
                                grid_resolution=4)
    base = build_cooling_problem(profiles["basicmath"], with_tec=False,
                                 grid_resolution=4)
    return tec, base


def canonical_digest(campaign):
    payload = campaign_to_dict(campaign, canonical=True)
    text = json.dumps(payload, indent=2, sort_keys=True)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class TestCampaignResume:
    def test_journal_and_resume_are_bit_identical(self, profiles,
                                                  journal_problems,
                                                  tmp_path):
        tec, base = journal_problems
        subset = dict(list(profiles.items())[:2])
        serial = run_campaign(subset, tec, base, workers=0)

        path = str(tmp_path / "campaign.journal")
        journaled = run_campaign(subset, tec, base, workers=1,
                                 journal_path=path)
        assert canonical_digest(journaled) == canonical_digest(serial)

        # Simulate a crash after the first completed unit: keep the
        # header plus one unit record, then resume.
        lines = open(path, "rb").read().splitlines()
        with open(path, "wb") as handle:
            handle.write(b"\n".join(lines[:2]) + b"\n")
        resumed = run_campaign(subset, tec, base, workers=1,
                               resume_from=path)
        assert canonical_digest(resumed) == canonical_digest(serial)
        recovery = read_journal(path)
        assert recovery.records == len(subset)

    def test_fully_journaled_run_replays_without_solving(
            self, profiles, journal_problems, tmp_path):
        tec, base = journal_problems
        subset = dict(list(profiles.items())[:2])
        path = str(tmp_path / "campaign.journal")
        first = run_campaign(subset, tec, base, workers=1,
                             journal_path=path)
        replay = run_campaign(subset, tec, base, workers=1,
                              resume_from=path)
        assert canonical_digest(replay) == canonical_digest(first)

    def test_journal_and_resume_are_exclusive(self, profiles,
                                              journal_problems,
                                              tmp_path):
        tec, base = journal_problems
        subset = {"basicmath": profiles["basicmath"]}
        with pytest.raises(ConfigurationError):
            run_campaign(subset, tec, base,
                         journal_path=str(tmp_path / "a"),
                         resume_from=str(tmp_path / "b"))

    def test_resume_rejects_foreign_campaign(self, profiles,
                                             journal_problems,
                                             tmp_path):
        tec, base = journal_problems
        subset = dict(list(profiles.items())[:2])
        path = str(tmp_path / "campaign.journal")
        run_campaign(subset, tec, base, workers=1, journal_path=path)
        other = dict(list(profiles.items())[2:4])
        with pytest.raises(JournalError):
            run_campaign(other, tec, base, workers=1, resume_from=path)
