"""Quad-core CMP floorplan and its use through the whole stack."""

import pytest

from repro import build_cooling_problem, run_oftec
from repro.core import ProblemLimits
from repro.errors import ConfigurationError
from repro.geometry import (
    CMP4_CACHE_UNITS,
    CellCoverage,
    Grid,
    cmp4_floorplan,
    cmp4_unit_power,
)
from repro.geometry.cmp4 import CMP4_DIE_SIZE
from repro.tec import coverage_mask_excluding


class TestFloorplan:
    def test_unit_count(self):
        # 4 cores x 5 tiles + shared L2.
        assert len(cmp4_floorplan()) == 21

    def test_die_size(self):
        box = cmp4_floorplan().bounding_box
        assert box.width == pytest.approx(CMP4_DIE_SIZE)
        assert box.height == pytest.approx(CMP4_DIE_SIZE)

    def test_full_tiling(self):
        assert cmp4_floorplan().coverage_fraction() == \
            pytest.approx(1.0, abs=1e-9)

    def test_cache_units_exist(self):
        fp = cmp4_floorplan()
        for name in CMP4_CACHE_UNITS:
            assert name in fp

    def test_cores_are_disjoint_clusters(self):
        fp = cmp4_floorplan()
        # core0 sits in the lower-left quadrant, core3 upper-right.
        assert fp["core0_EXE"].rect.x2 <= CMP4_DIE_SIZE / 2 + 1e-9
        assert fp["core3_EXE"].rect.x >= CMP4_DIE_SIZE / 2 - 1e-9


class TestUnitPower:
    def test_conserves_totals(self):
        powers = cmp4_unit_power([10.0, 12.0, 0.0, 8.0], l2_power=4.0)
        assert sum(powers.values()) == pytest.approx(34.0)

    def test_idle_core_draws_nothing(self):
        powers = cmp4_unit_power([10.0, 0.0, 0.0, 0.0])
        assert powers["core1_EXE"] == 0.0
        assert powers["core0_EXE"] > 0.0

    def test_exe_hottest_tile(self):
        powers = cmp4_unit_power([10.0, 10.0, 10.0, 10.0])
        assert powers["core0_EXE"] > powers["core0_L1"]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            cmp4_unit_power([1.0, 2.0])
        with pytest.raises(ConfigurationError):
            cmp4_unit_power([1.0, 2.0, -1.0, 0.0])


class TestEndToEnd:
    def test_oftec_on_cmp(self):
        # The whole pipeline works on a non-EV6 floorplan: asymmetric
        # thread placement, caches excluded from TEC coverage.
        floorplan = cmp4_floorplan()
        grid = Grid.for_floorplan(floorplan, 8, 8)
        coverage = CellCoverage(floorplan, grid)
        mask = coverage_mask_excluding(coverage, CMP4_CACHE_UNITS)
        problem = build_cooling_problem(
            cmp4_unit_power([18.0, 18.0, 4.0, 4.0], l2_power=5.0),
            name="cmp4-imbalanced",
            floorplan=floorplan,
            grid_resolution=8,
            tec_coverage_mask=mask,
            limits=ProblemLimits())
        result = run_oftec(problem)
        assert result.feasible
        # The loaded cores define the hotspot.
        unit_temps = problem.coverage.unit_temperatures(
            result.evaluation.steady.chip_temperatures)
        assert unit_temps["core0_EXE"] > unit_temps["core2_EXE"]
