"""Microarchitectural activity/power simulator (PTscalar substitute)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.uarch import (
    ActivityModel,
    Ev6Machine,
    InstructionClass,
    UnitPowerModel,
    mibench_programs,
    simulate_power_trace,
)
from repro.uarch.isa import InstructionMix, make_mix
from repro.uarch.programs import Phase


class TestInstructionMix:
    def test_make_mix_normalizes(self):
        mix = make_mix(int_alu=2.0, load=1.0, branch=1.0)
        assert mix.fraction(InstructionClass.INT_ALU) == \
            pytest.approx(0.5)
        assert sum(mix.fractions.values()) == pytest.approx(1.0)

    def test_aggregates(self):
        mix = make_mix(int_alu=0.4, fp_add=0.2, fp_mul=0.1, load=0.2,
                       store=0.1)
        assert mix.memory_fraction == pytest.approx(0.3)
        assert mix.fp_fraction == pytest.approx(0.3)
        assert mix.int_fraction == pytest.approx(0.4)

    def test_blended(self):
        a = make_mix(int_alu=1.0)
        b = make_mix(fp_add=1.0)
        mid = a.blended(b, 0.25)
        assert mid.fraction(InstructionClass.INT_ALU) == \
            pytest.approx(0.75)
        assert mid.fraction(InstructionClass.FP_ADD) == \
            pytest.approx(0.25)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            InstructionMix({InstructionClass.INT_ALU: 0.5})
        with pytest.raises(ConfigurationError):
            make_mix(warp_core=1.0)
        with pytest.raises(ConfigurationError):
            make_mix(int_alu=0.0)
        a = make_mix(int_alu=1.0)
        with pytest.raises(ConfigurationError):
            a.blended(a, 2.0)


class TestPrograms:
    def test_eight_programs(self):
        programs = mibench_programs()
        assert len(programs) == 8
        for name, program in programs.items():
            assert program.name == name
            assert program.duration > 0.0

    def test_phase_at(self):
        program = mibench_programs()["basicmath"]
        assert program.phase_at(0.0) is program.phases[0]
        assert program.phase_at(program.duration + 5.0) \
            is program.phases[-1]

    def test_phase_validation(self):
        mix = make_mix(int_alu=1.0)
        with pytest.raises(ConfigurationError):
            Phase("x", duration=0.0, mix=mix, ipc_demand=1.0,
                  locality=0.5)
        with pytest.raises(ConfigurationError):
            Phase("x", duration=1.0, mix=mix, ipc_demand=0.0,
                  locality=0.5)
        with pytest.raises(ConfigurationError):
            Phase("x", duration=1.0, mix=mix, ipc_demand=1.0,
                  locality=1.5)


class TestActivityModel:
    def test_ipc_respects_width(self):
        model = ActivityModel(Ev6Machine(issue_width=4.0))
        phase = Phase("x", 1.0, make_mix(int_alu=1.0),
                      ipc_demand=10.0, locality=1.0)
        assert model.effective_ipc(phase) <= 4.0

    def test_fp_structural_limit(self):
        # A pure FP-add stream can't beat the single adder pipe.
        model = ActivityModel()
        phase = Phase("x", 1.0, make_mix(fp_add=1.0), ipc_demand=4.0,
                      locality=1.0)
        assert model.effective_ipc(phase) <= 1.0 + 1e-9

    def test_poor_locality_stalls(self):
        model = ActivityModel()
        mix = make_mix(int_alu=0.5, load=0.5)
        fast = Phase("hit", 1.0, mix, ipc_demand=3.0, locality=1.0)
        slow = Phase("miss", 1.0, mix, ipc_demand=3.0, locality=0.2)
        assert model.effective_ipc(slow) < model.effective_ipc(fast)

    def test_activities_bounded(self):
        model = ActivityModel()
        for program in mibench_programs().values():
            for phase in program.phases:
                for unit, activity in model.unit_activities(
                        phase).items():
                    assert 0.0 <= activity <= 1.0, (program.name, unit)

    def test_int_kernel_drives_int_units(self):
        model = ActivityModel()
        program = mibench_programs()["bitcount"]
        activities = model.unit_activities(program.phases[-1])
        assert activities["IntExec"] > activities["FPAdd"]
        assert activities["IntExec"] > activities["L2"]

    def test_fp_kernel_drives_fp_units(self):
        model = ActivityModel()
        program = mibench_programs()["fft"]
        activities = model.unit_activities(program.phases[-1])
        assert activities["FPAdd"] > activities["IntExec"]

    def test_streaming_drives_l2(self):
        model = ActivityModel()
        crc = mibench_programs()["crc32"].phases[0]
        bit = mibench_programs()["bitcount"].phases[-1]
        assert model.unit_activities(crc)["L2"] > \
            model.unit_activities(bit)["L2"]

    def test_simulate_interval_count(self):
        model = ActivityModel()
        program = mibench_programs()["crc32"]
        intervals = model.simulate(program, sample_interval=0.1)
        assert len(intervals) == int(round(program.duration / 0.1))
        assert intervals[-1].time == pytest.approx(program.duration,
                                                   abs=0.1)

    def test_simulate_validation(self):
        model = ActivityModel()
        program = mibench_programs()["crc32"]
        with pytest.raises(ConfigurationError):
            model.simulate(program, sample_interval=0.0)
        with pytest.raises(ConfigurationError):
            model.simulate(program, sample_interval=1e9)

    def test_machine_validation(self):
        with pytest.raises(ConfigurationError):
            Ev6Machine(issue_width=0.0)
        with pytest.raises(ConfigurationError):
            Ev6Machine(miss_penalty=-1.0)


class TestUnitPowerModel:
    def test_for_floorplan_budget(self):
        model = UnitPowerModel.for_floorplan(total_peak=70.0)
        assert model.total_peak == pytest.approx(70.0)

    def test_execution_denser_than_sram(self, floorplan):
        model = UnitPowerModel.for_floorplan(floorplan, total_peak=70.0)
        density = {name: model.peak_power[name] / floorplan[name].area
                   for name in ("IntExec", "L2")}
        assert density["IntExec"] > 5.0 * density["L2"]

    def test_idle_floor(self):
        model = UnitPowerModel({"u": 10.0}, idle_fraction=0.2)
        assert model.power("u", 0.0) == pytest.approx(2.0)
        assert model.power("u", 1.0) == pytest.approx(10.0)
        assert model.power("u", 0.5) == pytest.approx(6.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            UnitPowerModel({})
        with pytest.raises(ConfigurationError):
            UnitPowerModel({"u": -1.0})
        with pytest.raises(ConfigurationError):
            UnitPowerModel({"u": 1.0}, idle_fraction=1.0)
        model = UnitPowerModel({"u": 1.0})
        with pytest.raises(ConfigurationError):
            model.power("v", 0.5)
        with pytest.raises(ConfigurationError):
            model.power("u", 1.5)


class TestEndToEnd:
    def test_trace_shape(self):
        program = mibench_programs()["fft"]
        trace = simulate_power_trace(program, sample_interval=0.05)
        assert trace.duration == pytest.approx(program.duration,
                                               abs=0.05)
        assert (trace.samples >= 0.0).all()

    def test_power_within_peaks(self):
        model = UnitPowerModel.for_floorplan(total_peak=70.0)
        trace = simulate_power_trace(mibench_programs()["quicksort"],
                                     model)
        for unit in trace.unit_names:
            assert trace.unit_series(unit).max() <= \
                model.peak_power[unit] + 1e-9

    def test_benchmark_characters(self):
        profiles = {
            name: simulate_power_trace(program).max_profile()
            for name, program in mibench_programs().items()
        }
        # Integer kernels heat the int core, FP kernels the FP adder.
        assert profiles["bitcount"].unit_power["IntExec"] > \
            profiles["bitcount"].unit_power["FPAdd"]
        assert profiles["fft"].unit_power["FPAdd"] > \
            profiles["fft"].unit_power["IntQ"]
        # Streaming benchmarks push the L2 arrays hardest.
        assert profiles["djkstra"].unit_power["L2"] > \
            profiles["bitcount"].unit_power["L2"]

    def test_heavier_benchmarks_draw_more(self):
        profiles = {
            name: simulate_power_trace(program).max_profile()
            for name, program in mibench_programs().items()
        }
        light = ("crc32",)
        heavy = ("bitcount", "quicksort", "susan")
        assert max(profiles[n].total_power for n in light) < \
            min(profiles[n].total_power for n in heavy)

    def test_feeds_oftec(self):
        # The complete Figure 5 path: program -> trace -> max profile
        # -> cooling problem -> Algorithm 1.
        from repro import build_cooling_problem, run_oftec
        trace = simulate_power_trace(
            mibench_programs()["basicmath"],
            UnitPowerModel.for_floorplan(total_peak=70.0))
        problem = build_cooling_problem(trace.max_profile(),
                                        grid_resolution=6)
        result = run_oftec(problem)
        assert result.feasible

    def test_deterministic(self):
        t1 = simulate_power_trace(mibench_programs()["susan"])
        t2 = simulate_power_trace(mibench_programs()["susan"])
        assert np.array_equal(t1.samples, t2.samples)
