"""Transient solver: settling, runaway trajectories, schedules."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.thermal import simulate_transient, solve_steady_state


class TestSettling:
    def test_settles_to_steady_state(self, tec_model, basicmath_power,
                                     leakage):
        steady = solve_steady_state(tec_model, 262.0, 0.5,
                                    basicmath_power, leakage)
        transient = simulate_transient(
            tec_model, duration=60.0, dt=0.5, omega=262.0, current=0.5,
            dynamic_cell_power=basicmath_power, leakage=leakage)
        assert not transient.runaway
        assert transient.settled_temperature == pytest.approx(
            steady.max_chip_temperature, abs=0.5)

    def test_monotone_warmup_from_ambient(self, tec_model,
                                          basicmath_power, leakage):
        transient = simulate_transient(
            tec_model, duration=10.0, dt=0.25, omega=262.0, current=0.0,
            dynamic_cell_power=basicmath_power, leakage=leakage)
        trace = transient.max_chip_temperature
        assert (np.diff(trace) > -1e-6).all()

    def test_starts_at_ambient(self, tec_model, basicmath_power,
                               leakage):
        transient = simulate_transient(
            tec_model, duration=1.0, dt=0.5, omega=262.0, current=0.0,
            dynamic_cell_power=basicmath_power, leakage=leakage)
        assert transient.max_chip_temperature[0] == pytest.approx(
            tec_model.config.ambient)

    def test_initial_temperatures_respected(self, tec_model,
                                            basicmath_power, leakage):
        n = tec_model.network.node_count
        start = np.full(n, 350.0)
        transient = simulate_transient(
            tec_model, duration=1.0, dt=0.5, omega=262.0, current=0.0,
            dynamic_cell_power=basicmath_power, leakage=leakage,
            initial_temperatures=start)
        assert transient.max_chip_temperature[0] == pytest.approx(350.0)

    def test_leakage_trace_tracks_temperature(self, tec_model,
                                              basicmath_power, leakage):
        transient = simulate_transient(
            tec_model, duration=20.0, dt=0.5, omega=262.0, current=0.0,
            dynamic_cell_power=basicmath_power, leakage=leakage)
        # Leakage grows as the die warms.
        assert transient.leakage_power[-1] > transient.leakage_power[1]


class TestRunawayTrajectory:
    def test_runaway_detected_and_timed(self, tec_model, quicksort_power,
                                        leakage):
        transient = simulate_transient(
            tec_model, duration=2000.0, dt=5.0, omega=0.0, current=0.0,
            dynamic_cell_power=quicksort_power, leakage=leakage)
        assert transient.runaway
        assert transient.runaway_time is not None
        assert transient.runaway_time <= 2000.0

    def test_no_runaway_with_fan(self, tec_model, quicksort_power,
                                 leakage):
        transient = simulate_transient(
            tec_model, duration=60.0, dt=1.0, omega=400.0, current=0.0,
            dynamic_cell_power=quicksort_power, leakage=leakage)
        assert not transient.runaway


class TestSchedules:
    def test_time_varying_current(self, tec_model, basicmath_power,
                                  leakage):
        # Boost for the first second, then settle lower.
        def current(t):
            return 2.0 if t <= 1.0 else 0.5

        transient = simulate_transient(
            tec_model, duration=5.0, dt=0.25, omega=262.0,
            current=current, dynamic_cell_power=basicmath_power,
            leakage=leakage)
        assert not transient.runaway

    def test_power_step_schedule(self, tec_model, basicmath_power,
                                 quicksort_power, leakage):
        def power(t):
            return basicmath_power if t <= 5.0 else quicksort_power

        transient = simulate_transient(
            tec_model, duration=10.0, dt=0.5, omega=400.0, current=0.5,
            dynamic_cell_power=power, leakage=leakage)
        # The power step must heat the die.
        mid = len(transient.times) // 2
        assert transient.max_chip_temperature[-1] > \
            transient.max_chip_temperature[mid] - 0.1

    def test_fan_step_cools(self, tec_model, quicksort_power, leakage):
        # Let each fan phase run long enough to approach its own steady
        # state; the high-speed phase must end cooler than the low-speed
        # phase's endpoint.
        def omega(t):
            return 150.0 if t <= 120.0 else 500.0

        transient = simulate_transient(
            tec_model, duration=300.0, dt=2.0, omega=omega, current=0.0,
            dynamic_cell_power=quicksort_power, leakage=leakage)
        idx_before = int(120.0 / 2.0)
        assert transient.max_chip_temperature[-1] < \
            transient.max_chip_temperature[idx_before]


class TestValidation:
    def test_bad_duration(self, tec_model, basicmath_power):
        with pytest.raises(ConfigurationError):
            simulate_transient(tec_model, duration=0.0, dt=0.1,
                               omega=262.0, current=0.0,
                               dynamic_cell_power=basicmath_power)

    def test_dt_exceeds_duration(self, tec_model, basicmath_power):
        with pytest.raises(ConfigurationError):
            simulate_transient(tec_model, duration=1.0, dt=2.0,
                               omega=262.0, current=0.0,
                               dynamic_cell_power=basicmath_power)

    def test_bad_initial_shape(self, tec_model, basicmath_power):
        with pytest.raises(ConfigurationError):
            simulate_transient(tec_model, duration=1.0, dt=0.5,
                               omega=262.0, current=0.0,
                               dynamic_cell_power=basicmath_power,
                               initial_temperatures=np.zeros(3))
