"""The adjoint differentiation pipeline.

Analytic gradients from :meth:`Evaluator.evaluate_with_grad` are checked
against central finite differences of the evaluator's own objectives
across all eight benchmarks at randomized interior points, plus the edge
behavior the adjoint has to get right: the natural-convection floor
below the fan crossover speed (where ``d/d(omega)`` vanishes exactly),
active box bounds, runaway penalty points, and the fault-injection seam
that degrades to finite differences.

The FD comparisons run on problems rebuilt with a tight leakage loop
tolerance: the default ~1e-3 K convergence noise sits far above the
1e-5 relative agreement asserted here.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import build_cooling_problem, mibench_profiles
from repro.core import Evaluator, minimize_power
from repro.core.solvers import JAC_MODES
from repro.errors import ConfigurationError
from repro.faults import FaultPlan
from repro.faults.inject import FaultInjector, FaultyEvaluator
from repro.thermal import PackageModelConfig

#: Grid resolution for the gradient checks (speed/fidelity balance).
RESOLUTION = 8

#: Relative tolerance of the analytic-vs-FD agreement.
RTOL = 1e-5

#: Central-difference steps, chosen against each axis span so the
#: truncation error sits below RTOL while staying above the (tightened)
#: leakage-loop noise floor.
OMEGA_STEP = 1e-2
CURRENT_STEP = 1e-4


def _tight_problem(name: str, with_tec: bool = True):
    """A benchmark problem with the leakage loop run to ~machine noise."""
    return build_cooling_problem(
        mibench_profiles()[name], with_tec=with_tec,
        grid_resolution=RESOLUTION,
        model_config=PackageModelConfig(leak_tolerance=1e-9))


def _central(f, x, h):
    return (f(x + h) - f(x - h)) / (2.0 * h)


def _fd_reference(evaluator, omega, current):
    """Central-difference (d𝒯, d𝒫) at one interior point."""
    fT_w = lambda w: evaluator.evaluate(w, current).max_chip_temperature
    fP_w = lambda w: evaluator.evaluate(w, current).total_power
    fT_i = lambda i: evaluator.evaluate(omega, i).max_chip_temperature
    fP_i = lambda i: evaluator.evaluate(omega, i).total_power
    d_temp_omega = _central(fT_w, omega, OMEGA_STEP)
    d_power_omega = _central(fP_w, omega, OMEGA_STEP)
    if evaluator.problem.current_upper_bound > 0.0:
        d_temp_current = _central(fT_i, current, CURRENT_STEP)
        d_power_current = _central(fP_i, current, CURRENT_STEP)
    else:
        d_temp_current = d_power_current = 0.0
    return (d_temp_omega, d_temp_current, d_power_omega,
            d_power_current)


class TestAdjointAgainstFiniteDifferences:
    @pytest.mark.parametrize("name", sorted(mibench_profiles()))
    def test_all_benchmarks_randomized_points(self, name):
        problem = _tight_problem(name)
        evaluator = Evaluator(problem)
        rng = np.random.default_rng(abs(hash(name)) % (2 ** 32))
        omega_max = problem.limits.omega_max
        i_max = problem.current_upper_bound
        crossover = problem.model.sink_conductance.crossover_speed
        checked = 0
        while checked < 3:
            # Interior points: above the crossover kink, inside both
            # boxes with step-sized margin.  High-current/low-airflow
            # draws can land in thermal runaway, where the adjoint
            # rightly declines (the penalty point has no steady state
            # to differentiate) — redraw those.
            omega = float(rng.uniform(
                max(crossover * 1.5, 0.25 * omega_max),
                omega_max - 2 * OMEGA_STEP))
            current = float(rng.uniform(2 * CURRENT_STEP,
                                        0.75 * i_max))
            evaluation = evaluator.evaluate_with_grad(omega, current)
            if evaluation.runaway:
                continue
            checked += 1
            gradient = evaluation.gradient
            assert gradient.mode == "adjoint"
            reference = _fd_reference(evaluator, omega, current)
            analytic = (gradient.d_temp_omega, gradient.d_temp_current,
                        gradient.d_power_omega,
                        gradient.d_power_current)
            for got, want in zip(analytic, reference):
                assert got == pytest.approx(want, rel=RTOL,
                                            abs=1e-8), (name, omega,
                                                        current)

    def test_no_tec_problem_matches_fd(self):
        problem = _tight_problem("basicmath", with_tec=False)
        evaluator = Evaluator(problem)
        omega = 0.4 * problem.limits.omega_max
        gradient = evaluator.evaluate_with_grad(omega, 0.0).gradient
        assert gradient.mode == "adjoint"
        reference = _fd_reference(evaluator, omega, 0.0)
        assert gradient.d_temp_omega == pytest.approx(reference[0],
                                                      rel=RTOL)
        assert gradient.d_power_omega == pytest.approx(reference[2],
                                                       rel=RTOL)
        assert gradient.d_temp_current == 0.0
        assert gradient.d_power_current == 0.0


class TestEdgeBehavior:
    @pytest.fixture(scope="class")
    def problem(self):
        return _tight_problem("basicmath")

    def test_conductance_gradient_vanishes_below_crossover(self,
                                                           problem):
        # Below the crossover speed the sink conductance sits on the
        # natural-convection floor, so its derivative is exactly zero
        # — the p/omega term of the Equation (9) fit (which diverges
        # as omega -> 0) never enters.  Above the crossover the slope
        # is the analytic p/omega.
        sink = problem.model.sink_conductance
        crossover = sink.crossover_speed
        assert sink.conductance_gradient(0.0) == 0.0
        assert sink.conductance_gradient(0.5 * crossover) == 0.0
        assert sink.conductance_gradient(crossover) == 0.0
        above = 2.0 * crossover
        slope = sink.conductance_gradient(above)
        assert slope > 0.0
        h = 1e-4 * above
        fd = (sink.conductance(above + h)
              - sink.conductance(above - h)) / (2.0 * h)
        assert slope == pytest.approx(fd, rel=1e-6)
        # The fan's own draw is c*omega^3, so its slope dies
        # quadratically at stall rather than blowing up.
        assert problem.fan.power_gradient(0.0) == 0.0

    def test_gradient_finite_at_omega_zero(self, problem):
        evaluator = Evaluator(problem)
        gradient = evaluator.evaluate_with_grad(0.0, 1.0).gradient
        for value in (gradient.d_temp_omega, gradient.d_temp_current,
                      gradient.d_power_omega,
                      gradient.d_power_current):
            assert np.isfinite(value)

    def test_active_bounds_clamp_before_differentiating(self, problem):
        # Out-of-box queries clamp exactly like evaluate(); the
        # gradient is the one-sided physical slope at the bound.
        evaluator = Evaluator(problem)
        omega_max = problem.limits.omega_max
        clamped = evaluator.evaluate_with_grad(omega_max + 50.0, 1.0)
        at_bound = evaluator.evaluate_with_grad(omega_max, 1.0)
        assert clamped.omega == omega_max
        assert clamped.gradient == at_bound.gradient

    def test_margin_properties_negate_temperature(self, problem):
        gradient = Evaluator(problem).evaluate_with_grad(
            200.0, 1.0).gradient
        assert gradient.d_margin_omega == -gradient.d_temp_omega
        assert gradient.d_margin_current == -gradient.d_temp_current


class TestFallbackAndCounters:
    def test_faulty_evaluator_degrades_to_fd(self, tec_problem):
        quiet = FaultInjector(FaultPlan(seed=0, specs=()))
        evaluator = FaultyEvaluator(tec_problem, quiet)
        gradient = evaluator.evaluate_with_grad(200.0, 1.0).gradient
        assert gradient.mode == "fd"
        assert evaluator.adjoint_solve_count == 0
        # The fallback differences evaluate(), so its probes are
        # cached, clamped solves the injector sees.
        assert evaluator.solve_count >= 5

    def test_runaway_point_degrades_to_fd(self, tec_problem):
        evaluator = Evaluator(tec_problem)
        # Fan off at max current: the Section 6.2 runaway regime.
        evaluation = evaluator.evaluate_with_grad(
            0.0, tec_problem.current_upper_bound)
        assert evaluation.runaway
        assert evaluation.gradient.mode == "fd"

    def test_gradient_hit_counters(self, tec_problem):
        evaluator = Evaluator(tec_problem)
        first = evaluator.evaluate_with_grad(200.0, 1.0)
        info = evaluator.cache_info()
        assert (info.gradient_hits, info.gradient_misses) == (0, 1)
        again = evaluator.evaluate_with_grad(200.0, 1.0)
        info = evaluator.cache_info()
        assert (info.gradient_hits, info.gradient_misses) == (1, 1)
        assert again.gradient is first.gradient
        assert evaluator.adjoint_solve_count == 2

    def test_operator_adjoint_counter(self, tec_problem):
        operator = tec_problem.model.network.operator
        before = operator.stats.adjoint_solves
        Evaluator(tec_problem).evaluate_with_grad(210.0, 1.1)
        assert operator.stats.adjoint_solves == before + 2

    def test_adjoint_not_counted_as_forward_solve(self, tec_problem):
        evaluator = Evaluator(tec_problem)
        evaluator.evaluate(205.0, 1.0)
        solves_after_forward = evaluator.solve_count
        evaluator.evaluate_with_grad(205.0, 1.0)
        assert evaluator.solve_count == solves_after_forward

    def test_adjoint_ignores_solve_budget(self, tec_problem):
        evaluator = Evaluator(tec_problem)
        evaluator.set_solve_budget(1)
        evaluation = evaluator.evaluate_with_grad(215.0, 1.2)
        assert evaluation.gradient.mode == "adjoint"

    def test_jac_mode_validated(self, tec_problem):
        with pytest.raises(ConfigurationError):
            minimize_power(Evaluator(tec_problem), x0=(200.0, 1.0),
                           jac="newton")
        assert set(JAC_MODES) == {"analytic", "fd"}
