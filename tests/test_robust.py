"""Robust (min-max) OFTEC over a workload set."""

import pytest

from repro import run_oftec
from repro.core import EnvelopeEvaluator, Evaluator, run_oftec_robust
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def workload_set(tec_problem, profiles):
    return [tec_problem,
            tec_problem.with_profile(profiles["fft"]),
            tec_problem.with_profile(profiles["quicksort"])]


class TestEnvelopeEvaluator:
    def test_envelope_is_worst_member(self, workload_set):
        envelope = EnvelopeEvaluator(workload_set)
        omega, current = 300.0, 1.0
        members = envelope.member_evaluations(omega, current)
        env = envelope.evaluate(omega, current)
        assert env.max_chip_temperature == pytest.approx(
            max(m.max_chip_temperature for m in members.values()))
        assert env.total_power == pytest.approx(
            max(m.total_power for m in members.values()))

    def test_feasible_only_if_all_members(self, workload_set):
        envelope = EnvelopeEvaluator(workload_set)
        # A point feasible for basicmath but not for quicksort.
        weak = envelope.evaluate(250.0, 0.0)
        member = Evaluator(workload_set[0]).evaluate(250.0, 0.0)
        assert member.feasible
        assert not weak.feasible

    def test_runaway_if_any_member(self, workload_set):
        envelope = EnvelopeEvaluator(workload_set)
        env = envelope.evaluate(0.0, 0.0)
        assert env.runaway

    def test_requires_shared_model(self, tec_problem, profiles):
        from repro import build_cooling_problem
        other = build_cooling_problem(profiles["fft"],
                                      grid_resolution=6)
        with pytest.raises(ConfigurationError, match="share one"):
            EnvelopeEvaluator([tec_problem, other])

    def test_empty_set_rejected(self):
        with pytest.raises(ConfigurationError):
            EnvelopeEvaluator([])


class TestRobustOFTEC:
    def test_feasible_for_every_workload(self, workload_set):
        result = run_oftec_robust(workload_set)
        assert result.feasible
        for name, evaluation in result.per_workload.items():
            assert evaluation.feasible, name

    def test_worst_case_consistent(self, workload_set):
        result = run_oftec_robust(workload_set)
        assert result.worst_case_power == pytest.approx(
            max(e.total_power for e in result.per_workload.values()))
        assert result.worst_case_temperature == pytest.approx(
            max(e.max_chip_temperature
                for e in result.per_workload.values()))

    def test_robust_point_at_least_as_expensive_as_heaviest(
            self, workload_set, profiles):
        # Covering the set can never beat optimizing the heaviest
        # workload alone (the robust feasible region is a subset).
        heavy = workload_set[0].with_profile(profiles["quicksort"])
        individual = run_oftec(heavy)
        robust = run_oftec_robust(workload_set)
        assert robust.worst_case_power >= \
            individual.total_power * 0.98

    def test_single_workload_reduces_to_oftec(self, tec_problem):
        robust = run_oftec_robust([tec_problem])
        individual = run_oftec(tec_problem)
        assert robust.worst_case_power == pytest.approx(
            individual.total_power, rel=0.02)

    def test_bookkeeping(self, workload_set):
        result = run_oftec_robust(workload_set)
        assert result.runtime_seconds > 0.0
        assert result.evaluations > 0
        assert set(result.per_workload) == \
            {p.name for p in workload_set}
