"""Rectangle geometry primitives."""

import pytest

from repro.errors import GeometryError
from repro.geometry import Rect


class TestConstruction:
    def test_basic_properties(self):
        r = Rect(1.0, 2.0, 3.0, 4.0)
        assert r.x2 == pytest.approx(4.0)
        assert r.y2 == pytest.approx(6.0)
        assert r.area == pytest.approx(12.0)
        assert r.center == (pytest.approx(2.5), pytest.approx(4.0))

    def test_zero_width_rejected(self):
        with pytest.raises(GeometryError):
            Rect(0.0, 0.0, 0.0, 1.0)

    def test_negative_height_rejected(self):
        with pytest.raises(GeometryError):
            Rect(0.0, 0.0, 1.0, -1.0)

    def test_frozen(self):
        r = Rect(0.0, 0.0, 1.0, 1.0)
        with pytest.raises(AttributeError):
            r.x = 5.0


class TestContainsPoint:
    def test_interior(self):
        r = Rect(0.0, 0.0, 2.0, 2.0)
        assert r.contains_point(1.0, 1.0)

    def test_lower_left_inclusive(self):
        r = Rect(0.0, 0.0, 2.0, 2.0)
        assert r.contains_point(0.0, 0.0)

    def test_upper_right_exclusive(self):
        # Shared edges between abutting rects belong to exactly one.
        r = Rect(0.0, 0.0, 2.0, 2.0)
        assert not r.contains_point(2.0, 1.0)
        assert not r.contains_point(1.0, 2.0)

    def test_outside(self):
        r = Rect(0.0, 0.0, 2.0, 2.0)
        assert not r.contains_point(-0.1, 1.0)
        assert not r.contains_point(1.0, 3.0)

    def test_abutting_rects_partition_shared_edge(self):
        left = Rect(0.0, 0.0, 1.0, 1.0)
        right = Rect(1.0, 0.0, 1.0, 1.0)
        point = (1.0, 0.5)
        assert not left.contains_point(*point)
        assert right.contains_point(*point)


class TestIntersection:
    def test_full_overlap(self):
        a = Rect(0.0, 0.0, 2.0, 2.0)
        assert a.intersection_area(a) == pytest.approx(4.0)

    def test_partial_overlap(self):
        a = Rect(0.0, 0.0, 2.0, 2.0)
        b = Rect(1.0, 1.0, 2.0, 2.0)
        assert a.intersection_area(b) == pytest.approx(1.0)
        assert a.intersects(b)

    def test_edge_touch_is_zero(self):
        a = Rect(0.0, 0.0, 1.0, 1.0)
        b = Rect(1.0, 0.0, 1.0, 1.0)
        assert a.intersection_area(b) == 0.0
        assert not a.intersects(b)

    def test_disjoint(self):
        a = Rect(0.0, 0.0, 1.0, 1.0)
        b = Rect(5.0, 5.0, 1.0, 1.0)
        assert a.intersection_area(b) == 0.0

    def test_symmetry(self):
        a = Rect(0.0, 0.0, 3.0, 2.0)
        b = Rect(1.0, -1.0, 4.0, 2.5)
        assert a.intersection_area(b) == pytest.approx(
            b.intersection_area(a))

    def test_contained(self):
        outer = Rect(0.0, 0.0, 10.0, 10.0)
        inner = Rect(2.0, 2.0, 1.0, 1.0)
        assert outer.intersection_area(inner) == pytest.approx(inner.area)


class TestTransforms:
    def test_scaled(self):
        r = Rect(1.0, 1.0, 2.0, 3.0).scaled(2.0)
        assert (r.x, r.y, r.width, r.height) == (2.0, 2.0, 4.0, 6.0)

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(GeometryError):
            Rect(0.0, 0.0, 1.0, 1.0).scaled(0.0)

    def test_translated(self):
        r = Rect(1.0, 1.0, 2.0, 3.0).translated(-1.0, 2.0)
        assert (r.x, r.y) == (0.0, 3.0)
        assert (r.width, r.height) == (2.0, 3.0)

    def test_scale_preserves_area_quadratically(self):
        r = Rect(0.0, 0.0, 2.0, 3.0)
        assert r.scaled(3.0).area == pytest.approx(9.0 * r.area)
