"""Grid indexing and coverage mapping."""

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry import CellCoverage, Floorplan, FloorplanUnit, Grid, Rect


class TestGridIndexing:
    def test_cell_count_and_sizes(self):
        g = Grid(2.0, 1.0, 4, 2)
        assert g.cell_count == 8
        assert g.dx == pytest.approx(0.5)
        assert g.dy == pytest.approx(0.5)
        assert g.cell_area == pytest.approx(0.25)

    def test_flat_roundtrip(self):
        g = Grid(1.0, 1.0, 5, 7)
        for iy in range(7):
            for ix in range(5):
                flat = g.flat_index(ix, iy)
                assert g.cell_coords(flat) == (ix, iy)

    def test_flat_index_order(self):
        g = Grid(1.0, 1.0, 3, 3)
        assert g.flat_index(0, 0) == 0
        assert g.flat_index(2, 0) == 2
        assert g.flat_index(0, 1) == 3

    def test_out_of_range_rejected(self):
        g = Grid(1.0, 1.0, 2, 2)
        with pytest.raises(GeometryError):
            g.flat_index(2, 0)
        with pytest.raises(GeometryError):
            g.cell_coords(4)
        with pytest.raises(GeometryError):
            g.cell_rect(0, 2)

    def test_invalid_construction(self):
        with pytest.raises(GeometryError):
            Grid(0.0, 1.0, 2, 2)
        with pytest.raises(GeometryError):
            Grid(1.0, 1.0, 0, 2)

    def test_cell_rect_tiles_footprint(self):
        g = Grid(2.0, 2.0, 2, 2)
        total = sum(g.cell_rect(ix, iy).area for ix, iy in g.iter_cells())
        assert total == pytest.approx(4.0)

    def test_cell_center(self):
        g = Grid(2.0, 2.0, 2, 2)
        assert g.cell_center(0, 0) == (pytest.approx(0.5),
                                       pytest.approx(0.5))

    def test_neighbors_interior(self):
        g = Grid(1.0, 1.0, 3, 3)
        assert len(g.neighbors(1, 1)) == 4

    def test_neighbors_corner(self):
        g = Grid(1.0, 1.0, 3, 3)
        assert len(g.neighbors(0, 0)) == 2

    def test_edge_cells(self):
        g = Grid(1.0, 1.0, 3, 4)
        assert g.edge_cells("west") == [(0, 0), (0, 1), (0, 2), (0, 3)]
        assert g.edge_cells("north") == [(0, 3), (1, 3), (2, 3)]
        with pytest.raises(GeometryError):
            g.edge_cells("up")

    def test_iter_cells_matches_flat_order(self):
        g = Grid(1.0, 1.0, 3, 2)
        flats = [g.flat_index(ix, iy) for ix, iy in g.iter_cells()]
        assert flats == list(range(g.cell_count))


def simple_floorplan():
    """Left/right halves of a 2x1 die."""
    return Floorplan([
        FloorplanUnit("left", Rect(0.0, 0.0, 1.0, 1.0)),
        FloorplanUnit("right", Rect(1.0, 0.0, 1.0, 1.0)),
    ])


class TestCellCoverage:
    def test_footprint_mismatch_rejected(self):
        fp = simple_floorplan()
        with pytest.raises(GeometryError):
            CellCoverage(fp, Grid(3.0, 1.0, 4, 2))

    def test_overlap_partition(self):
        fp = simple_floorplan()
        cov = CellCoverage(fp, Grid.for_floorplan(fp, 4, 2))
        overlap = cov.overlap_matrix
        # Every cell fully covered by exactly one unit.
        assert overlap.sum() == pytest.approx(2.0)
        assert (overlap.sum(axis=0) > 0).all()

    def test_power_map_conserves_power(self):
        fp = simple_floorplan()
        cov = CellCoverage(fp, Grid.for_floorplan(fp, 4, 2))
        pmap = cov.power_map({"left": 3.0, "right": 7.0})
        assert pmap.sum() == pytest.approx(10.0)

    def test_power_map_respects_geometry(self):
        fp = simple_floorplan()
        grid = Grid.for_floorplan(fp, 4, 2)
        cov = CellCoverage(fp, grid)
        pmap = cov.power_map({"left": 8.0})
        # All of the power lands in the left half (ix in {0, 1}).
        for iy in range(2):
            assert pmap[grid.flat_index(0, iy)] > 0
            assert pmap[grid.flat_index(3, iy)] == 0.0

    def test_power_map_unknown_unit(self):
        fp = simple_floorplan()
        cov = CellCoverage(fp, Grid.for_floorplan(fp, 2, 2))
        with pytest.raises(GeometryError):
            cov.power_map({"nope": 1.0})

    def test_unit_cell_fractions_sum_to_one(self):
        fp = simple_floorplan()
        cov = CellCoverage(fp, Grid.for_floorplan(fp, 5, 3))
        fractions = cov.unit_cell_fractions("left")
        assert fractions.sum() == pytest.approx(1.0)

    def test_cells_of_unit(self):
        fp = simple_floorplan()
        grid = Grid.for_floorplan(fp, 4, 2)
        cov = CellCoverage(fp, grid)
        left_cells = cov.cells_of_unit("left")
        assert len(left_cells) == 4
        assert all(grid.cell_coords(c)[0] < 2 for c in left_cells)

    def test_dominant_unit_per_cell(self):
        fp = simple_floorplan()
        cov = CellCoverage(fp, Grid.for_floorplan(fp, 2, 1))
        assert cov.dominant_unit_per_cell() == ["left", "right"]

    def test_unit_temperatures_max_and_mean(self):
        fp = simple_floorplan()
        grid = Grid.for_floorplan(fp, 2, 1)
        cov = CellCoverage(fp, grid)
        temps = np.array([300.0, 350.0])
        assert cov.unit_temperatures(temps, "max")["left"] == 300.0
        assert cov.unit_temperatures(temps, "mean")["right"] == 350.0

    def test_unit_temperatures_shape_check(self):
        fp = simple_floorplan()
        cov = CellCoverage(fp, Grid.for_floorplan(fp, 2, 1))
        with pytest.raises(GeometryError):
            cov.unit_temperatures(np.zeros(5))

    def test_unit_temperatures_bad_reduce(self):
        fp = simple_floorplan()
        cov = CellCoverage(fp, Grid.for_floorplan(fp, 2, 1))
        with pytest.raises(GeometryError):
            cov.unit_temperatures(np.zeros(2), "median")

    def test_misaligned_unit_spreads_across_cells(self):
        # A unit spanning a cell boundary splits power by covered area.
        fp = Floorplan([
            FloorplanUnit("mid", Rect(0.5, 0.0, 1.0, 1.0)),
            FloorplanUnit("west", Rect(0.0, 0.0, 0.5, 1.0)),
            FloorplanUnit("east", Rect(1.5, 0.0, 0.5, 1.0)),
        ])
        grid = Grid.for_floorplan(fp, 2, 1)
        cov = CellCoverage(fp, grid)
        pmap = cov.power_map({"mid": 4.0})
        assert pmap[0] == pytest.approx(2.0)
        assert pmap[1] == pytest.approx(2.0)
