"""Fan power law, heat-sink conductance, and convection correlation."""

import math

import numpy as np
import pytest

from repro.constants import (
    FAN_POWER_CONSTANT,
    G_FIT_P,
    G_FIT_R,
    G_HS_NATURAL,
    OMEGA_MAX,
)
from repro.errors import CalibrationError, ConfigurationError
from repro.fan import (
    ConvectionCorrelation,
    FanModel,
    HeatSinkFanConductance,
    fit_log_conductance,
)


class TestFanModel:
    def test_cubic_law(self):
        fan = FanModel()
        assert fan.power(0.0) == 0.0
        assert fan.power(100.0) == pytest.approx(FAN_POWER_CONSTANT * 1e6)

    def test_paper_max_power(self):
        # At 524 rad/s with c = 1.6e-7, P = c * omega^3 ~ 23 W.
        fan = FanModel()
        assert fan.power(OMEGA_MAX) == pytest.approx(23.02, rel=0.01)

    def test_doubling_speed_is_8x_power(self):
        fan = FanModel()
        assert fan.power(200.0) == pytest.approx(8.0 * fan.power(100.0))

    def test_gradient(self):
        fan = FanModel()
        omega = 150.0
        eps = 1e-4
        numeric = (fan.power(omega + eps) - fan.power(omega - eps)) \
            / (2 * eps)
        assert fan.power_gradient(omega) == pytest.approx(numeric, rel=1e-6)

    def test_speed_for_power_inverse(self):
        fan = FanModel()
        for omega in (10.0, 111.0, 524.0):
            assert fan.speed_for_power(fan.power(omega)) == \
                pytest.approx(omega)

    def test_clamp(self):
        fan = FanModel()
        assert fan.clamp(-5.0) == 0.0
        assert fan.clamp(9999.0) == fan.omega_max
        assert fan.clamp(100.0) == 100.0

    def test_negative_speed_rejected(self):
        with pytest.raises(ConfigurationError):
            FanModel().power(-1.0)

    def test_invalid_constant(self):
        with pytest.raises(ConfigurationError):
            FanModel(power_constant=0.0)


class TestHeatSinkFanConductance:
    def test_paper_constants_at_max_speed(self):
        g = HeatSinkFanConductance()
        expected = G_FIT_P * math.log(OMEGA_MAX) + G_FIT_R
        assert g.conductance(OMEGA_MAX) == pytest.approx(expected)

    def test_natural_floor_at_zero(self):
        g = HeatSinkFanConductance()
        assert g.conductance(0.0) == pytest.approx(G_HS_NATURAL)

    def test_floor_below_crossover(self):
        g = HeatSinkFanConductance()
        omega = g.crossover_speed * 0.5
        assert g.conductance(omega) == pytest.approx(G_HS_NATURAL)

    def test_continuous_at_crossover(self):
        g = HeatSinkFanConductance()
        crossing = g.crossover_speed
        assert g.conductance(crossing * 0.999) == pytest.approx(
            g.conductance(crossing * 1.001), abs=3e-3)

    def test_monotone_nondecreasing(self):
        g = HeatSinkFanConductance()
        speeds = np.linspace(0.0, OMEGA_MAX, 200)
        values = [g.conductance(s) for s in speeds]
        assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))

    def test_gradient_zero_on_floor(self):
        g = HeatSinkFanConductance()
        assert g.conductance_gradient(g.crossover_speed * 0.5) == 0.0

    def test_gradient_on_log_branch(self):
        g = HeatSinkFanConductance()
        omega = 300.0
        assert g.conductance_gradient(omega) == pytest.approx(
            G_FIT_P / omega)

    def test_speed_for_conductance_inverse(self):
        g = HeatSinkFanConductance()
        for omega in (50.0, 262.0, 524.0):
            target = g.conductance(omega)
            assert g.conductance(g.speed_for_conductance(target)) == \
                pytest.approx(target)

    def test_speed_for_small_conductance_is_zero(self):
        g = HeatSinkFanConductance()
        assert g.speed_for_conductance(0.1) == 0.0

    def test_negative_speed_rejected(self):
        with pytest.raises(ConfigurationError):
            HeatSinkFanConductance().conductance(-1.0)


class TestConvectionCorrelation:
    def test_zero_flow_uses_natural(self):
        corr = ConvectionCorrelation()
        assert corr.conductance(0.0) == pytest.approx(
            corr.natural_conductance)

    def test_monotone_in_speed(self):
        corr = ConvectionCorrelation()
        values = [corr.conductance(w) for w in (10, 100, 300, 524)]
        assert values == sorted(values)

    def test_sqrt_scaling(self):
        # Laminar Nu ~ Re^0.5, so h scales with sqrt(velocity).
        corr = ConvectionCorrelation()
        h1 = corr.heat_transfer_coefficient(100.0)
        h4 = corr.heat_transfer_coefficient(400.0)
        assert h4 == pytest.approx(2.0 * h1, rel=1e-9)

    def test_same_scale_as_paper_fit(self):
        # The physical correlation should be within ~3x of the paper's
        # fitted conductance at full speed -- a sanity cross-check.
        corr = ConvectionCorrelation()
        fitted = HeatSinkFanConductance().conductance(OMEGA_MAX)
        ratio = corr.conductance(OMEGA_MAX) / fitted
        assert 1.0 / 3.0 < ratio < 3.0

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            ConvectionCorrelation(fin_area=0.0)


class TestFitLogConductance:
    def test_recovers_exact_log_curve(self):
        omegas = np.linspace(20.0, 524.0, 30)
        gs = 0.97 * np.log(omegas) - 0.25
        p, r = fit_log_conductance(omegas, gs)
        assert p == pytest.approx(0.97, rel=1e-9)
        assert r == pytest.approx(-0.25, abs=1e-9)

    def test_fit_of_physical_correlation_has_positive_slope(self):
        # The paper's protocol: sample HotSpot-ish conductances, fit Eq 9.
        corr = ConvectionCorrelation()
        omegas = np.linspace(30.0, 524.0, 20)
        gs = [corr.conductance(w) for w in omegas]
        p, r = fit_log_conductance(omegas, gs)
        assert p > 0.0
        # Reconstruction error stays small over the fitted range.
        recon = p * np.log(omegas) + r
        assert np.max(np.abs(recon - gs)) / np.mean(gs) < 0.25

    def test_skips_zero_speed_samples(self):
        omegas = [0.0, 100.0, 200.0, 400.0]
        gs = [0.525, 4.0, 4.7, 5.4]
        p, r = fit_log_conductance(omegas, gs)
        assert p > 0.0

    def test_too_few_points(self):
        with pytest.raises(CalibrationError):
            fit_log_conductance([100.0], [4.0])

    def test_negative_slope_rejected(self):
        with pytest.raises(CalibrationError, match="positive"):
            fit_log_conductance([10.0, 100.0, 500.0], [5.0, 4.0, 3.0])

    def test_shape_mismatch(self):
        with pytest.raises(CalibrationError):
            fit_log_conductance([1.0, 2.0], [1.0, 2.0, 3.0])

    def test_bad_q(self):
        with pytest.raises(CalibrationError):
            fit_log_conductance([10.0, 100.0], [1.0, 2.0], q=0.0)
