"""Thermal sensor array and aliasing analysis."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.thermal import (
    Sensor,
    SensorArray,
    recommended_guard_band,
    solve_steady_state,
)


class TestSensor:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Sensor("s", cell=-1)
        with pytest.raises(ConfigurationError):
            Sensor("s", cell=0, noise_sigma=-1.0)


class TestSensorArray:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigurationError):
            SensorArray([Sensor("a", 0), Sensor("a", 1)], cell_count=4)

    def test_cell_bounds_checked(self):
        with pytest.raises(ConfigurationError):
            SensorArray([Sensor("a", 10)], cell_count=4)

    def test_read_exact_without_noise(self):
        array = SensorArray([Sensor("a", 1), Sensor("b", 3)],
                            cell_count=4)
        temps = np.array([300.0, 310.0, 320.0, 330.0])
        readings = array.read(temps)
        assert readings == {"a": 310.0, "b": 330.0}

    def test_offset_applied(self):
        array = SensorArray([Sensor("a", 0, offset=-2.0)], cell_count=1)
        assert array.read(np.array([350.0]))["a"] == \
            pytest.approx(348.0)

    def test_noise_is_seeded(self):
        def build():
            return SensorArray([Sensor("a", 0, noise_sigma=1.0)],
                               cell_count=1, seed=42)
        temps = np.array([350.0])
        assert build().read(temps) == build().read(temps)

    def test_hottest_reading(self):
        array = SensorArray([Sensor("a", 0), Sensor("b", 2)],
                            cell_count=3)
        temps = np.array([340.0, 380.0, 350.0])
        assert array.hottest_reading(temps) == 350.0

    def test_aliasing_error_positive_when_hotspot_missed(self):
        array = SensorArray([Sensor("a", 0)], cell_count=3)
        temps = np.array([340.0, 380.0, 350.0])
        assert array.aliasing_error(temps) == pytest.approx(40.0)

    def test_shape_checked(self):
        array = SensorArray([Sensor("a", 0)], cell_count=3)
        with pytest.raises(ConfigurationError):
            array.read(np.zeros(5))


class TestUnitCenterPlacement:
    def test_sensors_land_inside_units(self, coverage):
        array = SensorArray.at_unit_centers(
            coverage, ["IntExec", "L2", "FPAdd"])
        dominant = coverage.dominant_unit_per_cell()
        for sensor in array.sensors:
            unit = sensor.name.replace("sense_", "")
            assert dominant[sensor.cell] == unit

    def test_realistic_aliasing_study(self, coverage, tec_model,
                                      quicksort_power, leakage):
        # Sensors on the hot units track the die max closely; a sensor
        # only on the L2 badly underestimates the quicksort hotspot.
        steady = solve_steady_state(tec_model, 300.0, 0.0,
                                    quicksort_power, leakage)
        field = steady.chip_temperatures
        good = SensorArray.at_unit_centers(
            coverage, ["IntExec", "IntReg", "LdStQ"])
        bad = SensorArray.at_unit_centers(coverage, ["L2"])
        assert good.aliasing_error(field) < bad.aliasing_error(field)
        assert bad.aliasing_error(field) > 3.0


class TestGuardBand:
    def test_quantile_of_errors(self, coverage, tec_model,
                                basicmath_power, quicksort_power,
                                leakage):
        array = SensorArray.at_unit_centers(coverage,
                                            ["IntExec", "FPAdd"])
        fields = []
        for power in (basicmath_power, quicksort_power):
            steady = solve_steady_state(tec_model, 300.0, 0.0, power,
                                        leakage)
            fields.append(steady.chip_temperatures)
        band = recommended_guard_band(array, fields, quantile=1.0)
        worst = max(array.aliasing_error(f) for f in fields)
        assert band == pytest.approx(worst)

    def test_validation(self, coverage):
        array = SensorArray.at_unit_centers(coverage, ["IntExec"])
        with pytest.raises(ConfigurationError):
            recommended_guard_band(array, [], quantile=0.9)
        with pytest.raises(ConfigurationError):
            recommended_guard_band(array, [np.zeros(array.cell_count)],
                                   quantile=0.0)
