"""Leakage model, linearization, calibration, and the lumped fixed point."""

import numpy as np
import pytest

from repro.errors import (
    CalibrationError,
    ConfigurationError,
    ThermalRunawayError,
)
from repro.leakage import (
    CellLeakageModel,
    UnitLeakageSpec,
    build_cell_leakage,
    calibrate_from_samples,
    lumped_fixed_point,
    mcpat_substitute_samples,
    regression_linearization,
    tangent_linearization,
)
from repro.leakage.calibrate import calibration_temperatures


@pytest.fixture()
def small_model():
    return CellLeakageModel(np.array([1.0, 2.0, 0.0]), beta=0.04,
                            t_nominal=350.0)


class TestCellLeakageModel:
    def test_nominal_at_reference(self, small_model):
        temps = np.full(3, 350.0)
        assert small_model.power(temps) == pytest.approx([1.0, 2.0, 0.0])

    def test_exponential_growth(self, small_model):
        hot = small_model.power(np.full(3, 375.0))
        expected = np.exp(0.04 * 25.0)
        assert hot[0] == pytest.approx(expected)

    def test_total_power(self, small_model):
        assert small_model.total_power(np.full(3, 350.0)) == \
            pytest.approx(3.0)

    def test_derivative_is_beta_times_power(self, small_model):
        temps = np.array([340.0, 360.0, 355.0])
        deriv = small_model.power_derivative(temps)
        assert deriv == pytest.approx(0.04 * small_model.power(temps))

    def test_derivative_matches_finite_difference(self, small_model):
        temps = np.full(3, 362.0)
        eps = 1e-5
        numeric = (small_model.power(temps + eps)
                   - small_model.power(temps - eps)) / (2 * eps)
        assert small_model.power_derivative(temps) == pytest.approx(
            numeric, rel=1e-6)

    def test_scaled(self, small_model):
        doubled = small_model.scaled(2.0)
        temps = np.full(3, 350.0)
        assert doubled.power(temps) == pytest.approx(
            2.0 * small_model.power(temps))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CellLeakageModel(np.array([-1.0]), 0.04, 350.0)
        with pytest.raises(ConfigurationError):
            CellLeakageModel(np.array([1.0]), -0.04, 350.0)
        with pytest.raises(ConfigurationError):
            CellLeakageModel(np.array([[1.0]]), 0.04, 350.0)

    def test_temperature_validation(self, small_model):
        with pytest.raises(ConfigurationError):
            small_model.power(np.array([300.0, -1.0, 300.0]))
        with pytest.raises(ConfigurationError):
            small_model.power(np.zeros(5))


class TestTangentLinearization:
    def test_matches_model_at_reference(self, small_model):
        taylor = tangent_linearization(small_model, 355.0)
        temps = np.full(3, 355.0)
        assert taylor.power(temps) == pytest.approx(
            small_model.power(temps))

    def test_slope_is_derivative(self, small_model):
        taylor = tangent_linearization(small_model, 355.0)
        assert taylor.a == pytest.approx(
            small_model.power_derivative(np.full(3, 355.0)))

    def test_first_order_accuracy(self, small_model):
        # Error of the tangent is O(dT^2): small near the reference.
        taylor = tangent_linearization(small_model, 360.0)
        temps = np.full(3, 362.0)
        exact = small_model.power(temps)
        approx = taylor.power(temps)
        rel_err = np.abs(approx[:2] - exact[:2]) / exact[:2]
        assert (rel_err < 0.01).all()

    def test_per_cell_reference(self, small_model):
        refs = np.array([340.0, 350.0, 360.0])
        taylor = tangent_linearization(small_model, refs)
        assert taylor.power(refs) == pytest.approx(
            small_model.power(refs))

    def test_constant_term(self, small_model):
        taylor = tangent_linearization(small_model, 355.0)
        assert taylor.constant_term() == pytest.approx(
            taylor.b - taylor.a * 355.0)

    def test_total_slope(self, small_model):
        taylor = tangent_linearization(small_model, 350.0)
        assert taylor.total_slope == pytest.approx(0.04 * 3.0)

    def test_invalid_reference(self, small_model):
        with pytest.raises(CalibrationError):
            tangent_linearization(small_model, -5.0)


class TestRegressionLinearization:
    def test_paper_protocol_ten_points(self, small_model):
        temps = calibration_temperatures()
        assert temps.size == 10
        assert temps[0] == pytest.approx(300.0)
        assert temps[-1] == pytest.approx(390.0)
        taylor = regression_linearization(small_model, temps)
        # The regression line must sit within the sampled envelope and
        # have positive slope for cells with leakage.
        assert taylor.a[0] > 0.0
        assert taylor.a[2] == pytest.approx(0.0, abs=1e-12)

    def test_regression_beats_tangent_far_from_reference(self,
                                                         small_model):
        temps = np.linspace(300.0, 390.0, 10)
        regression = regression_linearization(small_model, temps)
        tangent = tangent_linearization(small_model, 300.0)
        eval_temps = np.full(3, 380.0)
        exact = small_model.power(eval_temps)
        err_reg = abs(regression.power(eval_temps)[0] - exact[0])
        err_tan = abs(tangent.power(eval_temps)[0] - exact[0])
        assert err_reg < err_tan

    def test_too_few_points(self, small_model):
        with pytest.raises(CalibrationError):
            regression_linearization(small_model, [350.0])


class TestBuildCellLeakage:
    def test_distributes_by_area(self, coverage):
        model = build_cell_leakage(
            coverage,
            [UnitLeakageSpec("IntExec", 2.0),
             UnitLeakageSpec("L2", 1.0)],
            beta=0.04, t_nominal=350.0)
        total = model.nominal_powers.sum()
        assert total == pytest.approx(3.0)

    def test_duplicate_unit_rejected(self, coverage):
        with pytest.raises(ConfigurationError, match="Duplicate"):
            build_cell_leakage(
                coverage,
                [UnitLeakageSpec("L2", 1.0), UnitLeakageSpec("L2", 2.0)],
                beta=0.04, t_nominal=350.0)

    def test_negative_power_rejected(self):
        with pytest.raises(ConfigurationError):
            UnitLeakageSpec("L2", -1.0)


class TestMcpatSubstitute:
    def test_samples_cover_all_units(self, floorplan):
        samples = mcpat_substitute_samples(floorplan)
        assert set(samples) == set(floorplan.unit_names)
        for pairs in samples.values():
            assert len(pairs) == 10

    def test_samples_increase_with_temperature(self, floorplan):
        samples = mcpat_substitute_samples(floorplan)
        for pairs in samples.values():
            powers = [p for _, p in pairs]
            assert powers == sorted(powers)

    def test_sram_leaks_less_per_area(self, floorplan):
        samples = mcpat_substitute_samples(floorplan)
        l2_density = samples["L2"][0][1] / floorplan["L2"].area
        exe_density = samples["IntExec"][0][1] / floorplan["IntExec"].area
        assert l2_density < exe_density

    def test_calibration_recovers_beta(self, floorplan):
        samples = mcpat_substitute_samples(floorplan, beta=0.04)
        calibration = calibrate_from_samples(samples)
        # The T^2 prefactor inflates the effective exponent slightly.
        assert calibration.beta == pytest.approx(0.04, abs=0.01)

    def test_calibration_taylor_signs(self, floorplan):
        calibration = calibrate_from_samples(
            mcpat_substitute_samples(floorplan))
        for a, b in calibration.unit_taylor.values():
            assert a > 0.0
            assert b > 0.0

    def test_total_nominal_scale(self, floorplan):
        # The calibrated die should leak single-digit watts at T_ref --
        # the scale the paper's figures imply.
        calibration = calibrate_from_samples(
            mcpat_substitute_samples(floorplan))
        assert 3.0 < calibration.total_nominal < 20.0

    def test_empty_samples_rejected(self):
        with pytest.raises(CalibrationError):
            calibrate_from_samples({})

    def test_single_point_rejected(self):
        with pytest.raises(CalibrationError):
            calibrate_from_samples({"u": [(350.0, 1.0)]})

    def test_nonpositive_power_rejected(self):
        with pytest.raises(CalibrationError):
            calibrate_from_samples({"u": [(350.0, 1.0), (360.0, 0.0)]})


class TestLumpedFixedPoint:
    def test_no_leakage_analytic(self):
        result = lumped_fixed_point(
            dynamic_power=10.0, conductance=2.0, ambient=318.0,
            leakage=lambda t: 0.0)
        assert result.temperature == pytest.approx(323.0)

    def test_with_leakage_is_hotter(self):
        no_leak = lumped_fixed_point(10.0, 2.0, 318.0, lambda t: 0.0)
        with_leak = lumped_fixed_point(
            10.0, 2.0, 318.0,
            leakage=lambda t: 2.0 * np.exp(0.03 * (t - 350.0)))
        assert with_leak.temperature > no_leak.temperature
        assert with_leak.leakage_power > 0.0

    def test_fixed_point_satisfies_balance(self):
        leak = lambda t: 3.0 * np.exp(0.03 * (t - 350.0))  # noqa: E731
        result = lumped_fixed_point(10.0, 2.0, 318.0, leak,
                                    tolerance=1e-9)
        balance = 318.0 + (10.0 + leak(result.temperature)) / 2.0
        assert result.temperature == pytest.approx(balance, abs=1e-6)

    def test_runaway_detected(self):
        # beta * P_leak exceeds g at any candidate fixed point.
        with pytest.raises(ThermalRunawayError):
            lumped_fixed_point(
                30.0, 0.5, 318.0,
                leakage=lambda t: 10.0 * np.exp(0.05 * (t - 330.0)))

    def test_stability_criterion(self):
        # Just below the runaway boundary the iteration converges; the
        # boundary is where d(leak)/dT equals the conductance.
        g = 1.0
        leak = lambda t: 5.0 * np.exp(0.1 * (t - 400.0))  # noqa: E731
        result = lumped_fixed_point(5.0, g, 318.0, leak)
        slope = 0.1 * leak(result.temperature)
        assert slope < g

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            lumped_fixed_point(1.0, 0.0, 318.0, lambda t: 0.0)
        with pytest.raises(ConfigurationError):
            lumped_fixed_point(-1.0, 1.0, 318.0, lambda t: 0.0)
        with pytest.raises(ConfigurationError):
            lumped_fixed_point(1.0, 1.0, -318.0, lambda t: 0.0)
        with pytest.raises(ConfigurationError):
            lumped_fixed_point(1.0, 1.0, 318.0, lambda t: -1.0)
