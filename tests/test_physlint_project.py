"""Tests for the physlint v2 whole-program engine.

Covers the project graph (worker reachability, guard barriers,
cross-module unit joins), the incremental cache (zero re-parse on a
warm run, suppression filtering of cached whole-program findings),
the SARIF reporter, the baseline gate, and the CLI surface.
"""

import json
import shutil
from pathlib import Path

import pytest

from repro.cli import main as repro_main
from repro.devtools.physlint import (
    filter_new,
    format_sarif,
    lint_project,
    lint_source,
    load_baseline,
    main as physlint_main,
    write_baseline,
)
from repro.errors import ConfigurationError

FIXPROJ = Path(__file__).parent / "fixtures" / "physlint_project"
MINIPLANT = FIXPROJ / "miniplant"

#: The bands the fixture package seeds violations in.
SELECT = ("RPR502", "RPR6", "RPR7")

#: The exact seeded finding set: (file, line, code).
EXPECTED = frozenset({
    ("control.py", 13, "RPR701"),
    ("control.py", 23, "RPR702"),
    ("control.py", 32, "RPR703"),
    ("panel.py", 12, "RPR703"),
    ("pools.py", 8, "RPR603"),
    ("tracing.py", 8, "RPR502"),
    ("tracing.py", 16, "RPR502"),
    ("tracing.py", 22, "RPR502"),
    ("workers.py", 29, "RPR602"),
    ("workers.py", 35, "RPR602"),
    ("workers.py", 40, "RPR602"),
})


def _keyed(findings):
    return {(Path(f.path).name, f.line, f.code) for f in findings}


def _lint_miniplant(root=MINIPLANT, cache=None):
    return lint_project([str(root)], select=SELECT,
                        cache_path=cache)


@pytest.fixture()
def project_copy(tmp_path):
    """A mutable copy of the fixture package (module names intact)."""
    copy = tmp_path / "miniplant"
    shutil.copytree(MINIPLANT, copy)
    return copy


class TestSeededFindings:
    def test_exact_finding_set(self):
        report = _lint_miniplant()
        assert _keyed(report.findings) == EXPECTED

    def test_three_dimensional_mismatch_shapes(self):
        report = _lint_miniplant()
        codes = {f.code for f in report.findings}
        # Arithmetic, comparison, and cross-module call mismatches
        # are all distinct seeded shapes.
        assert {"RPR701", "RPR702", "RPR703"} <= codes

    def test_pr5_fanout_shape_carries_witness_chain(self):
        report = _lint_miniplant()
        fanout = [f for f in report.findings if f.code == "RPR603"]
        assert len(fanout) == 1
        assert "run_unit -> step -> expand_parallel" \
            in fanout[0].message

    def test_guard_barrier_not_flagged(self):
        # safe_expand consults in_worker() before fanning out: the
        # traversal must stop there, so neither it nor its pool use
        # appears anywhere in the findings.
        report = _lint_miniplant()
        assert not any("safe_expand" in f.message
                       for f in report.findings)

    def test_coordinator_pool_not_flagged(self):
        # scheduler.run_all spawns the pool but never runs in a
        # worker; it must stay clean.
        report = _lint_miniplant()
        assert not any(Path(f.path).name == "scheduler.py"
                       for f in report.findings)

    def test_reexport_hop_resolves(self):
        # panel.py imports fan_power through the package __init__;
        # the RPR703 there proves one-hop re-export resolution.
        report = _lint_miniplant()
        assert ("panel.py", 12, "RPR703") in _keyed(report.findings)


class TestIncrementalCache:
    def test_warm_run_parses_zero_files(self, tmp_path):
        cache = str(tmp_path / "cache.json")
        cold = _lint_miniplant(cache=cache)
        assert cold.parsed == cold.files
        assert cold.cache_hits == 0
        warm = _lint_miniplant(cache=cache)
        assert warm.parsed == 0
        assert warm.cache_hits == warm.files
        assert warm.cache_misses == 0
        assert _keyed(warm.findings) == _keyed(cold.findings)

    def test_changed_file_reparses_only_itself(self, project_copy,
                                               tmp_path):
        cache = str(tmp_path / "cache.json")
        cold = _lint_miniplant(project_copy, cache=cache)
        control = project_copy / "control.py"
        control.write_text(
            control.read_text().replace(
                "return power_w + current_a",
                "return power_w"))
        warm = _lint_miniplant(project_copy, cache=cache)
        assert warm.parsed == 1
        assert warm.cache_hits == warm.files - 1
        assert len(warm.findings) == len(cold.findings) - 1

    def test_cross_module_findings_recompute_from_summaries(
            self, project_copy, tmp_path):
        # Changing only the callee's docstring must update call-site
        # findings in *other* (still cached) files: project findings
        # are recomputed from summaries each run, never cached.
        cache = str(tmp_path / "cache.json")
        _lint_miniplant(project_copy, cache=cache)
        fan = project_copy / "fan.py"
        fan.write_text(fan.read_text().replace(
            "omega: Fan speed, rad/s.", "omega: Fan speed, RPM."))
        warm = _lint_miniplant(project_copy, cache=cache)
        assert warm.parsed == 1
        assert not any(f.code == "RPR703" for f in warm.findings)

    def test_suppression_filters_cached_project_findings(
            self, project_copy, tmp_path):
        # A suppression added to one file must silence the
        # whole-program finding even though every other file is
        # served from the cache.
        cache = str(tmp_path / "cache.json")
        workers = project_copy / "workers.py"
        workers.write_text(workers.read_text().replace(
            "    global TOTALS\n",
            "    global TOTALS  # physlint: disable=RPR602\n"))
        _lint_miniplant(project_copy, cache=cache)
        warm = _lint_miniplant(project_copy, cache=cache)
        assert warm.parsed == 0
        assert ("workers.py", 29, "RPR602") \
            not in _keyed(warm.findings)
        assert ("workers.py", 35, "RPR602") in _keyed(warm.findings)

    def test_corrupt_cache_falls_back_to_cold(self, tmp_path):
        cache = tmp_path / "cache.json"
        cache.write_text("{ not json")
        report = _lint_miniplant(cache=str(cache))
        assert report.parsed == report.files
        assert _keyed(report.findings) == EXPECTED


class TestParseErrors:
    def test_rpr000_immune_to_suppression(self):
        # broken.py carries `# physlint: disable-file=RPR000`; a file
        # that does not parse cannot be trusted to have meant its own
        # suppressions, so the finding survives.
        report = lint_project([str(FIXPROJ / "broken.py")])
        assert [f.code for f in report.findings] == ["RPR000"]

    def test_rpr000_bypasses_select(self):
        report = lint_project([str(FIXPROJ)], select=["RPR7"])
        codes = {f.code for f in report.findings}
        assert "RPR000" in codes
        assert "RPR703" in codes
        assert "RPR602" not in codes

    def test_rpr000_droppable_by_ignore(self):
        report = lint_project([str(FIXPROJ)], select=["RPR7"],
                              ignore=["RPR000"])
        assert not any(f.code == "RPR000" for f in report.findings)


class TestSuppressionEdgeCases:
    def test_multiple_codes_one_comment(self):
        bad = ("def _f(width_mm):\n"
               "    assert width_mm * 1e-3\n")
        codes = sorted(f.code for f in lint_source(bad, "x.py"))
        assert codes == ["RPR101", "RPR202"]
        both = bad.replace(
            "1e-3", "1e-3  # physlint: disable=RPR101,RPR202")
        assert lint_source(both, "x.py") == []

    def test_one_of_two_codes_suppressed(self):
        one = ("def _f(width_mm):\n"
               "    assert width_mm * 1e-3"
               "  # physlint: disable=RPR202\n")
        assert [f.code for f in lint_source(one, "x.py")] == ["RPR101"]

    def test_disable_file_times_baseline(self, project_copy,
                                         tmp_path):
        # A disable-file'd finding never reaches the baseline, and
        # removing the suppression later surfaces it as *new*.
        control = project_copy / "control.py"
        original = control.read_text()
        control.write_text(
            "# physlint: disable-file=RPR701\n" + original)
        baseline = str(tmp_path / "baseline.json")
        report = _lint_miniplant(project_copy)
        assert not any(f.code == "RPR701" for f in report.findings)
        write_baseline(report.findings, baseline)
        control.write_text(original)
        fresh = _lint_miniplant(project_copy)
        new = filter_new(fresh.findings, load_baseline(baseline))
        assert [f.code for f in new] == ["RPR701"]


class TestBaseline:
    def test_round_trip_absorbs_everything(self, tmp_path):
        baseline = str(tmp_path / "baseline.json")
        report = _lint_miniplant()
        write_baseline(report.findings, baseline)
        assert filter_new(report.findings,
                          load_baseline(baseline)) == []

    def test_partial_baseline_reports_the_rest(self, tmp_path):
        baseline = str(tmp_path / "baseline.json")
        report = _lint_miniplant()
        write_baseline(report.findings[1:], baseline)
        new = filter_new(report.findings, load_baseline(baseline))
        assert new == [report.findings[0]]

    def test_malformed_baseline_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("[]")
        with pytest.raises(ConfigurationError):
            load_baseline(str(path))


class TestSarif:
    def test_round_trips_with_results(self):
        report = _lint_miniplant()
        payload = json.loads(format_sarif(report.findings))
        assert payload["version"] == "2.1.0"
        run = payload["runs"][0]
        results = run["results"]
        assert len(results) == len(EXPECTED)
        rule_ids = {r["id"]
                    for r in run["tool"]["driver"]["rules"]}
        for result in results:
            assert result["ruleId"] in rule_ids
            location = result["locations"][0]["physicalLocation"]
            assert location["artifactLocation"]["uri"]
            assert location["region"]["startLine"] >= 1

    def test_parse_errors_are_sarif_errors(self):
        report = lint_project([str(FIXPROJ / "broken.py")])
        payload = json.loads(format_sarif(report.findings))
        levels = [r["level"]
                  for r in payload["runs"][0]["results"]]
        assert levels == ["error"]


class TestCli:
    SELECT_ARG = "RPR502,RPR6,RPR7"

    def test_exit_one_and_stats(self, capsys):
        code = physlint_main([str(MINIPLANT),
                              "--select", self.SELECT_ARG,
                              "--stats"])
        assert code == 1
        captured = capsys.readouterr()
        assert "RPR603" in captured.out
        assert "cache" in captured.err

    def test_sarif_format(self, capsys):
        code = physlint_main([str(MINIPLANT),
                              "--select", self.SELECT_ARG,
                              "--format", "sarif"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["runs"][0]["results"]

    def test_baseline_gate_flow(self, capsys, tmp_path):
        baseline = str(tmp_path / "baseline.json")
        assert physlint_main([str(MINIPLANT),
                              "--select", self.SELECT_ARG,
                              "--update-baseline", baseline]) == 0
        capsys.readouterr()
        assert physlint_main([str(MINIPLANT),
                              "--select", self.SELECT_ARG,
                              "--baseline", baseline]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_missing_baseline_is_usage_error(self, capsys, tmp_path):
        code = physlint_main([str(MINIPLANT), "--baseline",
                              str(tmp_path / "missing.json")])
        assert code == 2

    def test_explain_known_rule(self, capsys):
        assert physlint_main(["--explain", "RPR603"]) == 0
        out = capsys.readouterr().out
        assert "RPR603" in out
        assert "Fail::" in out
        assert "Pass::" in out

    def test_explain_is_case_insensitive(self, capsys):
        assert physlint_main(["--explain", "rpr703"]) == 0
        assert "RPR703" in capsys.readouterr().out

    def test_explain_unknown_rule(self, capsys):
        assert physlint_main(["--explain", "RPR999"]) == 2
        assert "unknown rule code" in capsys.readouterr().err

    def test_repro_lint_forwards_new_flags(self, capsys, tmp_path):
        cache = str(tmp_path / "cache.json")
        code = repro_main(["lint", str(MINIPLANT),
                           "--select", self.SELECT_ARG,
                           "--cache", cache, "--stats",
                           "--format", "json"])
        assert code == 1
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        assert payload["total"] == len(EXPECTED)
        assert "0 cache hit(s)" in captured.err
        capsys.readouterr()
        code = repro_main(["lint", str(MINIPLANT),
                           "--select", self.SELECT_ARG,
                           "--cache", cache, "--stats"])
        assert code == 1
        assert "0 parsed" in capsys.readouterr().err

    def test_repro_lint_explain(self, capsys):
        assert repro_main(["lint", "--explain", "RPR502"]) == 0
        assert "span" in capsys.readouterr().out
