"""Selective TEC deployment optimizer."""

import pytest

from repro.errors import ConfigurationError
from repro.tec import select_tec_coverage


def fake_temperatures(coverage, hot_units, hot=370.0, cool=345.0):
    """Per-unit peak temperatures with a chosen hotspot set."""
    return {name: (hot if name in hot_units else cool)
            for name in coverage.floorplan.unit_names}


class TestSelection:
    def test_hot_units_covered(self, coverage):
        hot = {"IntExec", "IntReg", "LdStQ"}
        temps = fake_temperatures(coverage, hot)
        result = select_tec_coverage(coverage, temps,
                                     hotspot_threshold=360.0)
        assert set(result.covered_units) == hot
        assert "Icache" in result.excluded_units

    def test_mask_matches_units(self, coverage):
        hot = {"IntExec"}
        temps = fake_temperatures(coverage, hot)
        result = select_tec_coverage(coverage, temps,
                                     hotspot_threshold=360.0)
        dominant = coverage.dominant_unit_per_cell()
        for cell, unit in enumerate(dominant):
            if unit == "IntExec":
                assert result.coverage_mask[cell]
            elif unit in result.excluded_units and unit:
                assert not result.coverage_mask[cell]

    def test_default_threshold_uses_die_mean(self, coverage):
        # With caches cool and the core hot, the mean+margin default
        # reproduces the paper's cache exclusion without naming names.
        hot = {"IntExec", "IntReg", "IntQ", "IntMap", "LdStQ", "FPAdd",
               "FPMul"}
        temps = fake_temperatures(coverage, hot, hot=375.0, cool=348.0)
        result = select_tec_coverage(coverage, temps)
        assert "Icache" in result.excluded_units
        assert "Dcache" in result.excluded_units
        assert "IntExec" in result.covered_units

    def test_always_exclude(self, coverage):
        hot = {"IntExec", "Dcache"}
        temps = fake_temperatures(coverage, hot)
        result = select_tec_coverage(coverage, temps,
                                     hotspot_threshold=360.0,
                                     always_exclude=["Dcache"])
        assert "Dcache" in result.excluded_units
        assert "IntExec" in result.covered_units

    def test_margins_reported(self, coverage):
        temps = fake_temperatures(coverage, {"IntExec"}, hot=370.0)
        result = select_tec_coverage(coverage, temps,
                                     hotspot_threshold=360.0)
        assert result.unit_margins["IntExec"] == pytest.approx(10.0)
        assert result.unit_margins["L2"] == pytest.approx(-15.0)

    def test_covered_fraction(self, coverage):
        temps = fake_temperatures(coverage, {"IntExec"})
        result = select_tec_coverage(coverage, temps,
                                     hotspot_threshold=360.0)
        assert 0.0 < result.covered_fraction < 0.3


class TestValidation:
    def test_missing_unit_temperatures(self, coverage):
        with pytest.raises(ConfigurationError, match="Missing"):
            select_tec_coverage(coverage, {"IntExec": 370.0})

    def test_nothing_hot_rejected(self, coverage):
        temps = fake_temperatures(coverage, set())
        with pytest.raises(ConfigurationError, match="No unit exceeds"):
            select_tec_coverage(coverage, temps, hotspot_threshold=360.0)

    def test_unknown_always_exclude(self, coverage):
        temps = fake_temperatures(coverage, {"IntExec"})
        with pytest.raises(ConfigurationError, match="Unknown"):
            select_tec_coverage(coverage, temps,
                                hotspot_threshold=360.0,
                                always_exclude=["Nope"])
