"""Floorplan container semantics."""

import pytest

from repro.errors import GeometryError
from repro.geometry import Floorplan, FloorplanUnit, Rect
from repro.geometry.floorplan import floorplan_from_dict


def make_two_by_two():
    """A 2x2 tiling of the unit square."""
    return Floorplan([
        FloorplanUnit("sw", Rect(0.0, 0.0, 1.0, 1.0)),
        FloorplanUnit("se", Rect(1.0, 0.0, 1.0, 1.0)),
        FloorplanUnit("nw", Rect(0.0, 1.0, 1.0, 1.0)),
        FloorplanUnit("ne", Rect(1.0, 1.0, 1.0, 1.0)),
    ])


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(GeometryError):
            Floorplan([])

    def test_duplicate_names_rejected(self):
        with pytest.raises(GeometryError, match="Duplicate"):
            Floorplan([
                FloorplanUnit("a", Rect(0, 0, 1, 1)),
                FloorplanUnit("a", Rect(1, 0, 1, 1)),
            ])

    def test_overlap_rejected(self):
        with pytest.raises(GeometryError, match="overlap"):
            Floorplan([
                FloorplanUnit("a", Rect(0, 0, 2, 2)),
                FloorplanUnit("b", Rect(1, 1, 2, 2)),
            ])

    def test_sliver_overlap_tolerated(self):
        # Floating-point sliver below the 0.01% threshold must pass.
        Floorplan([
            FloorplanUnit("a", Rect(0.0, 0.0, 1.0, 1.0)),
            FloorplanUnit("b", Rect(1.0 - 1e-9, 0.0, 1.0, 1.0)),
        ])

    def test_from_dict(self):
        fp = floorplan_from_dict({"a": (0, 0, 1, 1), "b": (1, 0, 1, 1)})
        assert fp.unit_names == ["a", "b"]


class TestQueries:
    def test_len_iter_contains(self):
        fp = make_two_by_two()
        assert len(fp) == 4
        assert [u.name for u in fp] == ["sw", "se", "nw", "ne"]
        assert "sw" in fp
        assert "xx" not in fp

    def test_getitem(self):
        fp = make_two_by_two()
        assert fp["ne"].rect.x == 1.0
        with pytest.raises(GeometryError):
            fp["missing"]

    def test_index_of_preserves_order(self):
        fp = make_two_by_two()
        assert fp.index_of("sw") == 0
        assert fp.index_of("ne") == 3

    def test_bounding_box(self):
        box = make_two_by_two().bounding_box
        assert (box.x, box.y) == (0.0, 0.0)
        assert (box.width, box.height) == (2.0, 2.0)

    def test_coverage_fraction_full(self):
        assert make_two_by_two().coverage_fraction() == pytest.approx(1.0)

    def test_coverage_fraction_partial(self):
        fp = Floorplan([
            FloorplanUnit("a", Rect(0, 0, 1, 1)),
            FloorplanUnit("b", Rect(2, 2, 1, 1)),
        ])
        assert fp.coverage_fraction() == pytest.approx(2.0 / 9.0)

    def test_unit_at(self):
        fp = make_two_by_two()
        assert fp.unit_at(0.5, 0.5).name == "sw"
        assert fp.unit_at(1.5, 1.5).name == "ne"
        assert fp.unit_at(5.0, 5.0) is None

    def test_area_fractions_sum_to_one(self):
        fractions = make_two_by_two().area_fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)
        assert fractions["sw"] == pytest.approx(0.25)

    def test_neighbors(self):
        fp = make_two_by_two()
        assert sorted(fp.neighbors("sw")) == ["nw", "se"]
        assert sorted(fp.neighbors("ne")) == ["nw", "se"]

    def test_neighbors_diagonal_not_included(self):
        fp = make_two_by_two()
        assert "ne" not in fp.neighbors("sw")


class TestTransforms:
    def test_scaled(self):
        fp = make_two_by_two().scaled(0.5)
        assert fp.bounding_box.width == pytest.approx(1.0)
        assert fp["ne"].rect.x == pytest.approx(0.5)

    def test_normalized(self):
        fp = Floorplan([
            FloorplanUnit("a", Rect(5.0, 7.0, 1.0, 1.0)),
        ]).normalized()
        assert fp.bounding_box.x == pytest.approx(0.0)
        assert fp.bounding_box.y == pytest.approx(0.0)

    def test_units_copy_is_safe(self):
        fp = make_two_by_two()
        fp.units.clear()
        assert len(fp) == 4
