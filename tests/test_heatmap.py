"""ASCII heat-map rendering."""

import numpy as np
import pytest

from repro.analysis import (
    render_delta_map,
    render_heatmap,
    render_unit_overlay,
)
from repro.core import Evaluator
from repro.errors import ConfigurationError
from repro.geometry import Grid


class TestHeatmap:
    def test_basic_rendering(self, grid):
        field = np.linspace(320.0, 360.0, grid.cell_count)
        text = render_heatmap(field, grid, title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "range 46.9 .. 86.9 C" in lines[1]
        # One row per grid line, two chars per cell.
        assert len(lines) == 2 + grid.ny
        assert all(len(line) == 2 * grid.nx for line in lines[2:])

    def test_hot_cell_gets_hottest_symbol(self, grid):
        field = np.full(grid.cell_count, 320.0)
        field[grid.flat_index(0, 0)] = 400.0
        text = render_heatmap(field, grid)
        # (0, 0) renders bottom-left (rows are north-to-south).
        bottom_row = text.splitlines()[-1]
        assert bottom_row.startswith("@@")

    def test_pinned_range(self, grid):
        field = np.full(grid.cell_count, 330.0)
        text = render_heatmap(field, grid, vmin=320.0, vmax=340.0)
        # Mid-range values render with a mid-ramp character, uniformly.
        rows = text.splitlines()[1:]
        assert len({row for row in rows[1:]}) == 1

    def test_constant_field_renders(self, grid):
        field = np.full(grid.cell_count, 330.0)
        text = render_heatmap(field, grid)
        assert text  # no divide-by-zero on a flat field

    def test_shape_checked(self, grid):
        with pytest.raises(ConfigurationError):
            render_heatmap(np.zeros(3), grid)


class TestUnitOverlay:
    def test_overlay_shows_units(self, coverage):
        text = render_unit_overlay(coverage)
        assert "In" in text  # Int* units
        assert "L2" in text

    def test_overlay_dimensions(self, coverage):
        lines = render_unit_overlay(coverage).splitlines()
        assert len(lines) == 1 + coverage.grid.ny


class TestDeltaMap:
    def test_cooling_marked_negative(self, grid):
        before = np.full(grid.cell_count, 350.0)
        after = before - 5.0
        text = render_delta_map(before, after, grid)
        assert "-" in text
        assert "+" not in text.splitlines()[-1]

    def test_small_changes_are_dots(self, grid):
        before = np.full(grid.cell_count, 350.0)
        after = before + 0.1
        text = render_delta_map(before, after, grid)
        assert set("".join(text.splitlines()[2:])) <= {".", " "}

    def test_magnitude_scaling(self, grid):
        before = np.full(grid.cell_count, 350.0)
        after = before.copy()
        after[grid.flat_index(0, 0)] += 10.0
        text = render_delta_map(before, after, grid)
        assert "+++" in text

    def test_shape_checked(self, grid):
        with pytest.raises(ConfigurationError):
            render_delta_map(np.zeros(3), np.zeros(3), grid)

    def test_real_tec_effect(self, tec_problem):
        # TEC on vs off: the covered hot region must show cooling.
        evaluator = Evaluator(tec_problem)
        off = evaluator.evaluate(300.0, 0.0)
        on = evaluator.evaluate(300.0, 1.5)
        text = render_delta_map(
            off.steady.chip_temperatures,
            on.steady.chip_temperatures,
            tec_problem.model.grid)
        assert "-" in text
