"""Shared fixtures.

Thermal models are expensive to assemble, so the fixtures build one small
(8x8 grid) TEC system and one matching baseline system per session and
share them; tests that mutate state build their own instances.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import build_cooling_problem, mibench_profiles
from repro.core import Evaluator
from repro.geometry import (
    CellCoverage,
    EV6_CACHE_UNITS,
    Grid,
    alpha21264_floorplan,
)
from repro.leakage import UnitLeakageSpec, build_cell_leakage
from repro.leakage.calibrate import (
    calibrate_from_samples,
    mcpat_substitute_samples,
)
from repro.materials import baseline_package_stack, default_package_stack
from repro.power import TraceGenerator
from repro.tec import TECArray, coverage_mask_excluding, default_tec_device
from repro.thermal import build_package_model

#: Grid resolution used throughout the test suite (speed/fidelity balance).
TEST_RESOLUTION = 8


@pytest.fixture(scope="session")
def floorplan():
    """The embedded EV6 floorplan."""
    return alpha21264_floorplan()


@pytest.fixture(scope="session")
def grid(floorplan):
    """An 8x8 grid over the EV6 die."""
    return Grid.for_floorplan(floorplan, TEST_RESOLUTION, TEST_RESOLUTION)


@pytest.fixture(scope="session")
def coverage(floorplan, grid):
    """Unit/cell coverage for the shared grid."""
    return CellCoverage(floorplan, grid)


@pytest.fixture(scope="session")
def tec_mask(coverage):
    """TEC deployment mask excluding the I/D caches."""
    return coverage_mask_excluding(coverage, EV6_CACHE_UNITS)


@pytest.fixture(scope="session")
def tec_device():
    """The default thin-film TEC module."""
    return default_tec_device()


@pytest.fixture(scope="session")
def tec_array(grid, tec_device, tec_mask):
    """TEC array over everything but the caches."""
    return TECArray(grid, tec_device, tec_mask)


@pytest.fixture(scope="session")
def tec_model(grid, tec_array):
    """Assembled TEC-equipped package model (shared, read-only)."""
    return build_package_model(default_package_stack(), grid,
                               tec_array=tec_array)


@pytest.fixture(scope="session")
def baseline_model(grid):
    """Assembled no-TEC baseline package model (shared, read-only)."""
    return build_package_model(baseline_package_stack(), grid)


@pytest.fixture(scope="session")
def leakage(floorplan, coverage):
    """McPAT-substitute leakage model on the shared grid."""
    calibration = calibrate_from_samples(mcpat_substitute_samples(floorplan))
    return build_cell_leakage(
        coverage,
        [UnitLeakageSpec(name, power)
         for name, power in calibration.unit_nominal.items()],
        calibration.beta, calibration.t_nominal)


@pytest.fixture(scope="session")
def profiles():
    """The eight MiBench power profiles."""
    return mibench_profiles()


@pytest.fixture(scope="session")
def basicmath_power(coverage, profiles):
    """Basicmath per-cell dynamic power map."""
    return coverage.power_map(profiles["basicmath"].as_dict())


@pytest.fixture(scope="session")
def quicksort_power(coverage, profiles):
    """Quicksort (heavy) per-cell dynamic power map."""
    return coverage.power_map(profiles["quicksort"].as_dict())


@pytest.fixture(scope="session")
def tec_problem(profiles):
    """TEC-equipped cooling problem for Basicmath at test resolution."""
    return build_cooling_problem(profiles["basicmath"],
                                 grid_resolution=TEST_RESOLUTION)


@pytest.fixture(scope="session")
def baseline_problem(profiles):
    """No-TEC cooling problem for Basicmath at test resolution."""
    return build_cooling_problem(profiles["basicmath"], with_tec=False,
                                 grid_resolution=TEST_RESOLUTION)


@pytest.fixture(scope="session")
def heavy_tec_problem(tec_problem, profiles):
    """TEC problem retargeted at the heavy Quicksort profile."""
    return tec_problem.with_profile(profiles["quicksort"])


@pytest.fixture(scope="session")
def heavy_baseline_problem(baseline_problem, profiles):
    """Baseline problem retargeted at the heavy Quicksort profile."""
    return baseline_problem.with_profile(profiles["quicksort"])


@pytest.fixture()
def evaluator(tec_problem):
    """Fresh evaluator per test (caches are per-instance)."""
    return Evaluator(tec_problem)


@pytest.fixture(scope="session")
def trace_generator():
    """Deterministic trace generator."""
    return TraceGenerator(seed=42)


@pytest.fixture(scope="session")
def uniform_power(grid):
    """A flat 40 W power map (for symmetry/energy-balance tests)."""
    cells = grid.cell_count
    return np.full(cells, 40.0 / cells)
