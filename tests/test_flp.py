"""HotSpot .flp parser/writer."""

import pytest

from repro.errors import FloorplanParseError
from repro.geometry import (
    alpha21264_floorplan,
    format_flp,
    parse_flp,
    parse_flp_text,
    write_flp,
)

SAMPLE = """
# comment line
left   1.0e-3 2.0e-3 0.0    0.0
right  1.0e-3 2.0e-3 1.0e-3 0.0   # trailing comment
"""


class TestParse:
    def test_basic(self):
        fp = parse_flp_text(SAMPLE)
        assert fp.unit_names == ["left", "right"]
        assert fp["right"].rect.x == pytest.approx(1.0e-3)
        assert fp["left"].rect.height == pytest.approx(2.0e-3)

    def test_hotspot_optional_material_columns(self):
        text = "u1 1e-3 1e-3 0 0 1.75e6 0.01\n"
        fp = parse_flp_text(text)
        assert len(fp) == 1

    def test_empty_rejected(self):
        with pytest.raises(FloorplanParseError, match="no units"):
            parse_flp_text("# only comments\n")

    def test_wrong_field_count(self):
        with pytest.raises(FloorplanParseError, match="expected 5-7"):
            parse_flp_text("u1 1e-3 1e-3 0\n")

    def test_non_numeric(self):
        with pytest.raises(FloorplanParseError, match="non-numeric"):
            parse_flp_text("u1 wide 1e-3 0 0\n")

    def test_non_positive_size(self):
        with pytest.raises(FloorplanParseError, match="non-positive"):
            parse_flp_text("u1 0 1e-3 0 0\n")

    def test_error_reports_line_number(self):
        with pytest.raises(FloorplanParseError, match=":3:"):
            parse_flp_text("u1 1e-3 1e-3 0 0\n\nbad line here extra xx y\n")


class TestRoundTrip:
    def test_format_then_parse(self):
        original = alpha21264_floorplan()
        recovered = parse_flp_text(format_flp(original))
        assert recovered.unit_names == original.unit_names
        for unit in original:
            r1, r2 = unit.rect, recovered[unit.name].rect
            assert r2.x == pytest.approx(r1.x, abs=1e-12)
            assert r2.width == pytest.approx(r1.width, rel=1e-5)

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "ev6.flp"
        write_flp(alpha21264_floorplan(), path)
        recovered = parse_flp(path)
        assert len(recovered) == 18
        assert recovered.bounding_box.width == pytest.approx(15.9e-3,
                                                             rel=1e-5)

    def test_missing_file(self, tmp_path):
        with pytest.raises(OSError):
            parse_flp(tmp_path / "missing.flp")
