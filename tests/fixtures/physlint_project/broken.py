# physlint: disable-file=RPR000
def broken(:
    pass
