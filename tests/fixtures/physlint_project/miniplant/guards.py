"""The process-context guard consulted by safe worker stages."""

from miniplant import state


def in_worker():
    """True while a worker context is installed."""
    return state.RUNTIME is not None
