"""Minimal stopwatch factory so the fixture package hangs together."""


class Stopwatch:
    """A watch that must be stopped once started."""

    def stop(self):
        """Stop the watch."""


def stopwatch(name):
    """Create a named :class:`Stopwatch`."""
    return Stopwatch()
