"""Coordinator: fans units out to a pool (worker-root discovery).

``run_all`` itself spawns a pool but is coordinator-only — it must
never be flagged; only code reachable from the submitted entry point
(``workers.run_unit``) is worker territory.
"""

from concurrent.futures import ProcessPoolExecutor

from miniplant.workers import run_unit


def run_all(units):
    """Submit every unit to a fresh pool and collect the results."""
    with ProcessPoolExecutor() as pool:
        futures = [pool.submit(run_unit, unit) for unit in units]
    return [future.result() for future in futures]
