"""Calls through the package re-export (one-hop resolution)."""

from miniplant import fan_power


def panel_power(omega_rpm):
    """Sums fan power over one panel, still in RPM.

    Args:
        omega_rpm: Commanded fan speed, RPM.
    """
    return fan_power(omega_rpm)  # seeded RPR703 via re-export
