"""Mini plant model: the physlint whole-program fixture package.

Each module seeds one class of cross-module defect the v2 engine must
find (see tests/test_physlint_project.py for the expected sets):

* ``control``/``panel`` — dimensional-flow bugs (RPR701/702/703);
* ``scheduler``/``workers``/``pools`` — the PR 5 nested fan-out shape
  and coordinator-state mutation (RPR602/603), plus a guarded variant
  that must stay clean;
* ``tracing`` — span/stopwatch hygiene (RPR502).

The ``fan_power`` re-export below is load-bearing: ``panel`` imports
through it to exercise the one-hop re-export resolution.
"""

from .fan import fan_power

__all__ = ["fan_power"]
