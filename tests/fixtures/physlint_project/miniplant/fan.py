"""Fan model: the documented callee for the RPR703 fixtures."""


def fan_power(omega):
    """Cubic-law electrical power drawn by the fan.

    Args:
        omega: Fan speed, rad/s.

    Returns:
        Electrical input power, W.
    """
    return 1.0e-6 * omega ** 3
