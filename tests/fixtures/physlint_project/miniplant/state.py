"""Coordinator-side mutable module state (the RPR602 bait)."""

# physlint: disable-file=RPR601

RUNTIME = None
