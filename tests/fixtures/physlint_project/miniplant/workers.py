"""Worker units: seeded process-safety violations (RPR602/603).

``run_unit`` is the pool entry point (submitted by
``scheduler.run_all``); everything it calls is worker-reachable.
``safe_expand`` consults ``in_worker()`` before fanning out, making it
a guard barrier the traversal must stop at — its pool use is clean.
"""

import random

from miniplant import state
from miniplant.guards import in_worker
from miniplant.pools import expand_parallel

TOTALS = {}  # physlint: disable=RPR601


def run_unit(unit):
    """The pool entry point: one unit in, one merged record out."""
    tally(unit)
    mark(unit)
    shake(unit)
    safe_expand(unit)
    return step(unit)


def tally(unit):
    """Rebinding a module global from a worker (seeded RPR602)."""
    global TOTALS
    TOTALS = {unit: 1}


def mark(unit):
    """Writing an imported module's attribute (seeded RPR602)."""
    state.RUNTIME = unit


def shake(unit):
    """Drawing from the ambient RNG stream (seeded RPR602)."""
    return random.random()


def step(unit):
    """The PR 5 shape: reaches a nested fan-out (seeded RPR603)."""
    return expand_parallel(unit)


def safe_expand(unit):
    """Guard barrier: checks its process context first (clean)."""
    if in_worker():
        return [unit]
    return expand_parallel(unit)
