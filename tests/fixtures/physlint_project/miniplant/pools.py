"""The nested stage: spawns its own pool when reached from a worker."""

from concurrent.futures import ProcessPoolExecutor


def expand_parallel(unit):
    """Fans out again — flagged (RPR603) when worker-reachable."""
    with ProcessPoolExecutor() as pool:
        return list(pool.map(str, [unit]))
