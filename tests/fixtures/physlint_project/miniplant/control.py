"""Controller with the three seeded dimensional mismatch shapes."""

from miniplant.fan import fan_power


def mixed_sum(power_w, current_a):
    """Nonsense total: adds power to current.

    Args:
        power_w: Package power, W.
        current_a: TEC drive current, A.
    """
    return power_w + current_a  # seeded RPR701


def over_limit(omega_rpm, omega_max):
    """Threshold check across unit systems.

    Args:
        omega_rpm: Commanded fan speed, RPM.
        omega_max: Speed ceiling, rad/s.
    """
    return omega_rpm > omega_max  # seeded RPR702


def step(omega_rpm):
    """Hands RPM straight to a rad/s parameter.

    Args:
        omega_rpm: Commanded fan speed, RPM.
    """
    return fan_power(omega_rpm)  # seeded RPR703
