"""Span/stopwatch hygiene fixtures (RPR502)."""

from miniplant.clock import stopwatch


def leaky_solve(tracer, operator, loads):
    """Closed on the happy path only: a raise in between leaks it."""
    span = tracer.start_span("solve")  # seeded RPR502
    temps = operator.solve(loads)
    tracer.end_span(span)
    return temps


def never_closed(tracer, operator, loads):
    """Opened and forgotten entirely."""
    span = tracer.start_span("solve")  # seeded RPR502
    return operator.solve(loads)


def leaky_watch(operator, loads):
    """Stopwatch stopped on the happy path only."""
    watch = stopwatch("solve_seconds")  # seeded RPR502
    temps = operator.solve(loads)
    watch.stop()
    return temps


def clean_solve(tracer, operator, loads):
    """The canonical try/finally close: clean."""
    span = tracer.start_span("solve")
    try:
        return operator.solve(loads)
    finally:
        tracer.end_span(span)


def handed_off(tracer, registry, operator, loads):
    """Ownership transferred to another holder: clean."""
    span = tracer.start_span("solve")
    registry.adopt(span)
    return operator.solve(loads)
