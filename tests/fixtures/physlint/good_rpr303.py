"""Known-good fixture for RPR303: adjoint gradients, no FD loops."""


def sensitivity_sweep(evaluator, points):
    """Power slope, W per rad/s, at each operating point."""
    slopes = []
    for omega, current in points:
        gradient = evaluator.evaluate_with_grad(omega, current).gradient
        slopes.append(gradient.d_power_omega)
    return slopes


def relative_drop(evaluations, reference):
    """Power drop fraction per candidate; not a difference quotient —
    the denominator is a power, W, not a step."""
    drops = []
    for candidate in evaluations:
        drops.append((reference.total_power - candidate.total_power)
                     / reference.total_power)
    return drops


def one_shot_slope(evaluator, omega, current, step):
    """A single difference quotient, W per A, outside any loop is the
    sanctioned probe shape (the evaluator's own guarded fallback)."""
    hi_eval = evaluator.evaluate(omega, current + step)
    lo_eval = evaluator.evaluate(omega, current - step)
    return (hi_eval.total_power - lo_eval.total_power) / (2 * step)
