"""Known-bad fixture for RPR503 (wall-clock-deadline)."""

import time


def wait_for_result(poller, budget):
    deadline = time.time() + budget  # BAD: wall-clock deadline
    while time.time() < deadline:  # BAD: wall-clock comparison
        if poller.ready():
            return poller.value
    return None


def remaining_budget(deadline):
    return deadline - time.time()  # BAD: elapsed-time arithmetic


class Watchdog:
    def arm(self):
        self.timeout_at = time.time()  # BAD: timeout from wall clock

    def tripped(self):
        return time.time() > self.timeout_at  # BAD: comparison
