"""Known-good fixture for RPR501 (print-in-library)."""

import logging

from repro.errors import SolverError
from repro.obs import runtime as obs

logger = logging.getLogger(__name__)


def report_progress(iteration, residual):
    obs.event("solver.progress", iteration=iteration,
              residual=residual)
    return residual


def solve_with_recorded_failure(solver):
    try:
        return solver.solve()
    except SolverError:
        logger.warning("solver failed")
        raise


def summarize(results):
    return "\n".join(str(result) for result in results)
