"""Known-bad fixture for RPR201 (exception-hygiene)."""


def swallow_everything(solver):
    try:
        return solver.solve()
    except:  # BAD: bare except
        return None


def swallow_broadly(solver):
    try:
        return solver.solve()
    except Exception:  # BAD: overly broad
        return None


def swallow_tuple(solver):
    try:
        return solver.solve()
    except (KeyError, BaseException):  # BAD: broad member
        return None


def validate(omega):
    """Validate fan speed ``omega``, rad/s."""
    if omega < 0.0:
        raise ValueError("omega must be >= 0")  # BAD: builtin raise


def reraise_class():
    raise RuntimeError  # BAD: builtin raised as a bare class
