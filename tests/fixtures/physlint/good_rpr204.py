"""Known-good fixture for RPR204 (swallowed-exception)."""

import logging

from repro.errors import ReproError, SolverError

logger = logging.getLogger(__name__)


def degrade_explicitly(solver, fallback):
    try:
        return solver.solve()
    except SolverError:
        return fallback


def record_failures(grid_points, solver):
    results, failures = [], []
    for point in grid_points:
        try:
            results.append(solver.solve(point))
        except ReproError as exc:
            failures.append(exc)
    return results, failures


def log_then_reraise(solver):
    try:
        return solver.solve()
    except SolverError:
        logger.error("solve failed")
        raise


def suppressed_on_purpose(solver):
    try:
        return solver.solve()
    except SolverError:  # physlint: disable=RPR204
        pass
