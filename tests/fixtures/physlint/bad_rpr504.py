"""Known-bad fixture for RPR504 (telemetry-hot-loop)."""

from repro.obs import runtime as _obs
from repro.obs.clock import stopwatch


def solve_traced(operator, loads):
    _obs.span("solve")  # BAD: context manager discarded
    return operator.solve(loads)


def time_assembly(assembler):
    stopwatch("assembly_seconds")  # BAD: watch discarded
    return assembler.build()


def export_spans(spans, sink):
    for span in spans:
        sink.write(span)  # BAD: blocking sink I/O per iteration


def export_metrics(snapshots, metrics_exporter):
    while snapshots:
        metrics_exporter.write(snapshots.pop())  # BAD: same, exporter


class Streamer:
    def drain(self, records):
        for record in records:
            self._sink.write(record)  # BAD: attribute receiver
