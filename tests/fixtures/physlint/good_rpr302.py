"""Known-good fixture for RPR302: factor once, solve many."""

from scipy.sparse.linalg import splu, spsolve


def march(static, capacitance, load, steps):
    """Transient march; capacitance in J/K, load in W."""
    lu = splu((static + capacitance).tocsc())
    temps = load * 0.0
    for _ in range(steps):
        temps = lu.solve(load + capacitance @ temps)
    return temps


def calibrate(systems, loads):
    """Solve unrelated systems, W/K, against heat loads, W.

    Every iteration sees a different sparsity pattern, so there is
    nothing to cache; the suppression comment records that judgment.
    """
    out = []
    for system, load in zip(systems, loads):
        csc = system.tocsc()  # physlint: disable=RPR302
        out.append(spsolve(csc, load))  # physlint: disable=RPR302
    return out
