"""Known-good fixture for RPR601 (process-state)."""

import random
from collections import OrderedDict

import numpy as np

#: Populated literals are constant tables, not caches.
_LIMITS = {"basicmath": 358.15, "bitcount": 356.2}
_NAMES = ("basicmath", "bitcount")

#: A rebindable sentinel is not mutable container state.
_RUNTIME = None


class FactorCache:
    """Instance state travels with the object, not the module."""

    def __init__(self):
        self._lru = OrderedDict()
        self._hits = []


def draw_samples(seed, count):
    rng = np.random.default_rng(seed)
    child = np.random.default_rng(np.random.SeedSequence([seed, 1]))
    stdlib = random.Random(seed)
    return rng, child, stdlib, count
