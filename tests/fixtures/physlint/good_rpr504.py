"""Known-good fixture for RPR504 (telemetry-hot-loop)."""

from repro.obs import runtime as _obs
from repro.obs.clock import stopwatch


def solve_traced(operator, loads):
    with _obs.span("solve"):
        return operator.solve(loads)


def time_assembly(assembler):
    watch = stopwatch("assembly_seconds")
    with watch:
        return assembler.build()


def export_spans(spans, flusher):
    # publish() hands the record to a bounded queue and never blocks;
    # the flusher's worker thread does the sink I/O.
    for span in spans:
        flusher.publish(span)


def export_once(snapshot, sink):
    # A single write outside any loop is fine (shutdown, final dump).
    sink.write(snapshot)


def persist(records, handle):
    # Receivers that are not telemetry sinks are out of scope — the
    # journal writes its own records with durability guarantees.
    for record in records:
        handle.write(record)
