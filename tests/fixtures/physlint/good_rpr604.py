# physlint fixture: creations paired with unlink / finalizers.
import atexit
from multiprocessing.shared_memory import SharedMemory

import numpy as np


def publish(array):
    segment = SharedMemory(create=True, size=array.nbytes)
    view = np.ndarray(array.shape, dtype=array.dtype, buf=segment.buf)
    view[...] = array
    atexit.register(segment.unlink)
    return segment.name


def publish_scoped(array):
    segment = SharedMemory(create=True, size=array.nbytes)
    try:
        yield segment
    finally:
        segment.close()
        segment.unlink()


def attach(name):
    return SharedMemory(name=name)


def attach_with_flag(name):
    return SharedMemory(name=name, create=False)
