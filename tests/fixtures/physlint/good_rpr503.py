"""Known-good fixture for RPR503 (wall-clock-deadline)."""

import time

from repro.obs.clock import Deadline, monotonic


def wait_for_result(poller, budget):
    deadline = Deadline(budget)
    while not deadline.expired:
        if poller.ready():
            return poller.value
    return None


def remaining_budget(deadline):
    return deadline.remaining()


def trace_header():
    # Wall-clock reads are fine as metadata; only elapsed-time
    # arithmetic and deadline bindings are flagged.
    return {"created_unix": time.time()}


class Watchdog:
    def arm(self):
        self.armed_at = monotonic()

    def tripped(self, budget):
        return monotonic() - self.armed_at > budget
