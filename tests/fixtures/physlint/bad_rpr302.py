"""Known-bad fixture for RPR302 (solver-in-loop)."""

from scipy.sparse.linalg import splu, spsolve


def relinearize(static, overlays, loads):
    """Temperatures, K, from conductance, W/K, and heat loads, W."""
    temps = []
    for overlay, load in zip(overlays, loads):
        system = (static + overlay).tocsc()  # BAD: convert per step
        temps.append(spsolve(system, load))  # BAD: refactor per step
    return temps


def march(static, capacitance, load, steps):
    """Transient march; capacitance in J/K, load in W."""
    temps = load * 0.0
    step = 0
    while step < steps:
        lu = splu((static + capacitance).tocsc())  # BAD: both calls
        temps = lu.solve(load + capacitance @ temps)
        step += 1
    return temps
