"""Known-bad fixture for RPR303 (fd-gradient-in-loop)."""


def sensitivity_sweep(evaluator, points, step):
    """Power slope, W per rad/s, at each operating point."""
    slopes = []
    for omega, current in points:
        hi_eval = evaluator.evaluate(omega + step, current)
        lo_eval = evaluator.evaluate(omega - step, current)
        slopes.append((hi_eval.total_power
                       - lo_eval.total_power) / (2 * step))  # BAD
    return slopes


def jacobian(evaluator, omega, current, steps):
    """Temperature gradient, K per (rad/s, A), by forward differences."""
    base_eval = evaluator.evaluate(omega, current)
    grad = []
    for axis, step in enumerate(steps):
        probe = [omega, current]
        probe[axis] += step
        # BAD twice: temperature and power quotients per axis.
        grad.append(
            (evaluator.evaluate(*probe).max_chip_temperature
             - base_eval.max_chip_temperature) / step)
        grad.append((evaluator.evaluate(*probe).total_power
                     - base_eval.total_power) / step)
    return grad


def line_search(evaluator, omega, current, step):
    """Descend the power slope, W per A, until it flattens."""
    while step > 1e-6:
        hi_eval = evaluator.evaluate(omega, current + step)
        lo_eval = evaluator.evaluate(omega, current - step)
        slope = (hi_eval.total_power
                 - lo_eval.total_power) / (2 * step)  # BAD
        if abs(slope) < 1e-9:
            break
        current -= slope * step
    return current
