"""Known-bad fixture for RPR204 (swallowed-exception)."""

import logging

from repro.errors import ReproError, SolverError, ThermalRunawayError

logger = logging.getLogger(__name__)


def swallow_with_pass(solver):
    try:
        return solver.solve()
    except SolverError:  # BAD: silently dropped
        pass


def swallow_in_loop(grid_points, solver):
    results = []
    for point in grid_points:
        try:
            results.append(solver.solve(point))
        except ThermalRunawayError:  # BAD: continue hides runaway
            continue
    return results


def swallow_with_print(solver):
    try:
        return solver.solve()
    except ReproError:  # BAD: print is not handling
        print("solve failed")  # physlint: disable=RPR501


def swallow_with_log(solver):
    try:
        return solver.solve()
    except SolverError:  # BAD: log-and-forget
        logger.warning("solve failed")
