"""Known-good fixture for RPR301 (dense-solve): sparse path + lstsq."""

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.linalg import spsolve


def solve_network(conductance, power):
    """Node temperatures, K, from conductance, W/K, and power, W."""
    return spsolve(csr_matrix(conductance), power)


def fit_line(design, samples):
    """Least-squares fit; tiny dimensionless systems are fine."""
    solution, _, _, _ = np.linalg.lstsq(design, samples, rcond=None)
    return solution


def vector_norm(residual):
    """Euclidean norm of a dimensionless residual vector."""
    return float(np.linalg.norm(residual))
