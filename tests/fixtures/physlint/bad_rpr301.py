"""Known-bad fixture for RPR301 (dense-solve)."""

import numpy as np
from numpy.linalg import inv  # BAD: dense import


def solve_network(conductance, power):
    """Node temperatures, K, from conductance, W/K, and power, W."""
    return np.linalg.solve(conductance, power)  # BAD: dense solve


def invert_network(conductance):
    """Dense inverse of the conductance matrix, W/K."""
    return inv(conductance)  # BAD: dense inverse via imported name
