"""Known-bad fixture for RPR601 (process-state)."""

import random
from collections import Counter, OrderedDict, defaultdict, deque

import numpy as np

_CACHE = {}  # BAD: per-process copy, mutations never merge back
_RESULTS = []  # BAD
_INDEX = dict()  # BAD: zero-arg constructor, same empty cache
_SEEN = set()  # BAD
_LRU = OrderedDict()  # BAD: the cache classes flag with any arguments
_QUEUE = deque()  # BAD
_BUCKETS = defaultdict(list)  # BAD
_COUNTS: Counter = Counter()  # BAD: annotated assignment too


def draw_samples(count):
    rng = np.random.default_rng()  # BAD: unseeded stream
    explicit = np.random.default_rng(None)  # BAD: None is not a seed
    keyword = np.random.default_rng(seed=None)  # BAD
    legacy = np.random.RandomState()  # BAD
    stdlib = random.Random()  # BAD
    return rng, explicit, keyword, legacy, stdlib, count
