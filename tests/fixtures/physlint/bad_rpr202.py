"""Known-bad fixture for RPR202 (assert-validation)."""


def build_grid(nx, ny):
    assert nx > 0, "nx must be positive"  # BAD: vanishes under -O
    assert ny > 0  # BAD: vanishes under -O
    return nx * ny
