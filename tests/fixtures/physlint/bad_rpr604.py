# physlint fixture: shared-memory segments created, never unlinked.
from multiprocessing.shared_memory import SharedMemory

import numpy as np


def publish(array):
    segment = SharedMemory(create=True, size=array.nbytes)
    view = np.ndarray(array.shape, dtype=array.dtype, buf=segment.buf)
    view[...] = array
    return segment.name


def scratch_segment(name, nbytes):
    return SharedMemory(name=name, create=True, size=nbytes)


def attach(name):
    # Attaching is fine on its own; only creations need the pairing.
    return SharedMemory(name=name)
