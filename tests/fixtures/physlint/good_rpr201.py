"""Known-good fixture for RPR201 (exception-hygiene)."""

from repro.errors import ConfigurationError, ReproError, SolverError


def catch_precisely(solver):
    try:
        return solver.solve()
    except SolverError:
        return None


def catch_package_wide(solver):
    try:
        return solver.solve()
    except ReproError:
        return None


def validate(omega):
    """Validate fan speed ``omega``, rad/s."""
    if omega < 0.0:
        raise ConfigurationError("omega must be >= 0, rad/s")


def reraise(solver):
    try:
        return solver.solve()
    except KeyError:
        raise
