"""Known-good fixture for RPR401 (docstring-units)."""


def apply_cooling(omega, current):
    """Drive the cooling at fan speed ``omega``, rad/s, and TEC
    current, A."""
    return omega + current


def leakage_at(temperature):
    """Leakage power, W, at the given die temperature, K."""
    return 2.0 ** temperature


def _private_helper(omega):
    return omega


def count_samples(current_samples):
    """A count of a quantity is not a quantity."""
    return int(current_samples)
