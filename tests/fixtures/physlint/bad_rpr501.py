"""Known-bad fixture for RPR501 (print-in-library)."""

import sys

from repro.errors import SolverError


def report_progress(iteration, residual):
    print(f"iteration {iteration}: residual {residual:.3e}")  # BAD
    return residual


def solve_with_debug_output(solver):
    try:
        return solver.solve()
    except SolverError as exc:
        print("solver failed:", exc, file=sys.stderr)  # BAD: stderr too
        raise


def summarize(results):
    for result in results:
        print(result)  # BAD: presentation belongs in the CLI layer
