"""Known-bad fixture for RPR101 (unit-literal).

Never imported; linted only.  Each marked line must produce exactly one
RPR101 finding.  Docstrings state units so RPR401 stays quiet.
"""

import math


def to_kelvin(temp_c):
    """Temperature, K, from celsius."""
    return temp_c + 273.15  # BAD: Celsius offset literal


def fan_speed(rpm):
    """Fan speed, rad/s, from RPM."""
    return rpm * (2.0 * math.pi / 60.0)  # BAD: RPM conversion factor


def to_rpm(rad_s):
    """Fan speed, RPM, from rad/s."""
    return rad_s * (60.0 / (2.0 * math.pi))  # BAD: inverse factor


def die_width(width_mm):
    """Die width, m, from mm."""
    return width_mm * 1e-3  # BAD: mm scale factor on a runtime value


def film_thickness(thickness_um):
    """Film thickness, m, from µm."""
    return thickness_um * 1e-6  # BAD: um scale factor


def runtime_ms(seconds):
    """Runtime in ms from seconds."""
    return seconds * 1e3  # BAD: s-to-ms scale factor


def also_division(length_m):
    """Length in mm from meters."""
    return length_m / 1e-3  # BAD: division by a scale factor
