"""Known-bad fixture for RPR401 (docstring-units)."""


def apply_cooling(omega, current):  # BAD: no docstring at all
    return omega + current


def leakage_at(temperature):
    """Leakage at the given temperature."""  # BAD: no unit stated
    return 2.0 ** temperature
