"""Known-good fixture for RPR101 (unit-literal): boundary helpers only."""

from repro.units import celsius_to_kelvin, mm_to_m, rpm_to_rad_s, s_to_ms

#: A bare constant *definition* is not a conversion and is allowed.
DEFAULT_THICKNESS = 1e-3

#: Tolerances are plain numbers, not unit conversions.
TOLERANCE = 1e-6


def to_kelvin(temp_c):
    """Temperature, K, from celsius."""
    return celsius_to_kelvin(temp_c)


def fan_speed(rpm):
    """Fan speed, rad/s, from RPM."""
    return rpm_to_rad_s(rpm)


def die_width(width_mm):
    """Die width, m, from mm."""
    return mm_to_m(width_mm)


def runtime_ms(seconds):
    """Runtime in ms from seconds."""
    return s_to_ms(seconds)


def converged(update):
    """Convergence check on a dimensionless update."""
    return abs(update) < 1e-6


def suppressed(width_mm):
    """Die width, m, from mm (deliberately suppressed)."""
    return width_mm * 1e-3  # physlint: disable=RPR101
