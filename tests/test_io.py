"""Serialization round trips: JSON configs and CSV traces."""

import numpy as np
import pytest

from repro.core import ProblemLimits
from repro.errors import ConfigurationError
from repro.io import (
    device_from_dict,
    device_to_dict,
    limits_from_dict,
    limits_to_dict,
    load_profile,
    load_profiles,
    load_trace,
    profile_from_dict,
    profile_to_dict,
    save_profile,
    save_profiles,
    save_trace,
)
from repro.power import BenchmarkProfile
from repro.tec import default_tec_device


class TestProfileIO:
    def test_dict_roundtrip(self, profiles):
        original = profiles["fft"]
        recovered = profile_from_dict(profile_to_dict(original))
        assert recovered.name == original.name
        assert recovered.unit_power == dict(original.unit_power)

    def test_file_roundtrip(self, tmp_path, profiles):
        path = tmp_path / "profile.json"
        save_profile(profiles["susan"], path)
        recovered = load_profile(path)
        assert recovered.total_power == pytest.approx(
            profiles["susan"].total_power)

    def test_profile_set_roundtrip(self, tmp_path, profiles):
        path = tmp_path / "profiles.json"
        save_profiles(profiles, path)
        recovered = load_profiles(path)
        assert set(recovered) == set(profiles)
        for name in profiles:
            assert recovered[name].total_power == pytest.approx(
                profiles[name].total_power)

    def test_missing_keys_rejected(self):
        with pytest.raises(ConfigurationError):
            profile_from_dict({"name": "x"})
        with pytest.raises(ConfigurationError):
            profile_from_dict({"name": "x", "unit_power": [1, 2]})

    def test_bad_set_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ConfigurationError):
            load_profiles(path)


class TestDeviceIO:
    def test_roundtrip(self):
        original = default_tec_device()
        recovered = device_from_dict(device_to_dict(original))
        assert recovered == original

    def test_default_max_current(self):
        data = device_to_dict(default_tec_device())
        del data["max_current"]
        assert device_from_dict(data).max_current == pytest.approx(5.0)

    def test_missing_keys(self):
        with pytest.raises(ConfigurationError, match="missing"):
            device_from_dict({"seebeck_coefficient": 1e-3})


class TestLimitsIO:
    def test_roundtrip(self):
        original = ProblemLimits(t_max=353.0, omega_max=400.0,
                                 i_tec_max=3.0)
        recovered = limits_from_dict(limits_to_dict(original))
        assert recovered == original

    def test_defaults_fill_in(self):
        limits = limits_from_dict({})
        assert limits == ProblemLimits()


class TestTraceIO:
    def test_roundtrip(self, tmp_path, profiles, trace_generator):
        trace = trace_generator.generate(profiles["crc32"], duration=0.5,
                                         sample_interval=0.05)
        path = tmp_path / "trace.csv"
        save_trace(trace, path)
        recovered = load_trace(path)
        assert recovered.name == trace.name
        assert recovered.unit_names == trace.unit_names
        assert np.allclose(recovered.times, trace.times)
        assert np.allclose(recovered.samples, trace.samples, rtol=1e-6)

    def test_max_profile_survives_roundtrip(self, tmp_path, profiles,
                                            trace_generator):
        trace = trace_generator.generate(profiles["fft"], duration=0.5,
                                         sample_interval=0.05)
        path = tmp_path / "trace.csv"
        save_trace(trace, path)
        recovered = load_trace(path)
        original_max = trace.max_profile().unit_power
        recovered_max = recovered.max_profile().unit_power
        for unit, value in original_max.items():
            assert recovered_max[unit] == pytest.approx(value, rel=1e-6)

    def test_bad_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("when,a\n0.0,1.0\n")
        with pytest.raises(ConfigurationError, match="time"):
            load_trace(path)

    def test_row_width_mismatch(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("time,a,b\n0.0,1.0\n")
        with pytest.raises(ConfigurationError, match="fields"):
            load_trace(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ConfigurationError, match="no samples"):
            load_trace(path)

    def test_name_comment_optional(self, tmp_path):
        path = tmp_path / "anon.csv"
        path.write_text("time,a\n0.0,1.0\n1.0,2.0\n")
        trace = load_trace(path)
        assert trace.name == "anon"
        assert trace.sample_count == 2


class TestProfileValidation:
    def test_profile_from_dict_types(self):
        profile = profile_from_dict(
            {"name": "n", "unit_power": {"a": "2.5"}})
        assert isinstance(profile, BenchmarkProfile)
        assert profile.unit_power["a"] == pytest.approx(2.5)
