"""The embedded Alpha 21264 (EV6) floorplan."""

import pytest

from repro.geometry import (
    EV6_CACHE_UNITS,
    EV6_UNIT_NAMES,
    alpha21264_floorplan,
)
from repro.geometry.ev6 import EV6_DIE_SIZE


class TestEV6Floorplan:
    def test_has_18_units(self):
        assert len(alpha21264_floorplan()) == 18
        assert len(EV6_UNIT_NAMES) == 18

    def test_die_dimensions_match_table1(self):
        fp = alpha21264_floorplan()
        box = fp.bounding_box
        assert box.width == pytest.approx(15.9e-3)
        assert box.height == pytest.approx(15.9e-3)
        assert EV6_DIE_SIZE == pytest.approx(15.9e-3)

    def test_full_tiling(self):
        # Units tile the die exactly (no dead space, no overlap).
        assert alpha21264_floorplan().coverage_fraction() == \
            pytest.approx(1.0, abs=1e-9)

    def test_expected_units_present(self):
        fp = alpha21264_floorplan()
        for name in ("IntExec", "IntReg", "FPAdd", "LdStQ", "Icache",
                     "Dcache", "L2", "Bpred"):
            assert name in fp

    def test_cache_units_are_real_units(self):
        fp = alpha21264_floorplan()
        for name in EV6_CACHE_UNITS:
            assert name in fp

    def test_caches_are_large(self):
        # I/D caches are large arrays, so their power density is low --
        # the reason the paper leaves them TEC-free.
        fp = alpha21264_floorplan()
        fractions = fp.area_fractions()
        for cache in EV6_CACHE_UNITS:
            assert fractions[cache] > 0.05

    def test_l2_is_largest_unit(self):
        fp = alpha21264_floorplan()
        largest = max(fp, key=lambda u: u.area)
        assert largest.name == "L2"

    def test_integer_core_in_top_band(self):
        # Hotspot cluster sits away from the L2 at the bottom.
        fp = alpha21264_floorplan()
        assert fp["IntExec"].rect.y > fp["L2"].rect.y2 - 1e-9

    def test_unit_name_order_matches_constant(self):
        assert alpha21264_floorplan().unit_names == EV6_UNIT_NAMES

    def test_fresh_instance_each_call(self):
        assert alpha21264_floorplan() is not alpha21264_floorplan()
