"""Transient boost planning and its thermal effect."""

import pytest

from repro import run_oftec
from repro.core import plan_transient_boost
from repro.errors import ConfigurationError
from repro.thermal import simulate_transient


@pytest.fixture(scope="module")
def oftec_result(tec_problem):
    return run_oftec(tec_problem)


class TestPlan:
    def test_default_plus_one_amp(self, tec_problem, oftec_result):
        plan = plan_transient_boost(tec_problem, oftec_result)
        assert plan.base_current == pytest.approx(
            oftec_result.current_star)
        assert plan.boost_current == pytest.approx(
            min(oftec_result.current_star + 1.0,
                tec_problem.limits.i_tec_max))
        assert plan.boost_duration == 1.0

    def test_clamped_to_device_limit(self, tec_problem, oftec_result):
        plan = plan_transient_boost(tec_problem, oftec_result,
                                    extra_current=99.0)
        assert plan.boost_current == tec_problem.limits.i_tec_max

    def test_schedules(self, tec_problem, oftec_result):
        plan = plan_transient_boost(tec_problem, oftec_result,
                                    extra_current=1.0, duration=2.0)
        current = plan.current_schedule()
        assert current(0.5) == plan.boost_current
        assert current(2.0) == plan.boost_current
        assert current(2.1) == plan.base_current
        omega = plan.omega_schedule()
        assert omega(0.0) == omega(100.0) == plan.omega

    def test_extra_current_property(self, tec_problem, oftec_result):
        plan = plan_transient_boost(tec_problem, oftec_result,
                                    extra_current=0.5)
        assert plan.extra_current == pytest.approx(
            min(0.5, tec_problem.limits.i_tec_max
                - oftec_result.current_star))

    def test_validation(self, tec_problem, baseline_problem,
                        oftec_result):
        with pytest.raises(ConfigurationError):
            plan_transient_boost(tec_problem, oftec_result,
                                 extra_current=-1.0)
        with pytest.raises(ConfigurationError):
            plan_transient_boost(tec_problem, oftec_result,
                                 duration=0.0)
        with pytest.raises(ConfigurationError):
            plan_transient_boost(baseline_problem, oftec_result)


class TestThermalEffect:
    def test_boost_cools_faster_initially(self, tec_problem,
                                          oftec_result):
        # Starting from the warm steady state, the boosted schedule
        # must pull the hotspot down faster than the steady current
        # during the boost window (Peltier acts immediately).
        plan = plan_transient_boost(tec_problem, oftec_result,
                                    extra_current=1.0, duration=1.0)
        model = tec_problem.model
        steady = oftec_result.evaluation.steady
        assert steady is not None
        boosted = simulate_transient(
            model, duration=1.0, dt=0.05, omega=plan.omega,
            current=plan.current_schedule(),
            dynamic_cell_power=tec_problem.dynamic_cell_power,
            leakage=tec_problem.leakage,
            initial_temperatures=steady.temperatures)
        constant = simulate_transient(
            model, duration=1.0, dt=0.05, omega=plan.omega,
            current=plan.base_current,
            dynamic_cell_power=tec_problem.dynamic_cell_power,
            leakage=tec_problem.leakage,
            initial_temperatures=steady.temperatures)
        assert boosted.max_chip_temperature[-1] < \
            constant.max_chip_temperature[-1]
