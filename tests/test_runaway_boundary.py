"""Runaway-boundary bisection."""

import pytest

from repro.analysis import (
    find_runaway_boundary_omega,
    format_runaway_boundaries,
    trace_runaway_boundary,
)
from repro.core import Evaluator
from repro.errors import ConfigurationError


class TestBisection:
    def test_boundary_brackets_runaway(self, heavy_tec_problem):
        boundary = find_runaway_boundary_omega(heavy_tec_problem,
                                               current=0.0,
                                               tolerance=2.0)
        assert 0.0 < boundary < heavy_tec_problem.limits.omega_max
        evaluator = Evaluator(heavy_tec_problem)
        assert evaluator.evaluate(boundary + 2.0, 0.0).runaway is False
        assert evaluator.evaluate(max(boundary - 4.0, 0.0),
                                  0.0).runaway is True

    def test_light_workload_also_has_boundary(self, tec_problem):
        # Even basicmath runs away with the fan fully off.
        boundary = find_runaway_boundary_omega(tec_problem,
                                               current=0.0,
                                               tolerance=2.0)
        assert boundary > 0.0

    def test_paper_scale(self, tec_problem):
        # The paper quotes ~150 RPM (~16 rad/s) for Basicmath; our
        # boundary lands in the same tens-of-RPM regime, far below
        # omega_max.
        boundary = find_runaway_boundary_omega(tec_problem,
                                               current=0.0,
                                               tolerance=1.0)
        assert boundary < 0.2 * tec_problem.limits.omega_max

    def test_tolerance_validation(self, tec_problem):
        with pytest.raises(ConfigurationError):
            find_runaway_boundary_omega(tec_problem, tolerance=0.0)


class TestTrace:
    @pytest.fixture(scope="class")
    def boundary(self, heavy_tec_problem):
        return trace_runaway_boundary(heavy_tec_problem,
                                      currents=(0.0, 2.0, 5.0),
                                      tolerance=2.0)

    def test_u_shaped_boundary(self, boundary):
        # Moderate current can *lower* the required fan speed (net
        # hotspot pumping), but the paper's core point holds at high
        # drive: maximum current demands more airflow than none, and no
        # current level allows a stopped fan.
        assert boundary.high_current_raises_boundary()
        assert boundary.never_zero()

    def test_at_current_lookup(self, boundary):
        assert boundary.at_current(2.1) == boundary.min_omega[1]

    def test_formatting(self, boundary):
        text = format_runaway_boundaries({"quicksort": boundary})
        assert "quicksort" in text
        assert "RPM" in text

    def test_empty_currents_rejected(self, heavy_tec_problem):
        with pytest.raises(ConfigurationError):
            trace_runaway_boundary(heavy_tec_problem, currents=())

    def test_empty_format_rejected(self):
        with pytest.raises(ConfigurationError):
            format_runaway_boundaries({})
