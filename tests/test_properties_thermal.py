"""Property-based tests on the thermal substrate (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.thermal import simulate_transient, solve_steady_state


class TestSteadyStateProperties:
    @settings(max_examples=10, deadline=None)
    @given(omega=st.floats(120.0, 524.0), current=st.floats(0.0, 3.0))
    def test_energy_balance_everywhere(self, tec_model, uniform_power,
                                       omega, current):
        # At any bounded operating point, chip power plus TEC electrical
        # power equals the outflow to ambient.
        result = solve_steady_state(tec_model, omega, current,
                                    uniform_power, leakage=None)
        ambient = tec_model.config.ambient
        g_sink = tec_model.sink_conductance.conductance(omega)
        nodes = tec_model._sink_amb_nodes
        weights = tec_model._sink_amb_weights
        sink_out = float(np.sum(
            g_sink * weights * (result.temperatures[nodes] - ambient)))
        board_out = float(np.sum(
            tec_model._static_amb_g
            * (result.temperatures - ambient)))
        injected = uniform_power.sum() + result.tec_power
        assert sink_out + board_out == pytest.approx(injected,
                                                     rel=1e-6)

    @settings(max_examples=10, deadline=None)
    @given(omega=st.floats(150.0, 524.0),
           scale=st.floats(0.2, 1.5))
    def test_no_leakage_solution_scales_linearly(self, tec_model,
                                                 uniform_power, omega,
                                                 scale):
        # Without leakage and TEC current the system is linear: scaling
        # the power scales the temperature *rise* exactly.
        base = solve_steady_state(tec_model, omega, 0.0, uniform_power,
                                  leakage=None)
        scaled = solve_steady_state(tec_model, omega, 0.0,
                                    uniform_power * scale,
                                    leakage=None)
        ambient = tec_model.config.ambient
        rise_base = base.chip_temperatures - ambient
        rise_scaled = scaled.chip_temperatures - ambient
        assert np.allclose(rise_scaled, scale * rise_base, rtol=1e-9,
                           atol=1e-9)

    @settings(max_examples=8, deadline=None)
    @given(omega1=st.floats(150.0, 520.0),
           omega2=st.floats(150.0, 520.0))
    def test_temperature_monotone_in_fan_speed(self, tec_model,
                                               quicksort_power,
                                               leakage, omega1,
                                               omega2):
        lo, hi = sorted((omega1, omega2))
        hot = solve_steady_state(tec_model, lo, 0.0, quicksort_power,
                                 leakage)
        cool = solve_steady_state(tec_model, hi, 0.0, quicksort_power,
                                  leakage)
        assert cool.max_chip_temperature <= \
            hot.max_chip_temperature + 1e-6


class TestTransientProperties:
    @settings(max_examples=5, deadline=None)
    @given(dt=st.floats(0.2, 1.0))
    def test_backward_euler_unconditionally_stable(self, tec_model,
                                                   basicmath_power,
                                                   leakage, dt):
        # Any step size yields a bounded, non-oscillating warmup.
        run = simulate_transient(
            tec_model, duration=10.0 * dt, dt=dt, omega=300.0,
            current=0.5, dynamic_cell_power=basicmath_power,
            leakage=leakage)
        assert not run.runaway
        trace = run.max_chip_temperature
        assert (np.diff(trace) > -1e-6).all()

    @settings(max_examples=5, deadline=None)
    @given(omega=st.floats(200.0, 500.0))
    def test_transient_never_overshoots_steady_state(self, tec_model,
                                                     basicmath_power,
                                                     leakage, omega):
        # Warming from ambient toward a fixed operating point, the
        # first-order RC dynamics approach the steady value from below.
        steady = solve_steady_state(tec_model, omega, 0.0,
                                    basicmath_power, leakage)
        run = simulate_transient(
            tec_model, duration=30.0, dt=1.0, omega=omega, current=0.0,
            dynamic_cell_power=basicmath_power, leakage=leakage)
        assert run.max_chip_temperature.max() <= \
            steady.max_chip_temperature + 0.5
