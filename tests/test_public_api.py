"""Audit the top-level public API against docs/API.md.

Every name the "Top level (`repro`)" section of docs/API.md promises
must be exported via ``repro.__all__`` (and actually importable), and
``__all__`` must not advertise names that do not exist.  This keeps the
docs and the package surface from drifting apart.
"""

import re
from pathlib import Path

import repro

API_MD = Path(__file__).resolve().parents[1] / "docs" / "API.md"


def documented_top_level_names():
    """Backticked identifiers from the top-level table of docs/API.md."""
    text = API_MD.read_text(encoding="utf-8")
    start = text.index("## Top level (`repro`)")
    end = text.index("## ", start + 1)
    names = set()
    for token in re.findall(r"`([^`]+)`", text[start:end]):
        # `(t_max, omega_max, ...)` cells describe *fields*, not
        # top-level exports.
        if token == "repro" or token.startswith("("):
            continue
        # Rows like `run_a(problem)` / `run_b(problem)` or a
        # comma-separated constants cell name several identifiers.
        for part in re.split(r"[,/]", token):
            name = part.strip().split("(")[0].strip()
            if name.isidentifier():
                names.add(name)
    return names


def test_api_md_names_are_exported():
    documented = documented_top_level_names()
    assert documented, "failed to parse any names out of docs/API.md"
    missing = sorted(documented - set(repro.__all__))
    assert missing == [], (
        f"docs/API.md documents top-level names missing from "
        f"repro.__all__: {missing}")


def test_all_names_exist():
    missing = [name for name in repro.__all__
               if not hasattr(repro, name)]
    assert missing == []


def test_all_has_no_duplicates():
    assert len(repro.__all__) == len(set(repro.__all__))


def test_every_documented_exception_importable():
    documented = documented_top_level_names()
    for name in documented:
        if name.endswith("Error"):
            exc = getattr(repro, name)
            assert issubclass(exc, repro.ReproError) or exc is repro.ReproError
