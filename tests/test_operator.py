"""ThermalOperator: structure/state split, factor LRU, bit-identity.

The bit-identity tests here back the operator module's claim that the
build-once/update-many path (``splu`` through the precomputed diagonal
index map) reproduces the legacy construction (``spsolve`` on a freshly
assembled ``static + diag(overlay)``) bit for bit, fault-free, across
all eight MiBench benchmarks.
"""

import numpy as np
import pytest
from scipy.sparse import csr_matrix, diags
from scipy.sparse.linalg import spsolve

from repro.errors import ConfigurationError, SingularNetworkError
from repro.thermal import (
    OperatorStats,
    SolveContext,
    ThermalOperator,
    condition_estimate,
    solve_steady_state,
    solve_steady_state_batch,
)

BENCHMARKS = ("basicmath", "bitcount", "crc32", "djkstra", "fft",
              "quicksort", "stringsearch", "susan")

#: Operating points spanning the fan/TEC box for equivalence checks.
POINTS = ((180.0, 0.5), (320.0, 1.5))


def model_overlays(problem, omega, current):
    """Leakage-free (diag, rhs) copies for one operating point."""
    model = problem.model
    zeros = np.zeros(model.grid.cell_count)
    fan_power = problem.fan.power(omega)
    diag, rhs = model.overlays(
        omega, current, problem.dynamic_cell_power, zeros, zeros,
        sink_heat=problem.fan_heat_fraction * fan_power)
    # overlays() hands out views of reused buffers; copy to retain.
    return diag.copy(), rhs.copy()


def legacy_solve(network, overlay, rhs):
    """The pre-operator construction: assemble then spsolve."""
    matrix = network.static_matrix + diags(overlay, format="csr")
    return spsolve(matrix.tocsc(), rhs)


def fresh_operator(network, **kwargs):
    """Independent operator over a copy of the network's structure."""
    return ThermalOperator(network.static_matrix, **kwargs)


def grounded_laplacian(n=6, ground=1.0):
    """Path-graph Laplacian with one node tied to ambient, W/K."""
    main = np.full(n, 2.0)
    main[0] = main[-1] = 1.0
    main[0] += ground
    off = np.full(n - 1, -1.0)
    return csr_matrix(diags([off, main, off], [-1, 0, 1]))


class TestStructure:
    def test_validation(self, tec_problem):
        static = tec_problem.model.network.static_matrix
        with pytest.raises(ConfigurationError):
            ThermalOperator(static, factor_capacity=0)
        with pytest.raises(ConfigurationError):
            ThermalOperator(static, overlay_quantum=-1e-9)
        with pytest.raises(ConfigurationError):
            ThermalOperator(csr_matrix(np.ones((2, 3))))

    def test_shape_checks(self, tec_problem):
        operator = fresh_operator(tec_problem.model.network)
        n = operator.node_count
        with pytest.raises(ConfigurationError):
            operator.solve(np.zeros(n - 1), np.ones(n))
        with pytest.raises(ConfigurationError):
            operator.solve(np.zeros(n), np.ones(n - 1))
        with pytest.raises(ConfigurationError):
            operator.solve_many(np.zeros(n), np.ones(n))  # not (n, k)

    def test_zero_static_diagonal_gets_a_slot(self):
        # An antisymmetric-coupling matrix with an empty diagonal: the
        # operator must still have diagonal storage for the overlay.
        static = csr_matrix(np.array([[0.0, 1.0], [1.0, 0.0]]))
        operator = ThermalOperator(static)
        overlay = np.array([3.0, 4.0])
        rhs = np.array([1.0, 2.0])
        expected = np.linalg.solve(
            static.toarray() + np.diag(overlay), rhs)
        np.testing.assert_allclose(operator.solve(overlay, rhs),
                                   expected, rtol=1e-12)


class TestBitIdentity:
    @pytest.mark.parametrize("workload", BENCHMARKS)
    def test_operator_matches_legacy_spsolve(self, tec_problem,
                                             profiles, workload):
        problem = tec_problem.with_profile(profiles[workload])
        network = problem.model.network
        for omega, current in POINTS:
            overlay, rhs = model_overlays(problem, omega, current)
            ours = network.solve(overlay, rhs)
            theirs = legacy_solve(network, overlay, rhs)
            assert (ours == theirs).all(), \
                f"{workload} at omega={omega}, I={current}"

    def test_solve_many_columns_match_single_solves(self, tec_problem):
        network = tec_problem.model.network
        overlay, rhs = model_overlays(tec_problem, *POINTS[0])
        block = np.stack([rhs, 2.0 * rhs, rhs + 1.0], axis=1)
        batched = network.solve_many(overlay, block)
        for column in range(block.shape[1]):
            single = network.solve(overlay, block[:, column])
            assert (batched[:, column] == single).all()

    def test_repeated_solve_reuses_factor_bitwise(self, tec_problem):
        operator = fresh_operator(tec_problem.model.network)
        overlay, rhs = model_overlays(tec_problem, *POINTS[1])
        first = operator.solve(overlay, rhs)
        second = operator.solve(overlay, rhs)
        assert (first == second).all()
        assert operator.stats.factorizations == 1
        assert operator.stats.cache_hits == 1


class TestFactorCache:
    def test_hit_and_solve_counters(self, tec_problem):
        operator = fresh_operator(tec_problem.model.network)
        overlay, rhs = model_overlays(tec_problem, *POINTS[0])
        operator.solve(overlay, rhs)
        operator.solve(overlay, 2.0 * rhs)
        stats = operator.stats
        assert stats == OperatorStats(solves=2, factorizations=1,
                                      cache_hits=1, cache_evictions=0)
        assert stats.reuse_ratio == 0.5

    def test_batched_solves_count_columns(self, tec_problem):
        operator = fresh_operator(tec_problem.model.network)
        overlay, rhs = model_overlays(tec_problem, *POINTS[0])
        operator.solve_many(overlay, np.stack([rhs, rhs], axis=1))
        assert operator.stats.solves == 2
        assert operator.stats.factorizations == 1

    def test_lru_capacity_evicts_oldest(self, tec_problem):
        operator = fresh_operator(tec_problem.model.network,
                                  factor_capacity=2)
        overlay, rhs = model_overlays(tec_problem, *POINTS[0])
        for shift in (0.0, 1.0, 2.0):
            operator.solve(overlay + shift, rhs)
        assert operator.cached_factor_count == 2
        assert operator.stats.cache_evictions == 1
        # The evicted (oldest) overlay must refactorize.
        operator.solve(overlay, rhs)
        assert operator.stats.factorizations == 4

    def test_recent_use_protects_against_eviction(self, tec_problem):
        operator = fresh_operator(tec_problem.model.network,
                                  factor_capacity=2)
        overlay, rhs = model_overlays(tec_problem, *POINTS[0])
        operator.solve(overlay, rhs)
        operator.solve(overlay + 1.0, rhs)
        operator.solve(overlay, rhs)        # refresh the first factor
        operator.solve(overlay + 2.0, rhs)  # evicts overlay + 1.0
        operator.solve(overlay, rhs)
        assert operator.stats.factorizations == 3
        assert operator.stats.cache_hits == 2

    def test_clear_drops_factors_keeps_counters(self, tec_problem):
        operator = fresh_operator(tec_problem.model.network)
        overlay, rhs = model_overlays(tec_problem, *POINTS[0])
        operator.solve(overlay, rhs)
        operator.clear()
        assert operator.cached_factor_count == 0
        assert operator.stats.factorizations == 1
        operator.solve(overlay, rhs)
        assert operator.stats.factorizations == 2

    def test_reset_stats_keeps_factors(self, tec_problem):
        operator = fresh_operator(tec_problem.model.network)
        overlay, rhs = model_overlays(tec_problem, *POINTS[0])
        operator.solve(overlay, rhs)
        operator.reset_stats()
        assert operator.stats == OperatorStats(0, 0, 0, 0)
        operator.solve(overlay, rhs)
        assert operator.stats.cache_hits == 1
        assert operator.stats.factorizations == 0


class TestQuantizedDigest:
    def test_exact_keying_separates_close_overlays(self, tec_problem):
        operator = fresh_operator(tec_problem.model.network)
        overlay, rhs = model_overlays(tec_problem, *POINTS[0])
        operator.solve(overlay, rhs)
        operator.solve(overlay + 1e-9, rhs)
        assert operator.stats.factorizations == 2

    def test_quantized_keying_merges_close_overlays(self, tec_problem):
        quantum = 1e-3
        operator = fresh_operator(tec_problem.model.network,
                                  overlay_quantum=quantum)
        overlay, rhs = model_overlays(tec_problem, *POINTS[0])
        # Snap to exact multiples of the quantum so a perturbation of
        # quantum/4 provably rounds to the same key.
        overlay = np.round(overlay / quantum) * quantum
        first = operator.solve(overlay, rhs)
        second = operator.solve(overlay + quantum / 4.0, rhs)
        assert operator.stats.factorizations == 1
        assert operator.stats.cache_hits == 1
        # Reuse serves the *cached* factor: bitwise-equal solutions.
        assert (first == second).all()


class TestFailurePaths:
    def test_singular_system_raises_typed_error(self):
        operator = ThermalOperator(grounded_laplacian(ground=0.0))
        n = operator.node_count
        with pytest.raises(SingularNetworkError) as excinfo:
            operator.solve(np.zeros(n), np.ones(n))
        error = excinfo.value
        assert "singular" in str(error) or "degenerate" in str(error)
        assert error.condition_estimate is not None

    def test_degenerate_growth_guard(self):
        # Factors fine, but one 1e-14 W/K path to ambient amplifies the
        # solution by ~1e14: the growth guard must reject it.
        operator = ThermalOperator(grounded_laplacian(ground=1e-14))
        n = operator.node_count
        with pytest.raises(SingularNetworkError, match="degenerate"):
            operator.solve(np.zeros(n), np.ones(n))

    def test_failures_are_not_cached(self):
        operator = ThermalOperator(grounded_laplacian(ground=1.0))
        n = operator.node_count
        healthy = operator.solve(np.zeros(n), np.ones(n))
        assert np.all(np.isfinite(healthy))
        before = operator.cached_factor_count
        with pytest.raises(SingularNetworkError):
            # Cancel the grounding via the overlay: singular again.
            sabotage = np.zeros(n)
            sabotage[0] = -1.0
            operator.solve(sabotage, np.ones(n))
        assert operator.cached_factor_count == before

    def test_condition_estimate_blows_up_when_singular(self):
        estimate = condition_estimate(grounded_laplacian(ground=0.0))
        assert estimate > 1e12
        healthy = condition_estimate(grounded_laplacian(ground=1.0))
        assert healthy < 1e6


class TestSolveContext:
    def test_warm_chip_follows_solves(self, tec_problem):
        problem = tec_problem
        context = SolveContext.for_model(problem.model)
        assert context.warm_chip is None
        result = solve_steady_state(
            problem.model, 250.0, 1.0, problem.dynamic_cell_power,
            problem.leakage, context=context)
        assert context.warm_chip is not None
        assert (context.warm_chip == result.chip_temperatures).all()
        context.reset()
        assert context.warm_chip is None

    def test_context_operator_is_shared_network_engine(self, tec_problem):
        context = SolveContext.for_model(tec_problem.model)
        assert context.operator is tec_problem.model.network.operator

    def test_warm_start_preserves_converged_result(self, tec_problem):
        problem = tec_problem
        cold = solve_steady_state(
            problem.model, 250.0, 1.0, problem.dynamic_cell_power,
            problem.leakage)
        context = SolveContext.for_model(problem.model)
        solve_steady_state(problem.model, 252.0, 1.0,
                           problem.dynamic_cell_power, problem.leakage,
                           context=context)
        warm = solve_steady_state(
            problem.model, 250.0, 1.0, problem.dynamic_cell_power,
            problem.leakage, context=context)
        # Warm starts change iteration counts, not the fixed point.
        assert warm.max_chip_temperature == pytest.approx(
            cold.max_chip_temperature, abs=2.0 *
            problem.model.config.leak_tolerance)


class TestBatchedSteadyState:
    def test_batch_matches_sequential_bitwise(self, tec_problem):
        problem = tec_problem
        points = [(200.0, 0.5), (200.0, 0.5), (300.0, 1.0)]
        batch = solve_steady_state_batch(
            problem.model, points, problem.dynamic_cell_power,
            leakage=None)
        for (omega, current), result in zip(points, batch):
            single = solve_steady_state(
                problem.model, omega, current,
                problem.dynamic_cell_power, leakage=None)
            assert (result.temperatures == single.temperatures).all()
            assert result.max_chip_temperature \
                == single.max_chip_temperature
            assert result.tec_power == single.tec_power

    def test_grouped_points_share_factorizations(self, tec_problem):
        problem = tec_problem
        operator = problem.model.network.operator
        # Same overlay, different RHS (sink heat): one factor, n solves.
        points = [(260.0, 0.75)] * 4
        before = operator.stats
        solve_steady_state_batch(
            problem.model, points, problem.dynamic_cell_power,
            leakage=None, sink_heats=[0.0, 1.0, 2.0, 3.0])
        after = operator.stats
        assert after.solves - before.solves == 4
        assert after.factorizations - before.factorizations <= 1

    def test_batch_isolates_runaway_points(self, heavy_tec_problem):
        problem = heavy_tec_problem
        points = [(0.0, 0.0), (400.0, 1.0)]
        results = solve_steady_state_batch(
            problem.model, points, problem.dynamic_cell_power,
            leakage=None)
        # omega = 0 has no sink coupling: unbounded, but contained.
        assert isinstance(results[0], Exception) \
            or results[0].max_chip_temperature > 400.0
        assert results[1].max_chip_temperature < 400.0

    def test_sink_heats_length_validated(self, tec_problem):
        with pytest.raises(ConfigurationError):
            solve_steady_state_batch(
                tec_problem.model, [(200.0, 0.5)],
                tec_problem.dynamic_cell_power, leakage=None,
                sink_heats=[0.0, 1.0])

    def test_leakage_batch_warm_chains_like_sequential(self,
                                                       tec_problem):
        problem = tec_problem
        points = [(220.0, 0.5), (240.0, 1.0)]
        batch_ctx = SolveContext.for_model(problem.model)
        batch = solve_steady_state_batch(
            problem.model, points, problem.dynamic_cell_power,
            leakage=problem.leakage, context=batch_ctx)
        seq_ctx = SolveContext.for_model(problem.model)
        for (omega, current), result in zip(points, batch):
            single = solve_steady_state(
                problem.model, omega, current,
                problem.dynamic_cell_power, leakage=problem.leakage,
                context=seq_ctx)
            assert (result.temperatures == single.temperatures).all()
        assert (batch_ctx.warm_chip == seq_ctx.warm_chip).all()


class TestFactorReuseWorkloads:
    def test_fewer_factorizations_than_solves_after_cache_clear(
            self, tec_problem):
        from repro.core import Evaluator

        evaluator = Evaluator(tec_problem)
        operator = evaluator.context.operator
        evaluator.evaluate(230.0, 0.8)
        mid = operator.stats
        # Dropping the evaluation cache forgets the results but not the
        # factor LRU: the rerun repeats the same relinearization
        # sequence and back-substitutes against cached factors only.
        evaluator.clear_cache()
        evaluator.evaluate(230.0, 0.8)
        after = operator.stats
        assert after.solves > mid.solves
        assert after.factorizations == mid.factorizations
        assert after.cache_hits > mid.cache_hits
