"""TEC array deployment and aggregate behaviour."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, GeometryError
from repro.geometry import EV6_CACHE_UNITS
from repro.tec import (
    TECArray,
    coverage_mask_excluding,
    full_coverage_mask,
)


class TestMasks:
    def test_full_mask(self, grid):
        mask = full_coverage_mask(grid)
        assert mask.all()
        assert mask.shape == (grid.cell_count,)

    def test_cache_exclusion(self, coverage, tec_mask):
        dominant = coverage.dominant_unit_per_cell()
        for cell, unit in enumerate(dominant):
            if unit in EV6_CACHE_UNITS:
                assert not tec_mask[cell]
            elif unit:
                assert tec_mask[cell]

    def test_unknown_unit_rejected(self, coverage):
        with pytest.raises(GeometryError):
            coverage_mask_excluding(coverage, ["NotAUnit"])


class TestArrayGeometry:
    def test_covered_area(self, grid, tec_device, tec_mask):
        array = TECArray(grid, tec_device, tec_mask)
        expected = tec_mask.sum() * grid.cell_area
        assert array.covered_area == pytest.approx(expected)
        assert array.covered_cell_count == int(tec_mask.sum())

    def test_module_count_matches_area(self, tec_array, tec_device):
        assert tec_array.module_count == pytest.approx(
            tec_array.covered_area / tec_device.footprint_area)

    def test_grid_resolution_invariance(self, floorplan, tec_device):
        # Deployed thermoelectric material must not depend on grid size.
        from repro.geometry import CellCoverage, Grid
        totals = []
        for res in (4, 8, 16):
            g = Grid.for_floorplan(floorplan, res, res)
            array = TECArray(g, tec_device)
            totals.append(array.cell_resistance.sum())
        assert totals[0] == pytest.approx(totals[1], rel=1e-9)
        assert totals[1] == pytest.approx(totals[2], rel=1e-9)

    def test_empty_mask_rejected(self, grid, tec_device):
        with pytest.raises(ConfigurationError, match="at least one"):
            TECArray(grid, tec_device, np.zeros(grid.cell_count, bool))

    def test_wrong_mask_shape(self, grid, tec_device):
        with pytest.raises(ConfigurationError):
            TECArray(grid, tec_device, np.ones(5, bool))


class TestCellCoefficients:
    def test_zero_outside_coverage(self, tec_array):
        mask = tec_array.coverage_mask
        assert (tec_array.cell_seebeck[~mask] == 0.0).all()
        assert (tec_array.cell_resistance[~mask] == 0.0).all()
        assert (tec_array.cell_conductance[~mask] == 0.0).all()

    def test_positive_inside_coverage(self, tec_array):
        mask = tec_array.coverage_mask
        assert (tec_array.cell_seebeck[mask] > 0.0).all()
        assert (tec_array.cell_resistance[mask] > 0.0).all()
        assert (tec_array.cell_conductance[mask] > 0.0).all()

    def test_per_cell_value(self, grid, tec_device, tec_array):
        covered = np.flatnonzero(tec_array.coverage_mask)[0]
        expected = tec_device.seebeck_per_area * grid.cell_area
        assert tec_array.cell_seebeck[covered] == pytest.approx(expected)

    def test_total_resistance(self, tec_array):
        assert tec_array.total_resistance == pytest.approx(
            tec_array.cell_resistance.sum())


class TestAggregatePower:
    def test_equation_identity(self, grid, tec_array):
        # sum(q_h) - sum(q_c) == P_TEC over the whole array.
        cold = np.full(grid.cell_count, 350.0)
        hot = np.full(grid.cell_count, 356.0)
        current = 2.0
        q_c = tec_array.total_heat_absorbed(cold, hot, current)
        q_h = tec_array.total_heat_released(cold, hot, current)
        p = tec_array.total_power(cold, hot, current)
        assert p == pytest.approx(q_h - q_c, rel=1e-9)

    def test_zero_current_draws_no_power(self, grid, tec_array):
        cold = np.full(grid.cell_count, 350.0)
        hot = np.full(grid.cell_count, 360.0)
        assert tec_array.total_power(cold, hot, 0.0) == 0.0

    def test_joule_scales_quadratically(self, grid, tec_array):
        temps = np.full(grid.cell_count, 350.0)
        p1 = tec_array.total_power(temps, temps, 1.0)
        p2 = tec_array.total_power(temps, temps, 2.0)
        # At dT = 0 the power is purely Joule: quadratic in current.
        assert p2 == pytest.approx(4.0 * p1, rel=1e-9)

    def test_negative_current_rejected(self, grid, tec_array):
        temps = np.full(grid.cell_count, 350.0)
        with pytest.raises(ConfigurationError):
            tec_array.total_power(temps, temps, -1.0)

    def test_wrong_temperature_shape(self, tec_array):
        with pytest.raises(ConfigurationError):
            tec_array.total_power(np.zeros(3), np.zeros(3), 1.0)


class TestCoverageSummary:
    def test_caches_zero_everything_else_full(self, coverage, tec_array):
        summary = tec_array.coverage_summary(coverage)
        for cache in EV6_CACHE_UNITS:
            assert summary[cache] == pytest.approx(0.0)
        assert summary["IntExec"] == pytest.approx(1.0)

    def test_with_coverage_builds_new_array(self, grid, tec_array):
        mask = np.zeros(grid.cell_count, dtype=bool)
        mask[:4] = True
        smaller = tec_array.with_coverage(mask)
        assert smaller.covered_cell_count == 4
        assert tec_array.covered_cell_count > 4
