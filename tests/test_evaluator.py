"""Evaluator: objectives, caching, clamping, runaway penalties."""

import numpy as np
import pytest

from repro import build_cooling_problem
from repro.core import Evaluator
from repro.errors import ConfigurationError


class TestEvaluation:
    def test_total_power_decomposition(self, evaluator):
        ev = evaluator.evaluate(262.0, 1.0)
        assert ev.total_power == pytest.approx(
            ev.leakage_power + ev.tec_power + ev.fan_power)
        assert ev.cooling_power == pytest.approx(
            ev.tec_power + ev.fan_power)

    def test_fan_power_cubic(self, evaluator, tec_problem):
        ev = evaluator.evaluate(300.0, 0.0)
        assert ev.fan_power == pytest.approx(
            tec_problem.fan.power(300.0))

    def test_feasibility_flag(self, evaluator, tec_problem):
        ev = evaluator.evaluate(262.0, 1.0)
        assert ev.feasible == (ev.max_chip_temperature
                               < tec_problem.limits.t_max)

    def test_steady_attached(self, evaluator):
        ev = evaluator.evaluate(262.0, 0.5)
        assert ev.steady is not None
        assert ev.steady.omega == ev.omega

    def test_objectives_match_evaluation(self, evaluator):
        ev = evaluator.evaluate(200.0, 0.5)
        assert evaluator.temperature_objective(200.0, 0.5) == \
            ev.max_chip_temperature
        assert evaluator.power_objective(200.0, 0.5) == ev.total_power

    def test_thermal_margin_sign(self, evaluator, tec_problem):
        ev = evaluator.evaluate(262.0, 1.0)
        margin = evaluator.thermal_margin(262.0, 1.0)
        assert margin == pytest.approx(
            tec_problem.limits.t_max - ev.max_chip_temperature)


class TestCaching:
    def test_repeat_hits_cache(self, evaluator):
        evaluator.evaluate(262.0, 1.0)
        solves = evaluator.solve_count
        evaluator.evaluate(262.0, 1.0)
        assert evaluator.solve_count == solves
        assert evaluator.call_count == 2

    def test_clear_cache(self, evaluator):
        evaluator.evaluate(262.0, 1.0)
        evaluator.clear_cache()
        solves = evaluator.solve_count
        evaluator.evaluate(262.0, 1.0)
        assert evaluator.solve_count == solves + 1

    def test_distinct_points_resolve(self, evaluator):
        evaluator.evaluate(262.0, 1.0)
        solves = evaluator.solve_count
        evaluator.evaluate(263.0, 1.0)
        assert evaluator.solve_count == solves + 1


class TestCacheBounds:
    def test_cache_limit_validated(self, tec_problem):
        with pytest.raises(ConfigurationError):
            Evaluator(tec_problem, cache_limit=0)

    def test_cache_info_counters(self, evaluator):
        info = evaluator.cache_info()
        assert (info.hits, info.misses, info.size) == (0, 0, 0)
        assert info.limit == evaluator.cache_limit
        evaluator.evaluate(200.0, 1.0)
        evaluator.evaluate(200.0, 1.0)
        info = evaluator.cache_info()
        assert info.misses == 1
        assert info.hits == 1
        assert info.size == 1
        assert info.evictions == 0

    def test_eviction_at_limit(self, tec_problem):
        evaluator = Evaluator(tec_problem, cache_limit=2)
        for omega in (200.0, 210.0, 220.0):
            evaluator.evaluate(omega, 1.0)
        info = evaluator.cache_info()
        assert info.size == 2
        assert info.evictions == 1
        # The oldest entry (omega = 200) was dropped: fresh solve.
        solves = evaluator.solve_count
        evaluator.evaluate(200.0, 1.0)
        assert evaluator.solve_count == solves + 1

    def test_recency_protects_hot_entry(self, tec_problem):
        evaluator = Evaluator(tec_problem, cache_limit=2)
        evaluator.evaluate(200.0, 1.0)
        evaluator.evaluate(210.0, 1.0)
        evaluator.evaluate(200.0, 1.0)  # refresh before the cap bites
        evaluator.evaluate(220.0, 1.0)  # evicts omega = 210 instead
        solves = evaluator.solve_count
        evaluator.evaluate(200.0, 1.0)
        assert evaluator.solve_count == solves

    def test_clear_cache_resets_warm_context(self, evaluator):
        evaluator.evaluate(200.0, 1.0)
        assert evaluator.context.warm_chip is not None
        evaluator.clear_cache()
        assert evaluator.context.warm_chip is None
        assert evaluator.cache_info().size == 0


class TestEvaluateMany:
    def test_matches_sequential_with_leakage(self, tec_problem):
        points = [(200.0, 1.0), (250.0, 0.5), (200.0, 1.0)]
        batched = Evaluator(tec_problem)
        sequential = Evaluator(tec_problem)
        many = batched.evaluate_many(points)
        singles = [sequential.evaluate(o, i) for o, i in points]
        for ours, theirs in zip(many, singles):
            assert ours.max_chip_temperature \
                == theirs.max_chip_temperature
            assert ours.total_power == theirs.total_power
        assert batched.solve_count == sequential.solve_count

    @pytest.fixture()
    def leakage_free_problem(self, profiles):
        problem = build_cooling_problem(profiles["basicmath"],
                                        grid_resolution=4)
        # Disabling leakage removes the relinearization loop, making
        # evaluations batchable through the multi-RHS operator path.
        problem.leakage = None
        return problem

    def test_batched_path_bitwise_matches_sequential(
            self, leakage_free_problem):
        points = [(200.0, 1.0), (200.0, 1.0), (250.0, 0.5),
                  (200.0, 0.5)]
        batched = Evaluator(leakage_free_problem)
        sequential = Evaluator(leakage_free_problem)
        many = batched.evaluate_many(points)
        singles = [sequential.evaluate(o, i) for o, i in points]
        for ours, theirs in zip(many, singles):
            assert ours.max_chip_temperature \
                == theirs.max_chip_temperature
            assert ours.total_power == theirs.total_power
            assert (ours.steady.temperatures
                    == theirs.steady.temperatures).all()

    def test_batched_path_accounting(self, leakage_free_problem):
        evaluator = Evaluator(leakage_free_problem)
        points = [(200.0, 1.0), (200.0, 1.0), (250.0, 0.5)]
        evaluator.evaluate_many(points)
        # Two distinct operating points: one solve each, and the
        # duplicate counts as the cache hit it would have been
        # sequentially.
        assert evaluator.solve_count == 2
        info = evaluator.cache_info()
        assert info.misses == 2
        assert info.hits == 1
        # A second pass is served entirely from the cache.
        evaluator.evaluate_many(points)
        assert evaluator.solve_count == 2
        assert evaluator.cache_info().hits == 4

    def test_budgeted_evaluator_falls_back(self, leakage_free_problem):
        evaluator = Evaluator(leakage_free_problem)
        evaluator.set_solve_budget(1)
        from repro.errors import EvaluationBudgetError
        with pytest.raises(EvaluationBudgetError):
            evaluator.evaluate_many([(200.0, 1.0), (250.0, 0.5)])


class TestClamping:
    def test_omega_clamped(self, evaluator, tec_problem):
        ev = evaluator.evaluate(1e6, 0.0)
        assert ev.omega == tec_problem.limits.omega_max
        ev = evaluator.evaluate(-5.0, 0.5)
        assert ev.omega == 0.0

    def test_current_clamped(self, evaluator, tec_problem):
        ev = evaluator.evaluate(262.0, 99.0)
        assert ev.current == tec_problem.limits.i_tec_max

    def test_baseline_current_clamped_to_zero(self, baseline_problem):
        evaluator = Evaluator(baseline_problem)
        ev = evaluator.evaluate(262.0, 3.0)
        assert ev.current == 0.0


class TestRunawayPenalty:
    def test_runaway_flagged(self, heavy_tec_problem):
        evaluator = Evaluator(heavy_tec_problem)
        ev = evaluator.evaluate(0.0, 0.0)
        assert ev.runaway
        assert not ev.feasible
        assert ev.steady is None

    def test_penalty_values_large_but_finite(self, heavy_tec_problem):
        evaluator = Evaluator(heavy_tec_problem)
        ev = evaluator.evaluate(0.0, 0.0)
        assert np.isfinite(ev.max_chip_temperature)
        assert np.isfinite(ev.total_power)
        assert ev.max_chip_temperature > \
            heavy_tec_problem.limits.t_max + 50.0
        assert ev.total_power > 1e3

    def test_penalty_exceeds_any_feasible_power(self, heavy_tec_problem):
        evaluator = Evaluator(heavy_tec_problem)
        runaway = evaluator.evaluate(0.0, 0.0)
        feasible = evaluator.evaluate(400.0, 1.0)
        assert runaway.total_power > 10.0 * feasible.total_power
