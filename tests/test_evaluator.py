"""Evaluator: objectives, caching, clamping, runaway penalties."""

import numpy as np
import pytest

from repro.core import Evaluator


class TestEvaluation:
    def test_total_power_decomposition(self, evaluator):
        ev = evaluator.evaluate(262.0, 1.0)
        assert ev.total_power == pytest.approx(
            ev.leakage_power + ev.tec_power + ev.fan_power)
        assert ev.cooling_power == pytest.approx(
            ev.tec_power + ev.fan_power)

    def test_fan_power_cubic(self, evaluator, tec_problem):
        ev = evaluator.evaluate(300.0, 0.0)
        assert ev.fan_power == pytest.approx(
            tec_problem.fan.power(300.0))

    def test_feasibility_flag(self, evaluator, tec_problem):
        ev = evaluator.evaluate(262.0, 1.0)
        assert ev.feasible == (ev.max_chip_temperature
                               < tec_problem.limits.t_max)

    def test_steady_attached(self, evaluator):
        ev = evaluator.evaluate(262.0, 0.5)
        assert ev.steady is not None
        assert ev.steady.omega == ev.omega

    def test_objectives_match_evaluation(self, evaluator):
        ev = evaluator.evaluate(200.0, 0.5)
        assert evaluator.temperature_objective(200.0, 0.5) == \
            ev.max_chip_temperature
        assert evaluator.power_objective(200.0, 0.5) == ev.total_power

    def test_thermal_margin_sign(self, evaluator, tec_problem):
        ev = evaluator.evaluate(262.0, 1.0)
        margin = evaluator.thermal_margin(262.0, 1.0)
        assert margin == pytest.approx(
            tec_problem.limits.t_max - ev.max_chip_temperature)


class TestCaching:
    def test_repeat_hits_cache(self, evaluator):
        evaluator.evaluate(262.0, 1.0)
        solves = evaluator.solve_count
        evaluator.evaluate(262.0, 1.0)
        assert evaluator.solve_count == solves
        assert evaluator.call_count == 2

    def test_clear_cache(self, evaluator):
        evaluator.evaluate(262.0, 1.0)
        evaluator.clear_cache()
        solves = evaluator.solve_count
        evaluator.evaluate(262.0, 1.0)
        assert evaluator.solve_count == solves + 1

    def test_distinct_points_resolve(self, evaluator):
        evaluator.evaluate(262.0, 1.0)
        solves = evaluator.solve_count
        evaluator.evaluate(263.0, 1.0)
        assert evaluator.solve_count == solves + 1


class TestClamping:
    def test_omega_clamped(self, evaluator, tec_problem):
        ev = evaluator.evaluate(1e6, 0.0)
        assert ev.omega == tec_problem.limits.omega_max
        ev = evaluator.evaluate(-5.0, 0.5)
        assert ev.omega == 0.0

    def test_current_clamped(self, evaluator, tec_problem):
        ev = evaluator.evaluate(262.0, 99.0)
        assert ev.current == tec_problem.limits.i_tec_max

    def test_baseline_current_clamped_to_zero(self, baseline_problem):
        evaluator = Evaluator(baseline_problem)
        ev = evaluator.evaluate(262.0, 3.0)
        assert ev.current == 0.0


class TestRunawayPenalty:
    def test_runaway_flagged(self, heavy_tec_problem):
        evaluator = Evaluator(heavy_tec_problem)
        ev = evaluator.evaluate(0.0, 0.0)
        assert ev.runaway
        assert not ev.feasible
        assert ev.steady is None

    def test_penalty_values_large_but_finite(self, heavy_tec_problem):
        evaluator = Evaluator(heavy_tec_problem)
        ev = evaluator.evaluate(0.0, 0.0)
        assert np.isfinite(ev.max_chip_temperature)
        assert np.isfinite(ev.total_power)
        assert ev.max_chip_temperature > \
            heavy_tec_problem.limits.t_max + 50.0
        assert ev.total_power > 1e3

    def test_penalty_exceeds_any_feasible_power(self, heavy_tec_problem):
        evaluator = Evaluator(heavy_tec_problem)
        runaway = evaluator.evaluate(0.0, 0.0)
        feasible = evaluator.evaluate(400.0, 1.0)
        assert runaway.total_power > 10.0 * feasible.total_power
