"""Multi-channel OFTEC extension."""

import numpy as np
import pytest

from repro import run_oftec
from repro.core import (
    ChannelAssignment,
    EV6_DEFAULT_CHANNELS,
    MultiChannelEvaluator,
    run_oftec_multichannel,
)
from repro.errors import ConfigurationError


class TestChannelAssignment:
    def test_default_channels_cover_everything(self, tec_problem):
        assignment = ChannelAssignment(tec_problem,
                                       EV6_DEFAULT_CHANNELS)
        # Explicit channels plus the implicit rest channel.
        assert assignment.channel_names[:2] == ["int-core", "fp-cluster"]
        assert "rest" in assignment.channel_names
        mask = tec_problem.model.tec_array.coverage_mask
        assert (assignment.cell_channel[mask] >= 0).all()
        assert (assignment.cell_channel[~mask] == -1).all()

    def test_cell_counts_sum_to_coverage(self, tec_problem):
        assignment = ChannelAssignment(tec_problem,
                                       EV6_DEFAULT_CHANNELS)
        counts = assignment.channel_cell_counts()
        covered = int(tec_problem.model.tec_array.coverage_mask.sum())
        assert sum(counts.values()) == covered

    def test_cell_currents_expansion(self, tec_problem):
        assignment = ChannelAssignment(tec_problem,
                                       EV6_DEFAULT_CHANNELS)
        currents = np.arange(1.0, assignment.channel_count + 1.0)
        cell = assignment.cell_currents(currents)
        mask = tec_problem.model.tec_array.coverage_mask
        assert (cell[~mask] == 0.0).all()
        for idx in range(assignment.channel_count):
            members = assignment.cell_channel == idx
            assert (cell[members] == currents[idx]).all()

    def test_single_channel_reduces_to_uniform(self, tec_problem):
        assignment = ChannelAssignment(tec_problem, {"all": []})
        # Everything lands in the implicit rest channel... no: empty
        # group means all covered cells go to "rest".
        cell = assignment.cell_currents(
            np.full(assignment.channel_count, 2.0))
        mask = tec_problem.model.tec_array.coverage_mask
        assert (cell[mask] == 2.0).all()

    def test_unknown_unit_rejected(self, tec_problem):
        with pytest.raises(ConfigurationError, match="unknown unit"):
            ChannelAssignment(tec_problem, {"a": ["NotAUnit"]})

    def test_double_assignment_rejected(self, tec_problem):
        with pytest.raises(ConfigurationError, match="both"):
            ChannelAssignment(tec_problem, {"a": ["IntExec"],
                                            "b": ["IntExec"]})

    def test_requires_tec(self, baseline_problem):
        with pytest.raises(ConfigurationError):
            ChannelAssignment(baseline_problem, EV6_DEFAULT_CHANNELS)

    def test_wrong_current_count(self, tec_problem):
        assignment = ChannelAssignment(tec_problem,
                                       EV6_DEFAULT_CHANNELS)
        with pytest.raises(ConfigurationError):
            assignment.cell_currents([1.0])

    def test_negative_current_rejected(self, tec_problem):
        assignment = ChannelAssignment(tec_problem,
                                       EV6_DEFAULT_CHANNELS)
        with pytest.raises(ConfigurationError):
            assignment.cell_currents(
                np.full(assignment.channel_count, -1.0))


class TestMultiChannelEvaluator:
    def test_uniform_currents_match_scalar_evaluator(self, tec_problem):
        from repro.core import Evaluator
        assignment = ChannelAssignment(tec_problem,
                                       EV6_DEFAULT_CHANNELS)
        mc = MultiChannelEvaluator(assignment)
        scalar = Evaluator(tec_problem)
        uniform = mc.evaluate(
            262.0, np.full(assignment.channel_count, 1.0))
        reference = scalar.evaluate(262.0, 1.0)
        assert uniform.max_chip_temperature == pytest.approx(
            reference.max_chip_temperature, abs=1e-6)
        assert uniform.total_power == pytest.approx(
            reference.total_power, rel=1e-6)

    def test_caching(self, tec_problem):
        assignment = ChannelAssignment(tec_problem,
                                       EV6_DEFAULT_CHANNELS)
        mc = MultiChannelEvaluator(assignment)
        currents = np.full(assignment.channel_count, 0.5)
        mc.evaluate(262.0, currents)
        solves = mc.solve_count
        mc.evaluate(262.0, currents)
        assert mc.solve_count == solves

    def test_runaway_penalty(self, heavy_tec_problem):
        assignment = ChannelAssignment(heavy_tec_problem,
                                       EV6_DEFAULT_CHANNELS)
        mc = MultiChannelEvaluator(assignment)
        evaluation = mc.evaluate(
            0.0, np.zeros(assignment.channel_count))
        assert evaluation.runaway
        assert evaluation.max_chip_temperature >= \
            heavy_tec_problem.model.config.runaway_ceiling


class TestMultiChannelOFTEC:
    def test_feasible_on_heavy_workload(self, heavy_tec_problem):
        result = run_oftec_multichannel(heavy_tec_problem,
                                        EV6_DEFAULT_CHANNELS)
        assert result.feasible
        assert result.evaluation.max_chip_temperature < \
            heavy_tec_problem.limits.t_max

    def test_beats_single_channel(self, heavy_tec_problem):
        # The whole point of the extension: per-channel currents save
        # power by not over-driving lukewarm regions.
        single = run_oftec(heavy_tec_problem)
        multi = run_oftec_multichannel(heavy_tec_problem,
                                       EV6_DEFAULT_CHANNELS)
        assert multi.feasible and single.feasible
        assert multi.total_power < single.total_power

    def test_hot_channel_draws_most_current(self, heavy_tec_problem):
        # Quicksort is integer-bound: the int-core channel leads.
        result = run_oftec_multichannel(heavy_tec_problem,
                                        EV6_DEFAULT_CHANNELS)
        currents = result.currents_by_channel()
        assert currents["int-core"] == max(currents.values())

    def test_currents_within_bounds(self, heavy_tec_problem):
        result = run_oftec_multichannel(heavy_tec_problem,
                                        EV6_DEFAULT_CHANNELS)
        limit = heavy_tec_problem.limits.i_tec_max
        assert (result.channel_currents >= 0.0).all()
        assert (result.channel_currents <= limit).all()
