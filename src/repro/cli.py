"""Command-line interface: ``python -m repro <command>``.

Commands mirror the library's main entry points:

* ``oftec`` — run Algorithm 1 on one benchmark and print the operating
  point (optionally as JSON).
* ``campaign`` — the full three-method comparison over the eight
  benchmarks (Figures 6(c)-(f) tables + Table 2); ``--journal`` /
  ``--resume`` give crash-consistent checkpointing through the
  supervised executor.
* ``sweep`` — the Figure 6(a)/(b) objective surfaces for one benchmark.
* ``profiles`` — list the built-in benchmark power profiles.
* ``chaos`` — run the campaign under deterministic fault injection and
  verify every fault is contained.
* ``trace`` — inspect a JSONL span trace recorded with ``--trace``.
* ``lint`` — run :mod:`repro.devtools.physlint` over the tree.

``oftec``, ``campaign``, and ``chaos`` accept ``--trace FILE`` to record
a telemetry session (hierarchical spans + metrics) while they run.

Exit codes discriminate the failure mode so shell pipelines and CI can
react: 0 success, 1 generic failure (failed shape checks, lint
findings), 3 thermally infeasible instance, 4 solver failure, 5
configuration error.
"""

from __future__ import annotations

import argparse
import json
import sys
from contextlib import contextmanager
from typing import Iterator, List, Optional

from . import __version__, build_cooling_problem, mibench_profiles, \
    run_oftec
from .analysis import (
    format_comparison_table,
    format_surface,
    format_table2,
    run_campaign,
    sweep_objective_surfaces,
)
from .errors import ConfigurationError, InfeasibleProblemError, \
    SolverError
from .power import MIBENCH_NAMES
from .units import kelvin_to_celsius, rad_s_to_rpm, s_to_ms

#: Exit code for a thermally infeasible problem instance.
EXIT_INFEASIBLE = 3
#: Exit code for a solver failure (breakdown, budget, chaos escape).
EXIT_SOLVER_FAILURE = 4
#: Exit code for invalid configuration or arguments.
EXIT_CONFIG_ERROR = 5


def _add_resolution(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--resolution", type=int, default=12, metavar="N",
        help="thermal grid cells per die edge (default 12)")


def _add_benchmark(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--benchmark", default="basicmath", choices=MIBENCH_NAMES,
        help="workload profile (default basicmath)")


def _add_trace(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace", metavar="FILE", default=None,
        help="record a telemetry session and write the span trace "
             "here as JSONL (inspect with `repro trace summarize`)")
    parser.add_argument(
        "--live-trace", metavar="FILE", default=None,
        dest="live_trace",
        help="stream finished spans and metric snapshots to this "
             "rotating JSONL file while the run is still going "
             "(engages a telemetry session)")
    parser.add_argument(
        "--openmetrics", metavar="FILE", default=None,
        help="keep an OpenMetrics text snapshot of the live metrics "
             "at this path, atomically rewritten as the run "
             "progresses (engages a telemetry session)")


def _add_progress(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--progress", action="store_true",
        help="render live progress to stderr: per-unit state, "
             "throughput, cache hit rates, ETA (single rewritten "
             "line on a TTY, periodic log lines otherwise)")


def _add_jac(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jac", default="analytic", choices=("analytic", "fd"),
        help="solver gradient mode: adjoint analytic gradients "
             "(default) or scipy finite differences (escape hatch)")


def _add_workers(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker processes for the parallel engine (default: "
             "REPRO_WORKERS or serial; 0 forces serial; output is "
             "bit-identical across worker counts)")


def _add_executor(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--executor", default=None,
        choices=("process", "thread", "serial"),
        help="parallel backend: worker processes (default), a thread "
             "pool sharing one in-process operator cache (the "
             "GIL-releasing SuperLU path), or forced serial; defaults "
             "to REPRO_EXECUTOR, then 'process'")


def _add_supervision(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--unit-deadline", type=float, default=None, metavar="SECONDS",
        dest="unit_deadline",
        help="supervised executor: kill and retry any work unit "
             "running longer than this (engages supervision)")
    parser.add_argument(
        "--max-attempts", type=int, default=None, metavar="N",
        dest="max_attempts",
        help="supervised executor: quarantine a unit after N failed "
             "attempts (engages supervision)")


def _supervision_from_args(args: argparse.Namespace):
    """A SupervisionPolicy when any supervision flag was given."""
    if args.unit_deadline is None and args.max_attempts is None:
        return None
    from .exec import SupervisionPolicy
    overrides = {}
    if args.unit_deadline is not None:
        overrides["unit_deadline_seconds"] = args.unit_deadline
    if args.max_attempts is not None:
        overrides["max_attempts"] = args.max_attempts
    return SupervisionPolicy(**overrides)


@contextmanager
def _traced(path: Optional[str],
            live_path: Optional[str] = None,
            openmetrics_path: Optional[str] = None,
            ) -> Iterator[Optional[dict]]:
    """Run the body under a telemetry session when any sink is given.

    Yields None (telemetry disabled, zero overhead) or a holder dict
    that gains a ``"telemetry"`` metrics snapshot on exit; the span
    trace is written to ``path`` even when the body fails, so a crashed
    run still leaves its trace behind.

    ``live_path`` / ``openmetrics_path`` additionally attach streaming
    sinks behind a :class:`~repro.obs.BackgroundFlusher`: spans and
    metric snapshots are exported *while the run progresses* (the
    holder carries the :class:`~repro.obs.TelemetryStream` under
    ``"stream"``, which a progress board pumps on unit completions),
    and the files survive a crash mid-run with everything published so
    far.
    """
    if not (path or live_path or openmetrics_path):
        yield None
        return
    from .obs import (
        BackgroundFlusher,
        OpenMetricsSink,
        RotatingJsonlSink,
        TelemetryStream,
        save_trace,
        telemetry_session,
    )
    sinks = []
    if live_path:
        sinks.append(RotatingJsonlSink(live_path))
    if openmetrics_path:
        sinks.append(OpenMetricsSink(openmetrics_path))
    holder: dict = {}
    with telemetry_session() as (tracer, metrics):
        flusher = None
        if sinks:
            flusher = BackgroundFlusher(sinks)
            holder["stream"] = TelemetryStream(tracer, metrics,
                                               flusher)
        try:
            yield holder
        finally:
            holder["telemetry"] = metrics.snapshot()
            stream = holder.get("stream")
            if stream is not None:
                stream.pump(final=True)
            if flusher is not None:
                flusher.close()
                for sink_path in (live_path, openmetrics_path):
                    if sink_path:
                        print(f"telemetry streamed to {sink_path}",
                              file=sys.stderr)
            if path:
                count = save_trace(tracer, path)
                print(f"trace written to {path} ({count} spans)",
                      file=sys.stderr)


def _progress_board(args: argparse.Namespace,
                    session: Optional[dict], label: str):
    """A ProgressBoard on stderr when ``--progress`` was given."""
    if not getattr(args, "progress", False):
        return None
    from .obs import ProgressBoard
    publisher = session.get("stream") if session else None
    return ProgressBoard(sys.stderr, label=label, publisher=publisher)


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="OFTEC (DAC 2014) reproduction command line")
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    commands = parser.add_subparsers(dest="command", required=True)

    oftec = commands.add_parser(
        "oftec", help="run Algorithm 1 on one benchmark")
    _add_benchmark(oftec)
    _add_resolution(oftec)
    oftec.add_argument("--json", action="store_true",
                       help="emit the result as JSON")
    oftec.add_argument("--method", default="slsqp",
                       choices=("slsqp", "trust-constr", "grid"),
                       help="solver backend (default slsqp)")
    _add_jac(oftec)
    _add_trace(oftec)

    campaign = commands.add_parser(
        "campaign",
        help="three-method comparison over all eight benchmarks")
    _add_resolution(campaign)
    campaign.add_argument("--tec-only", action="store_true",
                          help="also sweep the fan-less TEC-only system")
    campaign.add_argument("--json", metavar="PATH", default=None,
                          help="also save the campaign as JSON")
    campaign.add_argument("--verify", action="store_true",
                          help="run the paper-shape verification and "
                               "exit nonzero on any failed shape")
    campaign.add_argument("--canonical", action="store_true",
                          help="write --json in canonical form: "
                               "timing fields zeroed and telemetry "
                               "dropped, so runs diff cleanly")
    campaign.add_argument("--benchmarks", type=int, default=0,
                          metavar="N",
                          help="limit to the first N benchmarks "
                               "(0 = all)")
    campaign.add_argument("--journal", metavar="PATH", default=None,
                          help="write a crash-consistent journal of "
                               "completed units here (engages the "
                               "supervised executor)")
    campaign.add_argument("--resume", metavar="PATH", default=None,
                          help="resume an interrupted campaign from "
                               "its journal; completed units are "
                               "replayed, the rest run fresh")
    _add_jac(campaign)
    _add_supervision(campaign)
    _add_workers(campaign)
    _add_executor(campaign)
    _add_trace(campaign)
    _add_progress(campaign)

    spice = commands.add_parser(
        "spice",
        help="export the thermal network as a SPICE .op netlist")
    _add_benchmark(spice)
    _add_resolution(spice)
    spice.add_argument("--omega", type=float, default=262.0,
                       help="fan speed, rad/s (default 262)")
    spice.add_argument("--current", type=float, default=1.0,
                       help="TEC current, A (default 1.0)")
    spice.add_argument("--output", metavar="PATH", default=None,
                       help="write the netlist here (default stdout)")

    sweep = commands.add_parser(
        "sweep", help="objective surfaces over the (omega, I) plane")
    _add_benchmark(sweep)
    _add_resolution(sweep)
    sweep.add_argument("--omega-points", type=int, default=12)
    sweep.add_argument("--current-points", type=int, default=9)
    _add_workers(sweep)
    _add_executor(sweep)
    _add_progress(sweep)

    commands.add_parser("profiles",
                        help="list the built-in benchmark profiles")

    chaos = commands.add_parser(
        "chaos",
        help="run the campaign under deterministic fault injection")
    _add_resolution(chaos)
    chaos.add_argument("--seed", type=int, default=0,
                       help="fault-plan seed (default 0)")
    chaos.add_argument("--rate", type=float, default=0.05,
                       help="per-solve fault probability (default 0.05)")
    chaos.add_argument("--faults", default="all", metavar="KINDS",
                       help="comma-separated fault kinds (default: "
                            "all evaluator-level kinds; process-level "
                            "kinds like worker-kill must be named "
                            "explicitly and need --workers >= 1)")
    chaos.add_argument("--max-fires", type=int, default=None,
                       metavar="N",
                       help="cap fires per fault kind (default: none)")
    chaos.add_argument("--benchmarks", type=int, default=0, metavar="N",
                       help="limit to the first N benchmarks (0 = all)")
    chaos.add_argument("--no-resilient", action="store_true",
                       help="bypass the fallback ladder (stresses the "
                            "campaign-level isolation alone)")
    chaos.add_argument("--json", metavar="PATH", default=None,
                       help="save the (partial) campaign as JSON")
    _add_supervision(chaos)
    _add_workers(chaos)
    _add_executor(chaos)
    _add_trace(chaos)
    _add_progress(chaos)

    trace = commands.add_parser(
        "trace", help="inspect a recorded telemetry trace")
    trace_commands = trace.add_subparsers(dest="trace_command",
                                          required=True)
    summarize = trace_commands.add_parser(
        "summarize",
        help="per-span-kind count/total/p50/p95 summary tree")
    summarize.add_argument("file", metavar="FILE",
                           help="JSONL trace written by --trace")
    flame = trace_commands.add_parser(
        "flame",
        help="self-time folded stacks (flamegraph renderer input)")
    flame.add_argument("file", metavar="FILE",
                       help="JSONL trace written by --trace")
    flame.add_argument("--output", metavar="FILE", default=None,
                       help="write the folded stacks here "
                            "(default stdout)")
    critical = trace_commands.add_parser(
        "critical-path",
        help="the span chain that determined the trace's wall time")
    critical.add_argument("file", metavar="FILE",
                          help="JSONL trace written by --trace")

    lint = commands.add_parser(
        "lint",
        help="run physlint, the domain-aware static analyzer")
    lint.add_argument("paths", nargs="*", default=["src"],
                      metavar="PATH",
                      help="files or directories to lint (default: src)")
    lint.add_argument("--format", choices=("text", "json", "sarif"),
                      default="text", dest="lint_format",
                      help="report format (default text)")
    lint.add_argument("--select", default="", metavar="CODES",
                      help="comma-separated code prefixes to run")
    lint.add_argument("--ignore", default="", metavar="CODES",
                      help="comma-separated code prefixes to skip")
    lint.add_argument("--cache", default=None, metavar="FILE",
                      dest="lint_cache",
                      help="incremental analysis cache file")
    lint.add_argument("--baseline", default=None, metavar="FILE",
                      dest="lint_baseline",
                      help="suppress findings recorded in FILE")
    lint.add_argument("--update-baseline", default=None,
                      metavar="FILE", dest="lint_update_baseline",
                      help="write current findings to FILE and exit 0")
    lint.add_argument("--stats", action="store_true",
                      dest="lint_stats",
                      help="print cache/parse statistics to stderr")
    lint.add_argument("--explain", default=None, metavar="CODE",
                      dest="lint_explain",
                      help="explain one rule (rationale + examples)")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the registered rules and exit")
    return parser


def _cmd_oftec(args: argparse.Namespace) -> int:
    profile = mibench_profiles()[args.benchmark]
    problem = build_cooling_problem(profile,
                                    grid_resolution=args.resolution)
    with _traced(args.trace, args.live_trace, args.openmetrics):
        result = run_oftec(problem, method=args.method, jac=args.jac)
    if args.json:
        payload = {
            "benchmark": args.benchmark,
            "feasible": result.feasible,
            "omega_rad_s": result.omega_star,
            "omega_rpm": rad_s_to_rpm(result.omega_star),
            "i_tec_a": result.current_star,
            "max_temperature_c": kelvin_to_celsius(
                result.max_chip_temperature),
            "total_power_w": result.total_power,
            "leakage_power_w": result.evaluation.leakage_power,
            "tec_power_w": result.evaluation.tec_power,
            "fan_power_w": result.evaluation.fan_power,
            "runtime_ms": s_to_ms(result.runtime_seconds),
            "thermal_solves": result.thermal_solves,
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    status = "meets" if result.feasible else "MISSES"
    print(f"{args.benchmark}: omega* = "
          f"{rad_s_to_rpm(result.omega_star):.0f} RPM, "
          f"I* = {result.current_star:.2f} A")
    print(f"  T = {kelvin_to_celsius(result.max_chip_temperature):.1f} C "
          f"({status} T_max), P = {result.total_power:.2f} W "
          f"(leak {result.evaluation.leakage_power:.2f} + "
          f"TEC {result.evaluation.tec_power:.2f} + "
          f"fan {result.evaluation.fan_power:.2f})")
    print(f"  runtime {s_to_ms(result.runtime_seconds):.0f} ms, "
          f"{result.thermal_solves} thermal solves")
    return 0 if result.feasible else EXIT_INFEASIBLE


def _cmd_campaign(args: argparse.Namespace) -> int:
    profiles = mibench_profiles()
    if args.benchmarks:
        profiles = dict(list(profiles.items())[:args.benchmarks])
    template = mibench_profiles()["basicmath"]
    tec_problem = build_cooling_problem(
        template, grid_resolution=args.resolution)
    baseline_problem = build_cooling_problem(
        template, with_tec=False, grid_resolution=args.resolution)
    with _traced(args.trace, args.live_trace,
                 args.openmetrics) as session:
        board = _progress_board(args, session, "campaign")
        campaign = run_campaign(profiles, tec_problem, baseline_problem,
                                include_tec_only=args.tec_only,
                                workers=args.workers,
                                supervision=_supervision_from_args(args),
                                journal_path=args.journal,
                                resume_from=args.resume,
                                jac=args.jac,
                                executor=args.executor,
                                progress=board)
        if board is not None:
            board.finish()
    print(format_comparison_table(campaign, "opt2"))
    print()
    print(format_comparison_table(campaign, "opt1"))
    print()
    print(format_table2(campaign))
    if args.tec_only:
        print("\nTEC-only (fan off) outcomes:")
        for comparison in campaign.comparisons:
            status = "thermal runaway" if comparison.tec_only.runaway \
                else "bounded"
            print(f"  {comparison.name:<14} {status}")
    if campaign.quarantined:
        print(f"\nquarantined units: {len(campaign.quarantined)}")
        for entry in campaign.quarantined:
            last = entry.errors[-1] if entry.errors else "?"
            print(f"  {entry.name} after {entry.attempts} "
                  f"attempt(s): {last}")
    if args.json:
        from .io import save_campaign
        telemetry = session.get("telemetry") if session else None
        save_campaign(campaign, args.json, telemetry=telemetry,
                      canonical=args.canonical)
        print(f"\ncampaign saved to {args.json}")
    if args.verify:
        from .analysis import format_shape_checks, verify_paper_shapes
        checks = verify_paper_shapes(campaign)
        print()
        print(format_shape_checks(checks))
        if not all(check.passed for check in checks):
            return 1
    return 0


def _cmd_spice(args: argparse.Namespace) -> int:
    from .thermal import export_spice_netlist
    profile = mibench_profiles()[args.benchmark]
    problem = build_cooling_problem(profile,
                                    grid_resolution=args.resolution)
    netlist = export_spice_netlist(
        problem.model, args.omega, args.current,
        problem.dynamic_cell_power,
        title=f"OFTEC {args.benchmark} at omega={args.omega} rad/s, "
              f"I={args.current} A")
    if args.output:
        with open(args.output, "w", encoding="utf-8") as f:
            f.write(netlist)
        print(f"netlist written to {args.output} "
              f"({len(netlist.splitlines())} lines)")
    else:
        print(netlist, end="")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    profile = mibench_profiles()[args.benchmark]
    problem = build_cooling_problem(profile,
                                    grid_resolution=args.resolution)
    board = _progress_board(args, None, "sweep")
    sweep = sweep_objective_surfaces(
        problem, omega_points=args.omega_points,
        current_points=args.current_points, workers=args.workers,
        executor=args.executor, progress=board)
    if board is not None:
        board.finish()
    print(format_surface(sweep, "temperature"))
    print()
    print(format_surface(sweep, "power"))
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from .devtools.physlint import main as physlint_main
    forwarded = list(args.paths)
    forwarded += ["--format", args.lint_format]
    if args.select:
        forwarded += ["--select", args.select]
    if args.ignore:
        forwarded += ["--ignore", args.ignore]
    if args.lint_cache:
        forwarded += ["--cache", args.lint_cache]
    if args.lint_baseline:
        forwarded += ["--baseline", args.lint_baseline]
    if args.lint_update_baseline:
        forwarded += ["--update-baseline", args.lint_update_baseline]
    if args.lint_stats:
        forwarded.append("--stats")
    if args.lint_explain:
        forwarded += ["--explain", args.lint_explain]
    if args.list_rules:
        forwarded.append("--list-rules")
    return physlint_main(forwarded)


def _cmd_chaos(args: argparse.Namespace) -> int:
    from .faults import (
        EVALUATOR_FAULT_KINDS,
        FaultKind,
        FaultPlan,
        FaultSpec,
        format_chaos_report,
        run_chaos_campaign,
    )
    if args.faults.strip() == "all":
        kinds = list(EVALUATOR_FAULT_KINDS)
    else:
        by_value = {kind.value: kind for kind in FaultKind}
        kinds = []
        for token in args.faults.split(","):
            token = token.strip().replace("_", "-")
            if token not in by_value:
                raise ConfigurationError(
                    f"unknown fault kind {token!r}; choose from "
                    f"{sorted(by_value)}")
            kinds.append(by_value[token])
    plan = FaultPlan(seed=args.seed, specs=tuple(
        FaultSpec(kind=kind, rate=args.rate, max_fires=args.max_fires)
        for kind in kinds))
    profiles = mibench_profiles()
    if args.benchmarks:
        profiles = dict(list(profiles.items())[:args.benchmarks])
    template = mibench_profiles()["basicmath"]
    tec_problem = build_cooling_problem(
        template, grid_resolution=args.resolution)
    baseline_problem = build_cooling_problem(
        template, with_tec=False, grid_resolution=args.resolution)
    with _traced(args.trace, args.live_trace,
                 args.openmetrics) as session:
        board = _progress_board(args, session, "chaos")
        report = run_chaos_campaign(
            profiles, tec_problem, baseline_problem, plan=plan,
            resilient=not args.no_resilient, workers=args.workers,
            supervision=_supervision_from_args(args),
            executor=args.executor, progress=board)
        if board is not None:
            board.finish()
    print(format_chaos_report(report))
    if args.json and report.campaign is not None:
        from .io import save_campaign
        telemetry = session.get("telemetry") if session else None
        save_campaign(report.campaign, args.json, telemetry=telemetry)
        print(f"campaign saved to {args.json}")
    return 0 if report.ok else EXIT_SOLVER_FAILURE


def _cmd_trace(args: argparse.Namespace) -> int:
    from .obs import (
        critical_path,
        folded_stacks,
        format_critical_path,
        format_folded,
        format_trace_summary,
        load_trace,
    )
    spans = load_trace(args.file)
    if args.trace_command == "flame":
        text = format_folded(folded_stacks(spans))
        if args.output:
            with open(args.output, "w", encoding="utf-8") as handle:
                handle.write(text)
            print(f"folded stacks written to {args.output} "
                  f"({len(text.splitlines())} paths)")
        else:
            print(text, end="")
        return 0
    if args.trace_command == "critical-path":
        print(format_critical_path(critical_path(spans)))
        return 0
    print(format_trace_summary(spans))
    return 0


def _cmd_profiles(_args: argparse.Namespace) -> int:
    print(f"{'benchmark':<14}{'total (W)':>10}  hottest units")
    for name, profile in mibench_profiles().items():
        top = sorted(profile.unit_power.items(),
                     key=lambda kv: -kv[1])[:3]
        top_text = ", ".join(f"{unit} {power:.1f}W"
                             for unit, power in top)
        print(f"{name:<14}{profile.total_power:>10.1f}  {top_text}")
    return 0


_COMMANDS = {
    "oftec": _cmd_oftec,
    "campaign": _cmd_campaign,
    "sweep": _cmd_sweep,
    "profiles": _cmd_profiles,
    "spice": _cmd_spice,
    "chaos": _cmd_chaos,
    "trace": _cmd_trace,
    "lint": _cmd_lint,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code.

    Library failures map onto distinct exit codes (module docstring)
    instead of tracebacks, so callers can branch on the failure mode.
    """
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except InfeasibleProblemError as exc:
        print(f"infeasible: {exc}", file=sys.stderr)
        return EXIT_INFEASIBLE
    except ConfigurationError as exc:
        print(f"configuration error: {exc}", file=sys.stderr)
        return EXIT_CONFIG_ERROR
    except SolverError as exc:
        print(f"solver failure: {exc}", file=sys.stderr)
        return EXIT_SOLVER_FAILURE


if __name__ == "__main__":
    sys.exit(main())
