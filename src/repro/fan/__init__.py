"""Forced-convection substrate: fan power law and heat-sink conductance.

Implements Equation (8) (``P_fan = c * omega**3``), Equation (9)
(``g_HS&fan = p * ln(q * omega) + r`` with a natural-convection floor), and
a physical forced-convection correlation used to re-derive the paper's
fitted constants as a cross-check.
"""

from .fan import FanModel
from .heatsink import HeatSinkFanConductance
from .convection import ConvectionCorrelation, fit_log_conductance
from .noise import FanNoiseModel, noise_limited_omega_max

__all__ = [
    "FanModel",
    "HeatSinkFanConductance",
    "ConvectionCorrelation",
    "fit_log_conductance",
    "FanNoiseModel",
    "noise_limited_omega_max",
]
