"""Fan acoustic noise and noise-capped operation.

Axial-fan scaling laws put radiated sound power at roughly 50-55 times
the log of the speed ratio:

    L(omega) = L_ref + slope * log10(omega / omega_ref)   [dBA]

Noise never appears in the paper's formulation, but it is the other real
cost of fan speed, and capping it is a one-line extension of OFTEC: a
noise limit maps to a (possibly tighter) omega_max through the inverse
of the law.  :func:`noise_limited_omega_max` computes that bound for use
in :class:`repro.core.ProblemLimits`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..constants import OMEGA_MAX
from ..errors import ConfigurationError


@dataclass(frozen=True)
class FanNoiseModel:
    """Log-law acoustic model of an axial fan.

    Attributes:
        reference_level: Sound level at ``reference_omega``, dBA.
        reference_omega: Speed of the reference measurement, rad/s.
        slope: dBA per decade of speed (fan laws: 50-55).
    """

    reference_level: float = 38.0
    reference_omega: float = 209.4  # 2000 RPM
    slope: float = 52.0

    def __post_init__(self) -> None:
        if self.reference_omega <= 0.0:
            raise ConfigurationError("reference_omega must be positive")
        if self.slope <= 0.0:
            raise ConfigurationError("slope must be positive")

    def level(self, omega: float) -> float:
        """Sound level at speed ``omega``, dBA.

        Returns 0 for a stopped fan (no aerodynamic noise).
        """
        if omega < 0.0:
            raise ConfigurationError(f"omega must be >= 0, got {omega}")
        if omega == 0.0:
            return 0.0
        return self.reference_level + self.slope * math.log10(
            omega / self.reference_omega)

    def omega_for_level(self, level: float) -> float:
        """Inverse law: the speed that radiates ``level`` dBA."""
        return self.reference_omega * 10.0 ** (
            (level - self.reference_level) / self.slope)


def noise_limited_omega_max(
    noise_cap: float,
    model: FanNoiseModel = None,
    physical_omega_max: float = OMEGA_MAX,
) -> float:
    """The fan-speed bound, rad/s, implied by an acoustic cap.

    ``noise_cap`` is in dB(A); ``physical_omega_max`` in rad/s.

    Returns ``min(omega(noise_cap), physical_omega_max)``; plug the
    result into :class:`repro.core.ProblemLimits` to run noise-capped
    OFTEC.  Raises when the cap is unmeetable even at standstill-
    adjacent speeds (i.e. non-positive bound).
    """
    model = model or FanNoiseModel()
    if physical_omega_max <= 0.0:
        raise ConfigurationError("physical_omega_max must be positive")
    omega = model.omega_for_level(noise_cap)
    if omega <= 0.0:
        raise ConfigurationError(
            f"Noise cap {noise_cap} dBA is unmeetable")
    return min(omega, physical_omega_max)
