"""Physical forced-convection correlation and the Equation (9) curve fit.

The paper obtains Equation (9) by exercising HotSpot 5's convection
calculation at several fan speeds and curve-fitting a logarithm.  We
reproduce the protocol: :class:`ConvectionCorrelation` is a textbook
flat-plate correlation over the finned sink (laminar Nusselt number
``Nu = 0.664 * Re^0.5 * Pr^(1/3)``, air velocity proportional to fan
speed), and :func:`fit_log_conductance` performs the least-squares fit of
``g = p * ln(q * omega) + r`` to sampled conductances.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from ..errors import CalibrationError, ConfigurationError

# Dry air at ~320 K.
AIR_CONDUCTIVITY = 0.027        # W/(m*K)
AIR_KINEMATIC_VISCOSITY = 1.8e-5  # m^2/s
AIR_PRANDTL = 0.71


@dataclass(frozen=True)
class ConvectionCorrelation:
    """Laminar flat-plate convection over a finned heat sink.

    Attributes:
        fin_area: Total wetted fin + base area in m^2.
        characteristic_length: Flow length along the fins in meters.
        velocity_per_omega: Air velocity produced per rad/s of fan speed
            (m/s per rad/s); encapsulates the fan volute and duct geometry.
        natural_conductance: Free-convection conductance at zero flow, W/K.
    """

    fin_area: float = 0.09
    characteristic_length: float = 0.06
    velocity_per_omega: float = 0.012
    natural_conductance: float = 0.525

    def __post_init__(self) -> None:
        for field_name in ("fin_area", "characteristic_length",
                           "velocity_per_omega", "natural_conductance"):
            if getattr(self, field_name) <= 0.0:
                raise ConfigurationError(
                    f"{field_name} must be positive")

    def air_velocity(self, omega: float) -> float:
        """Bulk air velocity, m/s, through the fins at fan speed
        ``omega``, rad/s."""
        if omega < 0.0:
            raise ConfigurationError(f"Fan speed must be >= 0, got {omega}")
        return self.velocity_per_omega * omega

    def heat_transfer_coefficient(self, omega: float) -> float:
        """Convective film coefficient h in W/(m^2*K)."""
        velocity = self.air_velocity(omega)
        if velocity <= 0.0:
            return 0.0
        reynolds = velocity * self.characteristic_length \
            / AIR_KINEMATIC_VISCOSITY
        nusselt = 0.664 * math.sqrt(reynolds) * AIR_PRANDTL ** (1.0 / 3.0)
        return nusselt * AIR_CONDUCTIVITY / self.characteristic_length

    def conductance(self, omega: float) -> float:
        """Sink-to-ambient conductance in W/K at fan speed ``omega``.

        Forced and natural convection act on the same surface; the total is
        the larger of the two mechanisms (they do not meaningfully add).
        """
        forced = self.heat_transfer_coefficient(omega) * self.fin_area
        return max(forced, self.natural_conductance)


def fit_log_conductance(
    omegas: Sequence[float],
    conductances: Sequence[float],
    q: float = 1.0,
) -> Tuple[float, float]:
    """Least-squares fit of ``g = p * ln(q * omega) + r``.

    Returns the fitted ``(p, r)``.  Raises :class:`CalibrationError` when
    fewer than two distinct positive speeds are supplied or the fit is
    degenerate.  This reproduces how the paper derives its Equation (9)
    constants from HotSpot samples.
    """
    omega_arr = np.asarray(omegas, dtype=float)
    g_arr = np.asarray(conductances, dtype=float)
    if omega_arr.shape != g_arr.shape:
        raise CalibrationError(
            f"Mismatched sample shapes: {omega_arr.shape} vs {g_arr.shape}")
    mask = omega_arr > 0.0
    omega_arr = omega_arr[mask]
    g_arr = g_arr[mask]
    if omega_arr.size < 2 or np.unique(omega_arr).size < 2:
        raise CalibrationError(
            "Need at least two distinct positive fan speeds to fit")
    if q <= 0.0:
        raise CalibrationError(f"q must be positive, got {q}")
    design = np.column_stack([np.log(q * omega_arr),
                              np.ones_like(omega_arr)])
    solution, _, rank, _ = np.linalg.lstsq(design, g_arr, rcond=None)
    if rank < 2:
        raise CalibrationError("Degenerate logarithmic fit")
    p_fit, r_fit = float(solution[0]), float(solution[1])
    if p_fit <= 0.0:
        raise CalibrationError(
            f"Fitted slope must be positive, got {p_fit}; the samples do "
            "not describe forced convection")
    return p_fit, r_fit
