"""Fan power model: the cubic fan law of Equation (8)."""

from __future__ import annotations

from dataclasses import dataclass

from ..constants import FAN_POWER_CONSTANT, OMEGA_MAX
from ..errors import ConfigurationError


@dataclass(frozen=True)
class FanModel:
    """A fan obeying ``P_fan = c * omega**3`` for laminar airflow.

    Attributes:
        power_constant: The constant ``c`` in W*s^3; depends on air viscous
            friction, air density, and blade radius (reference [14] of the
            paper).  The paper estimates 1.6e-7 for its platform.
        omega_max: Maximum rotation speed in rad/s (paper: 524 rad/s).
    """

    power_constant: float = FAN_POWER_CONSTANT
    omega_max: float = OMEGA_MAX

    def __post_init__(self) -> None:
        if self.power_constant <= 0.0:
            raise ConfigurationError(
                f"Fan power constant must be positive, got "
                f"{self.power_constant}")
        if self.omega_max <= 0.0:
            raise ConfigurationError(
                f"omega_max must be positive, got {self.omega_max}")

    def power(self, omega: float) -> float:
        """Fan electrical power in watts at speed ``omega`` (rad/s)."""
        if omega < 0.0:
            raise ConfigurationError(f"Fan speed must be >= 0, got {omega}")
        return self.power_constant * omega ** 3

    def power_gradient(self, omega: float) -> float:
        """d(P_fan)/d(omega): the marginal cost of fan speed, W*s."""
        if omega < 0.0:
            raise ConfigurationError(f"Fan speed must be >= 0, got {omega}")
        return 3.0 * self.power_constant * omega ** 2

    def speed_for_power(self, power: float) -> float:
        """Inverse fan law: the speed (rad/s) that consumes ``power`` watts."""
        if power < 0.0:
            raise ConfigurationError(f"Power must be >= 0, got {power}")
        return (power / self.power_constant) ** (1.0 / 3.0)

    def clamp(self, omega: float) -> float:
        """Clamp a requested speed into the physical range [0, omega_max]."""
        return min(max(omega, 0.0), self.omega_max)
