"""Heat-sink + fan collective conductance to ambient (Equation 9).

The paper models the sink-to-ambient thermal conductance as

    g_HS&fan(omega) = p * ln(q * omega) + r,      omega >> 1 rad/s

with a floor at the natural-convection conductance ``g_HS`` for small
``omega`` ("for small values of omega, g_HS&fan can be estimated as the
thermal conductance of heat sink").  ``q`` only fixes dimensions and is
1 s in the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..constants import G_FIT_P, G_FIT_Q, G_FIT_R, G_HS_NATURAL
from ..errors import ConfigurationError


@dataclass(frozen=True)
class HeatSinkFanConductance:
    """Fan-speed-dependent conductance from heat sink to ambient.

    Attributes:
        p: Logarithmic slope of Equation (9), W/K.
        q: Dimension-fixing constant (s); the paper uses 1.
        r: Offset of Equation (9), W/K.
        g_natural: Natural-convection floor ``g_HS``, W/K.
    """

    p: float = G_FIT_P
    q: float = G_FIT_Q
    r: float = G_FIT_R
    g_natural: float = G_HS_NATURAL

    def __post_init__(self) -> None:
        if self.p <= 0.0:
            raise ConfigurationError(f"p must be positive, got {self.p}")
        if self.q <= 0.0:
            raise ConfigurationError(f"q must be positive, got {self.q}")
        if self.g_natural <= 0.0:
            raise ConfigurationError(
                f"g_natural must be positive, got {self.g_natural}")

    @property
    def crossover_speed(self) -> float:
        """Speed where the log fit overtakes the natural floor (rad/s)."""
        return math.exp((self.g_natural - self.r) / self.p) / self.q

    def conductance(self, omega: float) -> float:
        """Total sink-to-ambient conductance (W/K) at speed ``omega``.

        Continuous and monotonically non-decreasing in ``omega``: the log
        fit applies above the crossover speed, the natural floor below it
        (including ``omega = 0``).
        """
        if omega < 0.0:
            raise ConfigurationError(f"Fan speed must be >= 0, got {omega}")
        if omega <= 0.0:
            return self.g_natural
        fitted = self.p * math.log(self.q * omega) + self.r
        return max(fitted, self.g_natural)

    def conductance_gradient(self, omega: float) -> float:
        """d(g)/d(omega) in W/K per rad/s: zero on the floor,
        ``p/omega`` on the log branch."""
        if omega < 0.0:
            raise ConfigurationError(f"Fan speed must be >= 0, got {omega}")
        if omega <= self.crossover_speed:
            return 0.0
        return self.p / omega

    def speed_for_conductance(self, g: float) -> float:
        """Minimum speed achieving conductance ``g`` (inverse of Eq. 9).

        Returns 0 for any ``g`` at or below the natural floor.
        """
        if g <= self.g_natural:
            return 0.0
        return math.exp((g - self.r) / self.p) / self.q
