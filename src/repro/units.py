"""Unit conversion helpers.

The paper mixes units freely (RPM in figures, rad/s in equations, Celsius in
result tables, Kelvin in the thermal model).  Internally the library is
strictly SI: meters, watts, kelvin, rad/s.  These helpers live at the
boundaries — configuration parsing, reporting, and presets.
"""

from __future__ import annotations

import math

#: Zero Celsius expressed in kelvin.
ZERO_CELSIUS_K = 273.15

#: One revolution per minute expressed in rad/s.
RPM_TO_RAD_S = 2.0 * math.pi / 60.0


def celsius_to_kelvin(temp_c: float) -> float:
    """Convert a temperature from degrees Celsius to kelvin."""
    return temp_c + ZERO_CELSIUS_K


def kelvin_to_celsius(temp_k: float) -> float:
    """Convert a temperature from kelvin to degrees Celsius."""
    return temp_k - ZERO_CELSIUS_K


def rpm_to_rad_s(rpm: float) -> float:
    """Convert a rotational speed from RPM to rad/s."""
    return rpm * RPM_TO_RAD_S


def rad_s_to_rpm(rad_s: float) -> float:
    """Convert a rotational speed from rad/s to RPM."""
    return rad_s / RPM_TO_RAD_S


def mm_to_m(mm: float) -> float:
    """Convert a length from millimeters to meters."""
    return mm * 1e-3


def m_to_mm(m: float) -> float:
    """Convert a length from meters to millimeters."""
    return m * 1e3


def um_to_m(um: float) -> float:
    """Convert a length from micrometers to meters."""
    return um * 1e-6


def m_to_um(m: float) -> float:
    """Convert a length from meters to micrometers."""
    return m * 1e6


def s_to_ms(seconds: float) -> float:
    """Convert a duration from seconds to milliseconds."""
    return seconds * 1e3


def ms_to_s(milliseconds: float) -> float:
    """Convert a duration from milliseconds to seconds."""
    return milliseconds * 1e-3
