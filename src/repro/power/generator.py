"""Synthetic PTscalar-style trace generation.

Real benchmark power traces alternate between program phases (loops,
call-graph regions) with distinct per-unit activity, modulated by
cycle-level noise.  :class:`TraceGenerator` reproduces that structure: a
benchmark profile defines each unit's *ceiling*, phases scale units up and
down coherently, and bounded noise keeps samples physical (never negative,
never above the ceiling, and the ceiling is actually reached so that
``trace.max_profile()`` recovers the input profile).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ConfigurationError
from .profiles import BenchmarkProfile
from .trace import PowerTrace


class TraceGenerator:
    """Deterministic (seeded) synthetic power-trace generator.

    Attributes:
        seed: RNG seed; identical seeds reproduce identical traces.
        phase_count: Number of program phases along the trace.
        noise_level: Relative amplitude of per-sample noise (0..1).
        min_activity: Lowest phase activity relative to the ceiling.
    """

    def __init__(self, seed: int = 0, phase_count: int = 5,
                 noise_level: float = 0.05, min_activity: float = 0.35):
        if phase_count < 1:
            raise ConfigurationError("phase_count must be >= 1")
        if not (0.0 <= noise_level < 1.0):
            raise ConfigurationError("noise_level must be in [0, 1)")
        if not (0.0 < min_activity <= 1.0):
            raise ConfigurationError("min_activity must be in (0, 1]")
        self.seed = seed
        self.phase_count = phase_count
        self.noise_level = noise_level
        self.min_activity = min_activity

    def generate(self, profile: BenchmarkProfile, duration: float = 10.0,
                 sample_interval: float = 0.01,
                 seed: Optional[int] = None) -> PowerTrace:
        """Generate a trace whose per-unit maxima equal ``profile``.

        Args:
            profile: Per-unit power ceilings.
            duration: Trace length, s.
            sample_interval: Sampling period, s.
            seed: Optional per-call seed override.
        """
        if duration <= 0.0 or sample_interval <= 0.0:
            raise ConfigurationError(
                "duration and sample_interval must be positive")
        if sample_interval > duration:
            raise ConfigurationError("sample_interval exceeds duration")

        rng = np.random.default_rng(self.seed if seed is None else seed)
        unit_names = sorted(profile.unit_power)
        ceilings = np.array([profile.unit_power[u] for u in unit_names])
        steps = int(round(duration / sample_interval))
        times = np.arange(1, steps + 1) * sample_interval

        # Phase schedule: contiguous segments with per-unit activity in
        # [min_activity, 1].  One randomly chosen phase per unit runs at
        # full activity so the ceiling is reachable.
        boundaries = np.linspace(0, steps, self.phase_count + 1).astype(int)
        activity = rng.uniform(self.min_activity, 1.0,
                               size=(self.phase_count, ceilings.size))
        hot_phase = rng.integers(0, self.phase_count, size=ceilings.size)
        activity[hot_phase, np.arange(ceilings.size)] = 1.0

        samples = np.empty((steps, ceilings.size))
        for phase in range(self.phase_count):
            lo, hi = boundaries[phase], boundaries[phase + 1]
            if hi <= lo:
                continue
            base = activity[phase] * ceilings
            noise = rng.uniform(-self.noise_level, 0.0,
                                size=(hi - lo, ceilings.size))
            samples[lo:hi] = base * (1.0 + noise)
        # Pin one sample per unit to the exact ceiling inside its hot
        # phase so max_profile() round-trips the input profile.
        for col, phase in enumerate(hot_phase):
            lo, hi = boundaries[phase], boundaries[phase + 1]
            if hi > lo:
                pin = rng.integers(lo, hi)
                samples[pin, col] = ceilings[col]
        samples = np.clip(samples, 0.0, ceilings[None, :])
        return PowerTrace(profile.name, unit_names, times, samples)
