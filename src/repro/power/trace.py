"""Time-varying per-unit power traces.

A :class:`PowerTrace` is the PTscalar-shaped artifact: a matrix of
per-unit dynamic power samples over time.  OFTEC consumes only its
:meth:`max_profile` reduction (Figure 5 feeds the per-element *maximum*
power into the optimizer), but the full trace drives the transient
controller studies.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..errors import ConfigurationError
from .profiles import BenchmarkProfile


class PowerTrace:
    """Sampled per-unit dynamic power over time.

    Attributes:
        name: Workload name.
        unit_names: Column order of the sample matrix.
        times: Sample instants, s (monotonically increasing).
        samples: Array of shape (len(times), len(unit_names)), W.
    """

    def __init__(self, name: str, unit_names: Sequence[str],
                 times: np.ndarray, samples: np.ndarray):
        self.name = name
        self.unit_names: List[str] = list(unit_names)
        times_arr = np.asarray(times, dtype=float)
        samples_arr = np.asarray(samples, dtype=float)
        if times_arr.ndim != 1 or times_arr.size == 0:
            raise ConfigurationError("times must be a non-empty 1-D array")
        if (np.diff(times_arr) <= 0.0).any():
            raise ConfigurationError("times must strictly increase")
        if samples_arr.shape != (times_arr.size, len(self.unit_names)):
            raise ConfigurationError(
                f"samples must have shape ({times_arr.size}, "
                f"{len(self.unit_names)}), got {samples_arr.shape}")
        if (samples_arr < 0.0).any():
            raise ConfigurationError("samples must be >= 0")
        if len(set(self.unit_names)) != len(self.unit_names):
            raise ConfigurationError("unit_names must be unique")
        self.times = times_arr
        self.samples = samples_arr

    @property
    def sample_count(self) -> int:
        """Number of time samples."""
        return self.times.size

    @property
    def duration(self) -> float:
        """Trace span in seconds."""
        return float(self.times[-1] - self.times[0])

    def unit_index(self, unit: str) -> int:
        """Column index of ``unit``."""
        try:
            return self.unit_names.index(unit)
        except ValueError:
            raise ConfigurationError(f"No unit named {unit!r}") from None

    def unit_series(self, unit: str) -> np.ndarray:
        """Power samples of one unit over time, W."""
        return self.samples[:, self.unit_index(unit)]

    def total_series(self) -> np.ndarray:
        """Total chip dynamic power over time, W."""
        return self.samples.sum(axis=1)

    def at(self, t: float) -> Dict[str, float]:
        """Zero-order-hold sample at time ``t`` (clamped to the span)."""
        idx = int(np.searchsorted(self.times, t, side="right") - 1)
        idx = min(max(idx, 0), self.sample_count - 1)
        return dict(zip(self.unit_names, self.samples[idx]))

    def max_profile(self) -> BenchmarkProfile:
        """Per-unit maxima as a :class:`BenchmarkProfile` (Figure 5 input)."""
        maxima = self.samples.max(axis=0)
        return BenchmarkProfile(
            self.name, dict(zip(self.unit_names, maxima.tolist())))

    def mean_profile(self) -> BenchmarkProfile:
        """Per-unit time-averages as a profile (for energy studies)."""
        means = self.samples.mean(axis=0)
        return BenchmarkProfile(
            self.name, dict(zip(self.unit_names, means.tolist())))

    def window(self, t_start: float, t_end: float) -> "PowerTrace":
        """Sub-trace restricted to ``[t_start, t_end]``."""
        if t_end <= t_start:
            raise ConfigurationError("t_end must exceed t_start")
        mask = (self.times >= t_start) & (self.times <= t_end)
        if not mask.any():
            raise ConfigurationError(
                f"No samples in window [{t_start}, {t_end}]")
        return PowerTrace(self.name, self.unit_names,
                          self.times[mask], self.samples[mask])


def concatenate_traces(traces: Sequence["PowerTrace"],
                       name: str = "composite") -> "PowerTrace":
    """Splice traces back to back on the union of their unit columns.

    Each segment is shifted to start where the previous one ended;
    units absent from a segment draw zero during it.  Used to build
    phase-hopping workloads for the online-controller studies.
    """
    if not traces:
        raise ConfigurationError("Need at least one trace")
    unit_names = sorted({unit for trace in traces
                         for unit in trace.unit_names})
    time_blocks: List[np.ndarray] = []
    sample_blocks: List[np.ndarray] = []
    offset = 0.0
    for trace in traces:
        local = trace.times - trace.times[0]
        # Keep strict monotonicity across the seam.
        step = float(local[1] - local[0]) if local.size > 1 \
            else max(float(trace.times[0]), 1e-6)
        time_blocks.append(local + offset + step)
        block = np.zeros((trace.sample_count, len(unit_names)))
        for col, unit in enumerate(unit_names):
            if unit in trace.unit_names:
                block[:, col] = trace.unit_series(unit)
        sample_blocks.append(block)
        offset = float(time_blocks[-1][-1])
    return PowerTrace(name, unit_names,
                      np.concatenate(time_blocks),
                      np.vstack(sample_blocks))
