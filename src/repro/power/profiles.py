"""Per-benchmark maximum dynamic power profiles (MiBench substitute).

Each profile distributes a total dynamic power over the EV6 functional
units according to the benchmark's character:

* *Integer-bound* kernels (BitCount, Quicksort) concentrate power in
  IntExec/IntReg/IntQ — the classic EV6 hotspot cluster.
* *FP-bound* kernels (FFT, Susan, parts of Basicmath) heat the FP cluster.
* *Memory-bound* kernels (CRC32, Dijkstra) spread power toward caches and
  the load/store queue at lower density.

Totals are calibrated (see ``benchmarks/`` and EXPERIMENTS.md) so the
paper's qualitative split holds: the five heavy benchmarks defeat the
no-TEC baselines while Basicmath, CRC32, and Stringsearch remain feasible
for every method — matching Figure 6(c) and the Table 2 ordering of
``I*`` and ``omega*``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping

from ..errors import ConfigurationError

#: The paper's eight MiBench benchmarks, in Table 2 order (including the
#: paper's own spellings "Baiscmath" -> Basicmath and "Djkstra").
MIBENCH_NAMES: List[str] = [
    "basicmath", "bitcount", "crc32", "djkstra",
    "fft", "quicksort", "stringsearch", "susan",
]


@dataclass(frozen=True)
class BenchmarkProfile:
    """Maximum dynamic power of one benchmark, per functional unit.

    Attributes:
        name: Benchmark name.
        unit_power: Mapping from unit name to maximum dynamic power, W.
    """

    name: str
    unit_power: Mapping[str, float]

    def __post_init__(self) -> None:
        if not self.unit_power:
            raise ConfigurationError(f"{self.name}: empty power profile")
        bad = {u: p for u, p in self.unit_power.items() if p < 0.0}
        if bad:
            raise ConfigurationError(
                f"{self.name}: negative unit powers: {bad}")

    @property
    def total_power(self) -> float:
        """Total maximum dynamic power, W."""
        return sum(self.unit_power.values())

    def scaled(self, factor: float) -> "BenchmarkProfile":
        """Copy with every unit power multiplied by ``factor``."""
        if factor < 0.0:
            raise ConfigurationError(f"factor must be >= 0, got {factor}")
        return BenchmarkProfile(
            self.name,
            {u: p * factor for u, p in self.unit_power.items()})

    def with_total(self, total: float) -> "BenchmarkProfile":
        """Copy rescaled so the profile sums to ``total`` watts."""
        current = self.total_power
        if current <= 0.0:
            raise ConfigurationError(
                f"{self.name}: cannot rescale an all-zero profile")
        return self.scaled(total / current)

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict copy of the per-unit powers."""
        return dict(self.unit_power)


def _profile(name: str, total: float,
             weights: Dict[str, float]) -> BenchmarkProfile:
    """Normalize ``weights`` and scale to ``total`` watts."""
    weight_sum = sum(weights.values())
    return BenchmarkProfile(
        name, {u: total * w / weight_sum for u, w in weights.items()})


# Unit-weight patterns.  Keys missing from a pattern draw zero power.
_INT_HEAVY = {
    "IntExec": 0.23, "IntReg": 0.13, "IntQ": 0.08, "IntMap": 0.07,
    "LdStQ": 0.10, "Bpred": 0.05, "ITB": 0.02, "DTB": 0.04,
    "Icache": 0.09, "Dcache": 0.09, "L2": 0.06, "L2_left": 0.02,
    "L2_right": 0.02,
}
_FP_HEAVY = {
    "FPAdd": 0.14, "FPMul": 0.13, "FPReg": 0.09, "FPQ": 0.06,
    "FPMap": 0.05, "IntExec": 0.12, "IntReg": 0.07, "LdStQ": 0.09,
    "Icache": 0.07, "Dcache": 0.08, "DTB": 0.03, "Bpred": 0.03,
    "L2": 0.03, "L2_left": 0.005, "L2_right": 0.005,
}
_MEM_HEAVY = {
    "LdStQ": 0.17, "Dcache": 0.12, "DTB": 0.09, "IntExec": 0.15,
    "IntReg": 0.09, "IntQ": 0.05, "IntMap": 0.04, "Icache": 0.07,
    "Bpred": 0.04, "L2": 0.10, "L2_left": 0.04, "L2_right": 0.04,
}
_MIXED = {
    "IntExec": 0.16, "IntReg": 0.09, "IntQ": 0.06, "IntMap": 0.05,
    "FPAdd": 0.07, "FPMul": 0.06, "FPReg": 0.04, "FPQ": 0.03,
    "LdStQ": 0.10, "Bpred": 0.04, "DTB": 0.04, "ITB": 0.02,
    "Icache": 0.08, "Dcache": 0.08, "L2": 0.06, "L2_left": 0.01,
    "L2_right": 0.01,
}

# Per-benchmark (pattern, total watts).  The totals separate the heavy
# five from the light three; see the calibration bench.
_BENCHMARK_SPECS = {
    "basicmath": (_MIXED, 42.0),
    "bitcount": (_INT_HEAVY, 63.0),
    "crc32": (_MEM_HEAVY, 36.0),
    "djkstra": (_MEM_HEAVY, 60.0),
    "fft": (_FP_HEAVY, 60.0),
    "quicksort": (_INT_HEAVY, 64.0),
    "stringsearch": (_MIXED, 40.0),
    "susan": (_FP_HEAVY, 62.0),
}


def mibench_profiles(
    scale: float = 1.0,
    totals: Mapping[str, float] = None,
) -> Dict[str, BenchmarkProfile]:
    """The eight MiBench profiles, optionally rescaled.

    Args:
        scale: Multiplier applied to every benchmark's total.
        totals: Optional per-benchmark total-watt overrides (applied
            before ``scale``).
    """
    if scale < 0.0:
        raise ConfigurationError(f"scale must be >= 0, got {scale}")
    profiles: Dict[str, BenchmarkProfile] = {}
    for name in MIBENCH_NAMES:
        pattern, default_total = _BENCHMARK_SPECS[name]
        total = default_total if totals is None \
            else totals.get(name, default_total)
        profiles[name] = _profile(name, total * scale, pattern)
    return profiles
