"""Dynamic-power substrate (PTscalar + MiBench substitute).

The paper feeds OFTEC the *maximum* dynamic power of each chip element,
extracted from PTscalar traces of eight MiBench benchmarks (Figure 5).
PTscalar and the original traces are not redistributable, so this package
synthesizes them: :class:`BenchmarkProfile` holds a per-functional-unit
maximum-power vector with the hotspot structure of each benchmark class
(integer-bound, FP-bound, memory-bound, ...), and :mod:`repro.power.generator`
produces full time-varying traces whose per-unit maxima reduce back to the
profile — exercising the identical code path into the optimizer.
"""

from .profiles import BenchmarkProfile, mibench_profiles, MIBENCH_NAMES
from .trace import PowerTrace, concatenate_traces
from .generator import TraceGenerator

__all__ = [
    "BenchmarkProfile",
    "mibench_profiles",
    "MIBENCH_NAMES",
    "PowerTrace",
    "concatenate_traces",
    "TraceGenerator",
]
