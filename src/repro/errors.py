"""Exception hierarchy for the OFTEC reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still being able to discriminate the failure mode.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigurationError(ReproError):
    """A model, stack, or problem was configured with inconsistent values."""


class GeometryError(ReproError):
    """A floorplan or grid operation received invalid geometry."""


class FloorplanParseError(GeometryError):
    """A HotSpot ``.flp`` file could not be parsed."""


class MaterialError(ReproError):
    """A material property is missing or non-physical."""


class SolverError(ReproError):
    """The thermal or optimization solver failed to produce a solution."""


class SingularNetworkError(SolverError):
    """The thermal conductance matrix is singular (disconnected network).

    Carries a cheap condition-number estimate of the failed system when
    one could be computed, for post-mortem diagnosability (e.g. in a
    :class:`repro.core.FailureReport`).
    """

    def __init__(self, message: str,
                 condition_estimate: Optional[float] = None) -> None:
        super().__init__(message)
        #: 1-norm condition estimate of the failed system (None when it
        #: could not be computed, ``inf`` for an exactly singular factor).
        self.condition_estimate = condition_estimate


class EvaluationBudgetError(SolverError):
    """An optimization attempt exhausted its thermal-solve budget.

    Raised by :class:`repro.core.Evaluator` when a per-attempt budget set
    via ``set_solve_budget`` runs out; the resilient solver catches it and
    moves to the next rung of the fallback ladder instead of letting one
    pathological attempt consume the whole campaign.
    """


class SolveTimeoutError(SolverError):
    """A single steady-state solve exceeded its (simulated) time budget.

    Real sparse solves in this package are fast; this error exists for
    the fault-injection framework (:mod:`repro.faults`) and for callers
    wrapping the evaluator with wall-clock watchdogs.
    """


class ThermalRunawayError(SolverError):
    """The leakage-temperature fixed point diverged.

    Physically this is the positive-feedback loop the paper describes in
    Section 6.2: insufficient cooling lets the temperature rise, which raises
    the (exponentially temperature-dependent) leakage power, which raises the
    temperature further until the chip burns.  The steady-state problem has
    no bounded solution, so the solver raises this error instead of
    returning one.
    """

    def __init__(self, message: str,
                 max_temperature: float = float("inf")) -> None:
        super().__init__(message)
        #: Highest temperature observed before the solve was abandoned (K).
        self.max_temperature = max_temperature


class InfeasibleProblemError(ReproError):
    """Optimization 2 could not find any point meeting the thermal limit.

    Raised by Algorithm 1 (line 5, ``return failed``) when even the
    temperature-minimizing operating point exceeds ``T_max``.
    """


class CalibrationError(ReproError):
    """A regression / curve fit did not converge or had too few samples."""


class WorkerCrashError(ReproError):
    """A pool worker hit an exception outside the library contract.

    Stage failures (a :class:`SolverError` during a unit, say) are
    *results* — packaged into failure reports and merged.  An
    exception that instead escapes to the worker's chaos boundary is
    a resilience bug in the library itself; the coordinator raises
    this error carrying every worker's report so none is silently
    dropped, plus the work-unit labels and attempt counts so a
    post-mortem names the benchmark/stage that died without replaying
    the campaign.
    """

    def __init__(self, message: str,
                 reports: Optional[Sequence[str]] = None,
                 units: Optional[Sequence[Tuple[str, int]]] = None,
                 ) -> None:
        super().__init__(message)
        #: The per-worker ``"ExcType: message"`` strings, in merge
        #: order (empty when the caller did not collect them).
        self.reports: Tuple[str, ...] = \
            tuple(reports) if reports is not None else ()
        #: ``(unit_label, attempts)`` pairs naming the work units whose
        #: execution produced the reports, in merge order.  Attempts is
        #: 1 for the unsupervised pool (which never retries) and the
        #: final attempt count under supervision.
        self.units: Tuple[Tuple[str, int], ...] = \
            tuple((str(label), int(attempts))
                  for label, attempts in units) if units is not None \
            else ()


class JournalError(ReproError):
    """A campaign journal could not be opened, read, or written.

    Raised for structural problems that are not data corruption — a
    missing file on resume, a journal written by a different campaign
    (fingerprint mismatch), or an unsupported journal version.
    """


class JournalCorruptionError(JournalError):
    """A campaign journal failed its integrity checks.

    The write-ahead journal chains every record to its predecessor
    with a blake2b digest; a record whose chain digest does not
    verify, or two records for the same unit index carrying different
    payloads, mean the file was tampered with or silently damaged.
    Only an *incomplete final line* is tolerated (the expected shape
    of a crash mid-write) — everything before it must verify.
    """

    def __init__(self, message: str,
                 record_index: Optional[int] = None) -> None:
        super().__init__(message)
        #: Zero-based index of the first record that failed to verify
        #: (None when the failure is not attributable to one record).
        self.record_index = record_index
