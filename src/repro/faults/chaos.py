"""Chaos harness: run a whole campaign under an injected fault matrix.

The contract under test: with fault injection active across every
benchmark and method, the campaign must still return — partial results
plus structured :class:`~repro.core.FailureReport` entries — and no
exception may escape.  :class:`ChaosReport.ok` is the single pass/fail
bit CI asserts on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from ..analysis.campaign import CampaignResult, run_campaign
from ..core import CoolingProblem
from ..obs import runtime as _obs
from ..obs.clock import stopwatch
from ..power import BenchmarkProfile
from .inject import FaultInjector, FaultyEvaluator
from .plan import FaultPlan, full_fault_plan


@dataclass
class ChaosReport:
    """Outcome of one chaos-campaign run.

    Attributes:
        plan: The fault plan that was injected.
        fired: Fault fires per kind (by kind value).
        campaign: The (partial) campaign result; None only when an
            exception escaped the isolation boundaries.
        unhandled: ``"Type: message"`` lines for exceptions that escaped
            — the chaos contract is that this list stays empty.
        wall_seconds: Total harness wall-clock time.
    """

    plan: FaultPlan
    fired: Dict[str, int] = field(default_factory=dict)
    campaign: Optional[CampaignResult] = None
    unhandled: List[str] = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        """True when every fault was contained (no unhandled escapes)."""
        return not self.unhandled and self.campaign is not None

    @property
    def completed_benchmarks(self) -> List[str]:
        """Benchmarks that produced a full comparison despite faults."""
        if self.campaign is None:
            return []
        return self.campaign.benchmark_names


def run_chaos_campaign(
    profiles: Mapping[str, BenchmarkProfile],
    tec_problem_template: CoolingProblem,
    baseline_problem_template: CoolingProblem,
    plan: Optional[FaultPlan] = None,
    method: str = "slsqp",
    resilient: bool = True,
    workers: Optional[int] = None,
    supervision: Optional[object] = None,
    progress: Optional[object] = None,
    executor: Optional[str] = None,
) -> ChaosReport:
    """Run the benchmark campaign with fault injection turned on.

    Args:
        profiles: Benchmark name -> power profile.
        tec_problem_template: TEC-equipped problem template.
        baseline_problem_template: Matching no-TEC template.
        plan: Fault plan (default: every evaluator-level kind at the
            default rate).  Process-level kinds (``worker-kill`` /
            ``worker-hang`` / ``worker-slow``) auto-engage the
            supervised executor on parallel runs and are inert on
            serial ones (an unsupervised ``os._exit`` would kill the
            coordinator itself).
        method: Leading solver backend.
        resilient: Route OFTEC stages through the fallback ladder
            (False stresses the campaign-level isolation alone).
        workers: Worker-process count (None defers to
            ``REPRO_WORKERS``, 0 = serial).  Parallel chaos gives each
            benchmark unit its own injector seeded by
            :meth:`~repro.faults.FaultPlan.derive`, so its fault
            sequence is deterministic for a given plan *and worker
            count regime* but intentionally differs from the serial
            single-stream sequence (one shared injector cannot be
            split across processes).  Unhandled worker exceptions are
            contained per unit, so a parallel chaos report can carry
            both a partial campaign and a non-empty ``unhandled``
            list.
        supervision: A :class:`repro.exec.SupervisionPolicy` routing
            the parallel path through the supervised executor (worker
            death becomes retries/quarantine).  Defaults to the stock
            policy when the plan carries process-level kinds.
        progress: A :class:`repro.obs.ProgressBoard` (or anything with
            its hook methods) fed the benchmark lifecycle.
    """
    plan = plan if plan is not None else full_fault_plan()
    from ..exec import resolve_workers
    worker_count = resolve_workers(workers)
    if supervision is None and plan.process_kinds and \
            worker_count >= 1:
        from ..exec import SupervisionPolicy
        supervision = SupervisionPolicy()
    if worker_count >= 1:
        return _run_chaos_parallel(
            profiles, tec_problem_template, baseline_problem_template,
            plan, method, resilient, worker_count, supervision,
            progress=progress, executor=executor)
    injector = FaultInjector(plan)
    report = ChaosReport(plan=plan)
    watch = stopwatch("chaos.wall_seconds")
    with watch, _obs.span("chaos", seed=plan.seed):
        try:
            report.campaign = run_campaign(
                profiles, tec_problem_template,
                baseline_problem_template,
                method=method, isolate_failures=True,
                resilient=resilient,
                evaluator_factory=lambda p: FaultyEvaluator(p,
                                                            injector),
                progress=progress)
        except Exception as exc:  # physlint: disable=RPR201
            # The chaos boundary is the whole point of the harness: a
            # narrower catch would let exactly the surprising
            # exception classes under test escape.  Anything reaching
            # this handler is a resilience bug, recorded as such.
            report.unhandled.append(f"{type(exc).__name__}: {exc}")
            _obs.event("chaos.unhandled", error=type(exc).__name__)
    report.fired = injector.fired_counts()
    _record_fired_gauges(report)
    report.wall_seconds = watch.elapsed
    return report


def _record_fired_gauges(report: ChaosReport) -> None:
    if _obs.STATE.enabled:
        for kind, count in report.fired.items():
            _obs.STATE.metrics.gauge(f"chaos.fired.{kind}").set(count)


def _run_chaos_parallel(
    profiles: Mapping[str, BenchmarkProfile],
    tec_problem_template: CoolingProblem,
    baseline_problem_template: CoolingProblem,
    plan: FaultPlan,
    method: str,
    resilient: bool,
    workers: int,
    supervision: Optional[object] = None,
    progress: Optional[object] = None,
    executor: Optional[str] = None,
) -> ChaosReport:
    """Chaos campaign over the parallel engine.

    The fault plan travels to the workers on the context; every
    benchmark unit builds a :class:`FaultyEvaluator` around its own
    derived injector, and fault events land on that unit's worker
    spans (adopted under the coordinating ``unit`` span).  Fires are
    summed across units into :attr:`ChaosReport.fired` — including
    process-level fires when the supervised executor is engaged.
    """
    from ..exec import run_campaign_units
    report = ChaosReport(plan=plan)
    watch = stopwatch("chaos.wall_seconds")
    with watch, _obs.span("chaos", seed=plan.seed, workers=workers):
        merge = run_campaign_units(
            profiles, tec_problem_template, baseline_problem_template,
            method=method, include_tec_only=False,
            resilient=resilient, policy=None, fault_plan=plan,
            workers=workers, supervision=supervision,
            progress=progress, executor=executor)
        report.unhandled.extend(merge.unhandled)
        for text in merge.unhandled:
            _obs.event("chaos.unhandled",
                       error=text.split(":", 1)[0])
        report.fired = merge.fired
        campaign = CampaignResult(
            comparisons=merge.comparisons,
            t_max=tec_problem_template.limits.t_max,
            failures=merge.failures,
            quarantined=list(merge.quarantined),
            worker_stats=merge.worker_stats)
        report.campaign = campaign
    report.campaign.wall_seconds = watch.elapsed
    _record_fired_gauges(report)
    report.wall_seconds = watch.elapsed
    return report


def format_chaos_report(report: ChaosReport) -> str:
    """Human-readable summary of a chaos run."""
    lines = [
        "chaos campaign "
        + ("PASSED" if report.ok else "FAILED")
        + f" (seed={report.plan.seed}, "
        + f"{report.wall_seconds:.1f} s)",
        "fault fires: " + (", ".join(
            f"{kind}={count}"
            for kind, count in sorted(report.fired.items())) or "none"),
    ]
    if report.campaign is not None:
        done = report.completed_benchmarks
        lines.append(
            f"benchmarks completed: {len(done)} "
            f"({', '.join(done) if done else 'none'})")
        lines.append(
            f"failure reports: {len(report.campaign.failures)}")
        for failure in report.campaign.failures:
            lines.append(
                f"  - {failure.benchmark} [{failure.stage}] "
                f"{failure.error_type}: {failure.message}")
        if report.campaign.quarantined:
            lines.append(
                f"quarantined units: "
                f"{len(report.campaign.quarantined)}")
            for entry in report.campaign.quarantined:
                lines.append(
                    f"  - {entry.name} after {entry.attempts} "
                    f"attempt(s): {entry.errors[-1] if entry.errors else '?'}")
    for text in report.unhandled:
        lines.append(f"UNHANDLED: {text}")
    return "\n".join(lines)
