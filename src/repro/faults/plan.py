"""Declarative fault plans: what to break, how often, and when.

A :class:`FaultPlan` is a pure description — it holds no randomness of
its own.  The :class:`~repro.faults.FaultInjector` turns a plan into
deterministic per-kind Bernoulli streams, so two runs with the same plan
(and the same call pattern) inject byte-identical fault sequences.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

from ..errors import ConfigurationError


class FaultKind(enum.Enum):
    """The failure modes the chaos harness knows how to inject."""

    #: Corrupt an otherwise healthy evaluation with a NaN total power
    #: (exercises the evaluator's NaN/Inf guard).
    NAN_POWER = "nan-power"
    #: Raise :class:`~repro.errors.SingularNetworkError` as a
    #: near-singular conductance system would.
    SINGULAR_NETWORK = "singular-network"
    #: Report a diverging leakage relinearization loop (the thermal
    #: runaway path) at a point that is actually fine.
    LEAKAGE_DIVERGENCE = "leakage-divergence"
    #: Raise :class:`~repro.errors.EvaluationBudgetError` as an
    #: exhausted per-attempt solve budget would.
    ITERATION_EXHAUSTION = "iteration-exhaustion"
    #: Raise :class:`~repro.errors.SolveTimeoutError`, simulating a
    #: wall-clock watchdog firing mid-solve.
    SOLVE_TIMEOUT = "solve-timeout"
    #: Process-level: hard-kill the pool worker (``os._exit``) before
    #: it runs the unit, as an OOM killer or segfault would.  Only
    #: fires inside a *supervised* worker (:mod:`repro.exec`); the
    #: serial executor and the plain pool ignore it.
    WORKER_KILL = "worker-kill"
    #: Process-level: the worker goes silent — heartbeats stop and the
    #: unit never completes — as a deadlocked or livelocked process
    #: would.  Detected by the supervisor's heartbeat watchdog.
    WORKER_HANG = "worker-hang"
    #: Process-level: the worker stalls for a bounded delay before
    #: running the unit, exercising the deadline margin without
    #: triggering it.
    WORKER_SLOW = "worker-slow"


#: The fault kinds injected at the evaluator/network seam by
#: :class:`~repro.faults.FaultyEvaluator` — the kinds
#: :func:`full_fault_plan` covers.
EVALUATOR_FAULT_KINDS: Tuple[FaultKind, ...] = (
    FaultKind.NAN_POWER,
    FaultKind.SINGULAR_NETWORK,
    FaultKind.LEAKAGE_DIVERGENCE,
    FaultKind.ITERATION_EXHAUSTION,
    FaultKind.SOLVE_TIMEOUT,
)

#: The process-level fault kinds injected by the supervised worker
#: loop (:mod:`repro.exec.supervisor`).  Inert everywhere else: a
#: ``worker-kill`` in the serial executor would take down the
#: coordinator itself, so these kinds fire only where a supervisor is
#: watching.
PROCESS_FAULT_KINDS: Tuple[FaultKind, ...] = (
    FaultKind.WORKER_KILL,
    FaultKind.WORKER_HANG,
    FaultKind.WORKER_SLOW,
)


@dataclass(frozen=True)
class FaultSpec:
    """One fault kind plus its firing schedule.

    Attributes:
        kind: The failure mode to inject.
        rate: Bernoulli firing probability per eligible call, in [0, 1].
        start_call: Number of initial calls that are immune (lets a
            pipeline warm up before the chaos starts).
        max_fires: Cap on total fires (None = unlimited).
    """

    kind: FaultKind
    rate: float = 0.05
    start_call: int = 0
    max_fires: Optional[int] = None

    def __post_init__(self) -> None:
        if not isinstance(self.kind, FaultKind):
            raise ConfigurationError(
                f"kind must be a FaultKind, got {self.kind!r}")
        if not (0.0 <= self.rate <= 1.0):
            raise ConfigurationError(
                f"rate must be in [0, 1], got {self.rate}")
        if self.start_call < 0:
            raise ConfigurationError(
                f"start_call must be >= 0, got {self.start_call}")
        if self.max_fires is not None and self.max_fires <= 0:
            raise ConfigurationError(
                f"max_fires must be positive or None, got "
                f"{self.max_fires}")


@dataclass(frozen=True)
class FaultPlan:
    """A seedable set of fault specs, at most one per kind.

    Attributes:
        seed: Root seed of the per-kind random streams.
        specs: The faults to inject.
    """

    seed: int = 0
    specs: Tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        seen = set()
        for spec in self.specs:
            if spec.kind in seen:
                raise ConfigurationError(
                    f"Duplicate fault spec for {spec.kind.value!r}")
            seen.add(spec.kind)

    def spec_for(self, kind: FaultKind) -> Optional[FaultSpec]:
        """The spec covering ``kind``, or None when it never fires."""
        for spec in self.specs:
            if spec.kind is kind:
                return spec
        return None

    @property
    def kinds(self) -> Tuple[FaultKind, ...]:
        """The fault kinds this plan injects, in spec order."""
        return tuple(spec.kind for spec in self.specs)

    @property
    def process_kinds(self) -> Tuple[FaultKind, ...]:
        """The process-level kinds in this plan (supervisor-injected)."""
        return tuple(spec.kind for spec in self.specs
                     if spec.kind in PROCESS_FAULT_KINDS)

    def derive(self, label: str) -> "FaultPlan":
        """A sub-plan with the same specs and a label-derived seed.

        Parallel chaos gives each work-unit its own injector; deriving
        the unit's seed from ``(seed, label)`` keeps every unit's fault
        stream independent of scheduling order and worker count — the
        same plan and label always yield the same stream, no matter
        which process runs the unit or in what order.
        """
        import hashlib
        digest = hashlib.blake2b(
            f"{self.seed}:{label}".encode("utf-8"),
            digest_size=8).digest()
        derived_seed = int.from_bytes(digest, "big")
        return FaultPlan(seed=derived_seed, specs=self.specs)


def full_fault_plan(seed: int = 0, rate: float = 0.05,
                    start_call: int = 0) -> FaultPlan:
    """A plan covering every evaluator-level kind at a uniform rate.

    Covers :data:`EVALUATOR_FAULT_KINDS` only — the process-level
    kinds change *how* a campaign executes (workers die) rather than
    *what* an evaluation returns, so they are opted into explicitly
    via :func:`process_fault_plan` or hand-built specs.
    """
    return FaultPlan(seed=seed, specs=tuple(
        FaultSpec(kind=kind, rate=rate, start_call=start_call)
        for kind in EVALUATOR_FAULT_KINDS))


def process_fault_plan(seed: int = 0, rate: float = 0.25,
                       kinds: Tuple[FaultKind, ...]
                       = PROCESS_FAULT_KINDS,
                       max_fires: Optional[int] = 1) -> FaultPlan:
    """A plan covering the process-level kinds at a uniform rate.

    The default ``max_fires=1`` bounds the chaos per unit: under the
    per-attempt reinterpretation (see :func:`process_fault_decision`)
    each unit's attempts beyond the first are immune, so every unit is
    guaranteed to complete within one retry.  Pass ``max_fires=None``
    for unbounded chaos (units may quarantine).
    """
    for kind in kinds:
        if kind not in PROCESS_FAULT_KINDS:
            raise ConfigurationError(
                f"{kind.value!r} is not a process-level fault kind")
    return FaultPlan(seed=seed, specs=tuple(
        FaultSpec(kind=kind, rate=rate, max_fires=max_fires)
        for kind in kinds))


def process_fault_decision(plan: Optional[FaultPlan], label: str,
                           attempt: int) -> Optional[FaultKind]:
    """Which process-level fault (if any) strikes attempt N of a unit.

    Pure and deterministic: the draw is a blake2b hash of
    ``(seed, label, attempt, kind)``, so the coordinator can recompute
    what a worker decided without a channel, and a *retry* of the same
    unit re-rolls the dice instead of deterministically dying again.
    Spec fields are reinterpreted per unit-attempt (``attempt`` is
    1-based): ``start_call`` immunizes the first N attempts and
    ``max_fires`` caps how many attempts may be struck — attempts
    beyond ``start_call + max_fires`` never fire, guaranteeing the
    unit completes within that many retries.  The first striking spec
    in plan order wins.  Returns None when no fault fires (including
    ``plan=None`` and plans with no process-level specs).
    """
    if plan is None or attempt < 1:
        return None
    for spec in plan.specs:
        if spec.kind not in PROCESS_FAULT_KINDS:
            continue
        if attempt <= spec.start_call:
            continue
        if spec.max_fires is not None and \
                attempt > spec.start_call + spec.max_fires:
            continue
        import hashlib
        digest = hashlib.blake2b(
            f"{plan.seed}:{label}:{attempt}:{spec.kind.value}"
            .encode("utf-8"), digest_size=8).digest()
        draw = int.from_bytes(digest, "big") / float(2 ** 64)
        if draw < spec.rate:
            return spec.kind
    return None
