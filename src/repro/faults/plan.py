"""Declarative fault plans: what to break, how often, and when.

A :class:`FaultPlan` is a pure description — it holds no randomness of
its own.  The :class:`~repro.faults.FaultInjector` turns a plan into
deterministic per-kind Bernoulli streams, so two runs with the same plan
(and the same call pattern) inject byte-identical fault sequences.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

from ..errors import ConfigurationError


class FaultKind(enum.Enum):
    """The failure modes the chaos harness knows how to inject."""

    #: Corrupt an otherwise healthy evaluation with a NaN total power
    #: (exercises the evaluator's NaN/Inf guard).
    NAN_POWER = "nan-power"
    #: Raise :class:`~repro.errors.SingularNetworkError` as a
    #: near-singular conductance system would.
    SINGULAR_NETWORK = "singular-network"
    #: Report a diverging leakage relinearization loop (the thermal
    #: runaway path) at a point that is actually fine.
    LEAKAGE_DIVERGENCE = "leakage-divergence"
    #: Raise :class:`~repro.errors.EvaluationBudgetError` as an
    #: exhausted per-attempt solve budget would.
    ITERATION_EXHAUSTION = "iteration-exhaustion"
    #: Raise :class:`~repro.errors.SolveTimeoutError`, simulating a
    #: wall-clock watchdog firing mid-solve.
    SOLVE_TIMEOUT = "solve-timeout"


@dataclass(frozen=True)
class FaultSpec:
    """One fault kind plus its firing schedule.

    Attributes:
        kind: The failure mode to inject.
        rate: Bernoulli firing probability per eligible call, in [0, 1].
        start_call: Number of initial calls that are immune (lets a
            pipeline warm up before the chaos starts).
        max_fires: Cap on total fires (None = unlimited).
    """

    kind: FaultKind
    rate: float = 0.05
    start_call: int = 0
    max_fires: Optional[int] = None

    def __post_init__(self) -> None:
        if not isinstance(self.kind, FaultKind):
            raise ConfigurationError(
                f"kind must be a FaultKind, got {self.kind!r}")
        if not (0.0 <= self.rate <= 1.0):
            raise ConfigurationError(
                f"rate must be in [0, 1], got {self.rate}")
        if self.start_call < 0:
            raise ConfigurationError(
                f"start_call must be >= 0, got {self.start_call}")
        if self.max_fires is not None and self.max_fires <= 0:
            raise ConfigurationError(
                f"max_fires must be positive or None, got "
                f"{self.max_fires}")


@dataclass(frozen=True)
class FaultPlan:
    """A seedable set of fault specs, at most one per kind.

    Attributes:
        seed: Root seed of the per-kind random streams.
        specs: The faults to inject.
    """

    seed: int = 0
    specs: Tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        seen = set()
        for spec in self.specs:
            if spec.kind in seen:
                raise ConfigurationError(
                    f"Duplicate fault spec for {spec.kind.value!r}")
            seen.add(spec.kind)

    def spec_for(self, kind: FaultKind) -> Optional[FaultSpec]:
        """The spec covering ``kind``, or None when it never fires."""
        for spec in self.specs:
            if spec.kind is kind:
                return spec
        return None

    @property
    def kinds(self) -> Tuple[FaultKind, ...]:
        """The fault kinds this plan injects, in spec order."""
        return tuple(spec.kind for spec in self.specs)

    def derive(self, label: str) -> "FaultPlan":
        """A sub-plan with the same specs and a label-derived seed.

        Parallel chaos gives each work-unit its own injector; deriving
        the unit's seed from ``(seed, label)`` keeps every unit's fault
        stream independent of scheduling order and worker count — the
        same plan and label always yield the same stream, no matter
        which process runs the unit or in what order.
        """
        import hashlib
        digest = hashlib.blake2b(
            f"{self.seed}:{label}".encode("utf-8"),
            digest_size=8).digest()
        derived_seed = int.from_bytes(digest, "big")
        return FaultPlan(seed=derived_seed, specs=self.specs)


def full_fault_plan(seed: int = 0, rate: float = 0.05,
                    start_call: int = 0) -> FaultPlan:
    """A plan covering every :class:`FaultKind` at a uniform rate."""
    return FaultPlan(seed=seed, specs=tuple(
        FaultSpec(kind=kind, rate=rate, start_call=start_call)
        for kind in FaultKind))
