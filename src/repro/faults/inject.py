"""Deterministic fault injectors for the evaluator and thermal network.

Two injection points cover the stack:

* :class:`FaultyEvaluator` — an :class:`~repro.core.Evaluator` subclass
  that intercepts ``_solve`` and raises (or corrupts) according to the
  plan.  This is the workhorse of the chaos campaign: every optimizer,
  baseline, and Algorithm 1 stage consumes evaluators.
* :class:`FaultyNetwork` — a delegation proxy over
  :class:`~repro.thermal.ThermalNetwork` that makes the *real* sparse
  system singular to working precision (by zeroing every row sum),
  exercising the genuine :class:`~repro.errors.SingularNetworkError`
  detection path including its condition estimate.

All randomness flows from per-kind ``np.random.default_rng`` streams
seeded by ``SeedSequence([plan.seed, spec_index])``: same plan + same
call pattern = same fault sequence.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Optional

import numpy as np

from ..core.evaluator import Evaluation, Evaluator
from ..core.problem import CoolingProblem
from ..errors import (
    EvaluationBudgetError,
    SingularNetworkError,
    SolveTimeoutError,
    ThermalRunawayError,
)
from ..obs import runtime as _obs
from ..thermal import ThermalNetwork
from .plan import FaultKind, FaultPlan

#: Condition estimate attached to injected singular-network faults —
#: representative of a genuinely near-singular conductance system.
INJECTED_CONDITION_ESTIMATE = 1.0e16

#: Divergence temperature (K) reported by injected leakage-loop faults.
INJECTED_DIVERGENCE_TEMPERATURE = 2.0e3


class FaultInjector:
    """Turns a :class:`~repro.faults.FaultPlan` into firing decisions.

    Each fault kind owns an independent RNG stream and call counter, so
    adding one kind to a plan never shifts another kind's sequence.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._rngs: Dict[FaultKind, np.random.Generator] = {}
        self._calls: Dict[FaultKind, int] = {}
        self._fired: Dict[FaultKind, int] = {}
        for index, spec in enumerate(plan.specs):
            self._rngs[spec.kind] = np.random.default_rng(
                np.random.SeedSequence([plan.seed, index]))
            self._calls[spec.kind] = 0
            self._fired[spec.kind] = 0

    def should_fire(self, kind: FaultKind) -> bool:
        """Decide (and record) whether ``kind`` fires on this call."""
        spec = self.plan.spec_for(kind)
        if spec is None:
            return False
        call = self._calls[kind]
        self._calls[kind] = call + 1
        if call < spec.start_call:
            return False
        if spec.max_fires is not None \
                and self._fired[kind] >= spec.max_fires:
            return False
        if not self._rngs[kind].random() < spec.rate:
            return False
        self._fired[kind] += 1
        if _obs.STATE.enabled:
            # The decision is made inside the solve the fault is about
            # to perturb, so the event lands on that solve's open span.
            _obs.STATE.tracer.event("fault.injected", kind=kind.value,
                                    fire=self._fired[kind])
            _obs.STATE.metrics.counter(
                f"faults.injected.{kind.value}").inc()
        return True

    def fired_counts(self) -> Dict[str, int]:
        """Fires so far, keyed by fault-kind value."""
        return {kind.value: count
                for kind, count in self._fired.items()}

    def call_counts(self) -> Dict[str, int]:
        """Firing decisions so far, keyed by fault-kind value."""
        return {kind.value: count
                for kind, count in self._calls.items()}


class FaultyEvaluator(Evaluator):
    """An evaluator whose fresh solves fail according to a fault plan.

    Cache hits are never faulted (matching the real failure surface:
    a cached evaluation involves no linear algebra).  The NaN-power
    fault corrupts the result *after* a healthy solve, so the base
    class's NaN/Inf guard is what keeps it from reaching the optimizer.

    Because ``_solve`` is overridden here, the gradient path degrades
    automatically: :meth:`Evaluator.evaluate_with_grad` detects the
    override and takes its central finite-difference fallback, built
    from ordinary :meth:`Evaluator.evaluate` calls — so every solve a
    gradient spends stays inside this injection seam (the adjoint's
    transposed back-substitutions would bypass it), and chaos coverage
    extends to gradient-driven solver runs unchanged.
    """

    def __init__(self, problem: CoolingProblem, injector: FaultInjector,
                 cache_decimals: int = 9):
        super().__init__(problem, cache_decimals=cache_decimals)
        self.injector = injector

    def _solve(self, omega: float, current: float) -> Evaluation:
        where = f"omega={omega:.1f}, I={current:.2f}"
        if self.injector.should_fire(FaultKind.SOLVE_TIMEOUT):
            raise SolveTimeoutError(
                f"injected solve timeout at {where}")
        if self.injector.should_fire(FaultKind.SINGULAR_NETWORK):
            raise SingularNetworkError(
                f"injected near-singular thermal system at {where} "
                f"(1-norm condition estimate "
                f"{INJECTED_CONDITION_ESTIMATE:.3e})",
                condition_estimate=INJECTED_CONDITION_ESTIMATE)
        if self.injector.should_fire(FaultKind.ITERATION_EXHAUSTION):
            raise EvaluationBudgetError(
                f"injected solver iteration exhaustion at {where}")
        if self.injector.should_fire(FaultKind.LEAKAGE_DIVERGENCE):
            return self._runaway_evaluation(
                omega, current, self.problem.fan.power(omega),
                ThermalRunawayError(
                    f"injected leakage-loop divergence at {where}",
                    max_temperature=INJECTED_DIVERGENCE_TEMPERATURE))
        evaluation = super()._solve(omega, current)
        if self.injector.should_fire(FaultKind.NAN_POWER):
            return replace(evaluation, total_power=float("nan"))
        return evaluation


class FaultyNetwork:
    """Delegation proxy making the real sparse system singular on fire.

    When the singular-network fault fires, the diagonal overlay is
    shifted so every matrix row sums to zero — a pure Laplacian with no
    path to ambient — and the *inner* solver's own degeneracy handling
    (NaN detection, solution-amplification guard, condition estimate)
    does the rest.  All other attributes delegate to the wrapped
    network.
    """

    def __init__(self, network: ThermalNetwork,
                 injector: FaultInjector):
        self._network = network
        self._injector = injector
        self._static_row_sums: Optional[np.ndarray] = None

    def __getattr__(self, name: str):
        return getattr(self._network, name)

    def _row_sums(self, overlay: np.ndarray) -> np.ndarray:
        """Row sums of ``static + diag(overlay)`` without assembling the
        matrix: the static share is computed once and cached (the
        network is immutable after finalization), the overlay lands on
        the diagonal so it adds straight onto its row."""
        if self._static_row_sums is None:
            self._static_row_sums = np.asarray(
                self._network.static_matrix.sum(axis=1),
                dtype=float).ravel()
        return self._static_row_sums + overlay

    def solve(self, diag_overlay: np.ndarray,
              rhs: np.ndarray) -> np.ndarray:
        """Solve the (possibly sabotaged) steady-state system."""
        if self._injector.should_fire(FaultKind.SINGULAR_NETWORK):
            overlay = np.asarray(diag_overlay, dtype=float)
            return self._network.solve(
                overlay - self._row_sums(overlay), rhs)
        return self._network.solve(diag_overlay, rhs)

    def solve_many(self, diag_overlay: np.ndarray,
                   rhs_columns: np.ndarray) -> np.ndarray:
        """Batched counterpart of :meth:`solve` on the same fault seam.

        One firing decision covers the whole block — a batched solve is
        one factorization, which is the unit the fault models.
        """
        if self._injector.should_fire(FaultKind.SINGULAR_NETWORK):
            overlay = np.asarray(diag_overlay, dtype=float)
            return self._network.solve_many(
                overlay - self._row_sums(overlay), rhs_columns)
        return self._network.solve_many(diag_overlay, rhs_columns)
