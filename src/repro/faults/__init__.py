"""Deterministic fault injection for chaos-testing the OFTEC stack.

Declare *what* to break in a :class:`FaultPlan`, wrap the stack's
evaluators (or the thermal network itself) in the injectors, and run
the whole campaign under fire with :func:`run_chaos_campaign`.  Every
random draw is seeded, so a failing chaos run reproduces exactly.
"""

from .chaos import ChaosReport, format_chaos_report, run_chaos_campaign
from .inject import (
    INJECTED_CONDITION_ESTIMATE,
    INJECTED_DIVERGENCE_TEMPERATURE,
    FaultInjector,
    FaultyEvaluator,
    FaultyNetwork,
)
from .plan import (
    EVALUATOR_FAULT_KINDS,
    PROCESS_FAULT_KINDS,
    FaultKind,
    FaultPlan,
    FaultSpec,
    full_fault_plan,
    process_fault_decision,
    process_fault_plan,
)

__all__ = [
    "FaultKind",
    "FaultSpec",
    "FaultPlan",
    "full_fault_plan",
    "process_fault_plan",
    "process_fault_decision",
    "EVALUATOR_FAULT_KINDS",
    "PROCESS_FAULT_KINDS",
    "FaultInjector",
    "FaultyEvaluator",
    "FaultyNetwork",
    "INJECTED_CONDITION_ESTIMATE",
    "INJECTED_DIVERGENCE_TEMPERATURE",
    "ChaosReport",
    "run_chaos_campaign",
    "format_chaos_report",
]
