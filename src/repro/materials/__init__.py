"""Materials and package-stack substrate.

Defines thermal material properties, the layer abstraction for the
seven-layer processor package of Figure 2 (PCB, chip, TIM1, TEC, heat
spreader, TIM2, heat sink, plus the fan stage), and the Table 1 preset
assembly used throughout the paper's experiments.
"""

from .properties import Material, SILICON, COPPER, THERMAL_PASTE, FR4, \
    BISMUTH_TELLURIDE, ALUMINUM, AIR
from .layers import Layer, LayerRole
from .stack import PackageStack, default_package_stack, \
    baseline_package_stack, table1_layers

__all__ = [
    "Material",
    "SILICON",
    "COPPER",
    "THERMAL_PASTE",
    "FR4",
    "BISMUTH_TELLURIDE",
    "ALUMINUM",
    "AIR",
    "Layer",
    "LayerRole",
    "PackageStack",
    "default_package_stack",
    "baseline_package_stack",
    "table1_layers",
]
