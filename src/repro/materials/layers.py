"""Layer abstraction for the package stack."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import MaterialError
from .properties import Material


class LayerRole(enum.Enum):
    """What a layer does in the thermal network.

    The paper's Section 4 taxonomy:

    * ``CONDUCT`` — layers in ``L_conduct`` (PCB, TIM1, spreader, TIM2):
      pure heat conduction, modeled as six resistances per element.
    * ``CHIP`` — ``L_chip``: conducts heat and generates dynamic + leakage
      power.
    * ``TEC`` — the TEC layer, expanded into the three sub-layers of
      Figure 4 (absorption, generation, rejection).
    * ``HEATSINK`` — ``L_HS&fan``: conducts heat and couples to ambient
      through the fan-speed-dependent conductance of Equation (9).
    """

    CONDUCT = "conduct"
    CHIP = "chip"
    TEC = "tec"
    HEATSINK = "heatsink"


@dataclass(frozen=True)
class Layer:
    """One physical layer of the package assembly.

    Attributes:
        name: Layer identifier (unique within a stack).
        role: What the layer contributes to the thermal network.
        material: Thermal material of the layer bulk.
        thickness: Layer thickness in meters (z direction).
        width: Lateral x extent in meters.
        height: Lateral y extent in meters.
    """

    name: str
    role: LayerRole
    material: Material
    thickness: float
    width: float
    height: float

    def __post_init__(self) -> None:
        if self.thickness <= 0.0:
            raise MaterialError(
                f"Layer {self.name!r}: thickness must be positive")
        if self.width <= 0.0 or self.height <= 0.0:
            raise MaterialError(
                f"Layer {self.name!r}: lateral dimensions must be positive")

    @property
    def footprint_area(self) -> float:
        """Lateral area in square meters."""
        return self.width * self.height

    @property
    def vertical_conductance_per_area(self) -> float:
        """Through-thickness conductance per unit area, W/(m^2*K)."""
        return self.material.conductivity / self.thickness

    def vertical_conductance(self, area: float) -> float:
        """Through-thickness conductance of a patch of ``area`` m^2."""
        return self.vertical_conductance_per_area * area

    def with_material(self, material: Material) -> "Layer":
        """Copy of this layer with a different material."""
        return Layer(self.name, self.role, material, self.thickness,
                     self.width, self.height)
