"""Thermal material properties.

Conductivities for the package layers come from Table 1 of the paper; the
volumetric heat capacities (needed only by the transient solver, which the
paper's steady-state analysis does not use) are standard handbook values.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import MaterialError


@dataclass(frozen=True)
class Material:
    """An isotropic thermal material.

    Attributes:
        name: Human-readable identifier.
        conductivity: Thermal conductivity k in W/(m*K).
        volumetric_heat_capacity: rho * c_p in J/(m^3*K); used by the
            transient solver only.
    """

    name: str
    conductivity: float
    volumetric_heat_capacity: float

    def __post_init__(self) -> None:
        if self.conductivity <= 0.0:
            raise MaterialError(
                f"{self.name}: conductivity must be positive, "
                f"got {self.conductivity}")
        if self.volumetric_heat_capacity <= 0.0:
            raise MaterialError(
                f"{self.name}: volumetric heat capacity must be positive, "
                f"got {self.volumetric_heat_capacity}")

    def with_conductivity(self, conductivity: float) -> "Material":
        """Copy of this material with a different conductivity,
        W/(m K).

        Used by the baseline fairness rule of Section 6.1, which raises the
        TIM1 conductivity of the no-TEC baselines to the effective
        conductivity of the TIM1 + TEC stack.
        """
        return Material(self.name, conductivity,
                        self.volumetric_heat_capacity)


# Table 1 materials (conductivity from the paper; heat capacity standard).

#: Silicon die (Table 1: 100 W/(m*K); the paper derates bulk silicon for
#: the thinned 15 um die).
SILICON = Material("silicon", 100.0, 1.75e6)

#: Thermal interface paste for TIM1 / TIM2 (Table 1: 1.75 W/(m*K)).
THERMAL_PASTE = Material("thermal-paste", 1.75, 2.0e6)

#: Copper heat spreader and heat sink (Table 1: 400 W/(m*K)).
COPPER = Material("copper", 400.0, 3.45e6)

#: PCB substrate under the die.
FR4 = Material("fr4", 0.3, 1.8e6)

#: Superlattice Bi2Te3-class thermoelectric material (thin-film TEC pellets).
BISMUTH_TELLURIDE = Material("bismuth-telluride", 1.2, 1.2e6)

#: Aluminum (alternative sink material, used in some examples).
ALUMINUM = Material("aluminum", 237.0, 2.42e6)

#: Still air (dead-space filler in uncovered TEC-layer regions).
AIR = Material("air", 0.026, 1.2e3)
