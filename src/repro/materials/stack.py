"""The package stack: ordered layers from PCB (bottom) to heat sink (top).

``default_package_stack`` reproduces the Table 1 assembly of the paper
(Figure 2): PCB, chip, TIM1, TEC, heat spreader, TIM2, heat sink, with the
fan acting on the heat-sink-to-ambient conductance.  The no-TEC baselines
use ``baseline_package_stack``, which applies the paper's fairness rule:
the TEC layer is removed and the TIM1 conductivity is raised to the
effective series conductivity of TIM1 + TEC.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import ConfigurationError
from .layers import Layer, LayerRole
from .properties import (
    COPPER,
    FR4,
    Material,
    SILICON,
    THERMAL_PASTE,
)

# Table 1 dimensions (meters).
CHIP_SIZE = 15.9e-3
CHIP_THICKNESS = 15e-6
TIM_THICKNESS = 20e-6
SPREADER_SIZE = 30e-3
SPREADER_THICKNESS = 1e-3
SINK_SIZE = 60e-3
SINK_THICKNESS = 7e-3
PCB_THICKNESS = 1e-3

#: Thickness of the thin-film TEC layer (tens of micrometers per Section 1).
TEC_LAYER_THICKNESS = 20e-6

#: Effective through-plane conductivity of the TEC layer material.  Chosen so
#: the TEC stack conducts distinctly better than thermal paste, which is the
#: mechanism Section 6.1 cites for the baselines' disadvantage before the
#: fairness correction.
TEC_LAYER_CONDUCTIVITY = 2.0

#: Effective TEC-layer material (superlattice film + metallization).
TEC_LAYER_MATERIAL = Material("tec-film", TEC_LAYER_CONDUCTIVITY, 1.3e6)


class PackageStack:
    """An ordered, validated list of package layers (bottom to top).

    The stack must contain exactly one CHIP layer, exactly one HEATSINK
    layer (topmost), and at most one TEC layer located above the chip.
    """

    def __init__(self, layers: List[Layer]):
        if not layers:
            raise ConfigurationError("PackageStack requires layers")
        names = [layer.name for layer in layers]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"Duplicate layer names in {names}")
        self._layers = list(layers)
        self._validate()

    def _validate(self) -> None:
        chips = [i for i, l in enumerate(self._layers)
                 if l.role is LayerRole.CHIP]
        if len(chips) != 1:
            raise ConfigurationError(
                f"Stack must contain exactly one chip layer, found "
                f"{len(chips)}")
        sinks = [i for i, l in enumerate(self._layers)
                 if l.role is LayerRole.HEATSINK]
        if len(sinks) != 1 or sinks[0] != len(self._layers) - 1:
            raise ConfigurationError(
                "Stack must end with exactly one heat-sink layer")
        tecs = [i for i, l in enumerate(self._layers)
                if l.role is LayerRole.TEC]
        if len(tecs) > 1:
            raise ConfigurationError("Stack may contain at most one TEC layer")
        if tecs and tecs[0] <= chips[0]:
            raise ConfigurationError("TEC layer must sit above the chip layer")

    # -- access ---------------------------------------------------------------

    @property
    def layers(self) -> List[Layer]:
        """Layers bottom to top (copy)."""
        return list(self._layers)

    def __iter__(self):
        return iter(self._layers)

    def __len__(self) -> int:
        return len(self._layers)

    def __getitem__(self, name: str) -> Layer:
        for layer in self._layers:
            if layer.name == name:
                return layer
        raise ConfigurationError(f"No layer named {name!r}")

    def index_of(self, name: str) -> int:
        """Position of the layer named ``name`` (0 = bottom)."""
        for i, layer in enumerate(self._layers):
            if layer.name == name:
                return i
        raise ConfigurationError(f"No layer named {name!r}")

    @property
    def chip_layer(self) -> Layer:
        """The unique chip layer."""
        return next(l for l in self._layers if l.role is LayerRole.CHIP)

    @property
    def tec_layer(self) -> Optional[Layer]:
        """The TEC layer, or None for a no-TEC stack."""
        for layer in self._layers:
            if layer.role is LayerRole.TEC:
                return layer
        return None

    @property
    def heatsink_layer(self) -> Layer:
        """The topmost (heat sink) layer."""
        return self._layers[-1]

    @property
    def has_tec(self) -> bool:
        """True if the stack includes a TEC layer."""
        return self.tec_layer is not None

    def replace_layer(self, name: str, new_layer: Layer) -> "PackageStack":
        """Return a stack with the named layer replaced."""
        idx = self.index_of(name)
        layers = list(self._layers)
        layers[idx] = new_layer
        return PackageStack(layers)

    def without_layer(self, name: str) -> "PackageStack":
        """Return a stack with the named layer removed."""
        idx = self.index_of(name)
        layers = list(self._layers)
        del layers[idx]
        return PackageStack(layers)


def table1_layers() -> Dict[str, Dict[str, float]]:
    """Table 1 of the paper as plain data (for reports and tests)."""
    return {
        "chip": {"conductivity": 100.0, "width": CHIP_SIZE,
                 "height": CHIP_SIZE, "thickness": CHIP_THICKNESS},
        "tim1": {"conductivity": 1.75, "width": CHIP_SIZE,
                 "height": CHIP_SIZE, "thickness": TIM_THICKNESS},
        "spreader": {"conductivity": 400.0, "width": SPREADER_SIZE,
                     "height": SPREADER_SIZE,
                     "thickness": SPREADER_THICKNESS},
        "tim2": {"conductivity": 1.75, "width": SPREADER_SIZE,
                 "height": SPREADER_SIZE, "thickness": TIM_THICKNESS},
        "heatsink": {"conductivity": 400.0, "width": SINK_SIZE,
                     "height": SINK_SIZE, "thickness": SINK_THICKNESS},
    }


def default_package_stack(chip_width: float = CHIP_SIZE,
                          chip_height: float = CHIP_SIZE,
                          ) -> PackageStack:
    """The Table 1 / Figure 2 assembly with the TEC layer present.

    ``chip_width``/``chip_height``, m, resize the die-footprint layers (PCB,
    chip, TIM1, TEC) for non-EV6 floorplans; the spreader and sink keep
    their Table 1 dimensions (they must remain at least chip-sized).
    """
    if chip_width <= 0.0 or chip_height <= 0.0:
        raise ConfigurationError("Chip dimensions must be positive")
    if chip_width > SPREADER_SIZE or chip_height > SPREADER_SIZE:
        raise ConfigurationError(
            "Chip cannot exceed the heat-spreader footprint")
    return PackageStack([
        Layer("pcb", LayerRole.CONDUCT, FR4,
              PCB_THICKNESS, chip_width, chip_height),
        Layer("chip", LayerRole.CHIP, SILICON,
              CHIP_THICKNESS, chip_width, chip_height),
        Layer("tim1", LayerRole.CONDUCT, THERMAL_PASTE,
              TIM_THICKNESS, chip_width, chip_height),
        Layer("tec", LayerRole.TEC, TEC_LAYER_MATERIAL,
              TEC_LAYER_THICKNESS, chip_width, chip_height),
        Layer("spreader", LayerRole.CONDUCT, COPPER,
              SPREADER_THICKNESS, SPREADER_SIZE, SPREADER_SIZE),
        Layer("tim2", LayerRole.CONDUCT, THERMAL_PASTE,
              TIM_THICKNESS, SPREADER_SIZE, SPREADER_SIZE),
        Layer("heatsink", LayerRole.HEATSINK, COPPER,
              SINK_THICKNESS, SINK_SIZE, SINK_SIZE),
    ])


def effective_series_conductivity(layers: List[Layer]) -> float:
    """Conductivity of a single slab thermally equivalent to ``layers``.

    Series thermal resistances: ``k_eff = sum(t_i) / sum(t_i / k_i)``.
    """
    if not layers:
        raise ConfigurationError("Need at least one layer")
    total_thickness = sum(l.thickness for l in layers)
    total_resistance = sum(l.thickness / l.material.conductivity
                           for l in layers)
    return total_thickness / total_resistance


def baseline_package_stack(chip_width: float = CHIP_SIZE,
                           chip_height: float = CHIP_SIZE,
                           ) -> PackageStack:
    """The no-TEC baseline assembly with the Section 6.1 fairness rule.

    ``chip_width``/``chip_height`` are in m.  The TEC layer is
    removed and TIM1 is thickened to the combined
    TIM1 + TEC thickness with the effective series conductivity, so the
    baseline enjoys the same vertical conduction path as the TEC system
    at zero TEC current.
    """
    full = default_package_stack(chip_width, chip_height)
    tim1 = full["tim1"]
    tec = full["tec"]
    if tec is None:
        raise ConfigurationError(
            "default package stack has no TEC layer to merge into the "
            "baseline TIM")
    k_eff = effective_series_conductivity([tim1, tec])
    merged_tim1 = Layer(
        "tim1",
        LayerRole.CONDUCT,
        tim1.material.with_conductivity(k_eff),
        tim1.thickness + tec.thickness,
        tim1.width,
        tim1.height,
    )
    return full.without_layer("tec").replace_layer("tim1", merged_tim1)
