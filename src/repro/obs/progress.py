"""Live campaign progress: per-unit state, throughput, cache, ETA.

:class:`ProgressBoard` is the consumer side of the exec layer's
progress hooks.  The scheduler, supervisor, and serial campaign loops
call the ``unit_*`` methods as units move through their lifecycle
(queued → running → retrying/quarantined → done); the board aggregates
counts, derives throughput and an ETA from completions, folds cache
hit rates out of live metric snapshots, and renders to an injected
text stream:

* on a TTY, a single status line continuously rewritten in place
  (carriage return, no scroll);
* otherwise, one full log line at most every ``interval_s`` seconds —
  CI logs get a readable heartbeat instead of control characters.

All hooks are thread-safe (pool completion callbacks fire on executor
threads; the supervisor calls from its poll loop) and cheap enough to
invoke per unit.  The board never owns the stream: callers pass
``sys.stderr`` (the CLI) or a capture buffer (tests) and keep
responsibility for closing it.

A board can also carry a ``publisher`` — typically a
:class:`repro.obs.live.TelemetryStream` — whose ``pump()`` is invoked
on every unit completion, which is how ``--progress`` and the
streaming sinks share one set of exec-layer hooks.
"""

from __future__ import annotations

import threading
from typing import IO, Any, Dict, Optional

from ..errors import ConfigurationError
from .clock import monotonic

#: Minimum seconds between non-TTY log lines.
DEFAULT_LOG_INTERVAL_S = 5.0

#: Width budget for the TTY status line (rewritten in place).
_LINE_WIDTH = 110


def _hit_rate(counters: Dict[str, Any], hits_key: str,
              misses_key: str) -> Optional[float]:
    hits = float(counters.get(hits_key) or 0)
    misses = float(counters.get(misses_key) or 0)
    total = hits + misses
    if total <= 0:
        return None
    return hits / total


class ProgressBoard:
    """Aggregates unit lifecycle events and renders a status line.

    Args:
        out: Text stream to render to (never closed by the board).
        total: Expected unit count, when known up front; ``begin``
            can set or revise it.
        interval_s: Minimum seconds between renders when ``out`` is
            not a TTY (TTY renders are throttled to 10 Hz).
        label: Short campaign label shown on every line.
        publisher: Optional object with a ``pump()`` method (a
            :class:`~repro.obs.live.TelemetryStream`), pumped on unit
            completions and at ``finish``.
    """

    def __init__(self, out: IO[str], total: int = 0,
                 interval_s: float = DEFAULT_LOG_INTERVAL_S,
                 label: str = "campaign",
                 publisher: Optional[Any] = None):
        if interval_s <= 0.0:
            raise ConfigurationError(
                f"interval_s must be > 0, got {interval_s}")
        self._out = out
        self._tty = bool(getattr(out, "isatty", lambda: False)())
        self._interval_s = float(interval_s)
        self._min_render_gap = 0.1 if self._tty else self._interval_s
        self._label = label
        self._publisher = publisher
        self._lock = threading.Lock()
        self._started_at: Optional[float] = None
        self._last_render_at = -float("inf")
        self._rendered_any = False
        self.total = max(int(total), 0)
        self.done = 0
        self.failed = 0
        self.running = 0
        self.retries = 0
        self.quarantined = 0
        self._cache_rates: Dict[str, float] = {}

    # -- lifecycle hooks (the exec layer calls these) ------------------

    def begin(self, total: int, label: Optional[str] = None) -> None:
        """Declare (or revise) the unit count before dispatch."""
        with self._lock:
            self.total = max(int(total), 0)
            if label is not None:
                self._label = label
            if self._started_at is None:
                self._started_at = monotonic()
            self._render_locked(force=True)

    def unit_running(self, name: str, attempt: int = 1) -> None:
        """A unit was dispatched to a worker (or started in-process)."""
        with self._lock:
            if self._started_at is None:
                self._started_at = monotonic()
            self.running += 1
            self._render_locked()

    def unit_retrying(self, name: str, attempt: int,
                      reason: Optional[str] = None) -> None:
        """A unit attempt failed and was requeued."""
        with self._lock:
            self.running = max(self.running - 1, 0)
            self.retries += 1
            self._render_locked()

    def unit_quarantined(self, name: str, attempts: int = 0) -> None:
        """A unit exhausted its retry budget and was quarantined."""
        with self._lock:
            self.running = max(self.running - 1, 0)
            self.quarantined += 1
            self._render_locked()

    def unit_done(self, name: str, wall_seconds: float = 0.0,
                  ok: bool = True) -> None:
        """A unit completed (``ok=False`` for isolated failures)."""
        with self._lock:
            self.running = max(self.running - 1, 0)
            self.done += 1
            if not ok:
                self.failed += 1
            self._render_locked()
        self._pump()

    def live_metrics(self, snapshot: Dict[str, Any]) -> None:
        """Fold cache hit rates out of a live metrics snapshot."""
        counters = snapshot.get("counters") or {}
        with self._lock:
            rate = _hit_rate(counters, "evaluator.cache.hits",
                             "evaluator.cache.misses")
            if rate is not None:
                self._cache_rates["eval"] = rate
            rate = _hit_rate(counters, "operator.factor.hits",
                             "operator.factorizations")
            if rate is not None:
                self._cache_rates["factor"] = rate
            self._render_locked()

    def finish(self) -> None:
        """Render the final state and terminate the TTY line."""
        self._pump(final=True)
        with self._lock:
            self._render_locked(force=True)
            if self._tty and self._rendered_any:
                self._out.write("\n")
                self._out.flush()

    # -- derived state -------------------------------------------------

    def throughput(self) -> float:
        """Completed units per second (0 before the first completion)."""
        if self._started_at is None or not self.done:
            return 0.0
        elapsed = monotonic() - self._started_at
        return self.done / elapsed if elapsed > 0 else 0.0

    def eta_s(self) -> Optional[float]:
        """Estimated seconds to completion, None while unknowable."""
        rate = self.throughput()
        if rate <= 0.0 or self.total <= 0:
            return None
        remaining = self.total - self.done
        if remaining <= 0:
            return 0.0
        return remaining / rate

    # -- rendering -----------------------------------------------------

    def _pump(self, final: bool = False) -> None:
        publisher = self._publisher
        if publisher is not None:
            publisher.pump(final=final)

    def status_line(self) -> str:
        """The current one-line status (also what gets rendered)."""
        total = str(self.total) if self.total else "?"
        parts = [f"{self._label}: {self.done}/{total}"]
        if self.running:
            parts.append(f"{self.running} running")
        if self.retries:
            parts.append(f"{self.retries} retried")
        if self.quarantined:
            parts.append(f"{self.quarantined} quarantined")
        if self.failed:
            parts.append(f"{self.failed} failed")
        rate = self.throughput()
        if rate > 0.0:
            parts.append(f"{rate:.2f} unit/s")
        for key in sorted(self._cache_rates):
            parts.append(
                f"{key} cache {self._cache_rates[key] * 100.0:.0f}%")
        eta = self.eta_s()
        if eta is not None and self.done < self.total:
            parts.append(f"ETA {eta:.0f}s")
        return " | ".join(parts)

    def _render_locked(self, force: bool = False) -> None:
        now = monotonic()
        if not force and now - self._last_render_at \
                < self._min_render_gap:
            return
        self._last_render_at = now
        line = self.status_line()
        if self._tty:
            text = line[:_LINE_WIDTH]
            self._out.write("\r" + text.ljust(_LINE_WIDTH))
        else:
            self._out.write(line + "\n")
        self._out.flush()
        self._rendered_any = True


__all__ = [
    "DEFAULT_LOG_INTERVAL_S",
    "ProgressBoard",
]
