"""Streaming telemetry: sinks, the background flusher, and the pump.

The rest of the obs plane is *post-hoc*: spans and metrics accumulate
in memory and materialize once, after the run (``save_trace``, the
``"telemetry"`` block of a results file).  This module is the live
half.  A :class:`TelemetrySink` consumes telemetry *records* — small
JSON-friendly dictionaries tagged by ``"record"`` type — while the run
is still going:

* ``{"record": "span", ...}`` — one finished span
  (:func:`repro.obs.span_to_dict` layout);
* ``{"record": "metrics", "seq": n, "snapshot": {...}}`` — a full
  registry snapshot (:meth:`MetricsRegistry.snapshot` layout), newest
  wins;
* ``{"record": "event", ...}`` — anything else a caller wants logged.

Two sink implementations ship here: :class:`RotatingJsonlSink` (append
records as JSONL, rotate at a byte budget so soaks cannot fill the
disk) and :class:`OpenMetricsSink` (render the latest metrics snapshot
as Prometheus/OpenMetrics text, atomically, for scrapers to poll).

Sinks never sit on the hot path.  Producers hand records to a
:class:`BackgroundFlusher` — a bounded queue drained by a daemon
thread — whose :meth:`~BackgroundFlusher.publish` is non-blocking: when
the queue is full the record is *dropped and counted*, never waited
for.  A solve loop therefore pays one ``put_nowait`` per record at
worst, regardless of how slow the disk is.

:class:`TelemetryStream` is the standard producer: it tails a live
:class:`~repro.obs.Tracer` (publishing spans finished since the last
pump) and periodically re-publishes the registry snapshot.  The exec
supervisor drives it from unit-completion callbacks, so a campaign's
trace file grows while the campaign runs instead of appearing at join.
"""

from __future__ import annotations

import json
import os
import queue
import threading
from typing import IO, Any, Dict, List, Optional, Sequence

from ..errors import ConfigurationError
from .clock import monotonic
from .export import span_to_dict
from .metrics import MetricsRegistry
from .tracing import Tracer

#: Default byte budget per JSONL segment before rotation.
DEFAULT_MAX_BYTES = 8 * 1024 * 1024

#: Default rotated-segment count (``path.1`` .. ``path.N``).
DEFAULT_MAX_FILES = 3

#: Default bounded-queue depth for the background flusher.
DEFAULT_QUEUE_SIZE = 4096

#: Default minimum seconds between metric-snapshot publishes.
DEFAULT_PUMP_INTERVAL_S = 0.5


class TelemetrySink:
    """Protocol for streaming-telemetry consumers.

    A sink accepts telemetry records one at a time via :meth:`write`,
    persists buffered state on :meth:`flush`, and releases resources on
    :meth:`close`.  Sinks are driven from a single flusher thread, so
    implementations need no internal locking; they must tolerate
    records of unknown ``"record"`` type by ignoring them.
    """

    def write(self, record: Dict[str, Any]) -> None:
        """Consume one telemetry record."""
        raise NotImplementedError

    def flush(self) -> None:
        """Persist any buffered state (no-op by default)."""

    def close(self) -> None:
        """Flush and release resources (no-op beyond flush by default)."""
        self.flush()


class RotatingJsonlSink(TelemetrySink):
    """Append telemetry records to a JSONL file with size rotation.

    When the active segment exceeds ``max_bytes`` it is rotated:
    ``path`` becomes ``path.1``, ``path.1`` becomes ``path.2``, and so
    on up to ``max_files`` retained rotated segments (the oldest is
    discarded).  Records that fail to serialize are replaced by an
    ``{"record": "error"}`` marker rather than raised, so one bad
    attribute cannot kill the flusher thread.
    """

    def __init__(self, path: str, max_bytes: int = DEFAULT_MAX_BYTES,
                 max_files: int = DEFAULT_MAX_FILES):
        if max_bytes < 1024:
            raise ConfigurationError(
                f"max_bytes must be >= 1024, got {max_bytes}")
        if max_files < 1:
            raise ConfigurationError(
                f"max_files must be >= 1, got {max_files}")
        self.path = path
        self.max_bytes = int(max_bytes)
        self.max_files = int(max_files)
        self.records_written = 0
        self.rotations = 0
        self._stream: Optional[IO[str]] = open(
            path, "a", encoding="utf-8")
        self._size = self._stream.tell()

    def _rotate(self) -> None:
        if self._stream is None:
            return
        self._stream.close()
        oldest = f"{self.path}.{self.max_files}"
        if os.path.exists(oldest):
            os.remove(oldest)
        for index in range(self.max_files - 1, 0, -1):
            src = f"{self.path}.{index}"
            if os.path.exists(src):
                os.replace(src, f"{self.path}.{index + 1}")
        os.replace(self.path, f"{self.path}.1")
        self._stream = open(self.path, "a", encoding="utf-8")
        self._size = 0
        self.rotations += 1

    def write(self, record: Dict[str, Any]) -> None:
        """Append one record as a JSON line, rotating when over budget."""
        if self._stream is None:
            return
        try:
            line = json.dumps(record, default=str)
        except (TypeError, ValueError):
            line = json.dumps({"record": "error",
                               "reason": "unserializable-record"})
        if self._size + len(line) + 1 > self.max_bytes and self._size:
            self._rotate()
        self._stream.write(line + "\n")
        self._size += len(line) + 1
        self.records_written += 1

    def flush(self) -> None:
        """Flush the active segment to the OS."""
        if self._stream is not None:
            self._stream.flush()

    def close(self) -> None:
        """Flush and close the active segment."""
        if self._stream is not None:
            self._stream.flush()
            self._stream.close()
            self._stream = None


def _openmetrics_name(name: str) -> str:
    """Map a dotted metric name onto the OpenMetrics charset."""
    safe = "".join(ch if ch.isalnum() or ch == "_" else "_"
                   for ch in name)
    if not safe or not (safe[0].isalpha() or safe[0] == "_"):
        safe = "_" + safe
    return "repro_" + safe


def _format_value(value: float) -> str:
    as_float = float(value)
    if as_float == int(as_float) and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


def metrics_to_openmetrics(snapshot: Dict[str, Any]) -> str:
    """Render a registry snapshot as OpenMetrics/Prometheus text.

    Counters gain the ``_total`` suffix, histogram buckets are emitted
    *cumulatively* with the standard ``le`` label and ``+Inf`` overflow
    line, and the exposition ends with ``# EOF`` per the OpenMetrics
    spec.  Names are sanitized (dots become underscores) and prefixed
    ``repro_``.  The output is deterministic for a given snapshot.
    """
    lines: List[str] = []
    for name, value in sorted(
            (snapshot.get("counters") or {}).items()):
        metric = _openmetrics_name(name)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric}_total {_format_value(value)}")
    for name, value in sorted((snapshot.get("gauges") or {}).items()):
        metric = _openmetrics_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(value)}")
    for name, entry in sorted(
            (snapshot.get("histograms") or {}).items()):
        metric = _openmetrics_name(name)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for bound, count in entry.get("buckets") or ():
            cumulative += int(count)
            lines.append(
                f'{metric}_bucket{{le="{float(bound):g}"}} '
                f"{cumulative}")
        cumulative += int(entry.get("overflow") or 0)
        lines.append(f'{metric}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(
            f"{metric}_sum {_format_value(entry.get('sum') or 0.0)}")
        lines.append(
            f"{metric}_count {int(entry.get('count') or 0)}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


class OpenMetricsSink(TelemetrySink):
    """Expose the latest metrics snapshot as OpenMetrics text.

    Retains the newest ``{"record": "metrics"}`` record seen and, on
    :meth:`flush`, renders it to ``path`` atomically (write to a
    temporary sibling, then :func:`os.replace`) so a scraper polling
    the file never reads a torn exposition.  Span records are ignored.
    """

    def __init__(self, path: str):
        self.path = path
        self.renders = 0
        self._latest: Optional[Dict[str, Any]] = None
        self._dirty = False

    def write(self, record: Dict[str, Any]) -> None:
        """Retain the newest metrics snapshot; ignore other records."""
        if record.get("record") != "metrics":
            return
        snapshot = record.get("snapshot")
        if isinstance(snapshot, dict):
            self._latest = snapshot
            self._dirty = True

    def flush(self) -> None:
        """Atomically re-render ``path`` if a newer snapshot arrived."""
        if not self._dirty or self._latest is None:
            return
        text = metrics_to_openmetrics(self._latest)
        tmp_path = self.path + ".tmp"
        with open(tmp_path, "w", encoding="utf-8") as stream:
            stream.write(text)
        os.replace(tmp_path, self.path)
        self.renders += 1
        self._dirty = False


_CLOSE_SENTINEL: Dict[str, Any] = {"record": "__close__"}


class BackgroundFlusher:
    """Bounded-queue fan-out from producers to sinks, off the hot path.

    Producers call :meth:`publish`, which enqueues without blocking:
    when the queue is full the record is dropped and
    :attr:`dropped_records` incremented — a slow disk degrades
    telemetry, never the solve.  A daemon thread drains the queue into
    every sink and flushes them at most every ``interval_s`` seconds of
    idleness.  :meth:`close` delivers everything already queued, then
    flushes and closes the sinks; it is idempotent.

    A sink whose ``write`` raises is disabled for the rest of the run
    (and counted in :attr:`sink_errors`) rather than allowed to kill
    the flusher thread.
    """

    def __init__(self, sinks: Sequence[TelemetrySink],
                 maxsize: int = DEFAULT_QUEUE_SIZE,
                 interval_s: float = 0.25):
        if maxsize < 1:
            raise ConfigurationError(
                f"maxsize must be >= 1, got {maxsize}")
        if interval_s <= 0.0:
            raise ConfigurationError(
                f"interval_s must be > 0, got {interval_s}")
        self._sinks: List[TelemetrySink] = list(sinks)
        self._dead: List[TelemetrySink] = []
        self._queue: "queue.Queue[Dict[str, Any]]" = queue.Queue(
            maxsize=maxsize)
        self._interval_s = float(interval_s)
        self._closed = False
        self.published_records = 0
        self.dropped_records = 0
        self.sink_errors = 0
        self._thread = threading.Thread(
            target=self._drain_loop, name="repro-telemetry-flusher",
            daemon=True)
        self._thread.start()

    def publish(self, record: Dict[str, Any]) -> bool:
        """Enqueue one record without blocking.

        Returns True if accepted, False if dropped (queue full or
        flusher already closed).
        """
        if self._closed:
            self.dropped_records += 1
            return False
        try:
            self._queue.put_nowait(record)
        except queue.Full:
            self.dropped_records += 1
            return False
        self.published_records += 1
        return True

    def _deliver(self, record: Dict[str, Any]) -> None:
        for sink in list(self._sinks):
            try:
                # This IS the flusher's worker thread — the one place
                # sink I/O is supposed to happen per record.
                sink.write(record)  # physlint: disable=RPR504
            except Exception:  # physlint: disable=RPR201
                # A failing sink must not take down the flusher thread
                # (or, transitively, drop telemetry for healthy sinks):
                # quarantine it and keep draining.
                self.sink_errors += 1
                self._sinks.remove(sink)
                self._dead.append(sink)

    def _flush_sinks(self) -> None:
        for sink in list(self._sinks):
            try:
                sink.flush()
            except Exception:  # physlint: disable=RPR201
                # Same quarantine contract as _deliver.
                self.sink_errors += 1
                self._sinks.remove(sink)
                self._dead.append(sink)

    def _drain_loop(self) -> None:
        while True:
            try:
                record = self._queue.get(timeout=self._interval_s)
            except queue.Empty:
                self._flush_sinks()
                continue
            if record is _CLOSE_SENTINEL:
                return
            self._deliver(record)

    def close(self, timeout_s: float = 5.0) -> None:
        """Deliver queued records, flush and close sinks, stop the
        thread.  Safe to call more than once."""
        if self._closed:
            return
        self._closed = True
        try:
            self._queue.put(_CLOSE_SENTINEL, timeout=timeout_s)
        except queue.Full:
            pass
        self._thread.join(timeout=timeout_s)
        # Drain anything the thread did not get to (including the case
        # where the sentinel never fit in the queue).
        while True:
            try:
                record = self._queue.get_nowait()
            except queue.Empty:
                break
            if record is not _CLOSE_SENTINEL:
                self._deliver(record)
        self._flush_sinks()
        for sink in list(self._sinks) + list(self._dead):
            try:
                sink.close()
            except Exception:  # physlint: disable=RPR201
                # Closing is best-effort; a sink that cannot close has
                # nothing left we can do for it.
                self.sink_errors += 1

    def __enter__(self) -> "BackgroundFlusher":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


class TelemetryStream:
    """Tail a live tracer/registry into a :class:`BackgroundFlusher`.

    :meth:`pump` publishes every span finished since the previous pump
    (in finish order, by cursor — spans already streamed are never
    re-sent) and, at most once per ``interval_s`` seconds, a fresh
    metrics-snapshot record.  Callers invoke it opportunistically from
    progress callbacks; it is cheap when there is nothing new and
    thread-safe (pool completion callbacks run on executor threads).

    ``pump(final=True)`` bypasses the snapshot throttle so the last
    snapshot of a run is always published.
    """

    def __init__(self, tracer: Tracer, metrics: MetricsRegistry,
                 flusher: BackgroundFlusher,
                 interval_s: float = DEFAULT_PUMP_INTERVAL_S):
        if interval_s < 0.0:
            raise ConfigurationError(
                f"interval_s must be >= 0, got {interval_s}")
        self._tracer = tracer
        self._metrics = metrics
        self._flusher = flusher
        self._interval_s = float(interval_s)
        self._cursor = 0
        self._seq = 0
        self._last_snapshot_at = -float("inf")
        self._lock = threading.Lock()

    @property
    def spans_streamed(self) -> int:
        """Spans published so far (cursor position)."""
        return self._cursor

    def pump(self, final: bool = False) -> int:
        """Publish new spans (and maybe a snapshot); returns the number
        of records published."""
        published = 0
        with self._lock:
            finished = self._tracer.finished
            # The tracer caps its finished list; if spans were dropped
            # from the front the cursor must not re-send survivors.
            cursor = min(self._cursor, len(finished))
            for span in finished[cursor:]:
                if self._flusher.publish(span_to_dict(span)):
                    published += 1
            self._cursor = len(finished)
            now = monotonic()
            if final or now - self._last_snapshot_at \
                    >= self._interval_s:
                self._seq += 1
                record = {"record": "metrics", "seq": self._seq,
                          "snapshot": self._metrics.snapshot()}
                if self._flusher.publish(record):
                    published += 1
                self._last_snapshot_at = now
        return published


__all__ = [
    "BackgroundFlusher",
    "DEFAULT_MAX_BYTES",
    "DEFAULT_MAX_FILES",
    "DEFAULT_PUMP_INTERVAL_S",
    "DEFAULT_QUEUE_SIZE",
    "OpenMetricsSink",
    "RotatingJsonlSink",
    "TelemetrySink",
    "TelemetryStream",
    "metrics_to_openmetrics",
]
