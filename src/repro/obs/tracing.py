"""Hierarchical tracing: spans, span events, exception recording.

A *span* is one timed region of the pipeline — a campaign, one
benchmark, one ladder attempt, one fresh thermal solve — carrying a
``kind`` (the taxonomy key, see docs/OBSERVABILITY.md), an optional
human ``name``, attributes, and nested events.  Spans form a tree via
``parent_id``; the :class:`Tracer` keeps the open-span stack so nesting
falls out of ordinary ``with`` scoping:

    with tracer.span("benchmark", "basicmath"):
        with tracer.span("evaluate", omega=262.0):
            tracer.event("fault.injected", kind="solve-timeout")

Exceptions crossing a span boundary are recorded (``status="error"``
plus the rendered exception) and re-raised, so a trace of a chaos run
shows exactly which solve each injected fault perturbed and how far the
failure propagated.

The :data:`NOOP_TRACER` singleton is the disabled implementation: its
``span`` returns a shared null context manager and every other method
returns immediately, keeping un-traced hot paths at one attribute check
(see :mod:`repro.obs.runtime`).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

from .clock import monotonic

#: Rendered-excerpt default length (spans), newest last.
DEFAULT_EXCERPT_SPANS = 8

#: Cap on retained finished spans; beyond it the oldest are dropped and
#: counted, bounding memory on unattended soaks.
DEFAULT_MAX_SPANS = 200_000


@dataclass
class SpanEvent:
    """One point-in-time event attached to a span.

    Attributes:
        name: Event name (dotted lowercase, e.g. ``fault.injected``).
        time_s: Trace-relative timestamp, s.
        attributes: JSON-friendly event payload.
    """

    name: str
    time_s: float
    attributes: Dict[str, Any] = field(default_factory=dict)


class Span:
    """One timed region of the pipeline.

    Times are trace-relative monotonic seconds (the tracer anchors its
    origin at construction and separately records the wall-clock epoch
    for the exporter).
    """

    __slots__ = ("span_id", "parent_id", "kind", "name", "start_s",
                 "end_s", "attributes", "events", "status", "error")

    def __init__(self, span_id: int, parent_id: Optional[int],
                 kind: str, name: Optional[str], start_s: float,
                 attributes: Dict[str, Any]):
        self.span_id = span_id
        self.parent_id = parent_id
        self.kind = kind
        self.name = name
        self.start_s = start_s
        self.end_s: Optional[float] = None
        self.attributes = attributes
        self.events: List[SpanEvent] = []
        self.status = "ok"
        self.error: Optional[str] = None

    @property
    def duration_s(self) -> float:
        """Span duration, s (0 while still open)."""
        if self.end_s is None:
            return 0.0
        return self.end_s - self.start_s

    @property
    def finished(self) -> bool:
        """True once the span has ended."""
        return self.end_s is not None

    def set_attribute(self, key: str, value: Any) -> None:
        """Attach (or overwrite) one attribute."""
        self.attributes[key] = value

    def add_event(self, name: str, time_s: float, **attributes: Any,
                  ) -> SpanEvent:
        """Attach an event at trace-relative ``time_s`` seconds."""
        event = SpanEvent(name=name, time_s=time_s,
                          attributes=attributes)
        self.events.append(event)
        return event

    def record_exception(self, exc: BaseException) -> None:
        """Mark the span failed with the rendered exception."""
        self.status = "error"
        self.error = f"{type(exc).__name__}: {exc}"

    def render(self) -> str:
        """Compact one-line form (used by failure-report excerpts)."""
        label = self.kind if self.name is None \
            else f"{self.kind}:{self.name}"
        if self.end_s is None:
            timing = "open"
        else:
            timing = f"{self.duration_s:.4f}s"
        text = f"{label} [{timing}] {self.status}"
        if self.error is not None:
            text += f" {self.error}"
        if self.events:
            text += f" ({len(self.events)} events)"
        return text


class _NullSpan:
    """The shared do-nothing span handed out by :class:`NoopTracer`."""

    __slots__ = ()
    kind = ""
    name = None
    status = "ok"
    error = None
    duration_s = 0.0
    finished = False

    def set_attribute(self, key: str, value: Any) -> None:
        pass

    def add_event(self, name: str, time_s: float = 0.0,
                  **attributes: Any) -> None:
        pass

    def record_exception(self, exc: BaseException) -> None:
        pass


NOOP_SPAN = _NullSpan()


class _NullSpanContext:
    """Reusable context manager yielding :data:`NOOP_SPAN`.

    Stateless, hence safe to share and re-enter; swallowing nothing
    (``__exit__`` returns False) so exceptions propagate unchanged.
    """

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return NOOP_SPAN

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN_CONTEXT = _NullSpanContext()


class Tracer:
    """Collects a hierarchical span tree over one run.

    Single-threaded by design (the solve pipeline is synchronous); the
    open-span stack *is* the hierarchy.  Finished spans accumulate in
    :attr:`finished` until exported with
    :func:`repro.obs.write_trace_jsonl`.
    """

    enabled = True

    def __init__(self, max_spans: int = DEFAULT_MAX_SPANS):
        from ..errors import ConfigurationError
        if max_spans < 1:
            raise ConfigurationError(
                f"max_spans must be >= 1, got {max_spans}")
        #: Wall-clock epoch of the trace origin (Unix seconds), for the
        #: exporter's metadata record only; span times are monotonic.
        self.created_unix = time.time()
        self._origin = monotonic()
        self._max_spans = max_spans
        self.finished: List[Span] = []
        #: Events emitted with no span open (exported on a virtual root).
        self.orphan_events: List[SpanEvent] = []
        self.dropped_spans = 0
        self._stack: List[Span] = []
        self._next_id = 1

    # -- clock --------------------------------------------------------

    def now(self) -> float:
        """Trace-relative monotonic time, s."""
        return monotonic() - self._origin

    # -- span lifecycle -----------------------------------------------

    @property
    def current_span(self) -> Optional[Span]:
        """The innermost open span, or None outside any span."""
        return self._stack[-1] if self._stack else None

    @property
    def open_span_count(self) -> int:
        """Depth of the open-span stack."""
        return len(self._stack)

    def start_span(self, kind: str, name: Optional[str] = None,
                   **attributes: Any) -> Span:
        """Open a span as a child of the current span and make it
        current.  Prefer the :meth:`span` context manager; this
        explicit form exists for callers whose begin/end do not nest
        lexically."""
        parent = self._stack[-1].span_id if self._stack else None
        span = Span(span_id=self._next_id, parent_id=parent, kind=kind,
                    name=name, start_s=self.now(),
                    attributes=dict(attributes))
        self._next_id += 1
        self._stack.append(span)
        return span

    def end_span(self, span: Span) -> None:
        """Close ``span`` (and any deeper spans left open over it)."""
        while self._stack:
            top = self._stack.pop()
            top.end_s = self.now()
            self._keep(top)
            if top is span:
                return
        # Span not on the stack (already closed): nothing to do.

    def _keep(self, span: Span) -> None:
        self.finished.append(span)
        if len(self.finished) > self._max_spans:
            overflow = len(self.finished) - self._max_spans
            del self.finished[:overflow]
            self.dropped_spans += overflow

    @contextmanager
    def span(self, kind: str, name: Optional[str] = None,
             **attributes: Any) -> Iterator[Span]:
        """Context manager: open a child span, record any exception
        crossing the boundary, and close it on exit."""
        span = self.start_span(kind, name, **attributes)
        try:
            yield span
        except BaseException as exc:  # physlint: disable=RPR201
            # Record-and-reraise, not a handler: even KeyboardInterrupt
            # should mark the span failed on its way out, and the bare
            # `raise` below guarantees nothing is swallowed — which is
            # why BaseException is safe here and a narrower catch
            # would silently lose span status.
            span.record_exception(exc)
            raise
        finally:
            self.end_span(span)

    # -- events -------------------------------------------------------

    def event(self, name: str, **attributes: Any) -> None:
        """Attach an event to the current span (or to the trace root
        when no span is open)."""
        current = self.current_span
        if current is not None:
            current.add_event(name, self.now(), **attributes)
        else:
            self.orphan_events.append(SpanEvent(
                name=name, time_s=self.now(), attributes=attributes))

    # -- adoption -----------------------------------------------------

    def adopt_records(self, records: List[Dict[str, Any]],
                      parent: Optional[Span] = None,
                      time_offset: float = 0.0,
                      id_map: Optional[Dict[int, int]] = None) -> int:
        """Graft exported span records into this tracer's tree.

        ``records`` is a batch of :func:`repro.obs.span_to_dict`
        dictionaries from another tracer — typically one pool worker's
        finished spans, whose ids and clock are meaningless here.  Each
        record gets a fresh id from this tracer, parent links *within*
        the batch are remapped to the fresh ids, batch roots are
        attached to ``parent`` (or to the current span when omitted),
        and all times are shifted by ``time_offset`` so the adopted
        spans land where the unit ran on this tracer's clock.

        ``id_map`` carries the remapping across calls for *streamed*
        adoption: when one source tracer arrives as several live delta
        batches, pass the same (initially empty) dictionary every time
        and parents finished in an earlier batch still resolve — a
        record whose parent is in neither the map nor the batch falls
        back to ``parent``.  Omitted, the map is per-batch (the
        end-of-run behaviour).  The caller owns one map per source
        tracer; sharing it across workers would collide their ids.

        Records are adopted in batch order, which preserves the
        worker's finish order, and count against the max-span cap like
        locally finished spans.  Returns the number adopted.
        """
        if parent is None:
            parent = self.current_span
        default_parent = parent.span_id if parent is not None else None
        # First pass: assign fresh ids to the whole batch.  The batch
        # arrives in finish order (children before parents), so parent
        # remapping has to see every id before any span is built.
        if id_map is None:
            id_map = {}
        for record in records:
            if record["span_id"] not in id_map:
                id_map[record["span_id"]] = self._next_id
                self._next_id += 1
        adopted = 0
        for record in records:
            new_parent = id_map.get(record.get("parent_id"),
                                    default_parent)
            span = Span(
                span_id=id_map[record["span_id"]],
                parent_id=new_parent,
                kind=record["kind"],
                name=record.get("name"),
                start_s=float(record.get("start_s") or 0.0)
                + time_offset,
                attributes=dict(record.get("attributes") or {}))
            end_s = record.get("end_s")
            span.end_s = None if end_s is None \
                else float(end_s) + time_offset
            span.status = record.get("status", "ok")
            span.error = record.get("error")
            for event in record.get("events") or ():
                span.add_event(event["name"],
                               float(event.get("time_s") or 0.0)
                               + time_offset,
                               **(event.get("attributes") or {}))
            self._keep(span)
            adopted += 1
        return adopted

    # -- inspection ---------------------------------------------------

    def spans_of_kind(self, kind: str) -> List[Span]:
        """Finished spans of one kind, in finish order."""
        return [span for span in self.finished if span.kind == kind]

    def excerpt(self, limit: int = DEFAULT_EXCERPT_SPANS) -> List[str]:
        """Compact lines for the most recent finished spans (oldest
        first) — the failure-report attachment."""
        if limit <= 0:
            return []
        return [span.render() for span in self.finished[-limit:]]


class NoopTracer:
    """The disabled tracer: every operation is a constant-time no-op."""

    enabled = False
    finished: List[Span] = []
    orphan_events: List[SpanEvent] = []
    dropped_spans = 0
    current_span = None
    open_span_count = 0

    def now(self) -> float:
        """Always 0 (the noop tracer keeps no clock)."""
        return 0.0

    def span(self, kind: str, name: Optional[str] = None,
             **attributes: Any) -> _NullSpanContext:
        """The shared null context manager."""
        return NULL_SPAN_CONTEXT

    def start_span(self, kind: str, name: Optional[str] = None,
                   **attributes: Any) -> _NullSpan:
        """The shared null span."""
        return NOOP_SPAN

    def end_span(self, span: Any) -> None:
        pass

    def event(self, name: str, **attributes: Any) -> None:
        pass

    def spans_of_kind(self, kind: str) -> List[Span]:
        """Always empty."""
        return []

    def excerpt(self, limit: int = DEFAULT_EXCERPT_SPANS) -> List[str]:
        """Always empty."""
        return []


#: The process-wide disabled tracer (see :mod:`repro.obs.runtime`).
NOOP_TRACER = NoopTracer()


__all__ = [
    "DEFAULT_MAX_SPANS",
    "NOOP_SPAN",
    "NOOP_TRACER",
    "NULL_SPAN_CONTEXT",
    "NoopTracer",
    "Span",
    "SpanEvent",
    "Tracer",
]
