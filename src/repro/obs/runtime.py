"""Process-wide telemetry state and the hot-path access helpers.

One mutable holder (:data:`STATE`) carries the active tracer and
metrics registry.  Both default to the shared no-op singletons, so the
cost of an un-instrumented run is a single attribute check per seam:

    from ..obs import runtime as _OBS

    if _OBS.STATE.enabled:
        _OBS.STATE.metrics.counter("operator.cache.hits").inc()

Enablement is all-or-nothing by design — the pipeline seams are cheap
enough that separately toggling tracing and metrics buys nothing but
matrix-testing surface.  :func:`telemetry_session` is the frontend used
by the CLI and tests: it installs a fresh ``(Tracer, MetricsRegistry)``
pair, yields them, and restores the previous state on exit even when
the traced run fails.

Process semantics (see docs/PARALLELISM.md): :data:`STATE` is
per-process.  Under the ``spawn`` start method a worker imports this
module fresh and starts disabled; under ``fork`` the child would
inherit a copy of the parent's *enabled* state pointing at a tracer
the parent can never read back, so an ``os.register_at_fork`` hook
resets forked children to the disabled no-op state.  Workers that want
telemetry open their own :func:`telemetry_session` and ship the
exported spans/snapshot home (the ``repro.exec`` scheduler re-parents
them under the coordinating span).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Any, Callable, Iterator, Optional, Tuple, TypeVar

from .metrics import NOOP_METRICS, MetricsRegistry
from .tracing import NOOP_TRACER, NULL_SPAN_CONTEXT, Tracer

F = TypeVar("F", bound=Callable[..., Any])


class ObsState:
    """The mutable holder for the active telemetry backends.

    ``enabled`` is the single hot-path flag: True exactly when a real
    tracer/registry pair is installed.
    """

    __slots__ = ("tracer", "metrics", "enabled")

    def __init__(self) -> None:
        self.tracer = NOOP_TRACER
        self.metrics = NOOP_METRICS
        self.enabled = False


#: The process-wide telemetry state.  Read it through the accessors
#: below (or directly on hot paths, guarded by ``STATE.enabled``).
STATE = ObsState()


def get_tracer():
    """The active tracer (the no-op singleton when disabled)."""
    return STATE.tracer


def get_metrics():
    """The active metrics registry (the no-op singleton when disabled)."""
    return STATE.metrics


def is_enabled() -> bool:
    """True when a real telemetry session is installed."""
    return STATE.enabled


def install(tracer: Optional[Tracer] = None,
            metrics: Optional[MetricsRegistry] = None,
            ) -> Tuple[Tracer, MetricsRegistry]:
    """Install (and return) an active tracer/registry pair.

    Omitted arguments get fresh instances.  Prefer
    :func:`telemetry_session` outside of long-lived embeddings — it
    restores the previous state on exit.
    """
    active_tracer = tracer if tracer is not None else Tracer()
    active_metrics = metrics if metrics is not None \
        else MetricsRegistry()
    STATE.tracer = active_tracer
    STATE.metrics = active_metrics
    STATE.enabled = True
    return active_tracer, active_metrics


def reset() -> None:
    """Return to the disabled (no-op) state."""
    STATE.tracer = NOOP_TRACER
    STATE.metrics = NOOP_METRICS
    STATE.enabled = False


def _reset_after_fork() -> None:
    """Drop inherited telemetry state in a forked child.

    A fork clones an enabled parent's tracer into the child, where
    every span it records is invisible to the parent — worse than
    useless, because the child pays the tracing cost for data nobody
    can collect.  Children therefore start disabled and opt back in
    with their own :func:`telemetry_session` (which the ``repro.exec``
    worker shim does when the coordinator asked for telemetry).
    """
    reset()


if hasattr(os, "register_at_fork"):  # pragma: no branch - POSIX only
    os.register_at_fork(after_in_child=_reset_after_fork)


@contextmanager
def telemetry_session(tracer: Optional[Tracer] = None,
                      metrics: Optional[MetricsRegistry] = None,
                      ) -> Iterator[Tuple[Tracer, MetricsRegistry]]:
    """Enable telemetry for the enclosed block.

    Yields the installed ``(tracer, metrics)`` pair and restores the
    previous state afterwards, so sessions nest and a failing traced
    run cannot leak an enabled tracer into later work.

    Safe to open inside pool workers: each process has its own
    :data:`STATE` (fork-inherited copies are reset by the at-fork
    hook), so a worker session never races the coordinator's.  Export
    the finished spans and a metrics snapshot before the worker
    returns — in-memory state dies with the process.
    """
    previous = (STATE.tracer, STATE.metrics, STATE.enabled)
    pair = install(tracer, metrics)
    try:
        yield pair
    finally:
        STATE.tracer, STATE.metrics, STATE.enabled = previous


def span(kind: str, name: Optional[str] = None, **attributes: Any):
    """A span context manager on the active tracer.

    The disabled path returns the shared null context manager without
    touching the tracer — suitable for warm seams.  The hottest loops
    guard on ``STATE.enabled`` directly instead.
    """
    if STATE.enabled:
        return STATE.tracer.span(kind, name, **attributes)
    return NULL_SPAN_CONTEXT


def event(name: str, **attributes: Any) -> None:
    """Attach an event to the current span of the active tracer."""
    if STATE.enabled:
        STATE.tracer.event(name, **attributes)


def traced(kind: str, name: Optional[str] = None) -> Callable[[F], F]:
    """Decorator form of :func:`span`.

    Wraps the function body in a span of ``kind`` (named after the
    function unless ``name`` is given).  The wrapper adds one flag
    check when telemetry is disabled.
    """
    import functools

    def decorate(func: F) -> F:
        span_name = name if name is not None else func.__name__

        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            if not STATE.enabled:
                return func(*args, **kwargs)
            with STATE.tracer.span(kind, span_name):
                return func(*args, **kwargs)

        return wrapper  # type: ignore[return-value]

    return decorate


__all__ = [
    "ObsState",
    "STATE",
    "event",
    "get_metrics",
    "get_tracer",
    "install",
    "is_enabled",
    "reset",
    "span",
    "telemetry_session",
    "traced",
]
