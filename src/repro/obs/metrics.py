"""Metrics registry: counters, gauges, and fixed-bucket histograms.

The registry is the numeric half of the telemetry plane (spans are the
structural half): every instrumented seam increments a named counter or
observes a duration, and :meth:`MetricsRegistry.snapshot` flattens the
whole state into a JSON-friendly dictionary that rides along in results
files (the ``"telemetry"`` block of a campaign JSON).

Naming convention: dotted lowercase paths, with the unit as the final
suffix where one applies (``operator.solve_seconds``,
``campaign.wall_seconds``); bare counts carry no suffix
(``evaluator.cache.hits``).  See docs/OBSERVABILITY.md for the full
metric table.

Disabled-path cost: the module-level :data:`NOOP_METRICS` singleton
hands out shared do-nothing instruments, so un-instrumented runs pay a
single attribute check per seam (see :mod:`repro.obs.runtime`).
"""

from __future__ import annotations

import math
import weakref
from typing import (Callable, Dict, List, Optional, Sequence, Tuple,
                    Union)

from ..errors import ConfigurationError

Number = Union[int, float]

#: A gauge collector: zero-arg callable returning name → value
#: contributions folded into the snapshot (see
#: :meth:`MetricsRegistry.add_collector`).
GaugeCollector = Callable[[], Dict[str, float]]

#: Default histogram bucket upper bounds for durations, seconds.
#: Spans five decades: sub-100-microsecond sparse back-substitutions up
#: to multi-minute campaign walls.
DEFAULT_TIME_BUCKETS_S: Tuple[float, ...] = (
    1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1.0, 3.0, 10.0,
    30.0, 100.0, 300.0)

#: Default buckets for small iteration counts (leakage fixed-point
#: loops converge in single digits; the tail marks trouble).
DEFAULT_COUNT_BUCKETS: Tuple[float, ...] = (
    1.0, 2.0, 3.0, 5.0, 8.0, 13.0, 21.0, 34.0, 55.0)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (inc {amount})")
        self.value += amount


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0.0

    def set(self, value: Number) -> None:
        """Record the current value of the gauge."""
        self.value = float(value)


class Histogram:
    """A fixed-bucket histogram with count/sum/min/max.

    ``buckets`` are ascending upper bounds; observations above the last
    bound land in the implicit overflow bucket.  Bucket counts are
    cumulative at snapshot time (Prometheus-style), exact per-bucket in
    memory.
    """

    __slots__ = ("name", "buckets", "bucket_counts", "count", "total",
                 "min", "max")

    def __init__(self, name: str,
                 buckets: Sequence[float] = DEFAULT_TIME_BUCKETS_S):
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ConfigurationError(
                f"histogram {name!r} needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ConfigurationError(
                f"histogram {name!r} bucket bounds must be strictly "
                f"ascending, got {bounds}")
        self.name = name
        self.buckets = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: Number) -> None:
        """Record one observation (in the histogram's native unit)."""
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[index] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        """Arithmetic mean of the observations (0 when empty)."""
        return self.total / self.count if self.count else 0.0


class _NullCounter:
    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge:
    __slots__ = ()

    def set(self, value: Number) -> None:
        pass


class _NullHistogram:
    __slots__ = ()

    def observe(self, value: Number) -> None:
        pass


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class NullMetrics:
    """The disabled registry: every instrument is a shared no-op."""

    enabled = False

    def counter(self, name: str) -> _NullCounter:
        """A shared no-op counter."""
        return _NULL_COUNTER

    def gauge(self, name: str) -> _NullGauge:
        """A shared no-op gauge."""
        return _NULL_GAUGE

    def histogram(self, name: str,
                  buckets: Optional[Sequence[float]] = None,
                  ) -> _NullHistogram:
        """A shared no-op histogram."""
        return _NULL_HISTOGRAM

    def add_collector(self, collector: GaugeCollector) -> None:
        """Accepted and ignored (the registry is disabled)."""

    def snapshot(self) -> dict:
        """Always empty."""
        return {}


#: The process-wide disabled registry (see :mod:`repro.obs.runtime`).
NOOP_METRICS = NullMetrics()


class MetricsRegistry:
    """Named counters, gauges, and histograms, created on first use.

    A name is bound to one instrument type for the registry's lifetime;
    re-requesting it with a different type raises
    :class:`~repro.errors.ConfigurationError` (silent shadowing would
    corrupt the snapshot).
    """

    enabled = True

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._collectors: List[Callable[[], Optional[GaugeCollector]]] \
            = []

    def _check_free(self, name: str, kind: str) -> None:
        for type_name, table in (("counter", self._counters),
                                 ("gauge", self._gauges),
                                 ("histogram", self._histograms)):
            if type_name != kind and name in table:
                raise ConfigurationError(
                    f"metric {name!r} already registered as a "
                    f"{type_name}; cannot re-register as a {kind}")

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        counter = self._counters.get(name)
        if counter is None:
            self._check_free(name, "counter")
            counter = self._counters[name] = Counter(name)
        return counter

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``name``."""
        gauge = self._gauges.get(name)
        if gauge is None:
            self._check_free(name, "gauge")
            gauge = self._gauges[name] = Gauge(name)
        return gauge

    def histogram(self, name: str,
                  buckets: Optional[Sequence[float]] = None,
                  ) -> Histogram:
        """Get or create the histogram ``name``.

        ``buckets`` (ascending upper bounds, in the metric's unit) only
        applies on first creation; later calls reuse the existing
        instrument regardless.
        """
        histogram = self._histograms.get(name)
        if histogram is None:
            self._check_free(name, "histogram")
            histogram = self._histograms[name] = Histogram(
                name, buckets if buckets is not None
                else DEFAULT_TIME_BUCKETS_S)
        return histogram

    def names(self) -> List[str]:
        """Every registered metric name, sorted."""
        return sorted([*self._counters, *self._gauges,
                       *self._histograms])

    def add_collector(self, collector: GaugeCollector) -> None:
        """Register a gauge collector run at every :meth:`snapshot`.

        ``collector`` is a zero-arg callable returning ``{gauge_name:
        value}``; at snapshot time every live collector runs and
        contributions are *summed per name* before being written into
        the named gauges, so several evaluators or operators sharing a
        registry aggregate instead of clobbering each other.  Bound
        methods are held weakly: a collector whose owner has been
        garbage-collected is pruned silently, so instrumented objects
        never leak through the registry.
        """
        try:
            self._collectors.append(weakref.WeakMethod(collector))
        except TypeError:
            # Plain functions/lambdas: hold them directly behind the
            # same call-to-resolve shape as WeakMethod.
            self._collectors.append(lambda _c=collector: _c)

    def _collect_gauges(self) -> None:
        totals: Dict[str, float] = {}
        live: List[Callable[[], Optional[GaugeCollector]]] = []
        for ref in self._collectors:
            collector = ref()
            if collector is None:
                continue
            live.append(ref)
            for name, value in (collector() or {}).items():
                totals[name] = totals.get(name, 0.0) + float(value)
        self._collectors = live
        for name, value in totals.items():
            self.gauge(name).set(value)

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Used by the ``repro.exec`` scheduler to aggregate per-worker
        metrics: counters add, gauges take the incoming value (last
        write wins, matching :meth:`Gauge.set`), histograms add
        per-bucket counts plus count/sum and widen min/max.  Instruments
        absent here are created; a histogram that exists with different
        bucket bounds raises
        :class:`~repro.errors.ConfigurationError` (summing mismatched
        buckets would silently corrupt the distribution).
        """
        for name, value in (snapshot.get("counters") or {}).items():
            self.counter(name).inc(int(value))
        for name, value in (snapshot.get("gauges") or {}).items():
            self.gauge(name).set(value)
        for name, entry in (snapshot.get("histograms") or {}).items():
            bounds = tuple(float(pair[0])
                           for pair in entry.get("buckets") or ())
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self.histogram(
                    name, bounds or DEFAULT_TIME_BUCKETS_S)
            if histogram.buckets != (bounds or histogram.buckets):
                raise ConfigurationError(
                    f"histogram {name!r} bucket bounds differ between "
                    f"registries: {histogram.buckets} vs {bounds}")
            for index, pair in enumerate(entry.get("buckets") or ()):
                histogram.bucket_counts[index] += int(pair[1])
            histogram.bucket_counts[-1] += int(
                entry.get("overflow") or 0)
            count = int(entry.get("count") or 0)
            histogram.count += count
            histogram.total += float(entry.get("sum") or 0.0)
            if count:
                histogram.min = min(histogram.min,
                                    float(entry["min"]))
                histogram.max = max(histogram.max,
                                    float(entry["max"]))

    def snapshot(self) -> dict:
        """Flatten the registry into a JSON-friendly dictionary.

        Layout::

            {"counters": {name: value},
             "gauges": {name: value},
             "histograms": {name: {"count", "sum", "mean", "min",
                                   "max", "buckets": [[bound, n], ...],
                                   "overflow": n}}}

        Histogram ``min``/``max`` are omitted while empty (they are
        sentinels, not observations).  Registered gauge collectors run
        first (see :meth:`add_collector`), so cache-health gauges are
        current in every snapshot.
        """
        self._collect_gauges()
        histograms = {}
        for name, histogram in self._histograms.items():
            entry: dict = {
                "count": histogram.count,
                "sum": histogram.total,
                "mean": histogram.mean,
                "buckets": [[bound, count] for bound, count
                            in zip(histogram.buckets,
                                   histogram.bucket_counts)],
                "overflow": histogram.bucket_counts[-1],
            }
            if histogram.count:
                entry["min"] = histogram.min
                entry["max"] = histogram.max
            histograms[name] = entry
        return {
            "counters": {name: counter.value for name, counter
                         in sorted(self._counters.items())},
            "gauges": {name: gauge.value for name, gauge
                       in sorted(self._gauges.items())},
            "histograms": dict(sorted(histograms.items())),
        }


__all__ = [
    "Counter",
    "DEFAULT_COUNT_BUCKETS",
    "DEFAULT_TIME_BUCKETS_S",
    "Gauge",
    "GaugeCollector",
    "Histogram",
    "MetricsRegistry",
    "NOOP_METRICS",
    "NullMetrics",
]
