"""Trace export and summarization: JSONL writer/reader, text tree.

The on-disk format is one JSON object per line:

* the first line is a ``{"record": "meta", ...}`` header carrying the
  format version, the wall-clock epoch of the trace origin, and the
  span/drop counts;
* every further line is a ``{"record": "span", ...}`` object (see
  :func:`span_to_dict`); orphan events ride on a virtual root span of
  kind ``trace`` with ``span_id`` 0.

``repro trace summarize FILE`` renders per-span-kind count / total /
p50 / p95 as a tree, nesting each kind under the kind that most often
parents it — close to the runtime hierarchy without needing every span
to agree.
"""

from __future__ import annotations

import json
import math
from typing import IO, Any, Dict, Iterable, List, Optional, Sequence

from ..errors import ConfigurationError
from ..units import s_to_ms
from .tracing import Span, Tracer

#: Bumped when the JSONL layout changes incompatibly.
TRACE_FORMAT_VERSION = 1

#: Virtual root span id used for orphan events in exported traces.
ROOT_SPAN_ID = 0


def span_to_dict(span: Span) -> Dict[str, Any]:
    """One span as a JSON-friendly record."""
    record: Dict[str, Any] = {
        "record": "span",
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "kind": span.kind,
        "name": span.name,
        "start_s": span.start_s,
        "end_s": span.end_s,
        "duration_s": span.duration_s,
        "status": span.status,
    }
    if span.error is not None:
        record["error"] = span.error
    if span.attributes:
        record["attributes"] = span.attributes
    if span.events:
        record["events"] = [
            {"name": event.name, "time_s": event.time_s,
             "attributes": event.attributes}
            for event in span.events]
    return record


def _meta_record(tracer: Tracer) -> Dict[str, Any]:
    return {
        "record": "meta",
        "format": TRACE_FORMAT_VERSION,
        "created_unix": tracer.created_unix,
        "spans": len(tracer.finished),
        "dropped_spans": tracer.dropped_spans,
        "open_spans": tracer.open_span_count,
    }


def write_trace_jsonl(tracer: Tracer, stream: IO[str]) -> int:
    """Write the tracer's finished spans to ``stream`` as JSONL.

    Returns the number of span records written (the meta header and
    any virtual root for orphan events are not counted).
    """
    stream.write(json.dumps(_meta_record(tracer)) + "\n")
    written = 0
    if tracer.orphan_events:
        root = {
            "record": "span",
            "span_id": ROOT_SPAN_ID,
            "parent_id": None,
            "kind": "trace",
            "name": None,
            "start_s": 0.0,
            "end_s": None,
            "duration_s": 0.0,
            "status": "ok",
            "events": [
                {"name": event.name, "time_s": event.time_s,
                 "attributes": event.attributes}
                for event in tracer.orphan_events],
        }
        stream.write(json.dumps(root) + "\n")
    for span in tracer.finished:
        stream.write(json.dumps(span_to_dict(span)) + "\n")
        written += 1
    return written


def save_trace(tracer: Tracer, path: str) -> int:
    """Write the trace to ``path``; returns the span-record count."""
    with open(path, "w", encoding="utf-8") as stream:
        return write_trace_jsonl(tracer, stream)


def read_trace_jsonl(lines: Iterable[str]) -> List[Dict[str, Any]]:
    """Parse JSONL trace lines into span records.

    Returns the span records only (the meta header is validated and
    dropped).  Raises :class:`~repro.errors.ConfigurationError` on
    malformed input so the CLI can map it to the usual exit code.
    """
    spans: List[Dict[str, Any]] = []
    for number, line in enumerate(lines, start=1):
        text = line.strip()
        if not text:
            continue
        try:
            record = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"trace line {number} is not valid JSON: {exc}"
            ) from exc
        if not isinstance(record, dict):
            raise ConfigurationError(
                f"trace line {number} is not a JSON object")
        record_type = record.get("record")
        if record_type == "meta":
            continue
        if record_type != "span":
            raise ConfigurationError(
                f"trace line {number} has unknown record type "
                f"{record_type!r}")
        if "kind" not in record or "span_id" not in record:
            raise ConfigurationError(
                f"trace line {number} span record is missing "
                f"kind/span_id")
        spans.append(record)
    return spans


def load_trace(path: str) -> List[Dict[str, Any]]:
    """Read span records from a JSONL trace file."""
    try:
        with open(path, "r", encoding="utf-8") as stream:
            return read_trace_jsonl(stream)
    except OSError as exc:
        raise ConfigurationError(
            f"cannot read trace file {path!r}: {exc}") from exc


def _percentile(ordered: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an ascending-sorted sequence."""
    if not ordered:
        return 0.0
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


def summarize_spans(spans: Sequence[Dict[str, Any]],
                    ) -> Dict[str, Dict[str, Any]]:
    """Aggregate span records per kind.

    Returns ``{kind: {count, errors, events, total_s, p50_s, p95_s,
    parent_kind}}`` where ``parent_kind`` is the kind that most often
    parents this one (None for roots), used by the tree renderer.
    """
    by_id = {record["span_id"]: record for record in spans}
    durations: Dict[str, List[float]] = {}
    errors: Dict[str, int] = {}
    events: Dict[str, int] = {}
    parent_votes: Dict[str, Dict[Optional[str], int]] = {}
    for record in spans:
        kind = record["kind"]
        durations.setdefault(kind, []).append(
            float(record.get("duration_s") or 0.0))
        errors[kind] = errors.get(kind, 0) + (
            1 if record.get("status") == "error" else 0)
        events[kind] = events.get(kind, 0) + len(
            record.get("events") or ())
        parent = by_id.get(record.get("parent_id"))
        parent_kind = parent["kind"] if parent is not None else None
        votes = parent_votes.setdefault(kind, {})
        votes[parent_kind] = votes.get(parent_kind, 0) + 1
    summary: Dict[str, Dict[str, Any]] = {}
    for kind, values in durations.items():
        ordered = sorted(values)
        votes = parent_votes[kind]
        parent_kind = max(votes, key=lambda key: votes[key])
        if parent_kind == kind:  # self-parenting cannot render as a tree
            parent_kind = None
        summary[kind] = {
            "count": len(ordered),
            "errors": errors[kind],
            "events": events[kind],
            "total_s": sum(ordered),
            "p50_s": _percentile(ordered, 50.0),
            "p95_s": _percentile(ordered, 95.0),
            "parent_kind": parent_kind,
        }
    return summary


def _format_duration(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    return f"{s_to_ms(seconds):.2f}ms"


def format_trace_summary(spans: Sequence[Dict[str, Any]]) -> str:
    """Render the per-kind summary as a text tree.

    Each line shows ``kind  count  total  p50  p95`` (plus error and
    event counts when nonzero); kinds nest under their majority parent
    kind.
    """
    summary = summarize_spans(spans)
    if not summary:
        return "trace: no spans"
    children: Dict[Optional[str], List[str]] = {}
    for kind, entry in summary.items():
        parent = entry["parent_kind"]
        if parent is not None and parent not in summary:
            parent = None
        children.setdefault(parent, []).append(kind)
    for bucket in children.values():
        bucket.sort()
    lines = [f"trace: {sum(e['count'] for e in summary.values())} "
             f"spans, {len(summary)} kinds"]

    def emit(kind: str, depth: int) -> None:
        entry = summary[kind]
        indent = "  " * depth
        text = (f"{indent}{kind:<{max(24 - 2 * depth, 1)}} "
                f"n={entry['count']:<6} "
                f"total={_format_duration(entry['total_s']):<10} "
                f"p50={_format_duration(entry['p50_s']):<10} "
                f"p95={_format_duration(entry['p95_s'])}")
        if entry["errors"]:
            text += f"  errors={entry['errors']}"
        if entry["events"]:
            text += f"  events={entry['events']}"
        lines.append(text)
        for child in children.get(kind, ()):  # depth-first
            emit(child, depth + 1)

    for root in children.get(None, ()):
        emit(root, 0)
    return "\n".join(lines)


__all__ = [
    "ROOT_SPAN_ID",
    "TRACE_FORMAT_VERSION",
    "format_trace_summary",
    "load_trace",
    "read_trace_jsonl",
    "save_trace",
    "span_to_dict",
    "summarize_spans",
    "write_trace_jsonl",
]
