"""Monotonic timing helpers shared by every instrumented layer.

Before this module existed, wall-clock measurement was five hand-rolled
``time.perf_counter()`` start/stop pairs scattered across the chaos
harness, the campaign runner, the resilient solver, and the
multi-channel optimizer — none of which landed anywhere a run artifact
could see.  :func:`stopwatch` centralizes the idiom: a started
:class:`Stopwatch` whose ``elapsed`` property can be read mid-flight
(for result objects with several return points) and which, used as a
context manager with a ``metric`` name, lands its duration in the
active :class:`~repro.obs.MetricsRegistry` histogram on exit.
"""

from __future__ import annotations

import time
from typing import Optional


def monotonic() -> float:
    """The telemetry clock: monotonic seconds (``time.perf_counter``)."""
    return time.perf_counter()


class Stopwatch:
    """A started monotonic stopwatch.

    The watch starts on construction.  ``elapsed`` reads the live
    duration (s) while running and the frozen duration after
    :meth:`stop` (or context-manager exit).  When constructed with a
    ``metric`` name and used as a context manager, the final duration
    is observed into that histogram of the active metrics registry —
    a no-op when telemetry is disabled.
    """

    __slots__ = ("metric", "_start", "_frozen")

    def __init__(self, metric: Optional[str] = None):
        self.metric = metric
        self._start = monotonic()
        self._frozen: Optional[float] = None

    @property
    def elapsed(self) -> float:
        """Seconds since start (frozen once stopped)."""
        if self._frozen is not None:
            return self._frozen
        return monotonic() - self._start

    @property
    def running(self) -> bool:
        """True until :meth:`stop` (or ``__exit__``) freezes the watch."""
        return self._frozen is None

    def restart(self) -> None:
        """Re-arm the watch from now (unfreezes a stopped watch)."""
        self._start = monotonic()
        self._frozen = None

    def stop(self) -> float:
        """Freeze and return the elapsed duration, s (idempotent)."""
        if self._frozen is None:
            self._frozen = monotonic() - self._start
        return self._frozen

    def __enter__(self) -> "Stopwatch":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        duration = self.stop()
        if self.metric is not None:
            from .runtime import STATE
            if STATE.enabled:
                STATE.metrics.histogram(self.metric).observe(duration)


def stopwatch(metric: Optional[str] = None) -> Stopwatch:
    """A freshly started :class:`Stopwatch`.

    Args:
        metric: Optional histogram name (``*_seconds`` convention) the
            duration is recorded under when the watch is used as a
            context manager and telemetry is enabled.
    """
    return Stopwatch(metric=metric)


class Deadline:
    """A monotonic deadline: ``budget`` seconds from construction.

    Wall-clock arithmetic (``time.time() + budget``) misfires when the
    system clock steps — NTP corrections and suspend/resume can fire a
    deadline instantly or starve it forever.  A :class:`Deadline` is
    anchored to the monotonic clock instead, so only *elapsed process
    time* counts.  Supervisors poll :attr:`expired`; sleepers size
    their waits with :meth:`remaining`.

    Args:
        budget: Seconds until expiry, > 0 (s).
    """

    __slots__ = ("budget", "_armed_at")

    def __init__(self, budget: float):
        if budget <= 0.0:
            from ..errors import ConfigurationError
            raise ConfigurationError(
                f"deadline budget must be > 0 s, got {budget}")
        self.budget = float(budget)
        self._armed_at = monotonic()

    @property
    def expired(self) -> bool:
        """True once ``budget`` monotonic seconds have elapsed."""
        return monotonic() - self._armed_at >= self.budget

    def remaining(self) -> float:
        """Monotonic seconds left before expiry (clamped at 0.0, s)."""
        left = self.budget - (monotonic() - self._armed_at)
        return left if left > 0.0 else 0.0

    def elapsed(self) -> float:
        """Monotonic seconds since the deadline was armed (s)."""
        return monotonic() - self._armed_at

    def restart(self) -> None:
        """Re-arm the full budget from now."""
        self._armed_at = monotonic()


def deadline(budget: float) -> Deadline:
    """A freshly armed :class:`Deadline` of ``budget`` seconds."""
    return Deadline(budget)


__all__ = ["Deadline", "Stopwatch", "deadline", "monotonic",
           "stopwatch"]
