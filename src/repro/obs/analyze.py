"""Span analytics: folded flame stacks and critical-path extraction.

Both analyses consume exported span records (the
:func:`repro.obs.span_to_dict` dictionaries returned by
:func:`repro.obs.load_trace`), so they run on any saved trace without
the tracer that produced it.

*Folded stacks* (:func:`folded_stacks`) aggregate **self time** — span
duration minus the time covered by its children — per root-to-span
path, in the semicolon-separated format every flamegraph renderer
consumes (``flamegraph.pl``, speedscope, inferno)::

    campaign;benchmark:qsort;evaluate;operator.solve 184

The count column is integer microseconds, so stack widths are
proportional to where time was actually spent at that depth.

The *critical path* (:func:`critical_path`) is the chain of spans that
determined the trace's wall time: starting from the longest root, it
descends at each level into the child that *finished last* (the one
completion waited on) and reports per-stage self time — the part of
the wall that stage alone is responsible for.  That localizes a
BENCH-style regression to one stage without reading the JSONL by hand.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from ..units import s_to_ms

#: Microseconds per second (folded-stack counts are integer µs).
_US_PER_S = 1_000_000


def _label(record: Dict[str, Any]) -> str:
    kind = str(record.get("kind") or "?")
    name = record.get("name")
    if name is None:
        return kind
    # The folded format reserves ';' (stack separator) and whitespace
    # (count separator); scrub them out of human-supplied names.
    safe = str(name).replace(";", ",").replace(" ", "_")
    return f"{kind}:{safe}"


def _index_children(spans: Sequence[Dict[str, Any]],
                    ) -> Dict[Optional[int], List[Dict[str, Any]]]:
    """Group spans by parent id; dangling parents count as roots."""
    ids = {record["span_id"] for record in spans}
    children: Dict[Optional[int], List[Dict[str, Any]]] = {}
    for record in spans:
        parent = record.get("parent_id")
        if parent not in ids:
            parent = None
        children.setdefault(parent, []).append(record)
    for bucket in children.values():
        bucket.sort(key=lambda r: (float(r.get("start_s") or 0.0),
                                   r["span_id"]))
    return children


def _duration(record: Dict[str, Any]) -> float:
    return float(record.get("duration_s") or 0.0)


def folded_stacks(spans: Sequence[Dict[str, Any]],
                  ) -> Dict[str, int]:
    """Aggregate self time per stack path.

    Returns ``{"root;child;leaf": microseconds}`` with one entry per
    distinct path whose self time rounds to at least one microsecond.
    Self time is the span's duration minus the summed durations of its
    direct children, clamped at zero (children overlapping their
    parent's end — adopted worker spans under coarse unit spans — must
    not produce negative width).
    """
    children = _index_children(spans)
    stacks: Dict[str, int] = {}

    def walk(record: Dict[str, Any], prefix: str) -> None:
        path = f"{prefix};{_label(record)}" if prefix \
            else _label(record)
        own = children.get(record["span_id"], [])
        self_s = _duration(record) - sum(_duration(child)
                                         for child in own)
        self_us = int(round(max(self_s, 0.0) * _US_PER_S))
        if self_us > 0:
            stacks[path] = stacks.get(path, 0) + self_us
        for child in own:
            walk(child, path)

    for root in children.get(None, ()):
        walk(root, "")
    return stacks


def format_folded(stacks: Dict[str, int]) -> str:
    """Render folded stacks as ``path count`` lines, sorted by path
    (deterministic, diff-friendly; renderers do not care about order)."""
    lines = [f"{path} {count}"
             for path, count in sorted(stacks.items())]
    return "\n".join(lines) + ("\n" if lines else "")


def critical_path(spans: Sequence[Dict[str, Any]],
                  ) -> List[Dict[str, Any]]:
    """Extract the longest blocking chain through the span tree.

    Starting from the root with the largest duration, descend at every
    level into the child with the latest ``end_s`` — the child the
    parent's completion actually waited on.  Returns one entry per
    stage::

        {"depth", "label", "kind", "name", "duration_s", "self_s",
         "fraction"}

    where ``self_s`` is the stage duration minus the duration of the
    chosen child (the wall time attributable to that stage alone along
    the path) and ``fraction`` is duration over the root's duration.
    Empty input yields an empty list.
    """
    children = _index_children(spans)
    roots = children.get(None, [])
    if not roots:
        return []
    root = max(roots, key=_duration)
    root_duration = _duration(root) or 1.0
    path: List[Dict[str, Any]] = []
    record: Optional[Dict[str, Any]] = root
    depth = 0
    while record is not None:
        own = children.get(record["span_id"], [])
        chosen: Optional[Dict[str, Any]] = None
        if own:
            chosen = max(
                own, key=lambda r: (float(r.get("end_s") or 0.0),
                                    r["span_id"]))
        child_s = _duration(chosen) if chosen is not None else 0.0
        duration = _duration(record)
        path.append({
            "depth": depth,
            "label": _label(record),
            "kind": record.get("kind"),
            "name": record.get("name"),
            "duration_s": duration,
            "self_s": max(duration - child_s, 0.0),
            "fraction": min(duration / root_duration, 1.0),
        })
        record = chosen
        depth += 1
    return path


def format_critical_path(path: Sequence[Dict[str, Any]]) -> str:
    """Render the critical path as an indented table."""
    if not path:
        return "trace: no spans"

    def fmt(seconds: float) -> str:
        if seconds >= 1.0:
            return f"{seconds:.3f}s"
        return f"{s_to_ms(seconds):.2f}ms"

    total = path[0]["duration_s"]
    lines = [f"critical path: {len(path)} stages, "
             f"{fmt(total)} end to end"]
    for stage in path:
        indent = "  " * stage["depth"]
        lines.append(
            f"{indent}{stage['label']:<{max(30 - 2 * stage['depth'], 1)}} "
            f"total={fmt(stage['duration_s']):<10} "
            f"self={fmt(stage['self_s']):<10} "
            f"{stage['fraction'] * 100.0:5.1f}%")
    return "\n".join(lines)


__all__ = [
    "critical_path",
    "folded_stacks",
    "format_critical_path",
    "format_folded",
]
