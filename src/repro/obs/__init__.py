"""repro.obs — tracing, metrics, and telemetry export.

The observability plane for the OFTEC pipeline (see
docs/OBSERVABILITY.md for the span taxonomy and metric table).  Usage:

    from repro.obs import telemetry_session, save_trace

    with telemetry_session() as (tracer, metrics):
        result = run_oftec(problem)
    save_trace(tracer, "run.jsonl")
    snapshot = metrics.snapshot()

Everything defaults to a zero-overhead no-op: without an active
session, instrumented seams cost one attribute check and results are
bit-identical to an un-instrumented build.
"""

from .analyze import (
    critical_path,
    folded_stacks,
    format_critical_path,
    format_folded,
)
from .clock import Deadline, Stopwatch, deadline, monotonic, stopwatch
from .export import (
    TRACE_FORMAT_VERSION,
    format_trace_summary,
    load_trace,
    read_trace_jsonl,
    save_trace,
    span_to_dict,
    summarize_spans,
    write_trace_jsonl,
)
from .live import (
    BackgroundFlusher,
    OpenMetricsSink,
    RotatingJsonlSink,
    TelemetrySink,
    TelemetryStream,
    metrics_to_openmetrics,
)
from .metrics import (
    DEFAULT_COUNT_BUCKETS,
    DEFAULT_TIME_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetrics,
)
from .progress import ProgressBoard
from .runtime import (
    event,
    get_metrics,
    get_tracer,
    install,
    is_enabled,
    reset,
    span,
    telemetry_session,
    traced,
)
from .tracing import NoopTracer, Span, SpanEvent, Tracer

__all__ = [
    "BackgroundFlusher",
    "Counter",
    "DEFAULT_COUNT_BUCKETS",
    "Deadline",
    "deadline",
    "DEFAULT_TIME_BUCKETS_S",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NoopTracer",
    "NullMetrics",
    "OpenMetricsSink",
    "ProgressBoard",
    "RotatingJsonlSink",
    "Span",
    "SpanEvent",
    "Stopwatch",
    "TRACE_FORMAT_VERSION",
    "TelemetrySink",
    "TelemetryStream",
    "Tracer",
    "critical_path",
    "event",
    "folded_stacks",
    "format_critical_path",
    "format_folded",
    "format_trace_summary",
    "get_metrics",
    "get_tracer",
    "install",
    "is_enabled",
    "load_trace",
    "metrics_to_openmetrics",
    "monotonic",
    "read_trace_jsonl",
    "reset",
    "save_trace",
    "span",
    "span_to_dict",
    "stopwatch",
    "summarize_spans",
    "telemetry_session",
    "traced",
    "write_trace_jsonl",
]
