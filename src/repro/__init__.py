"""OFTEC: power-aware deployment and control of forced-convection and
thermoelectric coolers.

A from-scratch Python reproduction of Dousti & Pedram, DAC 2014.  The
package implements the full evaluation flow of the paper's Figure 5:

* a compact-RC package thermal model with TEC sub-layers
  (:mod:`repro.thermal`, :mod:`repro.materials`, :mod:`repro.geometry`),
* thermoelectric device/array models (:mod:`repro.tec`),
* fan and heat-sink conductance models (:mod:`repro.fan`),
* temperature-dependent leakage with the Equation (4) linearization
  (:mod:`repro.leakage`),
* synthetic MiBench-style workload power profiles (:mod:`repro.power`),
* the OFTEC optimizer, Algorithm 1, and the baseline controllers
  (:mod:`repro.core`), and
* sweep/campaign/reporting utilities (:mod:`repro.analysis`).

Quickstart::

    from repro import build_cooling_problem, run_oftec, mibench_profiles

    profile = mibench_profiles()["basicmath"]
    problem = build_cooling_problem(profile)
    result = run_oftec(problem)
    print(result.omega_star, result.current_star, result.total_power)
"""

from .constants import I_TEC_MAX, OMEGA_MAX, T_AMBIENT, T_MAX
from .core import (
    CoolingProblem,
    Evaluation,
    Evaluator,
    FailureReport,
    OFTECResult,
    ProblemLimits,
    ResiliencePolicy,
    build_cooling_problem,
    run_fixed_fan_baseline,
    run_oftec,
    run_oftec_resilient,
    run_tec_only,
    run_variable_fan_baseline,
)
from .errors import (
    CalibrationError,
    ConfigurationError,
    EvaluationBudgetError,
    FloorplanParseError,
    GeometryError,
    InfeasibleProblemError,
    JournalCorruptionError,
    JournalError,
    MaterialError,
    ReproError,
    SingularNetworkError,
    SolveTimeoutError,
    SolverError,
    ThermalRunawayError,
    WorkerCrashError,
)
from .power import BenchmarkProfile, mibench_profiles

__version__ = "1.8.0"

__all__ = [
    "I_TEC_MAX",
    "OMEGA_MAX",
    "T_AMBIENT",
    "T_MAX",
    "CoolingProblem",
    "Evaluation",
    "Evaluator",
    "OFTECResult",
    "ProblemLimits",
    "build_cooling_problem",
    "run_oftec",
    "run_oftec_resilient",
    "ResiliencePolicy",
    "FailureReport",
    "run_variable_fan_baseline",
    "run_fixed_fan_baseline",
    "run_tec_only",
    "ReproError",
    "ConfigurationError",
    "GeometryError",
    "FloorplanParseError",
    "MaterialError",
    "SolverError",
    "SingularNetworkError",
    "EvaluationBudgetError",
    "SolveTimeoutError",
    "ThermalRunawayError",
    "InfeasibleProblemError",
    "CalibrationError",
    "WorkerCrashError",
    "JournalError",
    "JournalCorruptionError",
    "BenchmarkProfile",
    "mibench_profiles",
    "__version__",
]
