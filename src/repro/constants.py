"""Physical constants and the paper's experimental parameters (Section 6.1).

Every number here is quoted directly from the paper text; modules treat them
as *defaults* that callers may override through the configuration objects.
"""

from __future__ import annotations

from .units import celsius_to_kelvin, rpm_to_rad_s

# ---------------------------------------------------------------------------
# Optimization bounds and thermal limits (Section 6.1).
# ---------------------------------------------------------------------------

#: Maximum fan rotation speed, rad/s (paper: 524 rad/s = 5000 RPM).
OMEGA_MAX = 524.0

#: Maximum safe TEC driving current, A (beyond this the TEC is damaged).
I_TEC_MAX = 5.0

#: Maximum allowed die temperature, K (paper: 90 C = 363 K).
T_MAX = celsius_to_kelvin(90.0)

#: Ambient temperature around the package, K (paper: 45 C = 318 K).
T_AMBIENT = celsius_to_kelvin(45.0)

# ---------------------------------------------------------------------------
# Fan model (Equation 8) and heat-sink/fan conductance fit (Equation 9).
# ---------------------------------------------------------------------------

#: Fan power constant ``c`` in ``P_fan = c * omega**3`` (W * s^3), estimated
#: from reference [11] of the paper.
FAN_POWER_CONSTANT = 1.6e-7

#: Fitting parameter ``p`` of ``g = p * ln(q * omega) + r`` (W/K per ln-unit).
G_FIT_P = 0.97

#: Dimension-fixing constant ``q`` of Equation (9); the paper sets it to 1 s.
G_FIT_Q = 1.0

#: Fitting parameter ``r`` of Equation (9) (W/K).
G_FIT_R = -0.25

#: Natural-convection (fan off / very slow) heat-sink conductance (W/K).
G_HS_NATURAL = 0.525

# ---------------------------------------------------------------------------
# Baseline controllers (Section 6.1).
# ---------------------------------------------------------------------------

#: Fixed fan speed of baseline 2, rad/s (paper: 2000 RPM).
OMEGA_FIXED_BASELINE = rpm_to_rad_s(2000.0)

# ---------------------------------------------------------------------------
# Leakage calibration protocol (Section 6.1).
# ---------------------------------------------------------------------------

#: Temperature range over which the McPAT-substitute leakage curve is sampled.
LEAKAGE_CAL_T_MIN = 300.0
LEAKAGE_CAL_T_MAX = 390.0

#: Number of evenly spaced calibration temperatures ("ten temperature values
#: distributed evenly in the range of 300K to 390K").
LEAKAGE_CAL_POINTS = 10

# ---------------------------------------------------------------------------
# Numerical guards (ours, not the paper's).
# ---------------------------------------------------------------------------

#: Temperature above which a steady-state solution is declared thermal
#: runaway.  No silicon survives anywhere near this; the linearized network
#: only produces such values when the leakage feedback loop has no bounded
#: fixed point.
RUNAWAY_TEMPERATURE_CEILING = 500.0

#: Convergence tolerance for the outer leakage-relinearization loop (K).
LEAKAGE_LOOP_TOLERANCE = 1e-3

#: Iteration cap for the outer leakage-relinearization loop.
LEAKAGE_LOOP_MAX_ITER = 50
