"""Alpha 21264 (EV6)-style floorplan.

The paper targets the Alpha 21264 and uses the HotSpot-distributed EV6
floorplan.  We embed an equivalent floorplan: the same 18 functional units
on a 15.9 mm x 15.9 mm die (Table 1 chip dimensions), arranged in the
familiar EV6 bands — L2 arrays at the bottom and flanks, the I/D caches
above them, the floating-point cluster next, and the integer core plus
load/store machinery at the top (where the hotspots live).

Coordinates are exact decimal millimeters converted to meters, chosen so
each band tiles the die width exactly; the floorplan passes the overlap and
full-coverage validations.
"""

from __future__ import annotations

from typing import List, Tuple

from ..units import mm_to_m
from .floorplan import Floorplan, FloorplanUnit
from .rect import Rect

#: Die edge length in meters (Table 1: 15.9 mm x 15.9 mm).
EV6_DIE_SIZE = 15.9e-3

# (name, x, y, width, height) in millimeters; converted to meters below.
_EV6_UNITS_MM: List[Tuple[str, float, float, float, float]] = [
    # Bottom band: unified L2 array.
    ("L2",       0.0,  0.0,  15.9, 5.0),
    # Second band: L2 side arrays flanking the I/D caches.
    ("L2_left",  0.0,  5.0,  3.0,  4.0),
    ("Icache",   3.0,  5.0,  4.95, 4.0),
    ("Dcache",   7.95, 5.0,  4.95, 4.0),
    ("L2_right", 12.9, 5.0,  3.0,  4.0),
    # Third band: floating-point cluster, branch predictor, data TLB.
    ("FPMap",    0.0,  9.0,  2.0,  3.0),
    ("FPMul",    2.0,  9.0,  2.5,  3.0),
    ("FPReg",    4.5,  9.0,  2.5,  3.0),
    ("FPAdd",    7.0,  9.0,  2.9,  3.0),
    ("Bpred",    9.9,  9.0,  3.0,  3.0),
    ("DTB",      12.9, 9.0,  3.0,  3.0),
    # Top band: integer core and load/store queue (the hot region).
    ("IntMap",   0.0,  12.0, 2.2,  3.9),
    ("IntQ",     2.2,  12.0, 2.2,  3.9),
    ("IntReg",   4.4,  12.0, 2.6,  3.9),
    ("IntExec",  7.0,  12.0, 3.9,  3.9),
    ("FPQ",      10.9, 12.0, 1.5,  3.9),
    ("LdStQ",    12.4, 12.0, 2.3,  3.9),
    ("ITB",      14.7, 12.0, 1.2,  3.9),
]

#: Functional unit names in floorplan order.
EV6_UNIT_NAMES: List[str] = [name for name, *_ in _EV6_UNITS_MM]

#: Units the paper leaves uncovered by TECs ("the instruction and data
#: caches ... do not show any hot spots in the experiments").
EV6_CACHE_UNITS: List[str] = ["Icache", "Dcache"]


def alpha21264_floorplan() -> Floorplan:
    """Build the embedded EV6-style floorplan (dimensions in meters)."""
    units = [
        FloorplanUnit(name, Rect(mm_to_m(x), mm_to_m(y),
                                 mm_to_m(w), mm_to_m(h)))
        for name, x, y, w, h in _EV6_UNITS_MM
    ]
    return Floorplan(units)
