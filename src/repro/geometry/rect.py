"""Axis-aligned rectangle with the operations the floorplan layer needs."""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import GeometryError


@dataclass(frozen=True)
class Rect:
    """An axis-aligned rectangle in meters.

    ``x`` and ``y`` locate the lower-left corner; ``width`` extends along +x
    and ``height`` along +y.  This matches the HotSpot ``.flp`` convention.
    """

    x: float
    y: float
    width: float
    height: float

    def __post_init__(self) -> None:
        if self.width <= 0.0 or self.height <= 0.0:
            raise GeometryError(
                f"Rect must have positive dimensions, got "
                f"width={self.width}, height={self.height}"
            )

    @property
    def x2(self) -> float:
        """Right edge coordinate."""
        return self.x + self.width

    @property
    def y2(self) -> float:
        """Top edge coordinate."""
        return self.y + self.height

    @property
    def area(self) -> float:
        """Rectangle area in square meters."""
        return self.width * self.height

    @property
    def center(self) -> tuple:
        """Center point ``(cx, cy)``."""
        return (self.x + self.width / 2.0, self.y + self.height / 2.0)

    def contains_point(self, px: float, py: float) -> bool:
        """Return True if ``(px, py)`` lies inside (or on the lower/left
        boundary of) this rectangle.

        Points on the upper/right boundary are excluded so that a point on a
        shared edge between two abutting rectangles belongs to exactly one.
        """
        return self.x <= px < self.x2 and self.y <= py < self.y2

    def intersection_area(self, other: "Rect") -> float:
        """Area of overlap between this rectangle and ``other`` (0 if none)."""
        overlap_w = min(self.x2, other.x2) - max(self.x, other.x)
        overlap_h = min(self.y2, other.y2) - max(self.y, other.y)
        if overlap_w <= 0.0 or overlap_h <= 0.0:
            return 0.0
        return overlap_w * overlap_h

    def intersects(self, other: "Rect") -> bool:
        """Return True if the rectangles overlap with positive area."""
        return self.intersection_area(other) > 0.0

    def scaled(self, factor: float) -> "Rect":
        """Return a copy uniformly scaled about the origin."""
        if factor <= 0.0:
            raise GeometryError(f"Scale factor must be positive, got {factor}")
        return Rect(
            self.x * factor, self.y * factor,
            self.width * factor, self.height * factor,
        )

    def translated(self, dx: float, dy: float) -> "Rect":
        """Return a copy shifted by ``(dx, dy)``."""
        return Rect(self.x + dx, self.y + dy, self.width, self.height)
