"""Geometry substrate: rectangles, floorplans, grids, and the EV6 die.

The thermal model discretizes each package layer into a uniform grid of
elements over the chip footprint.  This package provides the floorplan
representation (a set of named, non-overlapping functional-unit rectangles),
the grid mapping used to distribute per-unit power onto grid cells, and a
reader/writer for HotSpot ``.flp`` floorplan files.
"""

from .rect import Rect
from .floorplan import Floorplan, FloorplanUnit
from .grid import Grid, CellCoverage
from .ev6 import alpha21264_floorplan, EV6_UNIT_NAMES, EV6_CACHE_UNITS
from .cmp4 import cmp4_floorplan, cmp4_unit_power, CMP4_CACHE_UNITS
from .flp import parse_flp, parse_flp_text, write_flp, format_flp

__all__ = [
    "Rect",
    "Floorplan",
    "FloorplanUnit",
    "Grid",
    "CellCoverage",
    "alpha21264_floorplan",
    "EV6_UNIT_NAMES",
    "EV6_CACHE_UNITS",
    "cmp4_floorplan",
    "cmp4_unit_power",
    "CMP4_CACHE_UNITS",
    "parse_flp",
    "parse_flp_text",
    "write_flp",
    "format_flp",
]
