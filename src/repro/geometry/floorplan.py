"""Floorplan: a named set of functional-unit rectangles tiling a die."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..errors import GeometryError
from .rect import Rect


@dataclass(frozen=True)
class FloorplanUnit:
    """A functional unit: a named rectangle on the die."""

    name: str
    rect: Rect

    @property
    def area(self) -> float:
        """Unit area in square meters."""
        return self.rect.area


class Floorplan:
    """An ordered collection of non-overlapping functional units.

    The floorplan defines the die outline (its bounding box) and the mapping
    from unit names to die regions.  Unit order is preserved because power
    vectors are indexed by unit position.
    """

    def __init__(self, units: Iterable[FloorplanUnit],
                 validate_overlap: bool = True):
        self._units: List[FloorplanUnit] = list(units)
        if not self._units:
            raise GeometryError("Floorplan requires at least one unit")
        names = [u.name for u in self._units]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise GeometryError(f"Duplicate unit names: {dupes}")
        self._by_name: Dict[str, FloorplanUnit] = {
            u.name: u for u in self._units
        }
        if validate_overlap:
            self._check_overlaps()

    def _check_overlaps(self) -> None:
        # Tolerate sliver overlaps from floating-point edge placement: only
        # overlaps exceeding 0.01% of the smaller unit's area are errors.
        for i, a in enumerate(self._units):
            for b in self._units[i + 1:]:
                overlap = a.rect.intersection_area(b.rect)
                limit = 1e-4 * min(a.area, b.area)
                if overlap > limit:
                    raise GeometryError(
                        f"Units {a.name!r} and {b.name!r} overlap by "
                        f"{overlap:.3e} m^2"
                    )

    # -- container protocol -------------------------------------------------

    def __iter__(self) -> Iterator[FloorplanUnit]:
        return iter(self._units)

    def __len__(self) -> int:
        return len(self._units)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __getitem__(self, name: str) -> FloorplanUnit:
        try:
            return self._by_name[name]
        except KeyError:
            raise GeometryError(f"No unit named {name!r}") from None

    # -- queries -------------------------------------------------------------

    @property
    def unit_names(self) -> List[str]:
        """Unit names in definition order."""
        return [u.name for u in self._units]

    @property
    def units(self) -> List[FloorplanUnit]:
        """Units in definition order (copy; mutation-safe)."""
        return list(self._units)

    def index_of(self, name: str) -> int:
        """Position of ``name`` in the unit ordering."""
        for i, u in enumerate(self._units):
            if u.name == name:
                return i
        raise GeometryError(f"No unit named {name!r}")

    @property
    def bounding_box(self) -> Rect:
        """Smallest rectangle containing every unit (the die outline)."""
        x1 = min(u.rect.x for u in self._units)
        y1 = min(u.rect.y for u in self._units)
        x2 = max(u.rect.x2 for u in self._units)
        y2 = max(u.rect.y2 for u in self._units)
        return Rect(x1, y1, x2 - x1, y2 - y1)

    @property
    def width(self) -> float:
        """Die width in meters."""
        return self.bounding_box.width

    @property
    def height(self) -> float:
        """Die height in meters."""
        return self.bounding_box.height

    @property
    def total_unit_area(self) -> float:
        """Sum of unit areas (equals die area for a full tiling)."""
        return sum(u.area for u in self._units)

    def coverage_fraction(self) -> float:
        """Fraction of the die outline covered by units (1.0 = full tiling)."""
        return self.total_unit_area / self.bounding_box.area

    def unit_at(self, px: float, py: float) -> Optional[FloorplanUnit]:
        """Unit containing point ``(px, py)``, or None for dead space."""
        for u in self._units:
            if u.rect.contains_point(px, py):
                return u
        return None

    # -- transforms ----------------------------------------------------------

    def scaled(self, factor: float) -> "Floorplan":
        """Return a uniformly scaled copy (e.g. to resize a die)."""
        return Floorplan(
            [FloorplanUnit(u.name, u.rect.scaled(factor))
             for u in self._units],
            validate_overlap=False,
        )

    def normalized(self) -> "Floorplan":
        """Return a copy translated so the bounding box origin is (0, 0)."""
        box = self.bounding_box
        return Floorplan(
            [FloorplanUnit(u.name, u.rect.translated(-box.x, -box.y))
             for u in self._units],
            validate_overlap=False,
        )

    def area_fractions(self) -> Dict[str, float]:
        """Each unit's share of the total unit area."""
        total = self.total_unit_area
        return {u.name: u.area / total for u in self._units}

    def neighbors(self, name: str, gap_tolerance: float = 1e-9) -> List[str]:
        """Names of units sharing an edge (within tolerance) with ``name``."""
        target = self[name].rect
        found: List[str] = []
        for u in self._units:
            if u.name == name:
                continue
            r = u.rect
            share_x = (min(target.x2, r.x2) - max(target.x, r.x)) > 0.0
            share_y = (min(target.y2, r.y2) - max(target.y, r.y)) > 0.0
            touch_v = (abs(target.x2 - r.x) <= gap_tolerance
                       or abs(r.x2 - target.x) <= gap_tolerance)
            touch_h = (abs(target.y2 - r.y) <= gap_tolerance
                       or abs(r.y2 - target.y) <= gap_tolerance)
            if (touch_v and share_y) or (touch_h and share_x):
                found.append(u.name)
        return found


def floorplan_from_dict(
    spec: Dict[str, Tuple[float, float, float, float]],
) -> Floorplan:
    """Build a floorplan from ``{name: (x, y, width, height)}`` in meters."""
    units = [
        FloorplanUnit(name, Rect(x, y, w, h))
        for name, (x, y, w, h) in spec.items()
    ]
    return Floorplan(units)
