"""Reader/writer for HotSpot ``.flp`` floorplan files.

HotSpot's floorplan format is one unit per line::

    <unit-name> <width> <height> <left-x> <bottom-y> \
        [specific-heat] [resistivity]

with all dimensions in meters, ``#`` comments, and blank lines ignored.
The optional trailing material columns are parsed and ignored (the stack
configuration carries material data in this library).
"""

from __future__ import annotations

import os
from typing import List, Union

from ..errors import FloorplanParseError
from .floorplan import Floorplan, FloorplanUnit
from .rect import Rect


def parse_flp_text(text: str, source: str = "<string>") -> Floorplan:
    """Parse HotSpot ``.flp`` content from a string."""
    units: List[FloorplanUnit] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        fields = line.split()
        if len(fields) not in (5, 6, 7):
            raise FloorplanParseError(
                f"{source}:{lineno}: expected 5-7 fields, got "
                f"{len(fields)}: {raw!r}")
        name = fields[0]
        try:
            width, height, x, y = (float(v) for v in fields[1:5])
        except ValueError as exc:
            raise FloorplanParseError(
                f"{source}:{lineno}: non-numeric dimension in {raw!r}"
            ) from exc
        if width <= 0.0 or height <= 0.0:
            raise FloorplanParseError(
                f"{source}:{lineno}: unit {name!r} has non-positive size")
        units.append(FloorplanUnit(name, Rect(x, y, width, height)))
    if not units:
        raise FloorplanParseError(f"{source}: no units found")
    return Floorplan(units)


def parse_flp(path: Union[str, os.PathLike]) -> Floorplan:
    """Parse a HotSpot ``.flp`` file from disk."""
    with open(path, "r", encoding="utf-8") as f:
        return parse_flp_text(f.read(), source=str(path))


def format_flp(floorplan: Floorplan) -> str:
    """Render a floorplan as HotSpot ``.flp`` text."""
    lines = ["# Floorplan written by repro.geometry.flp",
             "# <unit-name> <width> <height> <left-x> <bottom-y>"]
    for unit in floorplan:
        r = unit.rect
        lines.append(
            f"{unit.name}\t{r.width:.6e}\t{r.height:.6e}"
            f"\t{r.x:.6e}\t{r.y:.6e}")
    return "\n".join(lines) + "\n"


def write_flp(floorplan: Floorplan, path: Union[str, os.PathLike]) -> None:
    """Write a floorplan to disk in HotSpot ``.flp`` format."""
    with open(path, "w", encoding="utf-8") as f:
        f.write(format_flp(floorplan))
