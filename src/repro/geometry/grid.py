"""Uniform grid discretization of a die and unit<->cell area mapping.

The thermal model works on a uniform ``nx x ny`` grid over the chip
footprint.  :class:`Grid` owns the index arithmetic; :class:`CellCoverage`
computes, for every (unit, cell) pair, the fraction of the cell covered by
the unit — used both to distribute unit power onto cells and to aggregate
cell temperatures back to units.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from ..errors import GeometryError
from .floorplan import Floorplan
from .rect import Rect


class Grid:
    """A uniform ``nx x ny`` grid over a rectangular footprint.

    Cells are indexed ``(ix, iy)`` with ``ix`` along x (width) and ``iy``
    along y (height); the flat index is ``iy * nx + ix`` (row-major in y).
    """

    def __init__(self, width: float, height: float, nx: int, ny: int):
        if width <= 0.0 or height <= 0.0:
            raise GeometryError(
                f"Grid footprint must be positive, got {width} x {height}")
        if nx < 1 or ny < 1:
            raise GeometryError(f"Grid must be at least 1x1, got {nx}x{ny}")
        self.width = float(width)
        self.height = float(height)
        self.nx = int(nx)
        self.ny = int(ny)
        self.dx = self.width / self.nx
        self.dy = self.height / self.ny

    @classmethod
    def for_floorplan(cls, floorplan: Floorplan, nx: int, ny: int) -> "Grid":
        """Grid covering the floorplan's bounding box."""
        box = floorplan.bounding_box
        return cls(box.width, box.height, nx, ny)

    @property
    def cell_count(self) -> int:
        """Number of cells (``nx * ny``)."""
        return self.nx * self.ny

    @property
    def cell_area(self) -> float:
        """Area of one cell in square meters."""
        return self.dx * self.dy

    def flat_index(self, ix: int, iy: int) -> int:
        """Flat index of cell ``(ix, iy)``."""
        if not (0 <= ix < self.nx and 0 <= iy < self.ny):
            raise GeometryError(
                f"Cell ({ix}, {iy}) outside {self.nx}x{self.ny} grid")
        return iy * self.nx + ix

    def cell_coords(self, flat: int) -> Tuple[int, int]:
        """Inverse of :meth:`flat_index`."""
        if not (0 <= flat < self.cell_count):
            raise GeometryError(
                f"Flat index {flat} outside grid of {self.cell_count} cells")
        return flat % self.nx, flat // self.nx

    def cell_rect(self, ix: int, iy: int) -> Rect:
        """Rectangle of cell ``(ix, iy)`` in footprint coordinates."""
        if not (0 <= ix < self.nx and 0 <= iy < self.ny):
            raise GeometryError(
                f"Cell ({ix}, {iy}) outside {self.nx}x{self.ny} grid")
        return Rect(ix * self.dx, iy * self.dy, self.dx, self.dy)

    def cell_center(self, ix: int, iy: int) -> Tuple[float, float]:
        """Center point of cell ``(ix, iy)``."""
        return ((ix + 0.5) * self.dx, (iy + 0.5) * self.dy)

    def iter_cells(self) -> Iterator[Tuple[int, int]]:
        """Iterate cell coordinates in flat-index order."""
        for iy in range(self.ny):
            for ix in range(self.nx):
                yield ix, iy

    def neighbors(self, ix: int, iy: int) -> List[Tuple[int, int]]:
        """4-connected lateral neighbors of cell ``(ix, iy)``."""
        out = []
        if ix > 0:
            out.append((ix - 1, iy))
        if ix < self.nx - 1:
            out.append((ix + 1, iy))
        if iy > 0:
            out.append((ix, iy - 1))
        if iy < self.ny - 1:
            out.append((ix, iy + 1))
        return out

    def edge_cells(self, side: str) -> List[Tuple[int, int]]:
        """Cells on a boundary: ``side`` in {'west','east','south','north'}."""
        if side == "west":
            return [(0, iy) for iy in range(self.ny)]
        if side == "east":
            return [(self.nx - 1, iy) for iy in range(self.ny)]
        if side == "south":
            return [(ix, 0) for ix in range(self.nx)]
        if side == "north":
            return [(ix, self.ny - 1) for ix in range(self.nx)]
        raise GeometryError(f"Unknown side {side!r}")


class CellCoverage:
    """Area overlap between floorplan units and grid cells.

    Provides the two linear maps the power/thermal layers need:

    * ``unit power vector -> per-cell power`` (power density of each unit is
      spread uniformly over the cells it covers), and
    * ``per-cell temperatures -> per-unit temperatures`` (area-weighted
      average, or max) for reporting.
    """

    def __init__(self, floorplan: Floorplan, grid: Grid):
        box = floorplan.bounding_box
        if (abs(box.width - grid.width) > 1e-9
                or abs(box.height - grid.height) > 1e-9):
            raise GeometryError(
                "Grid footprint does not match floorplan bounding box: "
                f"{grid.width}x{grid.height} vs {box.width}x{box.height}")
        self.floorplan = floorplan.normalized()
        self.grid = grid
        # overlap[u, c] = area of unit u inside cell c (m^2)
        self._overlap = np.zeros(
            (len(self.floorplan), grid.cell_count), dtype=float)
        for u_idx, unit in enumerate(self.floorplan):
            self._fill_unit_overlaps(u_idx, unit.rect)

    def _fill_unit_overlaps(self, u_idx: int, rect: Rect) -> None:
        grid = self.grid
        ix_lo = max(0, int(np.floor(rect.x / grid.dx)))
        ix_hi = min(grid.nx - 1, int(np.ceil(rect.x2 / grid.dx)) - 1)
        iy_lo = max(0, int(np.floor(rect.y / grid.dy)))
        iy_hi = min(grid.ny - 1, int(np.ceil(rect.y2 / grid.dy)) - 1)
        for iy in range(iy_lo, iy_hi + 1):
            for ix in range(ix_lo, ix_hi + 1):
                cell = grid.cell_rect(ix, iy)
                area = rect.intersection_area(cell)
                if area > 0.0:
                    self._overlap[u_idx, grid.flat_index(ix, iy)] = area

    @property
    def overlap_matrix(self) -> np.ndarray:
        """Copy of the (units x cells) overlap-area matrix in m^2."""
        return self._overlap.copy()

    def unit_cell_fractions(self, unit_name: str) -> np.ndarray:
        """For one unit: fraction of the unit's area in each cell."""
        u_idx = self.floorplan.index_of(unit_name)
        row = self._overlap[u_idx]
        total = row.sum()
        if total <= 0.0:
            raise GeometryError(
                f"Unit {unit_name!r} covers no grid cells")
        return row / total

    def power_map(self, unit_powers: Dict[str, float]) -> np.ndarray:
        """Distribute per-unit powers (W) onto grid cells.

        Each unit's power is spread over its cells proportionally to the
        covered area, i.e. at uniform power density within the unit.
        Unlisted units contribute zero.  Returns a flat array of length
        ``grid.cell_count`` whose sum equals the sum of the inputs.
        """
        cell_power = np.zeros(self.grid.cell_count, dtype=float)
        for name, power in unit_powers.items():
            u_idx = self.floorplan.index_of(name)
            row = self._overlap[u_idx]
            total = row.sum()
            if total <= 0.0:
                raise GeometryError(f"Unit {name!r} covers no grid cells")
            cell_power += power * (row / total)
        return cell_power

    def cells_of_unit(self, unit_name: str, min_fraction: float = 0.5,
                      ) -> List[int]:
        """Flat indices of cells majority-covered by ``unit_name``.

        ``min_fraction`` is the fraction of the *cell* area that must be
        covered by the unit for the cell to count as belonging to it.
        """
        u_idx = self.floorplan.index_of(unit_name)
        cell_area = self.grid.cell_area
        row = self._overlap[u_idx]
        return [c for c in range(self.grid.cell_count)
                if row[c] / cell_area >= min_fraction]

    def dominant_unit_per_cell(self) -> List[str]:
        """For each cell, the name of the unit covering the largest share.

        Cells covered by no unit (dead space) get the empty string.
        """
        out: List[str] = []
        names = self.floorplan.unit_names
        for c in range(self.grid.cell_count):
            col = self._overlap[:, c]
            best = int(np.argmax(col))
            out.append(names[best] if col[best] > 0.0 else "")
        return out

    def unit_temperatures(self, cell_temps: np.ndarray,
                          reduce: str = "max") -> Dict[str, float]:
        """Aggregate per-cell temperatures back to per-unit values.

        ``reduce`` is ``"max"`` (hotspot, default) or ``"mean"``
        (area-weighted average over the unit's footprint).
        """
        if cell_temps.shape != (self.grid.cell_count,):
            raise GeometryError(
                f"Expected {self.grid.cell_count} cell temperatures, got "
                f"{cell_temps.shape}")
        result: Dict[str, float] = {}
        for u_idx, unit in enumerate(self.floorplan):
            row = self._overlap[u_idx]
            mask = row > 0.0
            if not mask.any():
                continue
            if reduce == "max":
                result[unit.name] = float(cell_temps[mask].max())
            elif reduce == "mean":
                result[unit.name] = float(
                    np.average(cell_temps[mask], weights=row[mask]))
            else:
                raise GeometryError(f"Unknown reduce mode {reduce!r}")
        return result
