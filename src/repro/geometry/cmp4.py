"""A generic quad-core CMP floorplan.

The paper's flow "is not limited to the aforementioned selections of the
processor" (Section 6.1).  This preset demonstrates that: a 16 mm x 16 mm
four-core chip multiprocessor with per-core EV6-style clusters and a
shared L2 spine, usable anywhere the EV6 floorplan is.

Layout (y grows upward)::

    +---------+---------+
    | core2   | core3   |     each core: EXE/REG/FPU/LSU/L1 tiles
    +---------+---------+
    |      shared L2    |
    +---------+---------+
    | core0   | core1   |
    +---------+---------+
"""

from __future__ import annotations

from typing import List, Tuple

from ..errors import ConfigurationError
from ..units import mm_to_m
from .floorplan import Floorplan, FloorplanUnit
from .rect import Rect

#: Die edge length in meters.
CMP4_DIE_SIZE = 16.0e-3

#: Cache-array units (candidates for TEC exclusion, like the EV6 caches).
CMP4_CACHE_UNITS: List[str] = [
    "L2", "core0_L1", "core1_L1", "core2_L1", "core3_L1",
]

# Per-core tile layout within an 8 mm x 6 mm core, (name, x, y, w, h) mm.
_CORE_TILES: List[Tuple[str, float, float, float, float]] = [
    ("EXE", 0.0, 3.0, 3.0, 3.0),
    ("REG", 3.0, 3.0, 2.0, 3.0),
    ("FPU", 5.0, 3.0, 3.0, 3.0),
    ("LSU", 0.0, 0.0, 3.0, 3.0),
    ("L1",  3.0, 0.0, 5.0, 3.0),
]

# Core origins (mm): two below the L2 spine, two above.
_CORE_ORIGINS = [(0.0, 0.0), (8.0, 0.0), (0.0, 10.0), (8.0, 10.0)]

#: Units that typically develop hot spots (per core).
CMP4_HOT_TILES = ("EXE", "REG", "LSU")


def cmp4_floorplan() -> Floorplan:
    """Build the quad-core floorplan (dimensions in meters)."""
    units: List[FloorplanUnit] = []
    for core, (ox, oy) in enumerate(_CORE_ORIGINS):
        for name, x, y, w, h in _CORE_TILES:
            units.append(FloorplanUnit(
                f"core{core}_{name}",
                Rect(mm_to_m(ox + x), mm_to_m(oy + y),
                     mm_to_m(w), mm_to_m(h))))
    # Shared L2 spine between the core rows.
    units.append(FloorplanUnit("L2", Rect(0.0, 6.0e-3, 16.0e-3,
                                          4.0e-3)))
    return Floorplan(units)


def cmp4_unit_power(core_powers: List[float],
                    l2_power: float = 4.0) -> dict:
    """Per-unit power map from per-core totals.

    Each core's power splits over its tiles with the execution units
    drawing the highest density; ``core_powers`` lists watts for cores
    0..3 (asymmetric loads model thread imbalance).
    """
    if len(core_powers) != 4:
        raise ConfigurationError(
            f"Need exactly 4 core powers, got {len(core_powers)}")
    tile_share = {"EXE": 0.34, "REG": 0.16, "FPU": 0.16, "LSU": 0.20,
                  "L1": 0.14}
    powers = {"L2": l2_power}
    for core, total in enumerate(core_powers):
        if total < 0.0:
            raise ConfigurationError(f"core{core}: power must be >= 0")
        for tile, share in tile_share.items():
            powers[f"core{core}_{tile}"] = total * share
    return powers
