"""CSV serialization of power traces.

Format: a header row ``time,<unit1>,<unit2>,...`` followed by one row per
sample, all in SI units (seconds, watts).  The trace name travels in a
``# name: <...>`` comment line so round trips are lossless.
"""

from __future__ import annotations

import csv
import os
from typing import List, Union

import numpy as np

from ..errors import ConfigurationError
from ..power import PowerTrace

PathLike = Union[str, os.PathLike]


def save_trace(trace: PowerTrace, path: PathLike) -> None:
    """Write a power trace as CSV."""
    with open(path, "w", encoding="utf-8", newline="") as f:
        f.write(f"# name: {trace.name}\n")
        writer = csv.writer(f)
        writer.writerow(["time"] + trace.unit_names)
        for t, row in zip(trace.times, trace.samples):
            writer.writerow([f"{t:.9g}"] + [f"{p:.9g}" for p in row])


def load_trace(path: PathLike) -> PowerTrace:
    """Read a power trace from CSV written by :func:`save_trace`."""
    name = os.path.splitext(os.path.basename(str(path)))[0]
    times: List[float] = []
    rows: List[List[float]] = []
    unit_names: List[str] = []
    with open(path, "r", encoding="utf-8", newline="") as f:
        header_seen = False
        for raw in f:
            line = raw.strip()
            if not line:
                continue
            if line.startswith("#"):
                if line[1:].strip().startswith("name:"):
                    name = line.split("name:", 1)[1].strip()
                continue
            fields = next(csv.reader([line]))
            if not header_seen:
                if fields[0] != "time":
                    raise ConfigurationError(
                        f"{path}: first column must be 'time', got "
                        f"{fields[0]!r}")
                unit_names = fields[1:]
                if not unit_names:
                    raise ConfigurationError(f"{path}: no unit columns")
                header_seen = True
                continue
            if len(fields) != len(unit_names) + 1:
                raise ConfigurationError(
                    f"{path}: row has {len(fields)} fields, expected "
                    f"{len(unit_names) + 1}")
            times.append(float(fields[0]))
            rows.append([float(v) for v in fields[1:]])
    if not header_seen or not times:
        raise ConfigurationError(f"{path}: no samples found")
    return PowerTrace(name, unit_names, np.array(times), np.array(rows))
