"""Serialization of optimization results and campaigns.

Flattens the result objects into JSON-friendly dictionaries so runs can
be archived, diffed, and post-processed outside Python — what a
downstream user wants from a nightly thermal-regression job.
"""

from __future__ import annotations

import json
import os
from typing import Optional, Union

from ..analysis.campaign import BenchmarkComparison, CampaignResult
from ..core import (
    AttemptRecord,
    BaselineResult,
    Evaluation,
    FailureReport,
    OFTECResult,
)
from ..units import kelvin_to_celsius, rad_s_to_rpm, s_to_ms

PathLike = Union[str, os.PathLike]


def evaluation_to_dict(evaluation: Evaluation) -> dict:
    """Serialize one operating-point evaluation."""
    return {
        "omega_rad_s": evaluation.omega,
        "omega_rpm": rad_s_to_rpm(evaluation.omega),
        "i_tec_a": evaluation.current,
        "max_temperature_k": evaluation.max_chip_temperature,
        "max_temperature_c": kelvin_to_celsius(
            evaluation.max_chip_temperature),
        "total_power_w": evaluation.total_power,
        "leakage_power_w": evaluation.leakage_power,
        "tec_power_w": evaluation.tec_power,
        "fan_power_w": evaluation.fan_power,
        "feasible": evaluation.feasible,
        "runaway": evaluation.runaway,
    }


def oftec_result_to_dict(result: OFTECResult) -> dict:
    """Serialize an Algorithm 1 outcome."""
    return {
        "benchmark": result.problem_name,
        "feasible": result.feasible,
        "omega_star_rad_s": result.omega_star,
        "i_star_a": result.current_star,
        "runtime_ms": s_to_ms(result.runtime_seconds),
        "thermal_solves": result.thermal_solves,
        "used_opt2_stage": result.opt2 is not None,
        "evaluation": evaluation_to_dict(result.evaluation),
    }


def baseline_result_to_dict(result: BaselineResult) -> dict:
    """Serialize a baseline-controller outcome."""
    return {
        "benchmark": result.problem_name,
        "controller": result.controller,
        "feasible": result.feasible,
        "runaway": result.runaway,
        "omega_rad_s": result.omega,
        "i_tec_a": result.current,
        "runtime_ms": s_to_ms(result.runtime_seconds),
        "evaluation": evaluation_to_dict(result.evaluation),
    }


def comparison_to_dict(comparison: BenchmarkComparison) -> dict:
    """Serialize one benchmark's three-method comparison."""
    payload = {
        "benchmark": comparison.name,
        "oftec_opt1": oftec_result_to_dict(comparison.oftec_opt1),
        "oftec_opt2": evaluation_to_dict(
            comparison.oftec_opt2.evaluation),
        "variable_omega_opt1": baseline_result_to_dict(
            comparison.variable_opt1),
        "variable_omega_opt2": evaluation_to_dict(
            comparison.variable_opt2.evaluation),
        "fixed_omega": baseline_result_to_dict(comparison.fixed),
    }
    if comparison.tec_only is not None:
        payload["tec_only"] = baseline_result_to_dict(
            comparison.tec_only)
    return payload


def attempt_to_dict(attempt: AttemptRecord) -> dict:
    """Serialize one fallback-ladder attempt."""
    return {
        "method": attempt.method,
        "retry": attempt.retry,
        "success": attempt.success,
        "error_type": attempt.error_type,
        "message": attempt.message,
        "evaluations": attempt.evaluations,
        "factorizations": attempt.factorizations,
    }


def failure_report_to_dict(report: FailureReport) -> dict:
    """Serialize one structured failure post-mortem."""
    payload = {
        "benchmark": report.benchmark,
        "stage": report.stage,
        "error_type": report.error_type,
        "message": report.message,
        "exception_chain": list(report.exception_chain),
        "attempts": [attempt_to_dict(a) for a in report.attempts],
    }
    if report.last_iterate is not None:
        payload["last_iterate"] = {
            "omega_rad_s": report.last_iterate[0],
            "i_tec_a": report.last_iterate[1],
        }
    if report.condition_estimate is not None:
        payload["condition_estimate"] = report.condition_estimate
    if report.trace_excerpt:
        payload["trace_excerpt"] = list(report.trace_excerpt)
    return payload


def quarantined_to_dict(entry) -> dict:
    """Serialize one quarantined unit (supervised campaigns).

    ``entry`` is a :class:`repro.exec.QuarantinedUnit`; the per-attempt
    error lines ride along verbatim so the JSON is a complete
    post-mortem of why the unit never completed.
    """
    return {
        "unit": entry.name,
        "index": entry.index,
        "attempts": entry.attempts,
        "errors": list(entry.errors),
    }


#: Keys zeroed by canonical serialization: every field whose value
#: depends on wall-clock timing rather than on the computed physics.
VOLATILE_KEYS = frozenset({
    "wall_seconds", "runtime_ms", "average_oftec_runtime_ms"})


def canonicalize(payload: dict) -> dict:
    """A timing-free deep copy of a result dictionary.

    Zeroes every :data:`VOLATILE_KEYS` entry (recursively) and drops
    the ``telemetry`` block.  Two runs that computed the same physics
    — serial vs parallel, traced vs untraced — canonicalize to the
    same bytes, which is what the bit-identity tests and the CI
    serial-vs-parallel diff compare.
    """
    def walk(value):
        if isinstance(value, dict):
            return {key: (0.0 if key in VOLATILE_KEYS else walk(item))
                    for key, item in value.items()
                    if key != "telemetry"}
        if isinstance(value, list):
            return [walk(item) for item in value]
        return value

    return walk(payload)


def campaign_to_dict(campaign: CampaignResult,
                     telemetry: Optional[dict] = None,
                     canonical: bool = False) -> dict:
    """Serialize a full campaign with its headline aggregates.

    Failure reports appear under ``"failures"`` only when present, and
    the ``"telemetry"`` block only when a metrics snapshot is passed
    explicitly, so campaigns run without telemetry serialize exactly as
    they always did (byte-identical output).

    Args:
        telemetry: Optional metrics snapshot (the value of
            :meth:`repro.obs.MetricsRegistry.snapshot`) to embed.
        canonical: Strip run-volatile content (see
            :func:`canonicalize`) so outputs diff cleanly across runs
            and worker counts.
    """
    counts = campaign.feasibility_counts()
    payload = {
        "t_max_k": campaign.t_max,
        "wall_seconds": campaign.wall_seconds,
        "benchmarks": [comparison_to_dict(c)
                       for c in campaign.comparisons],
        "feasibility_counts": counts,
        "comparable_benchmarks": campaign.comparable_benchmarks(),
    }
    if campaign.comparisons:
        payload["average_oftec_runtime_ms"] = \
            s_to_ms(campaign.average_oftec_runtime())
        payload["opt2_temperature_advantage_k"] = \
            campaign.average_opt2_temperature_advantage()
    if campaign.failures:
        payload["failures"] = [failure_report_to_dict(f)
                               for f in campaign.failures]
    if campaign.quarantined:
        payload["quarantined"] = [quarantined_to_dict(entry)
                                  for entry in campaign.quarantined]
    if campaign.comparable_benchmarks():
        payload["power_saving_vs_variable"] = \
            campaign.average_power_saving("variable-omega")
        payload["power_saving_vs_fixed"] = \
            campaign.average_power_saving("fixed-omega")
        payload["temperature_delta_vs_variable_k"] = \
            campaign.average_temperature_delta("variable-omega")
    if telemetry is not None:
        payload["telemetry"] = telemetry
    if canonical:
        payload = canonicalize(payload)
    return payload


def save_campaign(campaign: CampaignResult, path: PathLike,
                  telemetry: Optional[dict] = None,
                  canonical: bool = False) -> None:
    """Write a campaign as JSON (optionally with a telemetry block).

    ``canonical=True`` writes the timing-free form (see
    :func:`canonicalize`) for run-to-run diffing.
    """
    with open(path, "w", encoding="utf-8") as f:
        json.dump(campaign_to_dict(campaign, telemetry=telemetry,
                                   canonical=canonical), f,
                  indent=2, sort_keys=True)
