"""JSON round-tripping of the configuration objects users share.

Covers the three things a downstream user typically wants to version:
benchmark power profiles, TEC device datasheets, and optimization limits.
All functions are symmetric (``X_to_dict`` / ``X_from_dict``) and the
file helpers wrap them with UTF-8 JSON.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Union

from ..core import ProblemLimits
from ..errors import ConfigurationError
from ..power import BenchmarkProfile
from ..tec import TECDevice

PathLike = Union[str, os.PathLike]


# -- benchmark profiles -------------------------------------------------------

def profile_to_dict(profile: BenchmarkProfile) -> dict:
    """Serialize a benchmark profile."""
    return {"name": profile.name, "unit_power": profile.as_dict()}


def profile_from_dict(data: dict) -> BenchmarkProfile:
    """Deserialize a benchmark profile."""
    try:
        name = data["name"]
        unit_power = data["unit_power"]
    except KeyError as exc:
        raise ConfigurationError(
            f"Profile dict missing key: {exc}") from None
    if not isinstance(unit_power, dict):
        raise ConfigurationError("unit_power must be a mapping")
    return BenchmarkProfile(str(name),
                            {str(u): float(p)
                             for u, p in unit_power.items()})


def save_profile(profile: BenchmarkProfile, path: PathLike) -> None:
    """Write one profile as JSON."""
    with open(path, "w", encoding="utf-8") as f:
        json.dump(profile_to_dict(profile), f, indent=2, sort_keys=True)


def load_profile(path: PathLike) -> BenchmarkProfile:
    """Read one profile from JSON."""
    with open(path, "r", encoding="utf-8") as f:
        return profile_from_dict(json.load(f))


def save_profiles(profiles: Dict[str, BenchmarkProfile],
                  path: PathLike) -> None:
    """Write a named set of profiles as one JSON document."""
    payload = {name: profile_to_dict(profile)
               for name, profile in profiles.items()}
    with open(path, "w", encoding="utf-8") as f:
        json.dump(payload, f, indent=2, sort_keys=True)


def load_profiles(path: PathLike) -> Dict[str, BenchmarkProfile]:
    """Read a named set of profiles from one JSON document."""
    with open(path, "r", encoding="utf-8") as f:
        payload = json.load(f)
    if not isinstance(payload, dict):
        raise ConfigurationError("Profile set file must hold an object")
    return {name: profile_from_dict(data)
            for name, data in payload.items()}


# -- TEC devices --------------------------------------------------------------

def device_to_dict(device: TECDevice) -> dict:
    """Serialize a TEC device datasheet."""
    return {
        "seebeck_coefficient": device.seebeck_coefficient,
        "electrical_resistance": device.electrical_resistance,
        "thermal_conductance": device.thermal_conductance,
        "footprint_area": device.footprint_area,
        "max_current": device.max_current,
    }


def device_from_dict(data: dict) -> TECDevice:
    """Deserialize a TEC device datasheet."""
    required = ("seebeck_coefficient", "electrical_resistance",
                "thermal_conductance", "footprint_area")
    missing = [key for key in required if key not in data]
    if missing:
        raise ConfigurationError(f"Device dict missing keys: {missing}")
    return TECDevice(
        seebeck_coefficient=float(data["seebeck_coefficient"]),
        electrical_resistance=float(data["electrical_resistance"]),
        thermal_conductance=float(data["thermal_conductance"]),
        footprint_area=float(data["footprint_area"]),
        max_current=float(data.get("max_current", 5.0)),
    )


# -- limits -------------------------------------------------------------------

def limits_to_dict(limits: ProblemLimits) -> dict:
    """Serialize optimization limits."""
    return {
        "t_max": limits.t_max,
        "omega_max": limits.omega_max,
        "i_tec_max": limits.i_tec_max,
    }


def limits_from_dict(data: dict) -> ProblemLimits:
    """Deserialize optimization limits (missing keys take paper values)."""
    defaults = ProblemLimits()
    return ProblemLimits(
        t_max=float(data.get("t_max", defaults.t_max)),
        omega_max=float(data.get("omega_max", defaults.omega_max)),
        i_tec_max=float(data.get("i_tec_max", defaults.i_tec_max)),
    )
