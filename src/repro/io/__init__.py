"""Serialization: JSON configs for profiles/devices/limits, CSV traces."""

from .config import (
    device_from_dict,
    device_to_dict,
    limits_from_dict,
    limits_to_dict,
    load_profile,
    load_profiles,
    profile_from_dict,
    profile_to_dict,
    save_profile,
    save_profiles,
)
from .tracefmt import load_trace, save_trace
from .csvexport import CSV_COLUMNS, campaign_rows, save_campaign_csv
from .results import (
    VOLATILE_KEYS,
    attempt_to_dict,
    baseline_result_to_dict,
    campaign_to_dict,
    canonicalize,
    comparison_to_dict,
    evaluation_to_dict,
    failure_report_to_dict,
    oftec_result_to_dict,
    quarantined_to_dict,
    save_campaign,
)

__all__ = [
    "profile_to_dict",
    "profile_from_dict",
    "save_profile",
    "load_profile",
    "save_profiles",
    "load_profiles",
    "device_to_dict",
    "device_from_dict",
    "limits_to_dict",
    "limits_from_dict",
    "save_trace",
    "load_trace",
    "evaluation_to_dict",
    "oftec_result_to_dict",
    "baseline_result_to_dict",
    "attempt_to_dict",
    "failure_report_to_dict",
    "quarantined_to_dict",
    "comparison_to_dict",
    "campaign_to_dict",
    "canonicalize",
    "VOLATILE_KEYS",
    "save_campaign",
    "CSV_COLUMNS",
    "campaign_rows",
    "save_campaign_csv",
]
