"""CSV export of campaign results.

One row per (benchmark, method, objective): the flat layout spreadsheet
users and plotting scripts expect.  Columns are fixed and documented so
downstream tooling can rely on them.
"""

from __future__ import annotations

import csv
import os
from typing import List, Union

from ..analysis.campaign import CampaignResult
from ..core import Evaluation
from ..units import kelvin_to_celsius, rad_s_to_rpm

PathLike = Union[str, os.PathLike]

#: Column order of the exported rows.
CSV_COLUMNS = [
    "benchmark", "method", "objective", "feasible", "runaway",
    "omega_rpm", "i_tec_a", "max_temperature_c", "total_power_w",
    "leakage_power_w", "tec_power_w", "fan_power_w",
]


def _row(benchmark: str, method: str, objective: str,
         evaluation: Evaluation) -> List:
    return [
        benchmark, method, objective,
        evaluation.feasible, evaluation.runaway,
        round(rad_s_to_rpm(evaluation.omega), 1),
        round(evaluation.current, 4),
        round(kelvin_to_celsius(evaluation.max_chip_temperature), 3),
        round(evaluation.total_power, 4),
        round(evaluation.leakage_power, 4)
        if evaluation.leakage_power != float("inf") else "inf",
        round(evaluation.tec_power, 4),
        round(evaluation.fan_power, 4),
    ]


def campaign_rows(campaign: CampaignResult) -> List[List]:
    """The flat row list (without header)."""
    rows: List[List] = []
    for comparison in campaign.comparisons:
        rows.append(_row(comparison.name, "oftec", "opt1",
                         comparison.oftec_opt1.evaluation))
        rows.append(_row(comparison.name, "oftec", "opt2",
                         comparison.oftec_opt2.evaluation))
        rows.append(_row(comparison.name, "variable-omega", "opt1",
                         comparison.variable_opt1.evaluation))
        rows.append(_row(comparison.name, "variable-omega", "opt2",
                         comparison.variable_opt2.evaluation))
        rows.append(_row(comparison.name, "fixed-omega", "opt1",
                         comparison.fixed.evaluation))
        if comparison.tec_only is not None:
            rows.append(_row(comparison.name, "tec-only", "opt2",
                             comparison.tec_only.evaluation))
    return rows


def save_campaign_csv(campaign: CampaignResult, path: PathLike) -> None:
    """Write the campaign as CSV with the :data:`CSV_COLUMNS` header."""
    with open(path, "w", encoding="utf-8", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(CSV_COLUMNS)
        writer.writerows(campaign_rows(campaign))
