"""Activity-to-power conversion and trace emission.

Per-unit dynamic power is the classic activity-proportional model:

    P_unit(t) = peak_unit * (idle_fraction + (1 - idle_fraction) * a(t))

with ``a(t)`` the activity factor from the pipeline model and
``idle_fraction`` the clock-tree/sequencing floor that burns even when a
unit does no useful work.  Peak powers default to area-proportional
values over the EV6 floorplan, scaled to a total peak budget — the knob
that aligns the simulator with the calibrated benchmark profiles.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

import numpy as np

from ..errors import ConfigurationError
from ..geometry import Floorplan, alpha21264_floorplan
from ..power import PowerTrace
from .pipeline import ActivityModel, Ev6Machine
from .programs import SyntheticProgram

#: Relative peak power density by unit (per unit area): execution units
#: switch much harder than SRAM arrays.
_RELATIVE_DENSITY: Dict[str, float] = {
    "IntExec": 3.0, "IntReg": 2.6, "IntQ": 2.0, "IntMap": 1.8,
    "FPAdd": 2.8, "FPMul": 2.8, "FPReg": 2.4, "FPQ": 1.8, "FPMap": 1.6,
    "LdStQ": 2.4, "DTB": 1.6, "ITB": 1.6, "Bpred": 1.8,
    "Icache": 1.0, "Dcache": 1.0,
    "L2": 0.35, "L2_left": 0.35, "L2_right": 0.35,
}


class UnitPowerModel:
    """Per-unit peak dynamic powers with an idle floor.

    Attributes:
        peak_power: Unit name -> peak dynamic power, W (at activity 1).
        idle_fraction: Share of peak burned at zero activity.
    """

    def __init__(self, peak_power: Mapping[str, float],
                 idle_fraction: float = 0.12):
        if not peak_power:
            raise ConfigurationError("peak_power must not be empty")
        bad = {u: p for u, p in peak_power.items() if p < 0.0}
        if bad:
            raise ConfigurationError(f"Negative peak powers: {bad}")
        if not (0.0 <= idle_fraction < 1.0):
            raise ConfigurationError(
                f"idle_fraction must be in [0, 1), got {idle_fraction}")
        self.peak_power: Dict[str, float] = dict(peak_power)
        self.idle_fraction = idle_fraction

    @classmethod
    def for_floorplan(cls, floorplan: Optional[Floorplan] = None,
                      total_peak: float = 70.0,
                      idle_fraction: float = 0.12) -> "UnitPowerModel":
        """Area x relative-density peaks, scaled to ``total_peak`` watts."""
        if total_peak <= 0.0:
            raise ConfigurationError("total_peak must be positive")
        floorplan = floorplan or alpha21264_floorplan()
        raw = {
            unit.name: unit.area
            * _RELATIVE_DENSITY.get(unit.name, 1.0)
            for unit in floorplan
        }
        scale = total_peak / sum(raw.values())
        return cls({name: value * scale for name, value in raw.items()},
                   idle_fraction=idle_fraction)

    @property
    def total_peak(self) -> float:
        """Sum of unit peaks, W."""
        return sum(self.peak_power.values())

    def power(self, unit: str, activity: float) -> float:
        """Dynamic power of one unit at an activity factor."""
        if unit not in self.peak_power:
            raise ConfigurationError(f"No peak power for unit {unit!r}")
        if not (0.0 <= activity <= 1.0):
            raise ConfigurationError(
                f"activity must be in [0, 1], got {activity}")
        peak = self.peak_power[unit]
        return peak * (self.idle_fraction
                       + (1.0 - self.idle_fraction) * activity)


def simulate_power_trace(
    program: SyntheticProgram,
    power_model: Optional[UnitPowerModel] = None,
    machine: Optional[Ev6Machine] = None,
    sample_interval: float = 0.01,
) -> PowerTrace:
    """Run the full PTscalar-substitute pipeline for one program.

    Returns a :class:`repro.power.PowerTrace` whose ``max_profile()`` is
    ready for :func:`repro.core.build_cooling_problem` — the complete
    Figure 5 front end.
    """
    power_model = power_model or UnitPowerModel.for_floorplan()
    activity_model = ActivityModel(machine)
    intervals = activity_model.simulate(program, sample_interval)

    unit_names = sorted(power_model.peak_power)
    times = np.array([interval.time for interval in intervals])
    samples = np.empty((len(intervals), len(unit_names)))
    for row, interval in enumerate(intervals):
        for col, unit in enumerate(unit_names):
            activity = interval.activities.get(unit, 0.0)
            samples[row, col] = power_model.power(unit, activity)
    return PowerTrace(program.name, unit_names, times, samples)
