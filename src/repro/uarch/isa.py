"""Instruction classes and instruction mixes.

The activity model needs only the fractions of the dynamic instruction
stream falling into a handful of classes; each class exercises a known
set of EV6 functional units.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Mapping

from ..errors import ConfigurationError


class InstructionClass(enum.Enum):
    """Dynamic-instruction categories the activity model distinguishes."""

    INT_ALU = "int_alu"       # add/sub/logic/shift
    INT_MUL = "int_mul"       # integer multiply/divide
    FP_ADD = "fp_add"         # FP add/sub/convert
    FP_MUL = "fp_mul"         # FP multiply/divide/sqrt
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"


@dataclass(frozen=True)
class InstructionMix:
    """Normalized fractions of the dynamic instruction stream.

    Attributes:
        fractions: Mapping from instruction class to its share; must sum
            to 1 within tolerance.
    """

    fractions: Mapping[InstructionClass, float]

    def __post_init__(self) -> None:
        total = sum(self.fractions.values())
        if abs(total - 1.0) > 1e-6:
            raise ConfigurationError(
                f"Instruction mix must sum to 1, got {total:.6f}")
        bad = {c: f for c, f in self.fractions.items() if f < 0.0}
        if bad:
            raise ConfigurationError(f"Negative fractions: {bad}")

    def fraction(self, klass: InstructionClass) -> float:
        """Share of one instruction class (0 if absent)."""
        return float(self.fractions.get(klass, 0.0))

    @property
    def memory_fraction(self) -> float:
        """Loads plus stores."""
        return self.fraction(InstructionClass.LOAD) \
            + self.fraction(InstructionClass.STORE)

    @property
    def fp_fraction(self) -> float:
        """All floating-point work."""
        return self.fraction(InstructionClass.FP_ADD) \
            + self.fraction(InstructionClass.FP_MUL)

    @property
    def int_fraction(self) -> float:
        """All integer ALU/multiplier work."""
        return self.fraction(InstructionClass.INT_ALU) \
            + self.fraction(InstructionClass.INT_MUL)

    def blended(self, other: "InstructionMix",
                weight: float) -> "InstructionMix":
        """Convex combination: ``(1-weight)*self + weight*other``."""
        if not (0.0 <= weight <= 1.0):
            raise ConfigurationError(
                f"weight must be in [0, 1], got {weight}")
        classes = set(self.fractions) | set(other.fractions)
        return InstructionMix({
            klass: (1.0 - weight) * self.fraction(klass)
            + weight * other.fraction(klass)
            for klass in classes
        })


def make_mix(**fractions: float) -> InstructionMix:
    """Build a mix from keyword fractions (auto-normalized).

    Keys are the lowercase :class:`InstructionClass` values, e.g.
    ``make_mix(int_alu=0.5, load=0.3, branch=0.2)``.
    """
    by_value: Dict[str, InstructionClass] = {
        klass.value: klass for klass in InstructionClass}
    unknown = set(fractions) - set(by_value)
    if unknown:
        raise ConfigurationError(
            f"Unknown instruction classes: {sorted(unknown)}")
    total = sum(fractions.values())
    if total <= 0.0:
        raise ConfigurationError("Mix must have positive total weight")
    return InstructionMix({
        by_value[name]: value / total
        for name, value in fractions.items()
    })
