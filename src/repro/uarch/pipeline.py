"""Interval-based EV6 activity model.

Instead of cycle-accurate simulation (PTscalar's job), the model works at
the interval level: for each sampling interval the active phase's
instruction mix, IPC demand, and locality produce a retired-IPC estimate
and per-functional-unit activity factors in [0, 1].  The mapping encodes
EV6 structure: four-wide issue, one FP adder and one FP multiplier pipe,
two memory ports, caches fed by fetch/load traffic, and L2 arrays fed by
miss traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..errors import ConfigurationError
from .isa import InstructionClass as IC
from .programs import Phase, SyntheticProgram


@dataclass(frozen=True)
class Ev6Machine:
    """Machine widths and penalties.

    Attributes:
        issue_width: Sustained issue/retire width, instructions/cycle.
        int_lanes: Integer ALU lanes.
        fp_add_lanes: FP adder pipes.
        fp_mul_lanes: FP multiplier pipes.
        mem_ports: Load/store ports.
        miss_penalty: Average stall factor coefficient for cache misses.
    """

    issue_width: float = 4.0
    int_lanes: float = 4.0
    fp_add_lanes: float = 1.0
    fp_mul_lanes: float = 1.0
    mem_ports: float = 2.0
    miss_penalty: float = 4.0

    def __post_init__(self) -> None:
        for name in ("issue_width", "int_lanes", "fp_add_lanes",
                     "fp_mul_lanes", "mem_ports"):
            if getattr(self, name) <= 0.0:
                raise ConfigurationError(f"{name} must be positive")
        if self.miss_penalty < 0.0:
            raise ConfigurationError("miss_penalty must be >= 0")


@dataclass
class IntervalActivity:
    """Activity of one sampling interval.

    Attributes:
        time: Interval end time, s.
        ipc: Retired instructions per cycle.
        activities: Per-EV6-unit activity factor in [0, 1].
    """

    time: float
    ipc: float
    activities: Dict[str, float] = field(default_factory=dict)


class ActivityModel:
    """Maps program phases onto per-unit activity factors."""

    def __init__(self, machine: Ev6Machine = None):
        self.machine = machine or Ev6Machine()

    def effective_ipc(self, phase: Phase) -> float:
        """Width- and miss-limited retired IPC for a phase."""
        machine = self.machine
        miss_rate = (1.0 - phase.locality) * phase.mix.memory_fraction
        stall = 1.0 / (1.0 + machine.miss_penalty * miss_rate)
        structural = machine.issue_width
        # Structural limits per class: can't retire more FP adds per
        # cycle than adder pipes, etc.
        mix = phase.mix
        for fraction, lanes in (
                (mix.fraction(IC.FP_ADD), machine.fp_add_lanes),
                (mix.fraction(IC.FP_MUL), machine.fp_mul_lanes),
                (mix.memory_fraction, machine.mem_ports),
                (mix.int_fraction, machine.int_lanes)):
            if fraction > 0.0:
                structural = min(structural, lanes / fraction)
        return min(phase.ipc_demand, structural) * stall

    def unit_activities(self, phase: Phase) -> Dict[str, float]:
        """Per-unit activity factors in [0, 1] for a phase."""
        machine = self.machine
        ipc = self.effective_ipc(phase)
        mix = phase.mix
        miss_rate = (1.0 - phase.locality) * mix.memory_fraction
        throughput = {
            klass: ipc * mix.fraction(klass) for klass in IC
        }
        mem_ops = throughput[IC.LOAD] + throughput[IC.STORE]
        int_ops = throughput[IC.INT_ALU] + throughput[IC.INT_MUL]
        fp_ops = throughput[IC.FP_ADD] + throughput[IC.FP_MUL]
        miss_traffic = ipc * miss_rate

        def clip(value: float) -> float:
            return min(max(value, 0.0), 1.0)

        activities = {
            # Integer cluster.
            "IntExec": clip(int_ops / machine.int_lanes),
            "IntReg": clip((int_ops + mem_ops) / machine.issue_width),
            "IntQ": clip((int_ops + mem_ops) / machine.issue_width),
            "IntMap": clip(ipc / machine.issue_width),
            # FP cluster.
            "FPAdd": clip(throughput[IC.FP_ADD] / machine.fp_add_lanes),
            "FPMul": clip(throughput[IC.FP_MUL] / machine.fp_mul_lanes),
            "FPReg": clip(fp_ops / machine.issue_width),
            "FPQ": clip(fp_ops / machine.issue_width),
            "FPMap": clip(fp_ops / machine.issue_width),
            # Memory machinery.
            "LdStQ": clip(mem_ops / machine.mem_ports),
            "Dcache": clip(mem_ops / machine.mem_ports),
            "DTB": clip(mem_ops / machine.mem_ports),
            # Front end.
            "Icache": clip(ipc / machine.issue_width),
            "ITB": clip(ipc / machine.issue_width),
            "Bpred": clip(throughput[IC.BRANCH]
                          / (machine.issue_width / 2.0)),
            # L2 arrays see miss traffic only.
            "L2": clip(miss_traffic / 1.0),
            "L2_left": clip(miss_traffic / 2.0),
            "L2_right": clip(miss_traffic / 2.0),
        }
        return activities

    def simulate(self, program: SyntheticProgram,
                 sample_interval: float = 0.01,
                 ) -> List[IntervalActivity]:
        """Sample per-unit activities over the whole program."""
        if sample_interval <= 0.0:
            raise ConfigurationError("sample_interval must be positive")
        if sample_interval > program.duration:
            raise ConfigurationError(
                "sample_interval exceeds the program duration")
        steps = int(round(program.duration / sample_interval))
        intervals: List[IntervalActivity] = []
        for step in range(1, steps + 1):
            t = step * sample_interval
            phase = program.phase_at(t)
            intervals.append(IntervalActivity(
                time=t,
                ipc=self.effective_ipc(phase),
                activities=self.unit_activities(phase)))
        return intervals
