"""Synthetic phase-structured programs for the eight MiBench benchmarks.

Each program is a sequence of phases; a phase carries an instruction
mix, a base IPC demand, and a cache-locality parameter.  The mixes follow
the benchmarks' published characters: BitCount and Quicksort are integer
kernels, FFT and Susan lean on the FP units, CRC32 and Dijkstra stream
memory, Basicmath and Stringsearch sit in between.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..errors import ConfigurationError
from .isa import InstructionMix, make_mix


@dataclass(frozen=True)
class Phase:
    """One program phase.

    Attributes:
        name: Phase label (for reports).
        duration: Phase length in seconds of simulated wall time.
        mix: Instruction mix during the phase.
        ipc_demand: Instructions per cycle the program could retire with
            unlimited resources (the machine clips it to its width).
        locality: Cache locality in [0, 1]; low locality raises miss
            rates and L2/memory activity while throttling the core.
    """

    name: str
    duration: float
    mix: InstructionMix
    ipc_demand: float
    locality: float

    def __post_init__(self) -> None:
        if self.duration <= 0.0:
            raise ConfigurationError(
                f"Phase {self.name!r}: duration must be positive")
        if self.ipc_demand <= 0.0:
            raise ConfigurationError(
                f"Phase {self.name!r}: ipc_demand must be positive")
        if not (0.0 <= self.locality <= 1.0):
            raise ConfigurationError(
                f"Phase {self.name!r}: locality must be in [0, 1]")


@dataclass(frozen=True)
class SyntheticProgram:
    """A named sequence of phases."""

    name: str
    phases: List[Phase]

    def __post_init__(self) -> None:
        if not self.phases:
            raise ConfigurationError(
                f"Program {self.name!r} needs at least one phase")

    @property
    def duration(self) -> float:
        """Total simulated run time, s."""
        return sum(phase.duration for phase in self.phases)

    def phase_at(self, t: float) -> Phase:
        """Phase active at simulated time ``t`` (clamped to the span)."""
        if t <= 0.0:
            return self.phases[0]
        elapsed = 0.0
        for phase in self.phases:
            elapsed += phase.duration
            if t <= elapsed:
                return phase
        return self.phases[-1]


# Characteristic mixes.
_INT_KERNEL = make_mix(int_alu=0.52, int_mul=0.04, load=0.18,
                       store=0.08, branch=0.18)
_FP_KERNEL = make_mix(fp_add=0.24, fp_mul=0.20, int_alu=0.22,
                      load=0.20, store=0.08, branch=0.06)
_MEM_STREAM = make_mix(int_alu=0.30, load=0.34, store=0.14,
                       branch=0.18, int_mul=0.04)
_MIXED = make_mix(int_alu=0.34, int_mul=0.04, fp_add=0.10, fp_mul=0.08,
                  load=0.22, store=0.08, branch=0.14)
_CONTROL = make_mix(int_alu=0.40, load=0.22, store=0.06, branch=0.28,
                    int_mul=0.04)


def mibench_programs() -> Dict[str, SyntheticProgram]:
    """The eight MiBench-style synthetic programs."""
    return {
        "basicmath": SyntheticProgram("basicmath", [
            Phase("setup", 0.5, _CONTROL, ipc_demand=1.6, locality=0.9),
            Phase("solve", 2.0, _MIXED, ipc_demand=2.2, locality=0.85),
            Phase("reduce", 0.5, _MEM_STREAM, ipc_demand=1.8,
                  locality=0.8),
        ]),
        "bitcount": SyntheticProgram("bitcount", [
            Phase("warm", 0.3, _CONTROL, ipc_demand=2.0, locality=0.95),
            Phase("count", 2.7, _INT_KERNEL, ipc_demand=3.4,
                  locality=0.98),
        ]),
        "crc32": SyntheticProgram("crc32", [
            Phase("stream", 3.0, _MEM_STREAM, ipc_demand=1.6,
                  locality=0.6),
        ]),
        "djkstra": SyntheticProgram("djkstra", [
            Phase("build", 0.5, _MEM_STREAM, ipc_demand=1.8,
                  locality=0.7),
            Phase("relax", 2.5, _MEM_STREAM, ipc_demand=2.6,
                  locality=0.55),
        ]),
        "fft": SyntheticProgram("fft", [
            Phase("bitrev", 0.4, _MEM_STREAM, ipc_demand=1.8,
                  locality=0.7),
            Phase("butterfly", 2.6, _FP_KERNEL, ipc_demand=3.0,
                  locality=0.85),
        ]),
        "quicksort": SyntheticProgram("quicksort", [
            Phase("partition", 2.2, _INT_KERNEL, ipc_demand=3.2,
                  locality=0.8),
            Phase("insertion", 0.8, _INT_KERNEL, ipc_demand=3.0,
                  locality=0.95),
        ]),
        "stringsearch": SyntheticProgram("stringsearch", [
            Phase("scan", 2.0, _CONTROL, ipc_demand=2.2, locality=0.9),
            Phase("match", 1.0, _MIXED, ipc_demand=1.8, locality=0.85),
        ]),
        "susan": SyntheticProgram("susan", [
            Phase("load", 0.4, _MEM_STREAM, ipc_demand=1.8,
                  locality=0.75),
            Phase("filter", 2.6, _FP_KERNEL, ipc_demand=3.1,
                  locality=0.9),
        ]),
    }
