"""Microarchitectural activity/power simulator (PTscalar substitute).

The paper's evaluation flow (Figure 5) starts with a performance/power
simulator that turns a benchmark into a per-functional-unit dynamic
power trace.  PTscalar itself is unavailable, so this subpackage
implements the same pipeline stage from first principles:

* :mod:`repro.uarch.isa` — instruction classes and instruction mixes;
* :mod:`repro.uarch.programs` — synthetic phase-structured programs with
  the instruction mixes of the eight MiBench benchmarks;
* :mod:`repro.uarch.pipeline` — an interval-based EV6-style activity
  model: issue-width-limited IPC, per-unit utilizations, cache behavior
  from a locality parameter;
* :mod:`repro.uarch.power` — activity-proportional dynamic power
  (P = activity * peak) emitting :class:`repro.power.PowerTrace`.

The emitted traces flow into OFTEC through the identical
``trace.max_profile()`` reduction the calibrated built-in profiles use,
exercising the full Figure 5 path end to end.
"""

from .isa import InstructionClass, InstructionMix
from .programs import Phase, SyntheticProgram, mibench_programs
from .pipeline import ActivityModel, IntervalActivity, Ev6Machine
from .power import UnitPowerModel, simulate_power_trace
from .compare import (
    ProfileAgreement,
    SuiteAgreement,
    compare_profiles,
    compare_suites,
    format_suite_agreement,
    spearman_correlation,
)

__all__ = [
    "InstructionClass",
    "InstructionMix",
    "Phase",
    "SyntheticProgram",
    "mibench_programs",
    "ActivityModel",
    "IntervalActivity",
    "Ev6Machine",
    "UnitPowerModel",
    "simulate_power_trace",
    "ProfileAgreement",
    "SuiteAgreement",
    "compare_profiles",
    "compare_suites",
    "format_suite_agreement",
    "spearman_correlation",
]
