"""Cross-validation of the two workload-power sources.

The library carries two independent origins for each benchmark's power
profile: the calibrated tables (`repro.power.mibench_profiles`, tuned to
the paper's result shapes) and the first-principles activity simulator
(`repro.uarch`).  If the simulator captures the benchmarks' characters,
the two must agree on *structure* even where absolute watts differ:
which units dominate each workload, and how the benchmarks rank against
each other.  This module quantifies that agreement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..power import BenchmarkProfile


def _rankdata(values: Sequence[float]) -> np.ndarray:
    """Average-tie ranks (1-based), a minimal scipy-free rankdata."""
    arr = np.asarray(values, dtype=float)
    order = np.argsort(arr, kind="stable")
    ranks = np.empty_like(arr)
    ranks[order] = np.arange(1, arr.size + 1, dtype=float)
    # Average ranks over ties.
    for value in np.unique(arr):
        mask = arr == value
        if mask.sum() > 1:
            ranks[mask] = ranks[mask].mean()
    return ranks


def spearman_correlation(a: Sequence[float],
                         b: Sequence[float]) -> float:
    """Spearman rank correlation of two equal-length sequences."""
    a_arr = np.asarray(a, dtype=float)
    b_arr = np.asarray(b, dtype=float)
    if a_arr.shape != b_arr.shape or a_arr.size < 2:
        raise ConfigurationError(
            "Need two equal-length sequences of size >= 2")
    ra, rb = _rankdata(a_arr), _rankdata(b_arr)
    ra -= ra.mean()
    rb -= rb.mean()
    denom = float(np.sqrt((ra ** 2).sum() * (rb ** 2).sum()))
    if denom == 0.0:
        raise ConfigurationError("Rank variance is zero (all ties)")
    return float((ra * rb).sum() / denom)


@dataclass
class ProfileAgreement:
    """Structural agreement between two profiles of one benchmark.

    Attributes:
        benchmark: Workload name.
        unit_rank_correlation: Spearman correlation of per-unit powers
            over the shared units.
        top_unit_match: Whether both sources name the same hottest unit.
        shared_units: Units present in both profiles.
    """

    benchmark: str
    unit_rank_correlation: float
    top_unit_match: bool
    shared_units: List[str]


def compare_profiles(name: str, reference: BenchmarkProfile,
                     candidate: BenchmarkProfile) -> ProfileAgreement:
    """Structural comparison of two per-unit power profiles."""
    shared = sorted(set(reference.unit_power)
                    & set(candidate.unit_power))
    if len(shared) < 3:
        raise ConfigurationError(
            f"{name}: profiles share only {len(shared)} units")
    ref_values = [reference.unit_power[u] for u in shared]
    cand_values = [candidate.unit_power[u] for u in shared]
    correlation = spearman_correlation(ref_values, cand_values)
    ref_top = max(reference.unit_power, key=reference.unit_power.get)
    cand_top = max(candidate.unit_power, key=candidate.unit_power.get)
    return ProfileAgreement(
        benchmark=name,
        unit_rank_correlation=correlation,
        top_unit_match=(ref_top == cand_top),
        shared_units=shared)


@dataclass
class SuiteAgreement:
    """Agreement over a whole benchmark suite.

    Attributes:
        per_benchmark: One :class:`ProfileAgreement` per workload.
        total_power_rank_correlation: Spearman correlation of the
            benchmarks' *total* powers between the two sources — do the
            suites agree on which workloads are heavy?
    """

    per_benchmark: List[ProfileAgreement]
    total_power_rank_correlation: float

    @property
    def mean_unit_correlation(self) -> float:
        """Average per-benchmark unit-rank correlation."""
        return float(np.mean(
            [a.unit_rank_correlation for a in self.per_benchmark]))


def compare_suites(
    reference: Dict[str, BenchmarkProfile],
    candidate: Dict[str, BenchmarkProfile],
) -> SuiteAgreement:
    """Structural agreement between two profile sets (same names)."""
    names = sorted(set(reference) & set(candidate))
    if len(names) < 2:
        raise ConfigurationError(
            f"Suites share only {len(names)} benchmarks")
    per_benchmark = [compare_profiles(n, reference[n], candidate[n])
                     for n in names]
    totals: Tuple[List[float], List[float]] = ([], [])
    for n in names:
        totals[0].append(reference[n].total_power)
        totals[1].append(candidate[n].total_power)
    return SuiteAgreement(
        per_benchmark=per_benchmark,
        total_power_rank_correlation=spearman_correlation(*totals))


def format_suite_agreement(agreement: SuiteAgreement) -> str:
    """Render a suite-agreement report."""
    lines = [
        "calibrated vs simulated profile agreement:",
        f"{'benchmark':<14}{'unit-rank rho':>14}{'same top unit':>15}",
        "-" * 43,
    ]
    for item in agreement.per_benchmark:
        lines.append(
            f"{item.benchmark:<14}{item.unit_rank_correlation:>14.2f}"
            f"{str(item.top_unit_match):>15}")
    lines.append("-" * 43)
    lines.append(
        f"mean unit-rank rho {agreement.mean_unit_correlation:.2f}; "
        f"total-power rank rho "
        f"{agreement.total_power_rank_correlation:.2f}")
    return "\n".join(lines)
