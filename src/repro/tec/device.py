"""Per-module thermoelectric cooler model: Equations (1)-(3).

A "module" is one packaged thin-film TEC unit covering
``footprint_area`` of die (the paper notes unit areas below 1 mm^2).
Modules are electrically in series — every module carries the same driving
current — and thermally in parallel, so per-cell coefficients in the grid
model simply scale with the number of modules per cell.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..constants import I_TEC_MAX
from ..errors import ConfigurationError


@dataclass(frozen=True)
class TECDevice:
    """Electro-thermal parameters of one thin-film TEC module.

    Attributes:
        seebeck_coefficient: Effective module Seebeck coefficient
            ``alpha`` in V/K (sum over the module's N-P couples).
        electrical_resistance: Module electrical resistance ``R_TEC``
            in ohms.
        thermal_conductance: Module thermal conductance ``K_TEC`` in W/K
            (cold side to hot side, through the pellets).
        footprint_area: Die area one module covers, in m^2.
        max_current: Safe driving-current limit ``I_TEC,max`` in A;
            exceeding it damages the device.
    """

    seebeck_coefficient: float
    electrical_resistance: float
    thermal_conductance: float
    footprint_area: float
    max_current: float = I_TEC_MAX

    def __post_init__(self) -> None:
        if self.seebeck_coefficient <= 0.0:
            raise ConfigurationError("Seebeck coefficient must be positive")
        if self.electrical_resistance <= 0.0:
            raise ConfigurationError("Electrical resistance must be positive")
        if self.thermal_conductance <= 0.0:
            raise ConfigurationError("Thermal conductance must be positive")
        if self.footprint_area <= 0.0:
            raise ConfigurationError("Footprint area must be positive")
        if self.max_current <= 0.0:
            raise ConfigurationError("Max current must be positive")

    # -- Equations (1)-(3), written for N series-connected modules ----------

    def heat_absorbed(self, t_cold: float, t_hot: float, current: float,
                      n_modules: int = 1) -> float:
        """Equation (1): heat absorbed per second at the cold side (W).

        ``q_c = N * (alpha*T_c*I - K*dT - R*I^2/2)`` with ``dT = T_h - T_c``.
        Negative values mean the module *heats* its cold side (Joule and
        back-conduction overwhelm the Peltier pumping).
        """
        self._check_operating_point(t_cold, t_hot, current, n_modules)
        delta_t = t_hot - t_cold
        return n_modules * (
            self.seebeck_coefficient * t_cold * current
            - self.thermal_conductance * delta_t
            - 0.5 * self.electrical_resistance * current ** 2
        )

    def heat_released(self, t_cold: float, t_hot: float, current: float,
                      n_modules: int = 1) -> float:
        """Equation (2): heat released per second at the hot side (W).

        ``q_h = N * (alpha*T_h*I - K*dT + R*I^2/2)``.
        """
        self._check_operating_point(t_cold, t_hot, current, n_modules)
        delta_t = t_hot - t_cold
        return n_modules * (
            self.seebeck_coefficient * t_hot * current
            - self.thermal_conductance * delta_t
            + 0.5 * self.electrical_resistance * current ** 2
        )

    def power(self, t_cold: float, t_hot: float, current: float,
              n_modules: int = 1) -> float:
        """Equation (3): electrical power drawn by N modules (W).

        ``P_TEC = q_h - q_c = N * (alpha*dT*I + R*I^2)``.
        """
        self._check_operating_point(t_cold, t_hot, current, n_modules)
        delta_t = t_hot - t_cold
        return n_modules * (
            self.seebeck_coefficient * delta_t * current
            + self.electrical_resistance * current ** 2
        )

    def coefficient_of_performance(self, t_cold: float, t_hot: float,
                                   current: float) -> float:
        """COP = heat removed per second / electrical power.

        Undefined (raises) at zero current where no power is drawn.
        """
        p = self.power(t_cold, t_hot, current)
        if p <= 0.0:
            raise ConfigurationError(
                "COP undefined at zero electrical power")
        return self.heat_absorbed(t_cold, t_hot, current) / p

    def optimal_current_max_cooling(self, t_cold: float) -> float:
        """Current maximizing Equation (1) at fixed temperatures.

        ``d(q_c)/dI = alpha*T_c - R*I = 0`` gives ``I = alpha*T_c/R``,
        clamped to the device's safe limit.
        """
        if t_cold <= 0.0:
            raise ConfigurationError("Temperatures must be in kelvin (> 0)")
        return min(self.seebeck_coefficient * t_cold
                   / self.electrical_resistance,
                   self.max_current)

    def max_temperature_difference(self, t_hot: float) -> float:
        """Largest steady dT the module can hold at zero heat load.

        Setting ``q_c = 0`` at the cooling-optimal current gives
        ``dT = Z*T_c^2/2`` with ``Z = alpha^2/(R*K)``; solving it
        self-consistently with ``T_c = T_h - dT`` (the cold side depresses
        as dT grows) yields the quadratic whose physical root is
        ``T_c = (sqrt(1 + 2*Z*T_h) - 1) / Z``.
        """
        if t_hot <= 0.0:
            raise ConfigurationError("Temperatures must be in kelvin (> 0)")
        z = self.figure_of_merit
        t_cold = ((1.0 + 2.0 * z * t_hot) ** 0.5 - 1.0) / z
        return t_hot - t_cold

    @property
    def figure_of_merit(self) -> float:
        """The thermoelectric figure of merit ``Z = alpha^2/(R*K)``, 1/K."""
        return (self.seebeck_coefficient ** 2
                / (self.electrical_resistance * self.thermal_conductance))

    def zt(self, temperature: float) -> float:
        """Dimensionless figure of merit ``ZT`` at ``temperature`` (K)."""
        if temperature <= 0.0:
            raise ConfigurationError("Temperatures must be in kelvin (> 0)")
        return self.figure_of_merit * temperature

    # -- per-area densities (grid-resolution independent) --------------------

    @property
    def seebeck_per_area(self) -> float:
        """alpha per square meter of covered die, V/(K*m^2)."""
        return self.seebeck_coefficient / self.footprint_area

    @property
    def resistance_per_area(self) -> float:
        """R_TEC per square meter of covered die, ohm/m^2.

        Modules are in series, so total resistance grows with covered area.
        """
        return self.electrical_resistance / self.footprint_area

    @property
    def conductance_per_area(self) -> float:
        """K_TEC per square meter of covered die, W/(K*m^2)."""
        return self.thermal_conductance / self.footprint_area

    def _check_operating_point(self, t_cold: float, t_hot: float,
                               current: float, n_modules: int) -> None:
        if t_cold <= 0.0 or t_hot <= 0.0:
            raise ConfigurationError(
                "Temperatures must be in kelvin (> 0), got "
                f"t_cold={t_cold}, t_hot={t_hot}")
        if current < 0.0:
            raise ConfigurationError(
                f"Driving current must be >= 0, got {current}")
        if n_modules < 1:
            raise ConfigurationError(
                f"Need at least one module, got {n_modules}")


def default_tec_device() -> TECDevice:
    """The thin-film superlattice module used in the experiments.

    Values describe a 1 mm^2 superlattice thin-film module in the regime
    of the paper's reference [3] (Chowdhury et al.): ZT = 1.0 at 350 K,
    per-area thermal conductance consistent with the 20 um TEC layer of
    :data:`repro.materials.stack.TEC_LAYER_CONDUCTIVITY` (2.0 W/(m*K),
    still above thermal paste, preserving the Section 6.1 observation that
    passive TEC presence improves the stack's conduction), and a series
    resistance that keeps the whole-die Joule budget at a few watts per
    ampere-squared.
    """
    return TECDevice(
        seebeck_coefficient=2.0e-3,
        electrical_resistance=1.4e-2,
        thermal_conductance=0.10,
        footprint_area=1.0e-6,
        max_current=I_TEC_MAX,
    )
