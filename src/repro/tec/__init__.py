"""Thermoelectric cooler substrate.

:class:`TECDevice` implements the per-module Peltier/conduction/Joule
equations (1)-(3) of the paper; :class:`TECArray` deploys modules over the
grid cells of the TEC layer (all units except the I/D caches by default,
per Section 6.1) and exposes the per-cell aggregated coefficients the
thermal network consumes; :mod:`repro.tec.deployment` provides the
selective-coverage optimizer in the spirit of the paper's references
[6] and [7].
"""

from .device import TECDevice, default_tec_device
from .array import TECArray, full_coverage_mask, coverage_mask_excluding
from .deployment import DeploymentResult, select_tec_coverage

__all__ = [
    "TECDevice",
    "default_tec_device",
    "TECArray",
    "full_coverage_mask",
    "coverage_mask_excluding",
    "DeploymentResult",
    "select_tec_coverage",
]
