"""Selective TEC deployment (the "deployment" half of the paper's title).

The paper tiles every unit except the I/D caches, citing its references
[6][7]: covering units that never develop hot spots wastes TEC power and
laterally heats neighboring modules.  This module implements that
selection rule as an explicit optimizer: given per-unit peak temperatures
from a thermal evaluation of the uncooled (zero-current) system, cover
exactly the units that get hot enough to need active cooling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..errors import ConfigurationError
from ..geometry import CellCoverage
from .array import coverage_mask_excluding


@dataclass
class DeploymentResult:
    """Outcome of a selective-deployment decision.

    Attributes:
        covered_units: Unit names that receive TEC modules.
        excluded_units: Unit names left uncovered.
        coverage_mask: Boolean per-grid-cell mask for :class:`TECArray`.
        unit_margins: Per-unit ``T_peak - threshold`` in kelvin; positive
            values drove coverage.
    """

    covered_units: List[str]
    excluded_units: List[str]
    coverage_mask: np.ndarray
    unit_margins: Dict[str, float] = field(default_factory=dict)

    @property
    def covered_fraction(self) -> float:
        """Fraction of grid cells covered."""
        return float(self.coverage_mask.mean())


def select_tec_coverage(
    coverage: CellCoverage,
    unit_peak_temperatures: Dict[str, float],
    hotspot_threshold: Optional[float] = None,
    margin: float = 2.0,
    always_exclude: Optional[List[str]] = None,
) -> DeploymentResult:
    """Choose which functional units to cover with TEC modules.

    Args:
        coverage: Unit/cell mapping of the chip grid.
        unit_peak_temperatures: Peak steady-state temperature of each unit
            (K), evaluated on the system without TEC current.
        hotspot_threshold: Units peaking above this temperature are
            covered.  Defaults to the area-weighted die mean plus
            ``margin``, which reproduces the paper's observed behaviour of
            leaving the (cool) caches uncovered without hard-coding names.
        margin: Kelvin added to the die-mean default threshold.
        always_exclude: Units never covered regardless of temperature.

    Returns:
        A :class:`DeploymentResult` with the chosen mask.  Raises
        :class:`ConfigurationError` when the selection covers nothing
        (deploy no array at all in that case).
    """
    names = coverage.floorplan.unit_names
    missing = [n for n in names if n not in unit_peak_temperatures]
    if missing:
        raise ConfigurationError(
            f"Missing peak temperatures for units: {missing}")

    if hotspot_threshold is None:
        fractions = coverage.floorplan.area_fractions()
        die_mean = sum(unit_peak_temperatures[n] * fractions[n]
                       for n in names)
        hotspot_threshold = die_mean + margin

    forced_out = set(always_exclude or [])
    unknown = forced_out - set(names)
    if unknown:
        raise ConfigurationError(
            f"Unknown units in always_exclude: {sorted(unknown)}")

    margins = {n: unit_peak_temperatures[n] - hotspot_threshold
               for n in names}
    covered = [n for n in names
               if n not in forced_out and margins[n] > 0.0]
    excluded = [n for n in names if n not in covered]
    if not covered:
        raise ConfigurationError(
            "No unit exceeds the hotspot threshold "
            f"({hotspot_threshold:.2f} K); deploy no TEC array")

    mask = coverage_mask_excluding(coverage, excluded)
    return DeploymentResult(
        covered_units=covered,
        excluded_units=excluded,
        coverage_mask=mask,
        unit_margins=margins,
    )
