"""TEC array deployment over the grid cells of the TEC layer.

An array is a boolean coverage mask over grid cells plus the module type.
Per-cell coefficients (Seebeck, resistance, conductance) are the per-area
densities of the module times the covered cell area, which makes the
thermal model independent of grid resolution: refining the grid never
changes the amount of deployed thermoelectric material.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Union

import numpy as np

from ..errors import ConfigurationError, GeometryError
from ..geometry import CellCoverage, Grid
from .device import TECDevice


def full_coverage_mask(grid: Grid) -> np.ndarray:
    """Mask covering every grid cell with TEC modules."""
    return np.ones(grid.cell_count, dtype=bool)


def coverage_mask_excluding(
    coverage: CellCoverage,
    excluded_units: Iterable[str],
) -> np.ndarray:
    """Mask covering every cell except those of the excluded units.

    A cell belongs to a unit when that unit dominates its area.  The paper
    excludes the instruction and data caches (Section 6.1); pass
    :data:`repro.geometry.EV6_CACHE_UNITS` for that behaviour.
    """
    excluded = set(excluded_units)
    unknown = excluded - set(coverage.floorplan.unit_names)
    if unknown:
        raise GeometryError(f"Unknown units in exclusion list: "
                            f"{sorted(unknown)}")
    dominant = coverage.dominant_unit_per_cell()
    return np.array([name not in excluded for name in dominant], dtype=bool)


class TECArray:
    """A deployment of identical TEC modules over part of the die.

    All deployed modules are electrically in series and share one driving
    current (Section 6.1: "The deployed TECs are connected electrically in
    series and driven by the same current value").
    """

    def __init__(self, grid: Grid, device: TECDevice,
                 coverage_mask: Optional[np.ndarray] = None):
        self.grid = grid
        self.device = device
        if coverage_mask is None:
            coverage_mask = full_coverage_mask(grid)
        mask = np.asarray(coverage_mask, dtype=bool)
        if mask.shape != (grid.cell_count,):
            raise ConfigurationError(
                f"Coverage mask must have {grid.cell_count} entries, got "
                f"{mask.shape}")
        if not mask.any():
            raise ConfigurationError(
                "TECArray requires at least one covered cell; use a no-TEC "
                "stack instead of an empty array")
        self.coverage_mask = mask

    # -- aggregate geometry ---------------------------------------------------

    @property
    def covered_cell_count(self) -> int:
        """Number of grid cells carrying TEC modules."""
        return int(self.coverage_mask.sum())

    @property
    def covered_area(self) -> float:
        """Total die area under TEC modules, m^2."""
        return self.covered_cell_count * self.grid.cell_area

    @property
    def module_count(self) -> float:
        """Equivalent number of physical modules deployed.

        Fractional values are meaningful: they express partial-area
        coverage at coarse grid resolutions.
        """
        return self.covered_area / self.device.footprint_area

    # -- per-cell coefficients (what the thermal network consumes) ------------

    @property
    def cell_seebeck(self) -> np.ndarray:
        """Per-cell aggregate Seebeck coefficient, V/K (0 where uncovered)."""
        alpha = self.device.seebeck_per_area * self.grid.cell_area
        return np.where(self.coverage_mask, alpha, 0.0)

    @property
    def cell_resistance(self) -> np.ndarray:
        """Per-cell aggregate electrical resistance, ohm (0 uncovered)."""
        r = self.device.resistance_per_area * self.grid.cell_area
        return np.where(self.coverage_mask, r, 0.0)

    @property
    def cell_conductance(self) -> np.ndarray:
        """Per-cell aggregate thermal conductance K_TEC, W/K (0 uncovered)."""
        k = self.device.conductance_per_area * self.grid.cell_area
        return np.where(self.coverage_mask, k, 0.0)

    # -- aggregate electrical behaviour ---------------------------------------

    @property
    def total_resistance(self) -> float:
        """Series-string electrical resistance of the whole array, ohm."""
        return float(self.cell_resistance.sum())

    def cell_current(self, current: Union[float, np.ndarray],
                     ) -> np.ndarray:
        """Validate and broadcast a driving current, A, to per-cell
        form.

        A scalar models the paper's single series string; an array of
        per-cell currents models independently-driven channels (the
        multi-channel extension).  Uncovered cells must carry zero.
        """
        arr = np.asarray(current, dtype=float)
        if arr.ndim == 0:
            if arr < 0.0:
                raise ConfigurationError(
                    f"Driving current must be >= 0, got {float(arr)}")
            return np.where(self.coverage_mask, float(arr), 0.0)
        if arr.shape != (self.grid.cell_count,):
            raise ConfigurationError(
                f"Per-cell current must have shape "
                f"({self.grid.cell_count},), got {arr.shape}")
        if (arr < 0.0).any():
            raise ConfigurationError("Driving currents must be >= 0")
        if (arr[~self.coverage_mask] != 0.0).any():
            raise ConfigurationError(
                "Nonzero current on cells without TEC modules")
        return arr

    def total_power(self, cold_temps: np.ndarray, hot_temps: np.ndarray,
                    current: Union[float, np.ndarray]) -> float:
        """Equation (12): sum of Equation (7) over deployed cells (W).

        ``P_TEC = sum_i (alpha_i * dT_i * I_i + R_i * I_i^2)`` with
        per-cell temperature differences ``dT_i = T_hot,i - T_cold,i``.
        """
        self._check_temp_arrays(cold_temps, hot_temps)
        cell_i = self.cell_current(current)
        delta_t = hot_temps - cold_temps
        joule = self.cell_resistance * cell_i ** 2
        peltier_work = self.cell_seebeck * delta_t * cell_i
        return float((joule + peltier_work)[self.coverage_mask].sum())

    def total_heat_absorbed(self, cold_temps: np.ndarray,
                            hot_temps: np.ndarray,
                            current: Union[float, np.ndarray]) -> float:
        """Equation (1) summed over deployed cells (W)."""
        self._check_temp_arrays(cold_temps, hot_temps)
        cell_i = self.cell_current(current)
        delta_t = hot_temps - cold_temps
        q_c = (self.cell_seebeck * cold_temps * cell_i
               - self.cell_conductance * delta_t
               - 0.5 * self.cell_resistance * cell_i ** 2)
        return float(q_c[self.coverage_mask].sum())

    def total_heat_released(self, cold_temps: np.ndarray,
                            hot_temps: np.ndarray,
                            current: Union[float, np.ndarray]) -> float:
        """Equation (2) summed over deployed cells (W)."""
        self._check_temp_arrays(cold_temps, hot_temps)
        cell_i = self.cell_current(current)
        delta_t = hot_temps - cold_temps
        q_h = (self.cell_seebeck * hot_temps * cell_i
               - self.cell_conductance * delta_t
               + 0.5 * self.cell_resistance * cell_i ** 2)
        return float(q_h[self.coverage_mask].sum())

    def with_coverage(self, coverage_mask: np.ndarray) -> "TECArray":
        """Copy of this array with a different coverage mask."""
        return TECArray(self.grid, self.device, coverage_mask)

    def coverage_summary(self, coverage: CellCoverage) -> Dict[str, float]:
        """Fraction of each unit's cells that carry TEC modules."""
        dominant = coverage.dominant_unit_per_cell()
        totals: Dict[str, int] = {}
        covered: Dict[str, int] = {}
        for cell, name in enumerate(dominant):
            if not name:
                continue
            totals[name] = totals.get(name, 0) + 1
            if self.coverage_mask[cell]:
                covered[name] = covered.get(name, 0) + 1
        return {name: covered.get(name, 0) / count
                for name, count in totals.items()}

    def _check_temp_arrays(self, cold: np.ndarray, hot: np.ndarray) -> None:
        expected = (self.grid.cell_count,)
        if cold.shape != expected or hot.shape != expected:
            raise ConfigurationError(
                f"Temperature arrays must have shape {expected}, got "
                f"{cold.shape} and {hot.shape}")
