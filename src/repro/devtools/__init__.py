"""Developer tooling for the OFTEC reproduction.

This subpackage hosts tools that guard the codebase's conventions rather
than model any physics.  The first citizen is :mod:`repro.devtools.physlint`,
a domain-aware static-analysis pass (units discipline, exception hygiene,
numerics conventions) runnable as ``repro lint`` or
``python -m repro.devtools.physlint``.
"""

from __future__ import annotations

from .physlint import Finding, Rule, available_rules, lint_paths, rule

__all__ = [
    "Finding",
    "Rule",
    "available_rules",
    "lint_paths",
    "rule",
]
