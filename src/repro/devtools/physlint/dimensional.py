"""Dimensional-flow analysis: the RPR7xx band.

A lightweight abstract interpretation over each function body: local
names carry :mod:`~repro.devtools.physlint.unitlang` units seeded from
the docstring parameter declarations (the RPR401 convention) and from
inline ``# unit:`` annotations, and propagate through assignments,
arithmetic (multiplication and division combine units; addition and
subtraction require agreement), subscripts, and same-file call
returns.  Three findings come out of it:

``RPR701`` (here)
    An addition/subtraction whose operands carry *different known*
    units — ``power_w + current_a`` is meaningless no matter the
    values.
``RPR702`` (here)
    A comparison between different known units — ``omega_rad_s >
    omega_rpm`` is the classic fan-speed bug the paper's Table 2
    depends on not having.
``RPR703`` (:mod:`~repro.devtools.physlint.project`)
    A call-site argument whose unit disagrees with the parameter's
    declared unit; cross-module resolution happens in the project
    layer, fed by the call records this module extracts.

The analysis never guesses: a name with no declared or inferred unit
is *unknown*, and unknown participates in nothing.  Wrong findings
cost trust; missed ones cost nothing.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from .core import LintContext, Rule, rule
from .unitlang import (
    Unit,
    divide,
    docstring_units,
    inline_unit,
    multiply,
    power,
    render_unit,
)

#: Builtin call heads that preserve the unit of their first argument.
_UNIT_PRESERVING_CALLS = frozenset({
    "abs", "float", "max", "min", "round", "sum",
})


@dataclass
class CallRecord:
    """One call site with whatever argument units the flow knew.

    Attributes:
        callee: The callee exactly as written (``mod.fn`` / ``fn``).
        line: 1-based call line.
        column: 1-based call column.
        args: ``(position-or-keyword, unit)`` for every argument whose
            unit was known at the call.
    """

    callee: str
    line: int
    column: int
    args: List[Tuple[Union[int, str], Unit]] = field(
        default_factory=list)


@dataclass
class MismatchSite:
    """One unit-incompatible operation found by the flow."""

    line: int
    column: int
    message: str


@dataclass
class FlowResult:
    """Everything one function's flow analysis produced."""

    arith: List[MismatchSite] = field(default_factory=list)
    compare: List[MismatchSite] = field(default_factory=list)
    calls: List[CallRecord] = field(default_factory=list)


def _dotted(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        return None if base is None else f"{base}.{node.attr}"
    return None


def function_signature_units(node: ast.AST,
                             ) -> Tuple[Dict[str, Unit],
                                        Optional[Unit]]:
    """Declared ``(parameter units, return unit)`` of a function."""
    docstring = ast.get_docstring(node) \
        if isinstance(node, (ast.FunctionDef,
                             ast.AsyncFunctionDef)) else None
    return docstring_units(docstring)


def module_return_units(tree: ast.Module) -> Dict[str, Unit]:
    """Return units of a module's top-level functions, by name."""
    returns: Dict[str, Unit] = {}
    for statement in tree.body:
        if isinstance(statement, (ast.FunctionDef,
                                  ast.AsyncFunctionDef)):
            _, ret = function_signature_units(statement)
            if ret is not None:
                returns[statement.name] = ret
    return returns


class _UnitFlow:
    """The per-function walker (statement order, one pass)."""

    def __init__(self, context: LintContext,
                 function: Union[ast.FunctionDef, ast.AsyncFunctionDef],
                 local_returns: Dict[str, Unit]):
        self.context = context
        self.function = function
        self.local_returns = local_returns
        self.result = FlowResult()
        self.env: Dict[str, Unit] = {}
        params, _ = function_signature_units(function)
        args = function.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            unit = params.get(arg.arg)
            if unit is not None:
                self.env[arg.arg] = unit

    # -- driving ------------------------------------------------------

    def run(self) -> FlowResult:
        """Walk the function body and return the findings."""
        self._walk_body(self.function.body)
        return self.result

    def _walk_body(self, body: List[ast.stmt]) -> None:
        for statement in body:
            self._walk_statement(statement)

    def _walk_statement(self, statement: ast.stmt) -> None:
        if isinstance(statement, (ast.FunctionDef,
                                  ast.AsyncFunctionDef,
                                  ast.ClassDef)):
            return  # nested scopes are analyzed on their own
        if isinstance(statement, ast.Assign):
            unit = self._infer(statement.value)
            declared = self._line_annotation(statement)
            if declared is not None:
                unit = declared
            for target in statement.targets:
                self._bind(target, unit)
        elif isinstance(statement, ast.AnnAssign):
            if statement.value is not None:
                unit = self._infer(statement.value)
                declared = self._line_annotation(statement)
                if declared is not None:
                    unit = declared
                self._bind(statement.target, unit)
        elif isinstance(statement, ast.AugAssign):
            target_unit = self._infer(statement.target)
            value_unit = self._infer(statement.value)
            if isinstance(statement.op, (ast.Add, ast.Sub)):
                self._check_additive(statement, target_unit,
                                     value_unit, statement.value)
            elif target_unit is not None and value_unit is not None:
                if isinstance(statement.op, ast.Mult):
                    self._bind(statement.target,
                               multiply(target_unit, value_unit))
                elif isinstance(statement.op, ast.Div):
                    self._bind(statement.target,
                               divide(target_unit, value_unit))
        elif isinstance(statement, (ast.Expr, ast.Return)):
            if statement.value is not None:
                self._infer(statement.value)
        elif isinstance(statement, ast.If):
            self._infer(statement.test)
            self._walk_body(statement.body)
            self._walk_body(statement.orelse)
        elif isinstance(statement, (ast.For, ast.AsyncFor)):
            iter_unit = self._infer(statement.iter)
            self._bind(statement.target, iter_unit)
            self._walk_body(statement.body)
            self._walk_body(statement.orelse)
        elif isinstance(statement, ast.While):
            self._infer(statement.test)
            self._walk_body(statement.body)
            self._walk_body(statement.orelse)
        elif isinstance(statement, (ast.With, ast.AsyncWith)):
            for item in statement.items:
                self._infer(item.context_expr)
            self._walk_body(statement.body)
        elif isinstance(statement, ast.Try):
            self._walk_body(statement.body)
            for handler in statement.handlers:
                self._walk_body(handler.body)
            self._walk_body(statement.orelse)
            self._walk_body(statement.finalbody)
        elif isinstance(statement, (ast.Assert, ast.Raise)):
            for child in ast.iter_child_nodes(statement):
                if isinstance(child, ast.expr):
                    self._infer(child)

    def _line_annotation(self, statement: ast.stmt) -> Optional[Unit]:
        line = statement.lineno
        if 1 <= line <= len(self.context.lines):
            return inline_unit(self.context.lines[line - 1])
        return None

    def _bind(self, target: ast.expr, unit: Optional[Unit]) -> None:
        if isinstance(target, ast.Name):
            if unit is None:
                self.env.pop(target.id, None)
            else:
                self.env[target.id] = unit

    # -- inference ----------------------------------------------------

    def _infer(self, node: ast.expr) -> Optional[Unit]:
        if isinstance(node, ast.Name):
            return self.env.get(node.id)
        if isinstance(node, ast.Constant):
            return None
        if isinstance(node, ast.UnaryOp):
            return self._infer(node.operand)
        if isinstance(node, ast.Subscript):
            self._infer(node.slice)
            return self._infer(node.value)
        if isinstance(node, ast.BinOp):
            return self._infer_binop(node)
        if isinstance(node, ast.Compare):
            self._infer_compare(node)
            return None
        if isinstance(node, ast.BoolOp):
            for value in node.values:
                self._infer(value)
            return None
        if isinstance(node, ast.Call):
            return self._infer_call(node)
        if isinstance(node, ast.IfExp):
            self._infer(node.test)
            left = self._infer(node.body)
            right = self._infer(node.orelse)
            return left if left == right else None
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            units = {self._unit_key(self._infer(e)) for e in node.elts}
            if len(units) == 1 and node.elts:
                return self._infer(node.elts[0])
            return None
        if isinstance(node, (ast.ListComp, ast.SetComp,
                             ast.GeneratorExp)):
            return self._infer_comprehension(node)
        if isinstance(node, ast.Starred):
            return self._infer(node.value)
        # Attributes, lambdas, dicts, f-strings: unknown.
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._infer(child)
        return None

    @staticmethod
    def _unit_key(unit: Optional[Unit]) -> Optional[Tuple[Tuple[str,
                                                                int],
                                                          ...]]:
        return None if unit is None else tuple(sorted(unit.items()))

    def _infer_comprehension(self, node: ast.expr) -> Optional[Unit]:
        saved = dict(self.env)
        for comp in getattr(node, "generators", ()):
            self._bind(comp.target, self._infer(comp.iter))
            for condition in comp.ifs:
                self._infer(condition)
        unit = self._infer(node.elt) \
            if hasattr(node, "elt") else None
        self.env = saved
        return unit

    def _infer_binop(self, node: ast.BinOp) -> Optional[Unit]:
        left = self._infer(node.left)
        right = self._infer(node.right)
        if isinstance(node.op, (ast.Add, ast.Sub)):
            return self._check_additive(node, left, right, node.right)
        if isinstance(node.op, ast.Mult):
            if left is not None and right is not None:
                return multiply(left, right)
            return self._scaled(node, left, right)
        if isinstance(node.op, ast.Div):
            if left is not None and right is not None:
                return divide(left, right)
            if left is not None and _is_number(node.right):
                return left
            if right is not None and _is_number(node.left):
                return divide({}, right)
            return None
        if isinstance(node.op, ast.Pow):
            if left is not None and isinstance(node.right,
                                               ast.Constant) \
                    and isinstance(node.right.value, int):
                return power(left, node.right.value)
            return None
        return None

    @staticmethod
    def _scaled(node: ast.BinOp, left: Optional[Unit],
                right: Optional[Unit]) -> Optional[Unit]:
        """A known unit scaled by a bare number keeps its unit."""
        if left is not None and _is_number(node.right):
            return left
        if right is not None and _is_number(node.left):
            return right
        return None

    def _check_additive(self, node: ast.AST, left: Optional[Unit],
                        right: Optional[Unit],
                        right_node: ast.expr) -> Optional[Unit]:
        if left is not None and right is not None:
            if left != right:
                self.result.arith.append(MismatchSite(
                    line=getattr(node, "lineno", 1),
                    column=getattr(node, "col_offset", 0) + 1,
                    message=(f"adding/subtracting {render_unit(left)} "
                             f"and {render_unit(right)}")))
                return None
            return left
        # A unit plus a bare literal is an offset in the same unit.
        if left is not None and isinstance(right_node, ast.Constant):
            return left
        return None

    def _infer_compare(self, node: ast.Compare) -> None:
        units = [self._infer(node.left)]
        units.extend(self._infer(comp) for comp in node.comparators)
        operands = [node.left, *node.comparators]
        for index in range(len(units) - 1):
            left, right = units[index], units[index + 1]
            op = node.ops[index]
            if isinstance(op, (ast.Is, ast.IsNot, ast.In, ast.NotIn)):
                continue
            if left is not None and right is not None and left != right:
                anchor = operands[index + 1]
                self.result.compare.append(MismatchSite(
                    line=getattr(anchor, "lineno", node.lineno),
                    column=getattr(anchor, "col_offset",
                                   node.col_offset) + 1,
                    message=(f"comparing {render_unit(left)} with "
                             f"{render_unit(right)}")))

    def _infer_call(self, node: ast.Call) -> Optional[Unit]:
        callee = _dotted(node.func)
        record: Optional[CallRecord] = None
        if callee is not None:
            record = CallRecord(callee=callee, line=node.lineno,
                                column=node.col_offset + 1)
        arg_units: List[Optional[Unit]] = []
        for index, arg in enumerate(node.args):
            unit = self._infer(arg)
            arg_units.append(unit)
            if record is not None and unit is not None \
                    and not isinstance(arg, ast.Starred):
                record.args.append((index, unit))
        for keyword in node.keywords:
            unit = self._infer(keyword.value)
            if record is not None and unit is not None \
                    and keyword.arg is not None:
                record.args.append((keyword.arg, unit))
        if record is not None:
            self.result.calls.append(record)
        if callee is not None:
            tail = callee.split(".")[-1]
            if callee in self.local_returns:
                return self.local_returns[callee]
            if tail in _UNIT_PRESERVING_CALLS:
                known = [u for u in arg_units if u is not None]
                if known and all(u == known[0] for u in known):
                    return known[0]
        return None


def analyze_functions(context: LintContext, tree: ast.Module,
                      ) -> List[Tuple[str, ast.AST, FlowResult]]:
    """Run the unit flow over every function in a module.

    Returns ``(qualified name, def node, flow result)`` triples;
    methods are qualified ``Class.method``.  Nested function bodies
    are analyzed independently of their enclosing function.
    """
    local_returns = module_return_units(tree)
    results: List[Tuple[str, ast.AST, FlowResult]] = []

    def _walk(nodes: List[ast.stmt], prefix: str) -> None:
        for statement in nodes:
            if isinstance(statement, (ast.FunctionDef,
                                      ast.AsyncFunctionDef)):
                name = f"{prefix}{statement.name}"
                flow = _UnitFlow(context, statement, local_returns)
                results.append((name, statement, flow.run()))
                _walk(statement.body, f"{name}.")
            elif isinstance(statement, ast.ClassDef):
                _walk(statement.body, f"{prefix}{statement.name}.")

    _walk(tree.body, "")
    return results


def _is_number(node: ast.AST) -> bool:
    if isinstance(node, ast.UnaryOp):
        return _is_number(node.operand)
    return (isinstance(node, ast.Constant)
            and isinstance(node.value, (int, float))
            and not isinstance(node.value, bool))


@rule
class UnitArithmeticRule(Rule):
    """Addition and subtraction require unit agreement.

    Fail::

        def total(power_w, current_a):
            \"\"\"Args:
                power_w: Package power, W.
                current_a: TEC current, A.
            \"\"\"
            return power_w + current_a

    Pass::

        def total(power_w, tec_power_w):
            \"\"\"Args:
                power_w: Package power, W.
                tec_power_w: TEC input power, W.
            \"\"\"
            return power_w + tec_power_w
    """

    code = "RPR701"
    name = "unit-arith"
    rationale = (
        "Adding watts to amperes (or kelvin to degC offsets) is "
        "meaningless regardless of the values; the flow analysis "
        "propagates the units declared in docstrings and inline "
        "`# unit:` annotations through each function body and flags "
        "additive operations whose operands disagree.")

    def visit_Module(self, node: ast.Module) -> None:
        for _name, _fn, flow in analyze_functions(self.context, node):
            for site in flow.arith:
                self._emit_site(site)

    def _emit_site(self, site: MismatchSite) -> None:
        from .core import Finding
        self.findings.append(Finding(
            code=self.code, rule=self.name,
            message=(f"{site.message}; convert at the boundary "
                     "(repro.units) so both operands share a unit"),
            path=self.context.path, line=site.line,
            column=site.column))


@rule
class UnitCompareRule(Rule):
    """Comparisons require unit agreement.

    Fail::

        def over_limit(omega, omega_rpm_max):
            \"\"\"Args:
                omega: Fan speed, rad/s.
                omega_rpm_max: Speed ceiling, RPM.
            \"\"\"
            return omega > omega_rpm_max

    Pass::

        def over_limit(omega, omega_max):
            \"\"\"Args:
                omega: Fan speed, rad/s.
                omega_max: Speed ceiling, rad/s.
            \"\"\"
            return omega > omega_max
    """

    code = "RPR702"
    name = "unit-compare"
    rationale = (
        "A threshold check comparing rad/s against RPM (or K against "
        "degC) silently passes or fails by a constant factor — the "
        "classic fan-speed bug.  Both sides of a comparison must "
        "carry the same declared unit.")

    def visit_Module(self, node: ast.Module) -> None:
        for _name, _fn, flow in analyze_functions(self.context, node):
            for site in flow.compare:
                self.findings.append(
                    self._site_finding(site))

    def _site_finding(self, site: MismatchSite):
        from .core import Finding
        return Finding(
            code=self.code, rule=self.name,
            message=(f"{site.message}; convert one side "
                     "(repro.units) before comparing"),
            path=self.context.path, line=site.line,
            column=site.column)


__all__ = [
    "CallRecord",
    "FlowResult",
    "MismatchSite",
    "analyze_functions",
    "function_signature_units",
    "module_return_units",
]
