"""The built-in physlint rules.

Each rule encodes one repository convention:

==========  ==================  ==============================================
Code        Name                Convention guarded
==========  ==================  ==============================================
``RPR101``  unit-literal        Unit conversions live in :mod:`repro.units`,
                                not inline as magic factors.
``RPR201``  exception-hygiene   Library code raises :class:`ReproError`
                                subclasses and never catches blindly.
``RPR202``  assert-validation   ``assert`` is for tests; it vanishes under
                                ``python -O``.
``RPR204``  swallowed-exception A caught :class:`ReproError` must be
                                handled, not silently dropped or merely
                                logged.
``RPR301``  dense-solve         Grid-sized systems go through the sparse
                                path in ``thermal/network.py``.
``RPR302``  solver-in-loop      Factorizations and format conversions are
                                hoisted out of loops; the operator layer in
                                ``thermal/operator.py`` caches them.
``RPR303``  fd-gradient-in-loop Derivatives of evaluation results come from
                                the adjoint (``evaluate_with_grad``), not
                                from finite-difference stencils rebuilt in
                                a loop.
``RPR401``  docstring-units     Public functions taking physical quantities
                                state their units.
``RPR501``  print-in-library    Library code returns data, raises, or emits
                                telemetry through :mod:`repro.obs`; only the
                                CLI layer prints.
``RPR502``  span-hygiene        Tracer spans and stopwatches are closed on
                                every path (context manager or try/finally).
``RPR503``  wall-clock-deadline Deadline and timeout arithmetic uses the
                                monotonic clock, never ``time.time()``.
``RPR504``  telemetry-hot-loop  Spans are entered (``with``), never
                                discarded; hot loops publish to the
                                :class:`~repro.obs.BackgroundFlusher`
                                instead of writing sinks directly.
``RPR601``  process-state       Module globals stay process-safe: no
                                module-level mutable caches, no unseeded
                                RNG construction (``repro.exec`` workers).
``RPR701``  unit-arith          Addition/subtraction operands carry the
                                same declared unit (dimensional flow).
``RPR702``  unit-compare        Comparison operands carry the same
                                declared unit (dimensional flow).
==========  ==================  ==============================================

The whole-program rules — ``RPR602`` worker-state, ``RPR603``
worker-fanout, ``RPR703`` unit-call — live in
:mod:`~repro.devtools.physlint.projectrules` and run over the project
graph instead of a single file.

New rules: subclass :class:`~repro.devtools.physlint.core.Rule`, pick the
next free code in the band (1xx units, 2xx exceptions/control flow,
3xx numerics, 4xx documentation, 5xx observability, 6xx process/parallel
safety, 7xx dimensional flow), decorate with
:func:`~repro.devtools.physlint.core.rule`, and give the class docstring
``Fail::`` and ``Pass::`` example blocks — ``repro lint --explain``
prints them.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional, Sequence, Tuple

from ...units import RPM_TO_RAD_S, ZERO_CELSIUS_K
from .core import LintContext, Rule, rule

# ---------------------------------------------------------------------------
# RPR101 — unit-literal
# ---------------------------------------------------------------------------

#: Scale factors that smell like an inline length/time unit conversion,
#: mapped to the boundary helper that should be used instead.
_SCALE_HINTS: Dict[float, str] = {
    1e-3: "mm_to_m (or s_to_ms for the inverse direction)",
    1e-6: "um_to_m",
    1e3: "m_to_mm or s_to_ms",
    1e6: "m_to_um",
}

_PI_NAMES = ("pi", "math.pi", "np.pi", "numpy.pi")


def _dotted_name(node: ast.AST) -> Optional[str]:
    """Render ``a.b.c`` attribute/name chains; None for anything else."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted_name(node.value)
        return None if base is None else f"{base}.{node.attr}"
    return None


def _const_fold(node: ast.AST) -> Optional[float]:
    """Fold a numeric expression made of literals and ``pi`` names."""
    if isinstance(node, ast.Constant):
        if isinstance(node.value, (int, float)) \
                and not isinstance(node.value, bool):
            return float(node.value)
        return None
    dotted = _dotted_name(node)
    if dotted in _PI_NAMES:
        return 3.141592653589793
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = _const_fold(node.operand)
        return None if inner is None else -inner
    if isinstance(node, ast.BinOp):
        left = _const_fold(node.left)
        right = _const_fold(node.right)
        if left is None or right is None:
            return None
        if isinstance(node.op, ast.Mult):
            return left * right
        if isinstance(node.op, ast.Div):
            return None if right == 0.0 else left / right
        if isinstance(node.op, ast.Add):
            return left + right
        if isinstance(node.op, ast.Sub):
            return left - right
    return None


def _is_number(node: ast.AST) -> bool:
    return (isinstance(node, ast.Constant)
            and isinstance(node.value, (int, float))
            and not isinstance(node.value, bool))


@rule
class UnitLiteralRule(Rule):
    """Physical-constant literals belong in ``units.py``/``constants.py``.

    Fail::

        omega = rpm * 2 * pi / 60
        t_c = t_k - 273.15

    Pass::

        from repro.units import kelvin_to_celsius, rpm_to_rad_s

        omega = rpm_to_rad_s(rpm)
        t_c = kelvin_to_celsius(t_k)
    """

    code = "RPR101"
    name = "unit-literal"
    rationale = (
        "The library is strictly SI internally; conversions happen only "
        "at the boundaries through repro.units.  An inline 273.15 or "
        "2*pi/60 is a latent double-conversion bug.")
    exempt_suffixes = ("/units.py", "/constants.py")

    def visit_Constant(self, node: ast.Constant) -> None:
        if isinstance(node.value, float) and node.value == ZERO_CELSIUS_K:
            self.emit(node, (
                "Celsius offset literal 273.15; use "
                "repro.units.celsius_to_kelvin/kelvin_to_celsius "
                "(or ZERO_CELSIUS_K)"))

    def visit_BinOp(self, node: ast.BinOp) -> None:
        folded = _const_fold(node)
        if folded is not None:
            if abs(folded - RPM_TO_RAD_S) < 1e-12:
                self.emit(node, (
                    "inline RPM-to-rad/s factor (2*pi/60); use "
                    "repro.units.rpm_to_rad_s"))
                return
            if abs(folded - 1.0 / RPM_TO_RAD_S) < 1e-9:
                self.emit(node, (
                    "inline rad/s-to-RPM factor (60/(2*pi)); use "
                    "repro.units.rad_s_to_rpm"))
                return
            # A fully constant expression is a definition, not a
            # conversion of a runtime value; leave it alone.
            self.generic_visit(node)
            return
        scaled = self._scale_factor(node)
        if scaled is not None:
            factor, hint = scaled
            self.emit(node, (
                f"inline scale factor {factor:g} on a runtime value; "
                f"use the repro.units boundary helper ({hint})"))
        self.generic_visit(node)

    def _scale_factor(self, node: ast.BinOp) \
            -> Optional[Tuple[float, str]]:
        """Detect ``value * 1e-3``-style conversions of runtime values."""
        if isinstance(node.op, ast.Mult):
            for literal, other in ((node.left, node.right),
                                   (node.right, node.left)):
                if _is_number(literal) and not _is_number(other):
                    value = float(literal.value)  # type: ignore[attr-defined]
                    if value in _SCALE_HINTS:
                        return value, _SCALE_HINTS[value]
        elif isinstance(node.op, ast.Div):
            if _is_number(node.right) and not _is_number(node.left):
                value = float(node.right.value)  # type: ignore[attr-defined]
                if value in _SCALE_HINTS:
                    inverse = 1.0 / value
                    hint = _SCALE_HINTS.get(inverse,
                                            _SCALE_HINTS[value])
                    return value, hint
        return None


# ---------------------------------------------------------------------------
# RPR201 — exception-hygiene
# ---------------------------------------------------------------------------

_BUILTIN_EXCEPTIONS = frozenset({
    "ArithmeticError",
    "AssertionError",
    "BaseException",
    "Exception",
    "IndexError",
    "KeyError",
    "LookupError",
    "RuntimeError",
    "TypeError",
    "ValueError",
    "ZeroDivisionError",
})

_BROAD_EXCEPTIONS = frozenset({"BaseException", "Exception"})


@rule
class ExceptionHygieneRule(Rule):
    """Library code speaks :class:`ReproError`, not bare builtins.

    Fail::

        try:
            solve(network)
        except Exception:
            return None
        raise ValueError("negative thickness")

    Pass::

        try:
            solve(network)
        except SolverError:
            return fallback(network)
        raise GeometryError("negative thickness")
    """

    code = "RPR201"
    name = "exception-hygiene"
    rationale = (
        "Callers catch ReproError to mean 'this package failed'.  A "
        "raised ValueError escapes that contract, and a bare/broad "
        "except swallows ThermalRunawayError and friends silently.")

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self.emit(node, (
                "bare `except:` swallows every error including "
                "ReproError; catch a specific exception"))
        else:
            for name in self._handler_names(node.type):
                if name in _BROAD_EXCEPTIONS:
                    self.emit(node, (
                        f"overly broad `except {name}`; catch a "
                        "specific exception (ReproError for library "
                        "failures)"))
        self.generic_visit(node)

    @staticmethod
    def _handler_names(node: ast.expr) -> List[str]:
        nodes: Sequence[ast.expr] = (
            node.elts if isinstance(node, ast.Tuple) else [node])
        return [n.id for n in nodes if isinstance(n, ast.Name)]

    def visit_Raise(self, node: ast.Raise) -> None:
        target = node.exc
        if isinstance(target, ast.Call):
            target = target.func
        if isinstance(target, ast.Name) \
                and target.id in _BUILTIN_EXCEPTIONS:
            self.emit(node, (
                f"library code raises builtin {target.id}; raise a "
                "ReproError subclass from repro.errors instead"))
        self.generic_visit(node)


# ---------------------------------------------------------------------------
# RPR202 — assert-validation
# ---------------------------------------------------------------------------

@rule
class AssertValidationRule(Rule):
    """``assert`` is a test-suite tool, not an input validator.

    Fail::

        def set_current(self, current_a):
            assert current_a >= 0.0

    Pass::

        def set_current(self, current_a):
            if current_a < 0.0:
                raise ConfigurationError("current must be >= 0")
    """

    code = "RPR202"
    name = "assert-validation"
    rationale = (
        "`python -O` strips assert statements, so any validation they "
        "perform silently disappears in optimized deployments.")

    def visit_Assert(self, node: ast.Assert) -> None:
        self.emit(node, (
            "assert statement is stripped under `python -O`; raise "
            "ConfigurationError/GeometryError (or another ReproError) "
            "for validation"))
        self.generic_visit(node)


# ---------------------------------------------------------------------------
# RPR204 — swallowed-exception
# ---------------------------------------------------------------------------

#: Every exception class exported by :mod:`repro.errors`; catching one
#: of these and doing nothing hides a physical failure mode (thermal
#: runaway, singular network, exhausted budget) from the caller.
_REPRO_ERROR_NAMES = frozenset({
    "CalibrationError",
    "ConfigurationError",
    "EvaluationBudgetError",
    "FloorplanParseError",
    "GeometryError",
    "InfeasibleProblemError",
    "MaterialError",
    "ReproError",
    "SingularNetworkError",
    "SolveTimeoutError",
    "SolverError",
    "ThermalRunawayError",
})

#: Call heads considered "log-and-forget" rather than handling.
_LOGGING_HEADS = frozenset({"log", "logger", "logging", "warnings"})


def _is_logging_call(node: ast.expr) -> bool:
    if not isinstance(node, ast.Call):
        return False
    dotted = _dotted_name(node.func)
    if dotted is None:
        return False
    head = dotted.split(".")[0]
    return dotted == "print" or head in _LOGGING_HEADS


@rule
class SwallowedExceptionRule(Rule):
    """A caught :class:`ReproError` deserves more than ``pass``.

    Fail::

        try:
            temps = operator.solve(loads)
        except SolverError:
            pass

    Pass::

        try:
            temps = operator.solve(loads)
        except SolverError as exc:
            record_failure(exc)
            temps = last_known_good
    """

    code = "RPR204"
    name = "swallowed-exception"
    rationale = (
        "ThermalRunawayError and friends encode physical failure "
        "modes; an `except SolverError: pass` (or log-and-forget) "
        "turns a diverging chip into silence.  Handlers must record "
        "the failure, degrade explicitly, or re-raise.")

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        caught = self._caught_repro_errors(node)
        if caught and self._body_is_silent(node.body):
            listing = ", ".join(caught)
            self.emit(node, (
                f"`except {listing}` swallows the failure (body is "
                "only pass/continue/logging); record it, degrade "
                "explicitly, or re-raise"))
        self.generic_visit(node)

    @staticmethod
    def _caught_repro_errors(node: ast.ExceptHandler) -> List[str]:
        if node.type is None:
            return []
        exprs: Sequence[ast.expr] = (
            node.type.elts if isinstance(node.type, ast.Tuple)
            else [node.type])
        names = []
        for expr in exprs:
            dotted = _dotted_name(expr)
            if dotted is not None \
                    and dotted.split(".")[-1] in _REPRO_ERROR_NAMES:
                names.append(dotted)
        return names

    @staticmethod
    def _body_is_silent(body: Sequence[ast.stmt]) -> bool:
        for statement in body:
            if isinstance(statement, (ast.Pass, ast.Continue)):
                continue
            if isinstance(statement, ast.Expr) and (
                    isinstance(statement.value, ast.Constant)
                    or _is_logging_call(statement.value)):
                continue
            return False
        return True


# ---------------------------------------------------------------------------
# RPR301 — dense-solve
# ---------------------------------------------------------------------------

_DENSE_CALLS = frozenset({"solve", "inv"})
_DENSE_MODULES = frozenset({"numpy.linalg", "scipy.linalg"})


@rule
class DenseSolveRule(Rule):
    """Grid-sized linear systems must use the sparse path.

    Fail::

        import numpy as np

        temps = np.linalg.solve(conductance, loads)

    Pass::

        temps = network.solve(loads)   # scipy.sparse inside
    """

    code = "RPR301"
    name = "dense-solve"
    rationale = (
        "The conductance matrix has O(cells) nonzeros but O(cells^2) "
        "dense entries; np.linalg.solve turns a milli-second sparse "
        "factorization into a memory-bound dense one.  All steady-state "
        "solves route through ThermalNetwork.solve (scipy.sparse).")

    def __init__(self, context: LintContext) -> None:
        super().__init__(context)
        #: Local names bound to dense solve/inv by an import.
        self._dense_names: Dict[str, str] = {}

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted_name(node.func)
        if dotted is not None:
            parts = dotted.split(".")
            if len(parts) >= 2 and parts[-1] in _DENSE_CALLS \
                    and parts[-2] == "linalg":
                self.emit(node, (
                    f"dense `{dotted}` on what is likely a grid-sized "
                    "system; route through ThermalNetwork.solve "
                    "(scipy.sparse) from repro.thermal"))
            elif dotted in self._dense_names:
                origin = self._dense_names[dotted]
                self.emit(node, (
                    f"dense `{dotted}` (imported from {origin}) on "
                    "what is likely a grid-sized system; route through "
                    "ThermalNetwork.solve (scipy.sparse) from "
                    "repro.thermal"))
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module in _DENSE_MODULES:
            imported = [alias for alias in node.names
                        if alias.name in _DENSE_CALLS]
            for alias in imported:
                self._dense_names[alias.asname or alias.name] = \
                    node.module
            if imported:
                names = ", ".join(a.name for a in imported)
                self.emit(node, (
                    f"importing dense {names} from "
                    f"{node.module}; grid-sized systems must use the "
                    "sparse path (ThermalNetwork.solve)"))
        self.generic_visit(node)


# ---------------------------------------------------------------------------
# RPR302 — solver-in-loop
# ---------------------------------------------------------------------------

#: Function names whose call performs (or prepares) a fresh sparse
#: factorization; calling one per loop iteration discards the work the
#: operator layer exists to cache.
_FACTOR_CALLS = frozenset({"factorized", "splu", "spsolve"})

#: Sparse-format conversion methods; in a loop they rebuild index
#: arrays that the precomputed diagonal map makes unnecessary.
_CONVERSION_METHODS = frozenset({"tocsc", "tocsr"})


@rule
class SolverInLoopRule(Rule):
    """Factorizations and format conversions do not belong in loops.

    Fail::

        for loads in cases:
            temps = spsolve(matrix.tocsc(), loads)

    Pass::

        solve = factorized(matrix.tocsc())
        for loads in cases:
            temps = solve(loads)
    """

    code = "RPR302"
    name = "solver-in-loop"
    rationale = (
        "spsolve/splu inside a for/while loop refactorizes a matrix "
        "with the same sparsity pattern every iteration, and .tocsc()/"
        ".tocsr() rebuilds its index arrays; both throw away work that "
        "ThermalOperator caches.  Route repeated solves through "
        "ThermalNetwork.solve / solve_many (repro.thermal), which "
        "update the factorized system in place.")

    def __init__(self, context: LintContext) -> None:
        super().__init__(context)
        self._loop_depth = 0

    def visit_For(self, node: ast.For) -> None:
        self._visit_loop(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._visit_loop(node)

    def visit_While(self, node: ast.While) -> None:
        self._visit_loop(node)

    def _visit_loop(self, node: ast.AST) -> None:
        self._loop_depth += 1
        self.generic_visit(node)
        self._loop_depth -= 1

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_scope(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_scope(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._visit_scope(node)

    def _visit_scope(self, node: ast.AST) -> None:
        # A def nested in a loop body runs when *called*, not once per
        # iteration, so the loop context does not carry into it.
        saved = self._loop_depth
        self._loop_depth = 0
        self.generic_visit(node)
        self._loop_depth = saved

    def visit_Call(self, node: ast.Call) -> None:
        if self._loop_depth > 0:
            dotted = _dotted_name(node.func)
            tail = dotted.split(".")[-1] if dotted else None
            if tail in _FACTOR_CALLS:
                self.emit(node, (
                    f"`{tail}` inside a loop refactorizes the system "
                    "every iteration; factor once before the loop or "
                    "route through ThermalNetwork.solve/solve_many, "
                    "which cache factorizations (repro.thermal)"))
            elif isinstance(node.func, ast.Attribute) \
                    and node.func.attr in _CONVERSION_METHODS:
                self.emit(node, (
                    f"`.{node.func.attr}()` inside a loop rebuilds "
                    "sparse index arrays every iteration; convert once "
                    "before the loop or use the operator layer's "
                    "in-place diagonal update (repro.thermal)"))
        self.generic_visit(node)


# ---------------------------------------------------------------------------
# RPR303 — fd-gradient-in-loop
# ---------------------------------------------------------------------------

#: Substring marking a name as holding (or producing) an evaluation:
#: ``evaluate``/``evaluate_with_grad`` calls, ``hi_eval``-style probe
#: results, ``evaluation`` locals.
_EVAL_MARKER = "eval"


def _is_evaluation_probe(node: ast.AST) -> bool:
    """Does this expression read a thermal-evaluation result?

    Matches a call whose target name contains ``eval`` (``evaluate``,
    ``evaluate_with_grad``), a variable whose name contains ``eval``
    (``hi_eval``, ``evaluation``), and attribute reads off either
    (``hi_eval.total_power``).
    """
    if isinstance(node, ast.Attribute):
        return _is_evaluation_probe(node.value)
    if isinstance(node, ast.Call):
        return _is_evaluation_probe(node.func)
    if isinstance(node, ast.Name):
        return _EVAL_MARKER in node.id.lower()
    return False


@rule
class FdGradientInLoopRule(Rule):
    """Difference quotients of evaluations do not belong in loops.

    Fail::

        for axis, step in enumerate(steps):
            hi_eval = evaluator.evaluate(*(point + step))
            lo_eval = evaluator.evaluate(*(point - step))
            grad[axis] = (hi_eval.total_power
                          - lo_eval.total_power) / (2 * step)

    Pass::

        gradient = evaluator.evaluate_with_grad(omega, current).gradient
        grad = [gradient.d_power_omega, gradient.d_power_current]
    """

    code = "RPR303"
    name = "fd-gradient-in-loop"
    rationale = (
        "A finite-difference stencil over evaluate() spends two full "
        "steady-state solves (each with its own leakage fixed point "
        "and, along the omega axis, a fresh factorization) per probed "
        "axis, every loop iteration.  Evaluator.evaluate_with_grad "
        "(repro.core) returns all four slopes from one adjoint pair — "
        "two transposed back-substitutions against the already-cached "
        "forward factor — and degrades to a guarded FD fallback only "
        "where the adjoint does not apply.")

    def __init__(self, context: LintContext) -> None:
        super().__init__(context)
        self._loop_depth = 0

    def visit_For(self, node: ast.For) -> None:
        self._visit_loop(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._visit_loop(node)

    def visit_While(self, node: ast.While) -> None:
        self._visit_loop(node)

    def _visit_loop(self, node: ast.AST) -> None:
        self._loop_depth += 1
        self.generic_visit(node)
        self._loop_depth -= 1

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_scope(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_scope(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._visit_scope(node)

    def _visit_scope(self, node: ast.AST) -> None:
        # A def nested in a loop body runs when *called*, not once per
        # iteration, so the loop context does not carry into it.
        saved = self._loop_depth
        self._loop_depth = 0
        self.generic_visit(node)
        self._loop_depth = saved

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if self._loop_depth > 0 and isinstance(node.op, ast.Div) \
                and isinstance(node.left, ast.BinOp) \
                and isinstance(node.left.op, ast.Sub) \
                and _is_evaluation_probe(node.left.left) \
                and _is_evaluation_probe(node.left.right):
            self.emit(node, (
                "finite-difference stencil over evaluations inside a "
                "loop; each probe pair spends full steady-state solves "
                "per axis — use Evaluator.evaluate_with_grad, whose "
                "adjoint returns every slope from two transposed "
                "back-substitutions on the cached factor (repro.core)"))
        self.generic_visit(node)


# ---------------------------------------------------------------------------
# RPR401 — docstring-units
# ---------------------------------------------------------------------------

#: Words (underscore-separated components of a parameter name) that mark
#: the parameter as a physical quantity.
_QUANTITY_WORDS = frozenset({
    "area",
    "conductance",
    "conductivity",
    "current",
    "currents",
    "frequency",
    "height",
    "omega",
    "power",
    "powers",
    "resistance",
    "temp",
    "temperature",
    "temperatures",
    "thickness",
    "voltage",
    "width",
})

#: Unit spellings accepted as "states the unit".  Single letters only
#: count in quantity positions — after a comma, bracket, or "in" — so a
#: sentence-initial "A" does not pass as amperes.
_UNIT_TOKEN_RE = re.compile(r"""(?x)
      rad/s | RPM | [Kk]elvin | [Cc]elsius | °C
    | W/K | J/K | W/m | m/s | m\^?2 | m² | Hz | dB
    | \bmm\b | µm | \bum\b | \bms\b | \bkg\b | \bPa\b
    | watt | amp | ampere | meter | metre | joule | second | ohm
    | [,(\[]\s*(?:K|W|A|V|m|s)\b
    | \bin\s+(?:K|W|A|V|m|s)\b
""")


#: A trailing qualifier that turns a quantity name into a non-quantity:
#: ``current_samples`` is a count and ``power_model`` an object, even
#: though ``current``/``power`` alone would be physical.
_QUALIFIER_SUFFIXES = frozenset({
    "bins",
    "count",
    "counts",
    "index",
    "indices",
    "model",
    "models",
    "points",
    "resolution",
    "samples",
    "steps",
})


def _physical_params(node: ast.FunctionDef) -> List[str]:
    names: List[str] = []
    args = node.args
    for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
        if arg.arg in ("self", "cls"):
            continue
        words = arg.arg.lower().split("_")
        if words[-1] in _QUALIFIER_SUFFIXES:
            continue
        if set(words) & _QUANTITY_WORDS:
            names.append(arg.arg)
    return names


@rule
class DocstringUnitsRule(Rule):
    """Public functions taking physical quantities document the unit.

    Fail::

        def fan_power(omega):
            \"\"\"Fan input power.\"\"\"

    Pass::

        def fan_power(omega):
            \"\"\"Fan input power, W.

            Args:
                omega: Fan speed, rad/s.
            \"\"\"
    """

    code = "RPR401"
    name = "docstring-units"
    rationale = (
        "An `omega` could be RPM or rad/s and a `temperature` Celsius "
        "or kelvin; the docstring is the only place the caller learns "
        "which.  House style: 'Fan speed, rad/s.'")

    def __init__(self, context: LintContext) -> None:
        super().__init__(context)
        self._function_depth = 0

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_function(node)

    def _check_function(self, node: ast.FunctionDef) -> None:
        nested = self._function_depth > 0
        if not nested and not node.name.startswith("_"):
            params = _physical_params(node)
            if params:
                docstring = ast.get_docstring(node)
                listing = ", ".join(params)
                if docstring is None:
                    self.emit(node, (
                        f"public function `{node.name}` takes physical "
                        f"parameter(s) {listing} but has no docstring "
                        "stating their units"))
                elif not _UNIT_TOKEN_RE.search(docstring):
                    self.emit(node, (
                        f"docstring of `{node.name}` does not state "
                        f"units for physical parameter(s) {listing} "
                        "(e.g. 'Fan speed, rad/s.')"))
        self._function_depth += 1
        self.generic_visit(node)
        self._function_depth -= 1


# ---------------------------------------------------------------------------
# RPR501 — print-in-library
# ---------------------------------------------------------------------------

#: Path suffixes where printing is the job, not a smell.
_PRINT_EXEMPT_SUFFIXES = ("/cli.py", "/__main__.py")

#: Path fragments marking presentation or tooling layers where stdout
#: is the intended interface.
_PRINT_EXEMPT_FRAGMENTS = ("/devtools/", "/examples/", "/benchmarks/")


@rule
class PrintInLibraryRule(Rule):
    """Library code must not write to stdout; that is the CLI's job.

    Fail::

        def solve(self, loads):
            print("solving", len(loads))

    Pass::

        def solve(self, loads):
            _obs.event("solve.start", cells=len(loads))
    """

    code = "RPR501"
    name = "print-in-library"
    rationale = (
        "A print() buried in a solver corrupts JSON pipelines "
        "(`repro ... --json | jq`), vanishes in batch jobs, and cannot "
        "be aggregated.  Library code returns data, raises a "
        "ReproError, or records telemetry through repro.obs; only the "
        "CLI and reporter layers print.")

    @classmethod
    def applies_to(cls, posix_path: str) -> bool:
        if any(posix_path.endswith(suffix)
               for suffix in _PRINT_EXEMPT_SUFFIXES):
            return False
        return not any(fragment in posix_path
                       for fragment in _PRINT_EXEMPT_FRAGMENTS)

    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Name) and node.func.id == "print":
            self.emit(node, (
                "print() in library code; return the data, raise a "
                "ReproError, or record it via repro.obs (events/"
                "metrics) and let the CLI layer present it"))
        self.generic_visit(node)


# ---------------------------------------------------------------------------
# RPR601 — process-state
# ---------------------------------------------------------------------------

#: Constructor call tails that build a mutable container regardless of
#: their arguments (``defaultdict(list)`` is still an empty cache).
_CACHE_CONSTRUCTORS = frozenset({
    "Counter",
    "OrderedDict",
    "defaultdict",
    "deque",
})

#: Builtin container constructors; only the zero-argument form is an
#: empty-cache smell (``dict(a=1)`` is a constant table).
_BUILTIN_CONTAINERS = frozenset({"dict", "list", "set"})

#: RNG constructor tails that must receive an explicit seed.
_RNG_CONSTRUCTORS = frozenset({"Random", "RandomState", "default_rng"})


def _empty_mutable_init(node: ast.expr) -> Optional[str]:
    """Describe an empty-mutable-container initializer; None otherwise."""
    if isinstance(node, ast.Dict) and not node.keys:
        return "{}"
    if isinstance(node, ast.List) and not node.elts:
        return "[]"
    if isinstance(node, ast.Call):
        dotted = _dotted_name(node.func)
        tail = dotted.split(".")[-1] if dotted else None
        if tail in _CACHE_CONSTRUCTORS:
            return f"{tail}(...)"
        if tail in _BUILTIN_CONTAINERS and not node.args \
                and not node.keywords:
            return f"{tail}()"
    return None


@rule
class ProcessStateRule(Rule):
    """Module globals and RNGs must survive worker processes.

    Fail::

        _CACHE = {}
        rng = np.random.default_rng()

    Pass::

        class OperatorCache:
            def __init__(self):
                self._entries = {}

        rng = np.random.default_rng(seed)
    """

    code = "RPR601"
    name = "process-state"
    rationale = (
        "repro.exec runs work in worker processes: under spawn every "
        "module re-imports, under fork inherited telemetry state is "
        "reset.  A module-level mutable cache silently becomes one "
        "independent copy per process whose contents never merge "
        "back, and an unseeded RNG draws a different stream in every "
        "process — both break the parallel bit-identity contract.")

    def visit_Module(self, node: ast.Module) -> None:
        for statement in node.body:
            targets: Sequence[ast.expr] = ()
            value: Optional[ast.expr] = None
            if isinstance(statement, ast.Assign):
                targets, value = statement.targets, statement.value
            elif isinstance(statement, ast.AnnAssign):
                targets, value = [statement.target], statement.value
            if value is None:
                continue
            described = _empty_mutable_init(value)
            if described is None:
                continue
            names = ", ".join(
                name for name in (_dotted_name(t) for t in targets)
                if name is not None) or "<target>"
            self.emit(statement, (
                f"module-level mutable container `{names} = "
                f"{described}` is per-process state: every repro.exec "
                "worker gets an independent copy whose contents never "
                "merge back; scope the cache to an object (or justify "
                "import-time-only population with a disable comment)"))
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted_name(node.func)
        tail = dotted.split(".")[-1] if dotted else None
        if tail in _RNG_CONSTRUCTORS and self._unseeded(node):
            self.emit(node, (
                f"`{dotted}` constructed without a seed draws a "
                "different stream in every process and every run; "
                "pass an explicit seed (derive per-worker streams "
                "with SeedSequence or FaultPlan.derive)"))
        self.generic_visit(node)

    @staticmethod
    def _unseeded(node: ast.Call) -> bool:
        if not node.args and not node.keywords:
            return True
        seed: Optional[ast.expr] = node.args[0] if node.args else None
        if seed is None:
            for keyword in node.keywords:
                if keyword.arg == "seed":
                    seed = keyword.value
                    break
        return (isinstance(seed, ast.Constant)
                and seed.value is None)


# ---------------------------------------------------------------------------
# RPR502 — span-hygiene
# ---------------------------------------------------------------------------

#: Call tails that open a span when their result is bound to a name.
_SPAN_OPENERS = frozenset({"start_span"})

#: Call tails that create a stopwatch when bound to a name.
_WATCH_OPENERS = frozenset({"stopwatch", "Stopwatch"})

#: Close spellings per resource kind: a call tail receiving the
#: resource (spans), or a method on the resource (stopwatches).
_SPAN_CLOSER_TAILS = frozenset({"end_span"})
_WATCH_CLOSER_METHODS = frozenset({"stop"})


def _open_assignment(statement: ast.stmt,
                     ) -> Optional[Tuple[str, str, ast.stmt]]:
    """``(name, kind, anchor)`` for ``x = start_span(...)`` shapes."""
    if not isinstance(statement, ast.Assign) \
            or len(statement.targets) != 1 \
            or not isinstance(statement.targets[0], ast.Name) \
            or not isinstance(statement.value, ast.Call):
        return None
    dotted = _dotted_name(statement.value.func)
    tail = dotted.split(".")[-1] if dotted else None
    if tail in _SPAN_OPENERS:
        return statement.targets[0].id, "span", statement
    if tail in _WATCH_OPENERS:
        return statement.targets[0].id, "stopwatch", statement
    return None


def _deep_nodes(statements: Sequence[ast.stmt]) -> List[ast.AST]:
    """All nodes under the statements, excluding nested def bodies."""
    out: List[ast.AST] = []
    stack: List[ast.AST] = list(statements)
    while stack:
        node = stack.pop()
        out.append(node)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))
    return out


def _is_closer(node: ast.AST, name: str, kind: str) -> bool:
    if not isinstance(node, ast.Call):
        return False
    if kind == "span":
        dotted = _dotted_name(node.func)
        tail = dotted.split(".")[-1] if dotted else None
        if tail not in _SPAN_CLOSER_TAILS:
            return False
        return any(isinstance(arg, ast.Name) and arg.id == name
                   for arg in node.args)
    return (isinstance(node.func, ast.Attribute)
            and node.func.attr in _WATCH_CLOSER_METHODS
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == name)


def _closes(statements: Sequence[ast.stmt], name: str,
            kind: str) -> bool:
    return any(_is_closer(node, name, kind)
               for node in _deep_nodes(statements))


def _escapes(statements: Sequence[ast.stmt], name: str,
             kind: str) -> bool:
    """Whether ownership of ``name`` is handed off downstream.

    Returning/yielding the resource, storing it, or passing it to a
    non-closing call transfers responsibility; entering it as a
    context manager discharges it outright.
    """

    def _mentions(node: ast.AST) -> bool:
        return any(isinstance(sub, ast.Name) and sub.id == name
                   for sub in ast.walk(node))

    for node in _deep_nodes(statements):
        if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)) \
                and node.value is not None and _mentions(node.value):
            return True
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if isinstance(item.context_expr, ast.Name) \
                        and item.context_expr.id == name:
                    return True
        if isinstance(node, ast.Call) \
                and not _is_closer(node, name, kind):
            operands = [*node.args,
                        *(kw.value for kw in node.keywords)]
            if any(_mentions(arg) for arg in operands):
                return True
        if isinstance(node, ast.Assign) and _mentions(node.value):
            return True
    return False


@rule
class SpanHygieneRule(Rule):
    """Spans and stopwatches must be closed on every exit path.

    Fail::

        span = tracer.start_span("solve")
        temps = operator.solve(loads)   # may raise: span leaks
        tracer.end_span(span)

    Pass::

        span = tracer.start_span("solve")
        try:
            temps = operator.solve(loads)
        finally:
            tracer.end_span(span)
    """

    code = "RPR502"
    name = "span-hygiene"
    rationale = (
        "A span opened with start_span and closed only on the happy "
        "path stays open forever when the guarded code raises: the "
        "trace shows a phantom multi-second span, nesting depth "
        "drifts, and stopwatch metrics silently never record.  Close "
        "in a try/finally, use the context-manager form, or hand the "
        "resource off explicitly.")

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_scope(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self,
                               node: ast.AsyncFunctionDef) -> None:
        self._check_scope(node)
        self.generic_visit(node)

    def _check_scope(self, function: ast.AST) -> None:
        for body in self._statement_lists(function):
            for index, statement in enumerate(body):
                opened = _open_assignment(statement)
                if opened is None:
                    continue
                name, kind, anchor = opened
                self._judge(name, kind, anchor, body[index + 1:])

    def _judge(self, name: str, kind: str, anchor: ast.stmt,
               rest: Sequence[ast.stmt]) -> None:
        if rest:
            first = rest[0]
            if _is_closer_stmt(first, name, kind):
                return  # closed before anything can raise
            if isinstance(first, ast.Try) \
                    and _closes(first.finalbody, name, kind):
                return
        if _escapes(rest, name, kind):
            return
        if _closes(rest, name, kind):
            self.emit(anchor, (
                f"{kind} `{name}` is closed on the happy path only; "
                "an exception in between leaks it — close in a "
                "try/finally or use the context-manager form"))
        else:
            self.emit(anchor, (
                f"{kind} `{name}` is never closed in this scope; "
                "close it in a try/finally, use the context-manager "
                "form, or hand it off explicitly"))

    @staticmethod
    def _statement_lists(function: ast.AST,
                         ) -> List[List[ast.stmt]]:
        """Every statement list in the function, excluding nested
        defs (they are checked as their own scopes)."""
        lists: List[List[ast.stmt]] = []
        stack: List[ast.AST] = [function]
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef,
                                 ast.AsyncFunctionDef)) \
                    and node is not function:
                continue
            if isinstance(node, ast.ClassDef):
                continue
            for field_name in ("body", "orelse", "finalbody"):
                block = getattr(node, field_name, None)
                if isinstance(block, list) and block \
                        and isinstance(block[0], ast.stmt):
                    lists.append(block)
            stack.extend(ast.iter_child_nodes(node))
        return lists


def _is_closer_stmt(statement: ast.stmt, name: str,
                    kind: str) -> bool:
    return (isinstance(statement, ast.Expr)
            and _is_closer(statement.value, name, kind))


# ---------------------------------------------------------------------------
# RPR503 — wall-clock-deadline
# ---------------------------------------------------------------------------

#: Call spellings that read the wall clock.
_WALL_CLOCK_DOTTED = frozenset({"time.time"})

#: Assignment-target name fragments that mark a deadline/timeout value.
_DEADLINE_NAME_RE = re.compile(
    r"deadline|timeout|time_out|expir|expires|cutoff|due_at",
    re.IGNORECASE)


def _wall_clock_calls(node: ast.AST) -> List[ast.Call]:
    """Every ``time.time()`` call in the expression subtree."""
    return [sub for sub in ast.walk(node)
            if isinstance(sub, ast.Call)
            and _dotted_name(sub.func) in _WALL_CLOCK_DOTTED]


@rule
class WallClockDeadlineRule(Rule):
    """Deadline arithmetic must use the monotonic clock.

    Fail::

        deadline = time.time() + budget
        while time.time() < deadline:
            poll()

    Pass::

        deadline = Deadline(budget)       # repro.obs.clock
        while not deadline.expired:
            poll()
    """

    code = "RPR503"
    name = "wall-clock-deadline"

    def __init__(self, context: LintContext) -> None:
        super().__init__(context)
        self._emitted: set = set()

    rationale = (
        "time.time() follows the wall clock, which NTP slews and "
        "steps: a deadline computed from it can fire hours early or "
        "never, and a watchdog comparing wall-clock readings taken in "
        "different processes compares two unrelated clocks.  Deadline "
        "and timeout logic goes through repro.obs.clock — "
        "monotonic(), Deadline, or stopwatch() — which only ever "
        "moves forward.  Wall-clock reads are fine as metadata "
        "(timestamps in a report header), just not as operands of "
        "elapsed-time arithmetic or comparisons.")

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if isinstance(node.op, (ast.Add, ast.Sub)):
            self._flag(node)
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        self._flag(node)
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        self._check_binding(node.targets, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._check_binding([node.target], node.value)
        self.generic_visit(node)

    def _flag(self, node: ast.AST) -> None:
        for call in _wall_clock_calls(node):
            if id(call) in self._emitted:
                continue
            self._emitted.add(id(call))
            self.emit(call, (
                "time.time() used in elapsed-time arithmetic; the "
                "wall clock jumps under NTP — use "
                "repro.obs.clock.monotonic() or a Deadline"))

    def _check_binding(self, targets: Sequence[ast.expr],
                       value: ast.expr) -> None:
        named = []
        for target in targets:
            if isinstance(target, ast.Name):
                named.append(target.id)
            elif isinstance(target, ast.Attribute):
                named.append(target.attr)
        if not any(_DEADLINE_NAME_RE.search(name) for name in named):
            return
        for call in _wall_clock_calls(value):
            if id(call) in self._emitted:
                continue
            self._emitted.add(id(call))
            self.emit(call, (
                "deadline/timeout bound to a wall-clock reading; "
                "time.time() jumps under NTP — arm a "
                "repro.obs.clock.Deadline (or store monotonic()) "
                "instead"))


# ---------------------------------------------------------------------------
# RPR504 — telemetry-hot-loop
# ---------------------------------------------------------------------------

#: Call tails that build a context-manager telemetry resource; calling
#: one as a bare expression statement discards it unrecorded.
_CM_TELEMETRY_TAILS = frozenset({"span", "stopwatch"})

#: Receiver-name fragments that mark a streaming-telemetry consumer.
_SINK_NAME_RE = re.compile(r"sink|exporter|flusher", re.IGNORECASE)

#: Methods on a sink that perform blocking I/O per record.
_SINK_IO_METHODS = frozenset({"write"})


def _receiver_name(func: ast.expr) -> Optional[str]:
    """The terminal variable/attribute name a method is called on."""
    if not isinstance(func, ast.Attribute):
        return None
    value = func.value
    if isinstance(value, ast.Name):
        return value.id
    if isinstance(value, ast.Attribute):
        return value.attr
    return None


def _loop_bodies(root: ast.AST) -> List[Sequence[ast.stmt]]:
    """Statement lists inside for/while loops, excluding nested defs
    (they are visited as their own scopes)."""
    bodies: List[Sequence[ast.stmt]] = []
    stack: List[ast.AST] = [root]
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.Lambda)) \
                and node is not root:
            continue
        if isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
            bodies.append(node.body)
        stack.extend(ast.iter_child_nodes(node))
    return bodies


@rule
class TelemetryHotLoopRule(Rule):
    """Spans are entered and hot loops never block on sink I/O.

    Fail::

        _obs.span("solve", name)          # discarded: records nothing
        temps = operator.solve(loads)

        for record in records:
            sink.write(record)            # blocking I/O per iteration

    Pass::

        with _obs.span("solve", name):
            temps = operator.solve(loads)

        for record in records:
            flusher.publish(record)       # non-blocking bounded queue
    """

    code = "RPR504"
    name = "telemetry-hot-loop"
    rationale = (
        "repro.obs spans and stopwatches are context managers: calling "
        "span(...) without entering it builds the object and records "
        "nothing, so the trace silently misses the region it was meant "
        "to cover.  And a TelemetrySink.write() inside a loop puts "
        "blocking file I/O on the hot path per iteration — the "
        "streaming plane's contract is that producers hand records to "
        "a BackgroundFlusher (publish() on a bounded queue, never "
        "blocks) and only the flusher's worker thread touches sinks.")

    def visit_Expr(self, node: ast.Expr) -> None:
        call = node.value
        if isinstance(call, ast.Call):
            dotted = _dotted_name(call.func)
            tail = dotted.split(".")[-1] if dotted else None
            if tail in _CM_TELEMETRY_TAILS:
                self.emit(node, (
                    f"`{tail}(...)` called as a bare statement: the "
                    "context manager is discarded and nothing is "
                    "recorded — enter it with `with` (or bind and "
                    "close it explicitly)"))
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_loops(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self,
                               node: ast.AsyncFunctionDef) -> None:
        self._check_loops(node)
        self.generic_visit(node)

    def _check_loops(self, function: ast.AST) -> None:
        for body in _loop_bodies(function):
            for loop_node in _deep_nodes(body):
                if not isinstance(loop_node, ast.Call):
                    continue
                func = loop_node.func
                if not isinstance(func, ast.Attribute) \
                        or func.attr not in _SINK_IO_METHODS:
                    continue
                receiver = _receiver_name(func)
                if receiver is None \
                        or not _SINK_NAME_RE.search(receiver):
                    continue
                self.emit(loop_node, (
                    f"`{receiver}.{func.attr}(...)` inside a loop "
                    "blocks the hot path on sink I/O every iteration "
                    "— publish to a BackgroundFlusher and let its "
                    "worker thread write"))


# ---------------------------------------------------------------------------
# RPR604 — shm-lifecycle
# ---------------------------------------------------------------------------

#: Call tails that register a cleanup callback for a resource.
_FINALIZER_TAILS = frozenset({
    "weakref.finalize", "atexit.register", "addfinalizer",
})


@rule
class ShmLifecycleRule(Rule):
    """Every shared-memory segment creation has a reachable unlink.

    Fail::

        def publish(data):
            seg = SharedMemory(create=True, size=data.nbytes)
            seg.buf[:data.nbytes] = data.tobytes()
            return seg.name            # nothing ever unlinks it

    Pass::

        def publish(data):
            seg = SharedMemory(create=True, size=data.nbytes)
            atexit.register(seg.unlink)
            return seg.name
    """

    code = "RPR604"
    name = "shm-lifecycle"
    rationale = (
        "POSIX shared memory outlives the creating process: a "
        "SharedMemory(create=True) segment that is never unlink()ed "
        "persists in /dev/shm until reboot, and a campaign that leaks "
        "one per run eventually fills the tmpfs and takes every other "
        "process on the host down with ENOSPC.  Any module that "
        "creates segments must also contain the matching unlink — "
        "directly, or through a registered finalizer "
        "(weakref.finalize / atexit.register) — so the lifecycle is "
        "auditable in one place.")

    def visit_Module(self, node: ast.Module) -> None:
        creations = []
        has_unlink = False
        has_finalizer = False
        for inner in ast.walk(node):
            if not isinstance(inner, ast.Call):
                continue
            dotted = _dotted_name(inner.func)
            tail = dotted.split(".")[-1] if dotted else None
            if tail == "SharedMemory" and self._creates(inner):
                creations.append(inner)
            elif tail == "unlink":
                has_unlink = True
            elif dotted in _FINALIZER_TAILS or tail == "addfinalizer":
                has_finalizer = True
        if not has_unlink and not has_finalizer:
            for creation in creations:
                self.emit(creation, (
                    "`SharedMemory(..., create=True)` with no "
                    "`unlink()` call or registered finalizer "
                    "(weakref.finalize / atexit.register) anywhere in "
                    "this module: the segment outlives the process in "
                    "/dev/shm — pair every creation with a reachable "
                    "unlink"))
        # No generic_visit: one module-level scan is the whole rule.

    @staticmethod
    def _creates(node: ast.Call) -> bool:
        for keyword in node.keywords:
            if keyword.arg == "create":
                return not (isinstance(keyword.value, ast.Constant)
                            and keyword.value.value is False)
        return False
