"""The ``physlint`` command line (also backing ``repro lint``).

Exit codes: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ...errors import ConfigurationError
from .core import available_rules, lint_paths
from .reporters import format_json, format_text


def build_parser() -> argparse.ArgumentParser:
    """Argument parser for ``python -m repro.devtools.physlint``."""
    parser = argparse.ArgumentParser(
        prog="physlint",
        description=("Domain-aware static analysis for the OFTEC "
                     "reproduction: units discipline, exception "
                     "hygiene, and numerics conventions."))
    parser.add_argument(
        "paths", nargs="*", default=["src"], metavar="PATH",
        help="files or directories to lint (default: src)")
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default text)")
    parser.add_argument(
        "--select", default="", metavar="CODES",
        help="comma-separated code prefixes to run (e.g. RPR1,RPR301)")
    parser.add_argument(
        "--ignore", default="", metavar="CODES",
        help="comma-separated code prefixes to skip")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the registered rules and exit")
    return parser


def _render_rule_table() -> str:
    lines = ["registered physlint rules:"]
    for code, rule_cls in available_rules().items():
        lines.append(f"  {code}  {rule_cls.name:<18} "
                     f"{rule_cls.rationale.split('.')[0].strip()}.")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(_render_rule_table())
        return 0
    select = [c for c in args.select.split(",") if c.strip()]
    ignore = [c for c in args.ignore.split(",") if c.strip()]
    try:
        findings = lint_paths(args.paths, select=select, ignore=ignore)
    except ConfigurationError as error:
        print(f"physlint: error: {error}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(format_json(findings))
    else:
        print(format_text(findings))
    return 1 if findings else 0
