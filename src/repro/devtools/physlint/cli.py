"""The ``physlint`` command line (also backing ``repro lint``).

Exit codes: 0 clean, 1 findings, 2 usage error.

The v2 engine always runs the whole-program analysis; add ``--cache``
to make repeated runs incremental, ``--baseline`` to gate CI on new
findings only, and ``--explain RPRxxx`` to read a rule's rationale
with a minimal fail/pass example.
"""

from __future__ import annotations

import argparse
import inspect
import os
import sys
import textwrap
from typing import Dict, List, Optional, Type, Union

from ...errors import ConfigurationError
from .baseline import filter_new, load_baseline, write_baseline
from .core import Rule, available_rules
from .project import (
    ProjectRule,
    available_project_rules,
    lint_project,
)
from .reporters import format_json, format_sarif, format_text


def build_parser() -> argparse.ArgumentParser:
    """Argument parser for ``python -m repro.devtools.physlint``."""
    parser = argparse.ArgumentParser(
        prog="physlint",
        description=("Domain-aware static analysis for the OFTEC "
                     "reproduction: units discipline, exception "
                     "hygiene, numerics conventions, and "
                     "whole-program process-safety and "
                     "dimensional-flow checks."))
    parser.add_argument(
        "paths", nargs="*", default=["src"], metavar="PATH",
        help="files or directories to lint (default: src)")
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (default text)")
    parser.add_argument(
        "--select", default="", metavar="CODES",
        help="comma-separated code prefixes to run (e.g. RPR1,RPR301)")
    parser.add_argument(
        "--ignore", default="", metavar="CODES",
        help="comma-separated code prefixes to skip")
    parser.add_argument(
        "--cache", default=None, metavar="FILE",
        help=("incremental analysis cache file; unchanged files are "
              "not re-parsed on later runs"))
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help=("committed baseline of accepted findings; only "
              "findings not in it are reported"))
    parser.add_argument(
        "--update-baseline", default=None, metavar="FILE",
        help="write the current findings to FILE as the new baseline")
    parser.add_argument(
        "--stats", action="store_true",
        help="print engine statistics (files, cache hits) to stderr")
    parser.add_argument(
        "--explain", default=None, metavar="CODE",
        help="print a rule's rationale and fail/pass example, then "
             "exit")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the registered rules and exit")
    return parser


_AnyRule = Union[Type[Rule], Type[ProjectRule]]


def _all_rules() -> Dict[str, _AnyRule]:
    merged: Dict[str, _AnyRule] = {}
    merged.update(available_rules())
    merged.update(available_project_rules())
    return dict(sorted(merged.items()))


def _render_rule_table() -> str:
    lines = ["registered physlint rules:"]
    project_codes = set(available_project_rules())
    for code, rule_cls in _all_rules().items():
        scope = "project" if code in project_codes else "file"
        lines.append(f"  {code}  {rule_cls.name:<18} [{scope:>7}] "
                     f"{rule_cls.rationale.split('.')[0].strip()}.")
    return "\n".join(lines)


def _render_explanation(code: str) -> Optional[str]:
    rule_cls = _all_rules().get(code.upper())
    if rule_cls is None:
        return None
    lines = [f"{rule_cls.code} ({rule_cls.name})", ""]
    lines.extend(textwrap.wrap(rule_cls.rationale, width=72))
    doc = inspect.getdoc(rule_cls)
    if doc:
        lines.extend(["", doc])
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    try:
        return _run(argv)
    except BrokenPipeError:
        # A downstream pager (`repro lint ... | head`) closed the pipe
        # early; redirect stdout at the fd so the interpreter's exit
        # flush does not raise a second time.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


def _run(argv: Optional[List[str]]) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(_render_rule_table())
        return 0
    if args.explain is not None:
        explanation = _render_explanation(args.explain)
        if explanation is None:
            print(f"physlint: error: unknown rule code "
                  f"{args.explain!r} (see --list-rules)",
                  file=sys.stderr)
            return 2
        print(explanation)
        return 0
    select = [c for c in args.select.split(",") if c.strip()]
    ignore = [c for c in args.ignore.split(",") if c.strip()]
    try:
        report = lint_project(args.paths, select=select,
                              ignore=ignore, cache_path=args.cache)
        findings = report.findings
        if args.update_baseline is not None:
            write_baseline(findings, args.update_baseline)
            print(f"physlint: baseline of {len(findings)} finding(s) "
                  f"written to {args.update_baseline}")
            return 0
        if args.baseline is not None:
            findings = filter_new(findings,
                                  load_baseline(args.baseline))
    except ConfigurationError as error:
        print(f"physlint: error: {error}", file=sys.stderr)
        return 2
    if args.stats:
        print(f"physlint: {report.files} file(s), "
              f"{report.cache_hits} cache hit(s), "
              f"{report.cache_misses} miss(es), "
              f"{report.parsed} parsed", file=sys.stderr)
    if args.format == "json":
        print(format_json(findings))
    elif args.format == "sarif":
        print(format_sarif(findings))
    else:
        print(format_text(findings))
    return 1 if findings else 0
