"""Finding reporters: plain text and machine-readable JSON."""

from __future__ import annotations

import json
from collections import Counter
from typing import Dict, List, Sequence

from .core import Finding

#: Bumped when the JSON schema changes shape.
JSON_SCHEMA_VERSION = 1


def format_text(findings: Sequence[Finding]) -> str:
    """One line per finding plus a per-code summary footer."""
    if not findings:
        return "physlint: no findings"
    lines = [finding.render() for finding in findings]
    counts = Counter(finding.code for finding in findings)
    summary = ", ".join(f"{code} x{count}"
                        for code, count in sorted(counts.items()))
    lines.append(f"physlint: {len(findings)} finding(s) ({summary})")
    return "\n".join(lines)


def findings_to_dict(findings: Sequence[Finding]) -> Dict[str, object]:
    """The JSON-serializable payload (also the library-level API)."""
    counts: Dict[str, int] = dict(
        sorted(Counter(f.code for f in findings).items()))
    items: List[Dict[str, object]] = [
        {
            "code": finding.code,
            "rule": finding.rule,
            "message": finding.message,
            "path": finding.path,
            "line": finding.line,
            "column": finding.column,
        }
        for finding in findings
    ]
    return {
        "tool": "physlint",
        "schema_version": JSON_SCHEMA_VERSION,
        "total": len(items),
        "counts": counts,
        "findings": items,
    }


def format_json(findings: Sequence[Finding]) -> str:
    """Findings as a stable, ``json.loads``-round-trippable document."""
    return json.dumps(findings_to_dict(findings), indent=2,
                      sort_keys=True)
