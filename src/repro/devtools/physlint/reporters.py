"""Finding reporters: plain text, machine JSON, and SARIF 2.1.0."""

from __future__ import annotations

import json
from collections import Counter
from typing import Any, Dict, List, Sequence

from .core import PARSE_ERROR_CODE, Finding

#: Bumped when the JSON schema changes shape.
JSON_SCHEMA_VERSION = 1


def format_text(findings: Sequence[Finding]) -> str:
    """One line per finding plus a per-code summary footer."""
    if not findings:
        return "physlint: no findings"
    lines = [finding.render() for finding in findings]
    counts = Counter(finding.code for finding in findings)
    summary = ", ".join(f"{code} x{count}"
                        for code, count in sorted(counts.items()))
    lines.append(f"physlint: {len(findings)} finding(s) ({summary})")
    return "\n".join(lines)


def findings_to_dict(findings: Sequence[Finding]) -> Dict[str, object]:
    """The JSON-serializable payload (also the library-level API)."""
    counts: Dict[str, int] = dict(
        sorted(Counter(f.code for f in findings).items()))
    items: List[Dict[str, object]] = [
        {
            "code": finding.code,
            "rule": finding.rule,
            "message": finding.message,
            "path": finding.path,
            "line": finding.line,
            "column": finding.column,
        }
        for finding in findings
    ]
    return {
        "tool": "physlint",
        "schema_version": JSON_SCHEMA_VERSION,
        "total": len(items),
        "counts": counts,
        "findings": items,
    }


def format_json(findings: Sequence[Finding]) -> str:
    """Findings as a stable, ``json.loads``-round-trippable document."""
    return json.dumps(findings_to_dict(findings), indent=2,
                      sort_keys=True)


#: The SARIF schema this reporter emits.
SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/"
                 "sarif-spec/master/Schemata/sarif-schema-2.1.0.json")


def _sarif_rules() -> List[Dict[str, Any]]:
    # Imported lazily so the reporter works regardless of which rule
    # modules have been imported for registration side effects.
    from .core import available_rules
    from .project import available_project_rules
    catalogue: List[Dict[str, Any]] = []
    entries = {**available_rules(), **available_project_rules()}
    for code in sorted(entries):
        rule_cls = entries[code]
        catalogue.append({
            "id": code,
            "name": rule_cls.name,
            "shortDescription": {
                "text": rule_cls.rationale.split(".")[0].strip() + ".",
            },
            "fullDescription": {"text": rule_cls.rationale},
        })
    return catalogue


def format_sarif(findings: Sequence[Finding]) -> str:
    """Findings as a SARIF 2.1.0 log, for code-scanning upload."""
    results: List[Dict[str, Any]] = []
    for finding in findings:
        results.append({
            "ruleId": finding.code,
            "level": ("error" if finding.code == PARSE_ERROR_CODE
                      else "warning"),
            "message": {"text": finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path.replace("\\", "/"),
                    },
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.column,
                    },
                },
            }],
        })
    document = {
        "$schema": _SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "physlint",
                    "rules": _sarif_rules(),
                },
            },
            "results": results,
        }],
    }
    return json.dumps(document, indent=2, sort_keys=True)
