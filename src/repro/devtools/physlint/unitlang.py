"""The physlint unit vocabulary: parsing, algebra, and extraction.

Dimensional-flow analysis (the RPR7xx band) works on *units as opaque
algebraic tokens*, not on physical dimensions: ``RPM`` and ``rad/s``
are both angular velocities, but mixing them is exactly the bug class
the paper's model invites (fan speed enters the fan law in rad/s and
the datasheets in RPM), so the two deliberately do not unify.  A unit
is a mapping ``token -> integer exponent`` (``K/W`` is ``{"K": 1,
"W": -1}``); multiplication and division combine exponents, while
addition, subtraction, and comparison require exact equality.

Units enter the analysis from two sources:

* the docstring convention already mandated by RPR401 — a parameter
  description ending ``..., rad/s.`` (or ``... in K.``) declares the
  parameter's unit, and a ``Returns:`` block declares the return
  unit;
* the inline annotation form ``x = expr  # unit: K/W``, for locals
  whose unit the flow analysis cannot infer.

Anything that fails to parse is simply *unknown* — the analysis never
guesses, so an unparsed description can only cost coverage, never a
false finding.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

#: A unit: token -> non-zero integer exponent.  {} is dimensionless.
Unit = Dict[str, int]

#: Accepted atom spellings (lowercased) -> canonical token.  Single
#: letters are included because the docstring convention puts them in
#: quantity position (", K."), where ambiguity with prose is gone.
_ATOM_ALIASES: Dict[str, str] = {
    "k": "K", "kelvin": "K",
    "degc": "degC", "°c": "degC", "celsius": "degC",
    "w": "W", "watt": "W", "watts": "W",
    "a": "A", "amp": "A", "amps": "A", "ampere": "A", "amperes": "A",
    "v": "V", "volt": "V", "volts": "V",
    "m": "m", "meter": "m", "meters": "m", "metre": "m", "metres": "m",
    "mm": "mm", "um": "um", "µm": "um",
    "s": "s", "sec": "s", "second": "s", "seconds": "s",
    "ms": "ms",
    "rad": "rad",
    "rpm": "RPM",
    "hz": "Hz", "hertz": "Hz",
    "j": "J", "joule": "J", "joules": "J",
    "kg": "kg",
    "pa": "Pa",
    "n": "N", "newton": "N",
    "ohm": "ohm", "ohms": "ohm", "Ω": "ohm",
    "db": "dB",
    "dba": "dBA",
    "cell": "cell", "cells": "cell",
}

_ATOM_RE = re.compile(r"^([^\s^0-9]+?)(?:\^?(-?\d+)|([²³]))?$")

_SUPERSCRIPTS = {"²": 2, "³": 3}

#: The inline annotation: ``expr  # unit: K/W``.
INLINE_UNIT_RE = re.compile(r"#\s*unit:\s*(\S+)")


def _parse_atom(text: str, sign: int, into: Unit) -> bool:
    """Fold one ``atom[^exp]`` into ``into``; False when unparsable."""
    match = _ATOM_RE.match(text.strip())
    if match is None:
        return False
    name, exp_text, sup = match.groups()
    token = _ATOM_ALIASES.get(name.lower())
    if token is None:
        return False
    exponent = 1
    if exp_text is not None:
        exponent = int(exp_text)
    elif sup is not None:
        exponent = _SUPERSCRIPTS[sup]
    power = into.get(token, 0) + sign * exponent
    if power:
        into[token] = power
    else:
        into.pop(token, None)
    return True


def parse_unit(text: str) -> Optional[Unit]:
    """Parse a unit expression like ``K/W``, ``W·s``, or ``m^2``.

    Grammar: atoms joined by ``*``/``·`` (multiply) and ``/`` (divide,
    left-associative over the following product), with optional
    integer exponents (``m^2``, ``m2`` is *not* accepted — a trailing
    digit without ``^`` is too often a word).  The literal ``1`` is an
    empty numerator (``1/s``).  Returns None when any part fails to
    parse — unknown, never wrong.
    """
    text = text.strip().rstrip(".")
    if not text or len(text) > 40 or " " in text:
        return None
    unit: Unit = {}
    sign = 1
    for chunk in re.split(r"(/)", text):
        if chunk == "/":
            sign = -1
            continue
        for atom in re.split(r"[*·]", chunk):
            atom = atom.strip()
            if atom == "1" and sign == 1:
                continue
            if not _parse_atom(atom, sign, unit):
                return None
    return unit


def render_unit(unit: Unit) -> str:
    """The canonical human form of a unit (``K/W``, ``1/s``, ``1``)."""
    if not unit:
        return "1"
    num = sorted((t, e) for t, e in unit.items() if e > 0)
    den = sorted((t, -e) for t, e in unit.items() if e < 0)

    def _side(parts: List[Tuple[str, int]]) -> str:
        return "*".join(t if e == 1 else f"{t}^{e}" for t, e in parts)

    if not den:
        return _side(num)
    return f"{_side(num) or '1'}/{_side(den)}"


def multiply(left: Unit, right: Unit) -> Unit:
    """The unit of a product."""
    out = dict(left)
    for token, exponent in right.items():
        power = out.get(token, 0) + exponent
        if power:
            out[token] = power
        else:
            out.pop(token, None)
    return out


def divide(left: Unit, right: Unit) -> Unit:
    """The unit of a quotient."""
    return multiply(left, {t: -e for t, e in right.items()})


def power(base: Unit, exponent: int) -> Unit:
    """The unit of an integer power."""
    return {t: e * exponent for t, e in base.items()} if exponent \
        else {}


# -- extraction from docstrings ------------------------------------------

#: ``..., rad/s.`` — the unit is the last comma-separated chunk of the
#: first sentence.
_TRAILING_UNIT_RE = re.compile(r",\s*([^\s,]+)\s*$")

#: ``... in K`` as a fallback spelling.
_IN_UNIT_RE = re.compile(r"\bin\s+([^\s,]+)\s*$")


def unit_of_description(text: str) -> Optional[Unit]:
    """The declared unit of one parameter/return description.

    Looks at the first sentence only; accepts the house style
    (``'Fan speed, rad/s.'``) and the ``'... in K'`` fallback.
    """
    sentence = text.split(".")[0].strip()
    for pattern in (_TRAILING_UNIT_RE, _IN_UNIT_RE):
        match = pattern.search(sentence)
        if match is not None:
            unit = parse_unit(match.group(1))
            if unit is not None:
                return unit
    return None


_ARGS_HEADER_RE = re.compile(r"^\s*(Args|Arguments|Parameters):\s*$")
_RETURNS_HEADER_RE = re.compile(r"^\s*(Returns|Yields):\s*$")
_SECTION_HEADER_RE = re.compile(r"^\s*\w[\w ]*:\s*$")
_PARAM_LINE_RE = re.compile(r"^(\s*)(\*{0,2}\w+)\s*(?:\([^)]*\))?:\s*(.*)$")


def docstring_units(docstring: Optional[str],
                    ) -> Tuple[Dict[str, Unit], Optional[Unit]]:
    """Extract declared parameter and return units from a docstring.

    Parses the Google-style ``Args:`` block (one ``name: description``
    entry per parameter, continuation lines indented deeper) and the
    first line of the ``Returns:`` block.  Returns ``(param units,
    return unit)``; parameters whose description states no parsable
    unit are simply absent.
    """
    params: Dict[str, Unit] = {}
    returns: Optional[Unit] = None
    if not docstring:
        return params, returns
    lines = docstring.splitlines()
    index = 0
    while index < len(lines):
        line = lines[index]
        if _ARGS_HEADER_RE.match(line):
            index = _parse_args_block(lines, index + 1, params)
            continue
        if _RETURNS_HEADER_RE.match(line):
            text, index = _collect_block(lines, index + 1)
            if text:
                returns = unit_of_description(text)
            continue
        index += 1
    return params, returns


def _collect_block(lines: List[str], start: int) -> Tuple[str, int]:
    """Join an indented block into one string; stop at a dedent."""
    collected: List[str] = []
    index = start
    while index < len(lines):
        line = lines[index]
        if not line.strip():
            break
        if _SECTION_HEADER_RE.match(line):
            break
        collected.append(line.strip())
        index += 1
    return " ".join(collected), index


def _parse_args_block(lines: List[str], start: int,
                      params: Dict[str, Unit]) -> int:
    index = start
    entry_indent: Optional[int] = None
    name: Optional[str] = None
    description: List[str] = []

    def _flush() -> None:
        if name is not None and description:
            unit = unit_of_description(" ".join(description))
            if unit is not None:
                params[name.lstrip("*")] = unit

    while index < len(lines):
        line = lines[index]
        if not line.strip() or _SECTION_HEADER_RE.match(line):
            break
        match = _PARAM_LINE_RE.match(line)
        indent = len(line) - len(line.lstrip())
        if match is not None and (entry_indent is None
                                  or indent <= entry_indent):
            _flush()
            entry_indent = len(match.group(1))
            name = match.group(2)
            description = [match.group(3)]
        else:
            description.append(line.strip())
        index += 1
    _flush()
    return index


def inline_unit(line: str) -> Optional[Unit]:
    """The unit declared by a same-line ``# unit: ...`` annotation."""
    match = INLINE_UNIT_RE.search(line)
    if match is None:
        return None
    return parse_unit(match.group(1))


__all__ = [
    "Unit",
    "divide",
    "docstring_units",
    "inline_unit",
    "multiply",
    "parse_unit",
    "power",
    "render_unit",
    "unit_of_description",
]
