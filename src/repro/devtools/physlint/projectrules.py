"""The built-in whole-program rules (RPR602/RPR603/RPR703).

These run over the :class:`~repro.devtools.physlint.project.ProjectGraph`
rather than one file at a time, because the defects they target only
exist across module boundaries:

``RPR602`` worker-state
    Coordinator-only state touched on a worker-reachable path —
    ``global`` mutation, writes to attributes of imported modules,
    and ambient (process-global) RNG streams.  Each worker process
    holds a private copy of such state; mutations silently diverge
    and never merge back.
``RPR603`` worker-fanout
    A process pool spawned on a worker-reachable path: the nested
    fan-out shape that deadlocked PR 5's campaign scheduler.  A
    function that consults ``in_worker()``/``resolve_workers()``
    before acting is a guard barrier and is never flagged.
``RPR703`` unit-call
    A call-site argument whose flow-inferred unit disagrees with the
    unit the callee's docstring declares for that parameter — the
    cross-module half of the RPR701/RPR702 dimensional analysis.
"""

from __future__ import annotations

from typing import Optional, Union

from .dimensional import CallRecord
from .project import (
    FunctionSummary,
    NodeKey,
    ProjectGraph,
    ProjectRule,
    project_rule,
)
from .unitlang import render_unit

#: Fully-qualified callables that fork the current process or spawn a
#: pool of children.
_SPAWN_CALLS = frozenset({
    "concurrent.futures.ProcessPoolExecutor",
    "concurrent.futures.process.ProcessPoolExecutor",
    "multiprocessing.Pool",
    "multiprocessing.pool.Pool",
    "multiprocessing.Process",
    "multiprocessing.process.Process",
    "multiprocessing.get_context",
    "os.fork",
    "os.forkpty",
})

#: Module-level functions of :mod:`random` and :mod:`numpy.random`
#: that draw from (or reseed) the process-global stream.
_AMBIENT_RNG = frozenset(
    {f"random.{name}" for name in (
        "betavariate", "choice", "choices", "expovariate", "gauss",
        "getrandbits", "normalvariate", "paretovariate", "randint",
        "random", "randrange", "sample", "seed", "shuffle",
        "triangular", "uniform", "vonmisesvariate", "weibullvariate",
    )}
    | {f"numpy.random.{name}" for name in (
        "choice", "exponential", "normal", "permutation", "poisson",
        "rand", "randint", "randn", "random", "random_sample", "seed",
        "shuffle", "standard_normal", "uniform",
    )})


def _chain(graph: ProjectGraph, key: NodeKey) -> str:
    chain = graph.worker_reachable().get(key, (key[1],))
    return " -> ".join(chain)


@project_rule
class WorkerStateRule(ProjectRule):
    """Worker-reachable code must not touch coordinator-only state.

    Fail::

        # workers call run_unit; helper mutates a module global
        RESULTS = {}

        def helper(unit):
            global RESULTS          # RPR602: per-process copy
            RESULTS[unit.key] = 1

        def run_unit(unit):
            return helper(unit)

        pool.submit(run_unit, unit)

    Pass::

        def run_unit(unit):
            return {unit.key: 1}    # returned, merged by coordinator
    """

    code = "RPR602"
    name = "worker-state"
    rationale = (
        "Functions reachable from a repro.exec worker entry point run "
        "in child processes: a `global` rebind, a write to an imported "
        "module's attribute, or a draw from the ambient random/"
        "numpy.random stream mutates one private per-process copy.  "
        "The coordinator never sees the change, replays stop being "
        "bit-identical, and the bug only surfaces under -j > 1.  Pass "
        "state in through the unit payload and return results; seed "
        "explicit Generators from the payload.")

    def check(self, graph: ProjectGraph) -> None:
        for key in sorted(graph.worker_reachable()):
            summary, fn = graph.nodes[key]
            via = _chain(graph, key)
            self._check_state(summary.path, fn, via)
            self._check_rng(graph, key, via)

    def _check_state(self, path: str, fn: FunctionSummary,
                     via: str) -> None:
        for site in fn.global_names:
            self.emit(path, site.line, site.column, (
                f"`global {site.desc}` on a worker-reachable path "
                f"({via}): each worker process mutates a private "
                "copy that never merges back; pass state through "
                "the unit payload and return results"))
        for site in fn.attr_writes:
            self.emit(path, site.line, site.column, (
                f"write to imported-module state `{site.desc}` on a "
                f"worker-reachable path ({via}): the assignment "
                "lands in the worker's copy of the module, not the "
                "coordinator's"))

    def _check_rng(self, graph: ProjectGraph, key: NodeKey,
                   via: str) -> None:
        summary, fn = graph.nodes[key]
        for call in fn.calls:
            full = graph.resolve_name(summary, call.callee)
            if full in _AMBIENT_RNG:
                self.emit(summary.path, call.line, call.column, (
                    f"ambient RNG `{full}` on a worker-reachable "
                    f"path ({via}): the process-global stream is "
                    "unseeded and differs per worker; use a "
                    "Generator seeded from the unit payload"))


@project_rule
class WorkerFanoutRule(ProjectRule):
    """Worker-reachable code must not spawn another process pool.

    Fail::

        def step(unit):
            with ProcessPoolExecutor() as pool:   # RPR603
                return list(pool.map(expand, unit.parts))

        def run_unit(unit):
            return step(unit)

        pool.submit(run_unit, unit)

    Pass::

        def step(unit):
            if in_worker():               # guard barrier: runs inline
                return [expand(p) for p in unit.parts]
            with ProcessPoolExecutor() as pool:
                return list(pool.map(expand, unit.parts))
    """

    code = "RPR603"
    name = "worker-fanout"
    rationale = (
        "A pool spawned inside a pool worker is the nested fan-out "
        "bug: each of N workers forks N more processes, oversubscribes "
        "the host, and deadlocks under the default spawn semantics.  "
        "The traversal stops at guard barriers — functions that call "
        "in_worker()/resolve_workers() demonstrably check their "
        "process context before fanning out — so the fix is either "
        "such a guard or running the nested stage inline.")

    def check(self, graph: ProjectGraph) -> None:
        for key in sorted(graph.worker_reachable()):
            summary, fn = graph.nodes[key]
            via = _chain(graph, key)
            for call in fn.calls:
                full = graph.resolve_name(summary, call.callee)
                if full in _SPAWN_CALLS:
                    self.emit(summary.path, call.line, call.column, (
                        f"`{full}` spawns processes on a "
                        f"worker-reachable path ({via}): nested "
                        "fan-out oversubscribes and can deadlock; "
                        "guard with in_worker() or run this stage "
                        "inline"))


@project_rule
class UnitCallRule(ProjectRule):
    """Call-site argument units must match the parameter's docstring.

    Fail::

        # fan.py
        def fan_power(omega):
            \"\"\"Args:
                omega: Fan speed, rad/s.
            \"\"\"

        # control.py
        from fan import fan_power

        def step(omega_rpm):
            \"\"\"Args:
                omega_rpm: Commanded speed, RPM.
            \"\"\"
            return fan_power(omega_rpm)   # RPR703: RPM into rad/s

    Pass::

        from repro.units import rpm_to_rad_s

        def step(omega_rpm):
            \"\"\"Args:
                omega_rpm: Commanded speed, RPM.
            \"\"\"
            return fan_power(rpm_to_rad_s(omega_rpm))
    """

    code = "RPR703"
    name = "unit-call"
    rationale = (
        "The paper's quantities (A, rad/s vs RPM, K/W, W) cross many "
        "module boundaries; a call passing RPM where the callee "
        "documents rad/s is off by 2*pi/60 at every operating point.  "
        "This check joins each call site's flow-inferred argument "
        "units against the callee's declared parameter units across "
        "the whole project graph.")

    def check(self, graph: ProjectGraph) -> None:
        for key in sorted(graph.nodes):
            module, qual = key
            summary, fn = graph.nodes[key]
            for call in fn.calls:
                if not call.args:
                    continue
                resolved = graph.resolve_call(module, qual,
                                              call.callee)
                if resolved is None:
                    continue
                self._check_call(graph, summary.path, call,
                                 resolved[0], resolved[1])

    def _check_call(self, graph: ProjectGraph, path: str,
                    call: CallRecord, target_key: NodeKey,
                    implicit_self: bool) -> None:
        target_module, target_qual = target_key
        _, target = graph.nodes[target_key]
        offset = 1 if implicit_self else 0
        for slot, unit in call.args:
            name = self._param_name(target, slot, offset)
            if name is None:
                continue
            declared = target.param_units.get(name)
            if declared is not None and declared != unit:
                self.emit(path, call.line, call.column, (
                    f"argument `{name}` of "
                    f"{target_module}.{target_qual} is documented "
                    f"as {render_unit(declared)} but receives "
                    f"{render_unit(unit)}; convert at the call "
                    "site (repro.units)"))

    @staticmethod
    def _param_name(target: FunctionSummary,
                    slot: Union[int, str],
                    offset: int) -> Optional[str]:
        if isinstance(slot, int):
            index = slot + offset
            if 0 <= index < len(target.params):
                return target.params[index]
            return None
        return slot


__all__ = [
    "UnitCallRule",
    "WorkerFanoutRule",
    "WorkerStateRule",
]
