"""Committed-baseline mode: fail CI only on *new* findings.

A baseline is a committed JSON document mapping finding fingerprints
to how many times each occurs.  Fingerprints are deliberately
*line-free* — blake2b over ``path | code | message`` — so editing an
unrelated part of a file does not churn the baseline, while moving a
finding to another file or changing what it says does.

``repro lint --baseline physlint-baseline.json`` drops every finding
covered by the baseline (up to its recorded count) and reports only
the excess; ``--update-baseline`` rewrites the file from the current
findings.  An empty baseline therefore means "the tree is clean and
must stay clean".
"""

from __future__ import annotations

import hashlib
import json
import os
from collections import Counter
from typing import Dict, List, Sequence

from ...errors import ConfigurationError
from .core import Finding

#: Bumped when the baseline document shape changes.
BASELINE_VERSION = 1


def fingerprint(finding: Finding) -> str:
    """The stable, line-free identity of one finding."""
    posix = finding.path.replace(os.sep, "/").replace("\\", "/")
    payload = f"{posix}|{finding.code}|{finding.message}"
    return hashlib.blake2b(payload.encode("utf-8"),
                           digest_size=12).hexdigest()


def write_baseline(findings: Sequence[Finding], path: str) -> None:
    """Persist the current findings as the accepted baseline."""
    counts = Counter(fingerprint(f) for f in findings)
    document = {
        "tool": "physlint",
        "version": BASELINE_VERSION,
        "fingerprints": dict(sorted(counts.items())),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_baseline(path: str) -> Dict[str, int]:
    """Read a baseline file; raises ConfigurationError on problems."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except OSError as error:
        raise ConfigurationError(
            f"cannot read baseline {path}: {error}") from error
    except ValueError as error:
        raise ConfigurationError(
            f"baseline {path} is not valid JSON: {error}") from error
    if not isinstance(document, dict) \
            or document.get("tool") != "physlint" \
            or not isinstance(document.get("fingerprints"), dict):
        raise ConfigurationError(
            f"baseline {path} is not a physlint baseline document")
    fingerprints = document["fingerprints"]
    return {str(key): int(value)
            for key, value in fingerprints.items()}


def filter_new(findings: Sequence[Finding],
               baseline: Dict[str, int]) -> List[Finding]:
    """Findings not covered by the baseline.

    Each fingerprint absorbs up to its recorded count, first
    occurrence first, so a file that *gains* a second identical
    finding still fails the gate.
    """
    remaining = dict(baseline)
    new: List[Finding] = []
    for finding in findings:
        key = fingerprint(finding)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            continue
        new.append(finding)
    return new


__all__ = [
    "BASELINE_VERSION",
    "filter_new",
    "fingerprint",
    "load_baseline",
    "write_baseline",
]
