"""physlint — domain-aware static analysis for the OFTEC reproduction.

Run it as ``repro lint [PATH ...]`` or
``python -m repro.devtools.physlint [PATH ...]``; use
:func:`lint_paths` / :func:`lint_source` (per-file rules) or
:func:`lint_project` (the v2 whole-program engine: dimensional flow,
process-safety reachability, incremental cache) as the library API.

See :mod:`repro.devtools.physlint.rules` for the per-file rule
catalogue, :mod:`repro.devtools.physlint.projectrules` for the
whole-program rules, and docs/LINTING.md for the engine guide,
suppression syntax, and baseline/SARIF workflow.
"""

from __future__ import annotations

from .baseline import (
    filter_new,
    fingerprint,
    load_baseline,
    write_baseline,
)
from .cli import build_parser, main
from .core import (
    PARSE_ERROR_CODE,
    Finding,
    LintContext,
    Rule,
    available_rules,
    lint_file,
    lint_paths,
    lint_source,
    rule,
)
from .project import (
    ProjectGraph,
    ProjectReport,
    ProjectRule,
    available_project_rules,
    lint_project,
    project_rule,
)
from .reporters import (
    findings_to_dict,
    format_json,
    format_sarif,
    format_text,
)

# Importing these modules registers the built-in rules.
from . import rules as _builtin_rules  # noqa: F401  (import for effect)
from . import projectrules as _builtin_project_rules  # noqa: F401

__all__ = [
    "PARSE_ERROR_CODE",
    "Finding",
    "LintContext",
    "ProjectGraph",
    "ProjectReport",
    "ProjectRule",
    "Rule",
    "available_project_rules",
    "available_rules",
    "build_parser",
    "filter_new",
    "findings_to_dict",
    "fingerprint",
    "format_json",
    "format_sarif",
    "format_text",
    "lint_file",
    "lint_paths",
    "lint_project",
    "lint_source",
    "load_baseline",
    "main",
    "project_rule",
    "rule",
    "write_baseline",
]
