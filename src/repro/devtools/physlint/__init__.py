"""physlint — domain-aware static analysis for the OFTEC reproduction.

Run it as ``repro lint [PATH ...]`` or
``python -m repro.devtools.physlint [PATH ...]``; use
:func:`lint_paths` / :func:`lint_source` as the library API.

See :mod:`repro.devtools.physlint.rules` for the rule catalogue and
CONTRIBUTING.md for suppression syntax and how to add a rule.
"""

from __future__ import annotations

from .cli import build_parser, main
from .core import (
    PARSE_ERROR_CODE,
    Finding,
    LintContext,
    Rule,
    available_rules,
    lint_file,
    lint_paths,
    lint_source,
    rule,
)
from .reporters import findings_to_dict, format_json, format_text

# Importing the module registers the built-in rules with the registry.
from . import rules as _builtin_rules  # noqa: F401  (import for effect)

__all__ = [
    "PARSE_ERROR_CODE",
    "Finding",
    "LintContext",
    "Rule",
    "available_rules",
    "build_parser",
    "findings_to_dict",
    "format_json",
    "format_text",
    "lint_file",
    "lint_paths",
    "lint_source",
    "main",
    "rule",
]
