"""The whole-program analysis layer: symbol table, call graph, engine.

Per-file rules (:mod:`~repro.devtools.physlint.rules`) see one module
at a time.  The bug classes that motivated physlint v2 — nested pool
fan-out reached through three modules, a rad/s value handed to a
parameter documented in RPM — only exist *between* files, so this
module builds the project-wide picture:

* :func:`extract_summary` condenses one parsed file into a
  serializable :class:`FileSummary` — import aliases, per-function
  parameter/return units, call sites with known argument units,
  ``global`` statements, module-attribute writes, and pool-submission
  targets.  Summaries are pure functions of file content, which is
  what makes the incremental cache sound.
* :class:`ProjectGraph` stitches summaries into a symbol table and
  cross-module call graph, resolves call sites through import aliases
  and re-exports, discovers worker entry points from pool-submission
  sites, and computes worker reachability.  Functions that consult
  :func:`~repro.exec.workers.in_worker` (or a ``resolve_workers``
  guard built on it) are *barriers*: they demonstrably check their
  process context before acting, so traversal stops there — the
  static encoding of the PR 5 fix.
* :func:`lint_project` is the v2 engine: per-file analysis through
  the :class:`~repro.devtools.physlint.cache.AnalysisCache`, then the
  registered :class:`ProjectRule` set over the graph.  On a warm
  cache an unchanged tree re-parses zero files.
"""

from __future__ import annotations

import ast
import os
import tokenize
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Type,
)

from ...errors import ConfigurationError
from .cache import AnalysisCache, content_digest, engine_salt
from .core import (
    Finding,
    LintContext,
    _selected,
    analyze_source,
    available_rules,
    iter_python_files,
    suppressed_by_maps,
    validate_code_patterns,
)
from .dimensional import (
    CallRecord,
    analyze_functions,
    function_signature_units,
)
from .unitlang import Unit

#: Callee tails treated as process-context guards: a function that
#: calls one of these checks where it runs before acting, so
#: reachability does not traverse it.
GUARD_TAILS = frozenset({"in_worker", "resolve_workers"})

#: Method names whose first positional argument is submitted to a
#: pool as work (plus the spawn keywords handled separately).
_SUBMIT_METHODS = frozenset({
    "submit", "apply_async", "map", "map_async", "imap",
    "imap_unordered", "starmap", "starmap_async",
})

#: Call keywords whose value runs in a child process.
_SPAWN_KEYWORDS = frozenset({"initializer", "target"})


def module_name_for(path: str) -> Tuple[Optional[str], bool]:
    """The dotted module name a file would import as.

    Walks parent directories while they contain ``__init__.py``.
    Returns ``(module, is_package)``; module is None for non-Python
    paths.
    """
    directory, filename = os.path.split(os.path.abspath(path))
    if not filename.endswith(".py"):
        return None, False
    stem = filename[: -len(".py")]
    is_package = stem == "__init__"
    parts: List[str] = [] if is_package else [stem]
    while os.path.isfile(os.path.join(directory, "__init__.py")):
        directory, name = os.path.split(directory)
        if not name:
            break
        parts.insert(0, name)
    if not parts:
        return None, is_package
    return ".".join(parts), is_package


@dataclass
class Site:
    """One location-bearing fact about a function body."""

    desc: str
    line: int
    column: int

    def to_list(self) -> List[Any]:
        return [self.desc, self.line, self.column]

    @classmethod
    def from_list(cls, data: Sequence[Any]) -> "Site":
        return cls(desc=str(data[0]), line=int(data[1]),
                   column=int(data[2]))


@dataclass
class FunctionSummary:
    """Everything the project layer knows about one function."""

    name: str
    line: int
    column: int
    params: List[str]
    param_units: Dict[str, Unit]
    return_unit: Optional[Unit]
    calls: List[CallRecord] = field(default_factory=list)
    nested: List[str] = field(default_factory=list)
    global_names: List[Site] = field(default_factory=list)
    attr_writes: List[Site] = field(default_factory=list)
    submits: List[Site] = field(default_factory=list)
    guard: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "line": self.line,
            "column": self.column,
            "params": list(self.params),
            "param_units": dict(self.param_units),
            "return_unit": self.return_unit,
            "calls": [
                {"callee": c.callee, "line": c.line,
                 "column": c.column,
                 "args": [[k, u] for k, u in c.args]}
                for c in self.calls],
            "nested": list(self.nested),
            "global_names": [s.to_list() for s in self.global_names],
            "attr_writes": [s.to_list() for s in self.attr_writes],
            "submits": [s.to_list() for s in self.submits],
            "guard": self.guard,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FunctionSummary":
        calls = [
            CallRecord(
                callee=c["callee"], line=c["line"],
                column=c["column"],
                args=[(k, u) for k, u in c["args"]])
            for c in data["calls"]]
        return cls(
            name=data["name"],
            line=data["line"],
            column=data["column"],
            params=list(data["params"]),
            param_units={k: dict(v)
                         for k, v in data["param_units"].items()},
            return_unit=data["return_unit"],
            calls=calls,
            nested=list(data["nested"]),
            global_names=[Site.from_list(s)
                          for s in data["global_names"]],
            attr_writes=[Site.from_list(s)
                         for s in data["attr_writes"]],
            submits=[Site.from_list(s) for s in data["submits"]],
            guard=bool(data["guard"]),
        )


@dataclass
class FileSummary:
    """One file's contribution to the project graph."""

    path: str
    module: Optional[str]
    is_package: bool
    aliases: Dict[str, str]
    from_imports: Dict[str, str]
    functions: Dict[str, FunctionSummary]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "module": self.module,
            "is_package": self.is_package,
            "aliases": dict(self.aliases),
            "from_imports": dict(self.from_imports),
            "functions": {qual: fn.to_dict()
                          for qual, fn in self.functions.items()},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FileSummary":
        return cls(
            path=data["path"],
            module=data["module"],
            is_package=bool(data["is_package"]),
            aliases=dict(data["aliases"]),
            from_imports=dict(data["from_imports"]),
            functions={
                qual: FunctionSummary.from_dict(fn)
                for qual, fn in data["functions"].items()},
        )


def _dotted(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        return None if base is None else f"{base}.{node.attr}"
    return None


def _relative_base(module: Optional[str], is_package: bool,
                   level: int) -> Optional[str]:
    """The absolute package a ``from ...`` import resolves against."""
    if module is None:
        return None
    parts = module.split(".")
    cut = len(parts) - level + (1 if is_package else 0)
    if cut < 0:
        return None
    return ".".join(parts[:cut])


def _collect_imports(tree: ast.Module, module: Optional[str],
                     is_package: bool,
                     ) -> Tuple[Dict[str, str], Dict[str, str]]:
    """All import bindings anywhere in the file.

    Function-local imports are folded into the module-level maps —
    an approximation that can only widen resolution, never corrupt
    per-file findings.
    """
    aliases: Dict[str, str] = {}
    from_imports: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    aliases[alias.asname] = alias.name
                else:
                    head = alias.name.split(".")[0]
                    aliases[head] = head
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base = _relative_base(module, is_package, node.level)
                if base is None:
                    continue
                origin = f"{base}.{node.module}" if node.module \
                    else base
                origin = origin.lstrip(".")
            else:
                origin = node.module or ""
            if not origin:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                from_imports[bound] = f"{origin}.{alias.name}"
    return aliases, from_imports


def _shallow_nodes(function: ast.AST) -> Iterable[ast.AST]:
    """Every node in a function body, excluding nested def bodies."""
    stack: List[ast.AST] = list(getattr(function, "body", []))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _is_bound_head(dotted: str, aliases: Dict[str, str],
                   from_imports: Dict[str, str]) -> bool:
    head = dotted.split(".")[0]
    return head in aliases or head in from_imports


def extract_summary(context: LintContext,
                    tree: ast.Module) -> FileSummary:
    """Condense one parsed file into its :class:`FileSummary`."""
    module, is_package = module_name_for(context.path)
    aliases, from_imports = _collect_imports(tree, module, is_package)
    functions: Dict[str, FunctionSummary] = {}

    for qual, node, flow in analyze_functions(context, tree):
        if not isinstance(node, (ast.FunctionDef,
                                 ast.AsyncFunctionDef)):
            continue
        params_units, return_unit = function_signature_units(node)
        args = node.args
        ordered = [a.arg for a in (*args.posonlyargs, *args.args)]
        summary = FunctionSummary(
            name=qual,
            line=node.lineno,
            column=node.col_offset + 1,
            params=ordered,
            param_units=params_units,
            return_unit=return_unit,
            calls=flow.calls,
            guard=any(
                call.callee.split(".")[-1] in GUARD_TAILS
                for call in flow.calls),
        )
        for item in _shallow_nodes(node):
            if isinstance(item, ast.Global):
                for name in item.names:
                    summary.global_names.append(Site(
                        desc=name, line=item.lineno,
                        column=item.col_offset + 1))
            elif isinstance(item, (ast.Assign, ast.AugAssign,
                                   ast.AnnAssign)):
                targets = item.targets \
                    if isinstance(item, ast.Assign) else [item.target]
                for target in targets:
                    if not isinstance(target, ast.Attribute):
                        continue
                    dotted = _dotted(target)
                    if dotted is not None and _is_bound_head(
                            dotted, aliases, from_imports):
                        summary.attr_writes.append(Site(
                            desc=dotted, line=target.lineno,
                            column=target.col_offset + 1))
            elif isinstance(item, ast.Call):
                func = item.func
                if isinstance(func, ast.Attribute) \
                        and func.attr in _SUBMIT_METHODS \
                        and item.args:
                    target_name = _dotted(item.args[0])
                    if target_name is not None:
                        summary.submits.append(Site(
                            desc=target_name, line=item.lineno,
                            column=item.col_offset + 1))
                for keyword in item.keywords:
                    if keyword.arg in _SPAWN_KEYWORDS:
                        target_name = _dotted(keyword.value)
                        if target_name is not None:
                            summary.submits.append(Site(
                                desc=target_name, line=item.lineno,
                                column=item.col_offset + 1))
        functions[qual] = summary

    for qual in functions:
        if "." in qual:
            parent = qual.rsplit(".", 1)[0]
            if parent in functions:
                functions[parent].nested.append(qual)

    return FileSummary(
        path=context.path,
        module=module,
        is_package=is_package,
        aliases=aliases,
        from_imports=from_imports,
        functions=functions,
    )


#: A node key in the project graph: ``(module, qualified name)``.
NodeKey = Tuple[str, str]


class ProjectGraph:
    """Symbol table + call graph over a set of file summaries."""

    def __init__(self, summaries: Dict[str, FileSummary]) -> None:
        #: posix path -> summary (only files with a resolvable module
        #: participate in cross-module resolution).
        self.summaries = summaries
        self.module_map: Dict[str, str] = {}
        self.nodes: Dict[NodeKey,
                         Tuple[FileSummary, FunctionSummary]] = {}
        for path in sorted(summaries):
            summary = summaries[path]
            if summary.module is None:
                continue
            self.module_map.setdefault(summary.module, path)
            for qual, fn in summary.functions.items():
                self.nodes.setdefault((summary.module, qual),
                                      (summary, fn))
        self._reachable: Optional[Dict[NodeKey,
                                       Tuple[str, ...]]] = None

    # -- name resolution ----------------------------------------------

    def resolve_name(self, summary: FileSummary,
                     dotted: str) -> str:
        """Rewrite a local dotted name through the import bindings."""
        parts = dotted.split(".")
        head = parts[0]
        if head in summary.from_imports:
            full = summary.from_imports[head]
        elif head in summary.aliases:
            full = summary.aliases[head]
        else:
            return dotted
        return ".".join([full, *parts[1:]])

    def resolve_call(self, module: str, caller_qual: str,
                     callee: str,
                     ) -> Optional[Tuple[NodeKey, bool]]:
        """The project function a call site lands on, if known.

        Returns ``(node key, implicit_self)``; ``implicit_self`` is
        True when the callee receives ``self`` implicitly (method via
        ``self.``/``cls.``, or class instantiation hitting
        ``__init__``), shifting positional arguments by one.
        Conservative: unresolvable calls are simply None.
        """
        path = self.module_map.get(module)
        if path is None:
            return None
        summary = self.summaries[path]
        parts = callee.split(".")
        head = parts[0]
        if head in ("self", "cls") and len(parts) == 2 \
                and "." in caller_qual:
            owner = caller_qual.rsplit(".", 1)[0]
            key = (module, f"{owner}.{parts[1]}")
            if key in self.nodes:
                return key, True
            return None
        if head not in summary.from_imports \
                and head not in summary.aliases:
            for qual, implicit in (
                    (callee, False),
                    (f"{callee}.__init__", True),
                    (f"{caller_qual}.{callee}", False)):
                key = (module, qual)
                if key in self.nodes:
                    return key, implicit
            return None
        return self._resolve_full(
            self.resolve_name(summary, callee), 0)

    def _resolve_full(self, full: str, depth: int,
                      ) -> Optional[Tuple[NodeKey, bool]]:
        parts = full.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            target_module = ".".join(parts[:cut])
            if target_module not in self.module_map:
                continue
            rest = parts[cut:]
            if len(rest) == 1:
                key = (target_module, rest[0])
                if key in self.nodes:
                    return key, False
                key = (target_module, f"{rest[0]}.__init__")
                if key in self.nodes:
                    return key, True
            elif len(rest) == 2:
                key = (target_module, f"{rest[0]}.{rest[1]}")
                if key in self.nodes:
                    return key, False
            # Follow one re-export hop (e.g. a package __init__
            # forwarding a function defined in a submodule).
            target = self.summaries[self.module_map[target_module]]
            forwarded = target.from_imports.get(rest[0])
            if forwarded is not None and depth < 5:
                return self._resolve_full(
                    ".".join([forwarded, *rest[1:]]), depth + 1)
            return None
        return None

    # -- worker reachability ------------------------------------------

    def worker_roots(self) -> List[NodeKey]:
        """Functions handed to a pool anywhere in the project."""
        roots: Set[NodeKey] = set()
        for module, qual in sorted(self.nodes):
            _, fn = self.nodes[(module, qual)]
            for site in fn.submits:
                resolved = self.resolve_call(module, qual, site.desc)
                if resolved is not None:
                    roots.add(resolved[0])
        return sorted(roots)

    def _edges(self, key: NodeKey) -> List[NodeKey]:
        module, qual = key
        summary, fn = self.nodes[key]
        out: List[NodeKey] = []
        for call in fn.calls:
            resolved = self.resolve_call(module, qual, call.callee)
            if resolved is not None:
                out.append(resolved[0])
        for nested in fn.nested:
            nested_key = (module, nested)
            if nested_key in self.nodes:
                out.append(nested_key)
        return out

    def worker_reachable(self) -> Dict[NodeKey, Tuple[str, ...]]:
        """Functions reachable from worker entry points.

        Maps each reachable node to a witness call chain (qualified
        names, entry point first).  Guard barriers — functions that
        call ``in_worker``/``resolve_workers`` — terminate traversal
        and are never themselves reported.
        """
        if self._reachable is not None:
            return self._reachable
        chains: Dict[NodeKey, Tuple[str, ...]] = {}
        queue: "deque[NodeKey]" = deque()
        for key in self.worker_roots():
            _, fn = self.nodes[key]
            if fn.guard or key in chains:
                continue
            chains[key] = (key[1],)
            queue.append(key)
        while queue:
            key = queue.popleft()
            for target in self._edges(key):
                if target in chains:
                    continue
                _, fn = self.nodes[target]
                if fn.guard:
                    continue
                chains[target] = (*chains[key], target[1])
                queue.append(target)
        self._reachable = chains
        return chains


# -- project rule registry -----------------------------------------------


class ProjectRule:
    """Base class for whole-program rules.

    Like :class:`~repro.devtools.physlint.core.Rule` but runs once
    per project over the :class:`ProjectGraph` instead of once per
    file over an AST.  Findings carry the path of the file they
    anchor in, so per-file suppression comments still apply.
    """

    code: str = ""
    name: str = ""
    rationale: str = ""

    def __init__(self) -> None:
        self.findings: List[Finding] = []

    def emit(self, path: str, line: int, column: int,
             message: str) -> None:
        """Record a finding at an explicit location."""
        self.findings.append(Finding(
            code=self.code, rule=self.name, message=message,
            path=path, line=line, column=column))

    def run(self, graph: ProjectGraph) -> List[Finding]:
        """Analyze the graph; subclasses override :meth:`check`."""
        self.check(graph)
        return self.findings

    def check(self, graph: ProjectGraph) -> None:
        raise NotImplementedError


_ProjectRules = Dict[str, Type[ProjectRule]]

# Populated only at import time by @project_rule, then read-only:
# identical in every process, so exempt from the per-process-state rule.
_PROJECT_REGISTRY: _ProjectRules = {}  # physlint: disable=RPR601


def project_rule(cls: Type[ProjectRule]) -> Type[ProjectRule]:
    """Class decorator registering a :class:`ProjectRule`."""
    if not cls.code or not cls.name:
        raise ConfigurationError(
            f"project rule {cls.__name__} must set code and name")
    if cls.code in _PROJECT_REGISTRY or cls.code in available_rules():
        raise ConfigurationError(
            f"duplicate rule code {cls.code}: {cls.__name__}")
    _PROJECT_REGISTRY[cls.code] = cls
    return cls


def available_project_rules() -> Dict[str, Type[ProjectRule]]:
    """All registered project rules, keyed by code (sorted copy)."""
    return dict(sorted(_PROJECT_REGISTRY.items()))


# -- the v2 engine -------------------------------------------------------


@dataclass
class ProjectReport:
    """What one :func:`lint_project` run did and found.

    Attributes:
        findings: All findings after suppression and selection,
            sorted by ``(path, line, column, code)``.
        files: Number of files covered.
        parsed: Files actually parsed this run (cache misses).
        cache_hits: Files served entirely from the cache.
        cache_misses: Files analyzed fresh.
    """

    findings: List[Finding]
    files: int
    parsed: int
    cache_hits: int
    cache_misses: int


def _finding_to_dict(finding: Finding) -> Dict[str, Any]:
    return {
        "code": finding.code, "rule": finding.rule,
        "message": finding.message, "path": finding.path,
        "line": finding.line, "column": finding.column,
    }


def _finding_from_dict(data: Dict[str, Any]) -> Finding:
    return Finding(
        code=str(data["code"]), rule=str(data["rule"]),
        message=str(data["message"]), path=str(data["path"]),
        line=int(data["line"]), column=int(data["column"]))


def lint_project(paths: Sequence[str],
                 select: Optional[Sequence[str]] = None,
                 ignore: Optional[Sequence[str]] = None,
                 cache_path: Optional[str] = None) -> ProjectReport:
    """Run the full v2 analysis: per-file rules + project rules.

    Args:
        paths: Files and/or directories to analyze.
        select: Optional code prefixes to restrict the run to.
        ignore: Optional code prefixes to drop from the results.
        cache_path: Optional incremental cache file; unchanged files
            are served from it without re-parsing.

    Returns:
        A :class:`ProjectReport` with the findings and cache stats.
    """
    select_codes = validate_code_patterns(select or ())
    ignore_codes = validate_code_patterns(ignore or ())
    salt = engine_salt([*available_rules(), *_PROJECT_REGISTRY])
    cache = AnalysisCache.load(cache_path, salt)

    findings: List[Finding] = []
    suppressions: Dict[str, Tuple[Tuple[str, ...],
                                  Dict[int, Tuple[str, ...]]]] = {}
    summaries: Dict[str, FileSummary] = {}
    parsed = 0

    file_list = iter_python_files(paths)
    for path in file_list:
        with tokenize.open(path) as handle:
            source = handle.read()
        posix = path.replace(os.sep, "/")
        digest = content_digest(source)
        entry = cache.lookup(posix, digest)
        summary: Optional[FileSummary]
        if entry is None:
            parsed += 1
            analysis = analyze_source(source, path)
            summary = extract_summary(analysis.context, analysis.tree) \
                if analysis.tree is not None else None
            cache.store(posix, digest, {
                "findings": [_finding_to_dict(f)
                             for f in analysis.findings],
                "summary": None if summary is None
                else summary.to_dict(),
                "file_codes": list(analysis.file_codes),
                "line_codes": {str(line): list(codes)
                               for line, codes
                               in analysis.line_codes.items()},
            })
            file_findings = analysis.findings
            file_codes = analysis.file_codes
            line_codes = analysis.line_codes
        else:
            file_findings = [_finding_from_dict(d)
                             for d in entry["findings"]]
            file_codes = tuple(entry["file_codes"])
            line_codes = {int(line): tuple(codes)
                          for line, codes
                          in entry["line_codes"].items()}
            summary = None if entry["summary"] is None \
                else FileSummary.from_dict(entry["summary"])
        suppressions[posix] = (file_codes, line_codes)
        if summary is not None:
            summaries[posix] = summary
        findings.extend(file_findings)

    graph = ProjectGraph(summaries)
    for rule_cls in available_project_rules().values():
        for finding in rule_cls().run(graph):
            posix = finding.path.replace(os.sep, "/")
            maps = suppressions.get(posix)
            if maps is not None and suppressed_by_maps(
                    finding, maps[0], maps[1]):
                continue
            findings.append(finding)

    findings = [f for f in findings
                if _selected(f, select_codes, ignore_codes)]
    findings.sort(key=lambda f: (f.path, f.line, f.column, f.code))
    cache.save(cache_path)
    return ProjectReport(
        findings=findings,
        files=len(file_list),
        parsed=parsed,
        cache_hits=cache.hits,
        cache_misses=cache.misses,
    )


__all__ = [
    "FileSummary",
    "FunctionSummary",
    "GUARD_TAILS",
    "NodeKey",
    "ProjectGraph",
    "ProjectReport",
    "ProjectRule",
    "Site",
    "available_project_rules",
    "extract_summary",
    "lint_project",
    "module_name_for",
    "project_rule",
]
